#!/usr/bin/env python
"""AST lint enforcing the repo's RNG seed discipline.

The parallel executor's bit-identity contract and the fault-replay machinery
both require that *every* source of randomness in ``src/repro`` flows through
an explicitly provided generator or seed (see ``src/repro/rng.py``).  Three
patterns silently break that and are rejected here:

1. **Module-level numpy RNG calls** -- ``np.random.normal(...)``,
   ``np.random.seed(...)``, etc.  These consult hidden global state that
   differs between processes, so results stop being reproducible.
2. **The stdlib ``random`` module** -- same problem, different global.
3. **Unseeded ``default_rng()``** -- OS-entropy seeding is exactly the
   explicit opt-in that :func:`repro.rng.ensure_rng` provides for ``None``;
   anywhere else it is almost always an accident.

Constructor references (``np.random.default_rng(seed)``, ``Generator``,
``SeedSequence``, bit generators) are allowed -- they are how seeds become
streams.  A line may opt out with a ``# lint-rng: allow`` comment (used once,
in ``repro/rng.py``, where the ``None -> fresh entropy`` contract lives).

Usage::

    python scripts/lint_rng.py [paths ...]     # default: src/repro

Exit status 0 when clean, 1 when violations are found (one ``path:line:col``
diagnostic per violation), 2 on usage errors.  Wired into ``make lint`` and
the CI lint job; ``tests/test_lint_rng.py`` pins its behaviour.
"""

from __future__ import annotations

import argparse
import ast
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

#: Attributes of ``numpy.random`` that construct generators/seeds rather
#: than consuming the hidden global stream.
ALLOWED_NP_RANDOM_ATTRS = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
        "RandomState",  # referenced in typing contexts; calling it is rule 1
    }
)

PRAGMA = "# lint-rng: allow"


@dataclass(frozen=True)
class Violation:
    path: Path
    line: int
    col: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.message}"


class _RngVisitor(ast.NodeVisitor):
    """Collect RNG-discipline violations in one module."""

    def __init__(self, path: Path, source_lines: list[str]) -> None:
        self.path = path
        self.source_lines = source_lines
        self.violations: list[Violation] = []
        #: Local names bound to the numpy module (``import numpy as np``).
        self.numpy_aliases: set[str] = set()
        #: Local names bound to ``numpy.random`` itself
        #: (``from numpy import random as npr`` / ``import numpy.random as r``).
        self.np_random_aliases: set[str] = set()

    # -- imports -------------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            name = alias.name
            bound = alias.asname or name.split(".")[0]
            if name == "random" and alias.asname is None:
                self._flag(node, "stdlib `random` import (use repro.rng / numpy Generators)")
            elif name == "random":
                self._flag(node, f"stdlib `random` imported as `{alias.asname}`")
            elif name == "numpy":
                self.numpy_aliases.add(bound)
            elif name == "numpy.random":
                # `import numpy.random` binds `numpy`; with asname it binds
                # the submodule directly.
                if alias.asname is not None:
                    self.np_random_aliases.add(alias.asname)
                else:
                    self.numpy_aliases.add("numpy")
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "random" and node.level == 0:
            self._flag(node, "stdlib `random` import (use repro.rng / numpy Generators)")
        elif node.module == "numpy" and node.level == 0:
            for alias in node.names:
                if alias.name == "random":
                    self.np_random_aliases.add(alias.asname or "random")
        elif node.module == "numpy.random" and node.level == 0:
            for alias in node.names:
                if alias.name not in ALLOWED_NP_RANDOM_ATTRS:
                    self._flag(
                        node,
                        f"`from numpy.random import {alias.name}` pulls a "
                        "global-state function; import a Generator instead",
                    )
        self.generic_visit(node)

    # -- calls ---------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            attr = func.attr
            if self._is_np_random(func.value):
                if attr not in ALLOWED_NP_RANDOM_ATTRS:
                    self._flag(
                        node,
                        f"module-level numpy RNG call `np.random.{attr}(...)` "
                        "(pass a Generator via repro.rng.ensure_rng instead)",
                    )
                elif attr == "default_rng" and not node.args and not node.keywords:
                    self._flag(
                        node,
                        "unseeded `default_rng()` (seed it, or route None "
                        "through repro.rng.ensure_rng)",
                    )
        self.generic_visit(node)

    # -- helpers -------------------------------------------------------
    def _is_np_random(self, value: ast.expr) -> bool:
        """True when ``value`` denotes the ``numpy.random`` module."""
        if isinstance(value, ast.Name):
            return value.id in self.np_random_aliases
        return (
            isinstance(value, ast.Attribute)
            and value.attr == "random"
            and isinstance(value.value, ast.Name)
            and value.value.id in self.numpy_aliases
        )

    def _flag(self, node: ast.AST, message: str) -> None:
        line = getattr(node, "lineno", 0)
        if 1 <= line <= len(self.source_lines) and PRAGMA in self.source_lines[line - 1]:
            return
        self.violations.append(
            Violation(
                path=self.path,
                line=line,
                col=getattr(node, "col_offset", 0),
                message=message,
            )
        )


def lint_source(source: str, path: Path) -> list[Violation]:
    """Lint one module's source text; returns its violations."""
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [
            Violation(
                path=path,
                line=exc.lineno or 0,
                col=exc.offset or 0,
                message=f"syntax error: {exc.msg}",
            )
        ]
    visitor = _RngVisitor(path, source.splitlines())
    # Two passes so aliases registered anywhere in the module (e.g. a late
    # `import numpy as np` inside a function) are known before calls are
    # judged.
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            visitor.visit_Import(node)
        elif isinstance(node, ast.ImportFrom):
            visitor.visit_ImportFrom(node)
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            visitor.visit_Call(node)
    return visitor.violations


def iter_python_files(paths: list[Path]) -> Iterator[Path]:
    for path in paths:
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path


def lint_paths(paths: list[Path]) -> list[Violation]:
    violations: list[Violation] = []
    for file_path in iter_python_files(paths):
        violations.extend(lint_source(file_path.read_text(encoding="utf-8"), file_path))
    return violations


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    args = parser.parse_args(argv)
    paths = [Path(p) for p in args.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(f"lint_rng: no such path(s): {', '.join(map(str, missing))}", file=sys.stderr)
        return 2
    violations = lint_paths(paths)
    for violation in violations:
        print(violation.render())
    if violations:
        print(f"lint_rng: {len(violations)} violation(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
