"""Deterministic chaos campaigns demonstrating the health plane end to end.

Usage::

    python scripts/health_demo.py                        # narrate both campaigns
    python scripts/health_demo.py --assert-retry-storm   # CI gate (exit 1 on miss)
    python scripts/health_demo.py --assert-shard-failure # CI gate, secure campaign
    python scripts/health_demo.py --out out/health_demo  # persist alerts.jsonl

Two scripted campaigns, each deterministic down to the alert transitions:

1. A basic-mode campaign against the fault schedule ``2:blackout;4-5:loss=0.6``
   with a quorum high enough that a loss=0.6 attempt fails.  Attempt 2 (the
   blackout) and attempts 4-5 (the loss bursts) fail and are retried, so the
   retry-storm rule *must* fire mid-campaign, and the quiet tail of clean
   rounds *must* resolve it.
2. A secure-aggregation campaign against ``3:shard=0``: round 3 blacks out
   every client in shard 0, whose masking session falls below its recovery
   threshold.  The round *degrades* (shard excluded, variance inflated)
   rather than aborting, the shard-failure rule fires on the counter delta,
   and the clean tail resolves it.

``--assert-retry-storm`` / ``--assert-shard-failure`` turn those
obligations into exit codes -- the CI chaos job runs both next to the
failure-injection tests.

Every round attempt is reported to the :class:`HealthMonitor` through the
query's direct hook (no tracer involved), and a :class:`LiveMonitor` on
stderr shows what an operator watching the campaign would see.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

from repro.core import FixedPointEncoder
from repro.federated import (
    ClientDevice,
    FaultSchedule,
    FederatedMeanQuery,
    MonitoringCampaign,
    NetworkModel,
    RetryPolicy,
)
from repro.observability import (
    ALERTS_FILENAME,
    HealthMonitor,
    LiveMonitor,
    MetricsRegistry,
    configure,
    default_rules,
    disable,
)

FAULT_SPEC = "2:blackout;4-5:loss=0.6"

#: Secure campaign: round 3 blacks out shard 0 (8 clients of 64).
SECURE_FAULT_SPEC = "3:shard=0"
SECURE_SHARD_SIZE = 8


def run_demo(
    seed: int = 0,
    rounds: int = 10,
    n_clients: int = 400,
    out_dir: str | None = None,
) -> HealthMonitor:
    """Run the chaos campaign; returns the health monitor for inspection."""
    rng = np.random.default_rng(seed)
    population = [
        ClientDevice(i, np.clip(rng.normal(600.0, 100.0, 1), 0.0, None))
        for i in range(n_clients)
    ]
    sink = None
    if out_dir is not None:
        sink = Path(out_dir) / ALERTS_FILENAME
    health = HealthMonitor(rules=default_rules(), sink=sink)
    live = LiveMonitor(planned_rounds=rounds, health=health)
    query = FederatedMeanQuery(
        FixedPointEncoder.for_integers(10),
        mode="basic",
        network=NetworkModel(loss_rate=0.05, deadline_s=600.0),
        # loss=0.6 leaves ~38% of the cohort: below half, so the burst rounds
        # fail and retry; the clean baseline (~95% delivery) clears easily.
        min_quorum=n_clients // 2,
        retry=RetryPolicy(max_attempts=4, redraw_cohort=False),
        faults=FaultSchedule.from_spec(FAULT_SPEC),
        health=health,
    )
    campaign = MonitoringCampaign(query, health=health, live=live)
    for _ in range(rounds):
        campaign.run_round(population, rng=rng)
    live.finish(estimate=campaign.estimates[-1])
    health.close()
    return health


def run_secure_demo(
    seed: int = 0,
    rounds: int = 10,
    n_clients: int = 64,
    out_dir: str | None = None,
) -> tuple[HealthMonitor, MonitoringCampaign]:
    """Run the secure-aggregation shard-blackout campaign.

    The shard-failure rule reads the ``secure_shard_failures_total``
    counter delta, so the monitor needs the same metrics registry the
    masking sessions increment into.
    """
    rng = np.random.default_rng(seed)
    population = [
        ClientDevice(i, np.clip(rng.normal(600.0, 100.0, 1), 0.0, None))
        for i in range(n_clients)
    ]
    sink = None
    if out_dir is not None:
        sink = Path(out_dir) / "secure" / ALERTS_FILENAME
    registry = MetricsRegistry()
    configure(metrics=registry)
    try:
        health = HealthMonitor(rules=default_rules(), metrics=registry, sink=sink)
        live = LiveMonitor(planned_rounds=rounds, health=health)
        query = FederatedMeanQuery(
            FixedPointEncoder.for_integers(10),
            mode="basic",
            secure_aggregation=True,
            shard_size=SECURE_SHARD_SIZE,
            faults=FaultSchedule.from_spec(SECURE_FAULT_SPEC),
            health=health,
        )
        campaign = MonitoringCampaign(query, health=health, live=live)
        for _ in range(rounds):
            campaign.run_round(population, rng=rng)
        live.finish(estimate=campaign.estimates[-1])
        health.close()
    finally:
        disable()
    return health, campaign


def _print_events(health: HealthMonitor) -> None:
    if health.events:
        print("| t (s) | rule | severity | state | detail |")
        print("| --- | --- | --- | --- | --- |")
        for event in health.events:
            print(
                f"| {event.t_s:.3f} | {event.rule} | {event.severity} | "
                f"{event.state} | {event.detail} |"
            )
    else:
        print("(no alert transitions)")
    summary = health.summary()
    print()
    print(
        f"fired: {summary['fired_total']}  resolved: {summary['resolved_total']}  "
        f"active: {len(summary['active'])}"
    )


def _assert_fired_and_resolved(health: HealthMonitor, rule: str) -> int:
    """Exit code 1 with a message unless ``rule`` both fired and resolved."""
    counts = health.summary()["by_rule"].get(rule, {})
    if not counts.get("fired"):
        print(f"ASSERTION FAILED: {rule} alert never fired", file=sys.stderr)
        return 1
    if counts.get("resolved", 0) < counts.get("fired", 0):
        print(
            f"ASSERTION FAILED: {rule} alert fired but never resolved",
            file=sys.stderr,
        )
        return 1
    print(f"{rule} alert fired and resolved, as scripted")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=0, help="campaign RNG seed")
    parser.add_argument("--rounds", type=int, default=10, help="campaign rounds to run")
    parser.add_argument(
        "--out", default=None, metavar="DIR", help="also persist alerts.jsonl into DIR"
    )
    parser.add_argument(
        "--assert-retry-storm",
        action="store_true",
        help="exit 1 unless the retry-storm alert both fired and resolved",
    )
    parser.add_argument(
        "--assert-shard-failure",
        action="store_true",
        help="exit 1 unless the secure campaign degraded (not aborted) and the "
        "shard-failure alert both fired and resolved",
    )
    args = parser.parse_args(argv)

    health = run_demo(seed=args.seed, rounds=args.rounds, out_dir=args.out)
    print(f"# Health demo: chaos campaign under '{FAULT_SPEC}'")
    print()
    _print_events(health)
    if args.out:
        print(f"alerts written to {Path(args.out) / ALERTS_FILENAME}")

    secure_health, secure_campaign = run_secure_demo(
        seed=args.seed, rounds=args.rounds, out_dir=args.out
    )
    print()
    print(
        f"# Secure-aggregation campaign under '{SECURE_FAULT_SPEC}' "
        f"(shard size {SECURE_SHARD_SIZE})"
    )
    print()
    _print_events(secure_health)
    print(
        f"rounds degraded: {secure_campaign.rounds_degraded} of "
        f"{secure_campaign.rounds_run} (shard excluded, round completed)"
    )
    if args.out:
        print(f"alerts written to {Path(args.out) / 'secure' / ALERTS_FILENAME}")

    status = 0
    if args.assert_retry_storm:
        status = _assert_fired_and_resolved(health, "retry-storm") or status
    if args.assert_shard_failure:
        if secure_campaign.rounds_degraded < 1:
            print(
                "ASSERTION FAILED: the shard blackout never degraded a round",
                file=sys.stderr,
            )
            status = 1
        status = _assert_fired_and_resolved(secure_health, "shard-failure") or status
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
