"""Deterministic chaos campaign demonstrating the health plane end to end.

Usage::

    python scripts/health_demo.py                       # narrate the campaign
    python scripts/health_demo.py --assert-retry-storm  # CI gate (exit 1 on miss)
    python scripts/health_demo.py --out out/health_demo # persist alerts.jsonl

Runs a seeded basic-mode monitoring campaign against the fault schedule
``2:blackout;4-5:loss=0.6`` with a quorum high enough that a loss=0.6
attempt fails.  The attempt-tick arithmetic is deterministic: attempt 2
(the blackout) and attempts 4-5 (the loss bursts) fail and are retried, so
the retry-storm rule *must* fire mid-campaign, and the quiet tail of clean
rounds *must* resolve it.  ``--assert-retry-storm`` turns that obligation
into an exit code -- the CI chaos job runs it next to the failure-injection
tests.

Every round attempt is reported to the :class:`HealthMonitor` through the
query's direct hook (no tracer involved), and a :class:`LiveMonitor` on
stderr shows what an operator watching the campaign would see.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

from repro.core import FixedPointEncoder
from repro.federated import (
    ClientDevice,
    FaultSchedule,
    FederatedMeanQuery,
    MonitoringCampaign,
    NetworkModel,
    RetryPolicy,
)
from repro.observability import ALERTS_FILENAME, HealthMonitor, LiveMonitor, default_rules

FAULT_SPEC = "2:blackout;4-5:loss=0.6"


def run_demo(
    seed: int = 0,
    rounds: int = 10,
    n_clients: int = 400,
    out_dir: str | None = None,
) -> HealthMonitor:
    """Run the chaos campaign; returns the health monitor for inspection."""
    rng = np.random.default_rng(seed)
    population = [
        ClientDevice(i, np.clip(rng.normal(600.0, 100.0, 1), 0.0, None))
        for i in range(n_clients)
    ]
    sink = None
    if out_dir is not None:
        sink = Path(out_dir) / ALERTS_FILENAME
    health = HealthMonitor(rules=default_rules(), sink=sink)
    live = LiveMonitor(planned_rounds=rounds, health=health)
    query = FederatedMeanQuery(
        FixedPointEncoder.for_integers(10),
        mode="basic",
        network=NetworkModel(loss_rate=0.05, deadline_s=600.0),
        # loss=0.6 leaves ~38% of the cohort: below half, so the burst rounds
        # fail and retry; the clean baseline (~95% delivery) clears easily.
        min_quorum=n_clients // 2,
        retry=RetryPolicy(max_attempts=4, redraw_cohort=False),
        faults=FaultSchedule.from_spec(FAULT_SPEC),
        health=health,
    )
    campaign = MonitoringCampaign(query, health=health, live=live)
    for _ in range(rounds):
        campaign.run_round(population, rng=rng)
    live.finish(estimate=campaign.estimates[-1])
    health.close()
    return health


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=0, help="campaign RNG seed")
    parser.add_argument("--rounds", type=int, default=10, help="campaign rounds to run")
    parser.add_argument(
        "--out", default=None, metavar="DIR", help="also persist alerts.jsonl into DIR"
    )
    parser.add_argument(
        "--assert-retry-storm",
        action="store_true",
        help="exit 1 unless the retry-storm alert both fired and resolved",
    )
    args = parser.parse_args(argv)

    health = run_demo(seed=args.seed, rounds=args.rounds, out_dir=args.out)

    print(f"# Health demo: chaos campaign under '{FAULT_SPEC}'")
    print()
    if health.events:
        print("| t (s) | rule | severity | state | detail |")
        print("| --- | --- | --- | --- | --- |")
        for event in health.events:
            print(
                f"| {event.t_s:.3f} | {event.rule} | {event.severity} | "
                f"{event.state} | {event.detail} |"
            )
    else:
        print("(no alert transitions)")
    summary = health.summary()
    print()
    print(
        f"fired: {summary['fired_total']}  resolved: {summary['resolved_total']}  "
        f"active: {len(summary['active'])}"
    )
    if args.out:
        print(f"alerts written to {Path(args.out) / ALERTS_FILENAME}")

    if args.assert_retry_storm:
        storm = summary["by_rule"].get("retry-storm", {})
        if not storm.get("fired"):
            print("ASSERTION FAILED: retry-storm alert never fired", file=sys.stderr)
            return 1
        if storm.get("resolved", 0) < storm.get("fired", 0):
            print(
                "ASSERTION FAILED: retry-storm alert fired but never resolved",
                file=sys.stderr,
            )
            return 1
        print("retry-storm alert fired and resolved, as scripted")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
