"""Reduce a pytest-benchmark JSON report to a compact trajectory summary.

Usage::

    python scripts/bench_summary.py benchmarks/results/benchmark.json BENCH_micro.json
    python scripts/bench_summary.py benchmarks/results/benchmark.json BENCH_micro.json --label pr2

The pytest-benchmark report carries per-round samples, machine info, and
warmup details; for tracking performance across PRs only a handful of
stable numbers matter.  The destination file holds a *trajectory*: one
labelled entry per summarization, appended in order, so successive PRs can
watch means drift without digging through git history.  Re-summarizing
under an existing label replaces that entry (idempotent re-runs); the
label defaults to the report's git commit id.  A pre-trajectory
single-summary file (the seed format) is converted in place, keeping its
numbers as the first entry.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def summarize(report: dict, label: str | None = None) -> dict:
    """Pick the stable fields out of one pytest-benchmark report."""
    benchmarks = []
    for bench in sorted(report.get("benchmarks", []), key=lambda b: b["fullname"]):
        stats = bench["stats"]
        benchmarks.append(
            {
                "name": bench["fullname"],
                "mean_s": stats["mean"],
                "stddev_s": stats["stddev"],
                "min_s": stats["min"],
                "rounds": stats["rounds"],
            }
        )
    machine = report.get("machine_info", {})
    if label is None:
        commit = report.get("commit_info", {}) or {}
        commit_id = commit.get("id") or ""
        label = commit_id[:12] if commit_id else "unlabeled"
    return {
        "label": label,
        "python": machine.get("python_version", "unknown"),
        "cpu_count": machine.get("cpu", {}).get("count", None)
        if isinstance(machine.get("cpu"), dict)
        else None,
        "n_benchmarks": len(benchmarks),
        "benchmarks": benchmarks,
    }


def load_trajectory(destination: Path) -> list[dict]:
    """Existing entries at ``destination``, converting the seed format.

    The seed format was a single summary dict; it becomes the trajectory's
    first entry (labelled ``seed``) so its numbers stay comparable.
    """
    try:
        existing = json.loads(destination.read_text())
    except (FileNotFoundError, json.JSONDecodeError):
        return []
    if isinstance(existing, dict) and "trajectory" in existing:
        entries = existing["trajectory"]
        return entries if isinstance(entries, list) else []
    if isinstance(existing, dict) and "benchmarks" in existing:
        return [{"label": "seed", **existing}]
    return []


def append_entry(destination: Path, entry: dict) -> list[dict]:
    """Add ``entry`` to the trajectory at ``destination`` (replacing its label)."""
    entries = [e for e in load_trajectory(destination) if e.get("label") != entry["label"]]
    entries.append(entry)
    destination.write_text(json.dumps({"trajectory": entries}, indent=2) + "\n")
    return entries


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python scripts/bench_summary.py",
        description="Append a pytest-benchmark report to a trajectory summary",
    )
    parser.add_argument("source", help="pytest-benchmark JSON report")
    parser.add_argument("destination", help="trajectory summary file (e.g. BENCH_micro.json)")
    parser.add_argument(
        "--label",
        default=None,
        help="entry label (default: the report's git commit id); an existing "
        "entry with the same label is replaced",
    )
    args = parser.parse_args(argv)
    source, destination = Path(args.source), Path(args.destination)
    try:
        report = json.loads(source.read_text())
    except FileNotFoundError:
        print(
            f"error: {source} not found -- run "
            f"`pytest benchmarks/ --benchmark-only --benchmark-json={source}` first "
            "(or just `make bench`)",
            file=sys.stderr,
        )
        return 1
    except json.JSONDecodeError as exc:
        print(f"error: {source} is not valid JSON: {exc}", file=sys.stderr)
        return 1
    entry = summarize(report, label=args.label)
    entries = append_entry(destination, entry)
    print(
        f"{entry['n_benchmarks']} benchmarks summarized into {destination} "
        f"as {entry['label']!r} ({len(entries)} trajectory entries)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
