"""Reduce a pytest-benchmark JSON report to a compact trajectory summary.

Usage::

    python scripts/bench_summary.py benchmarks/results/benchmark.json BENCH_micro.json

The pytest-benchmark report carries per-round samples, machine info, and
warmup details; for tracking performance across PRs only a handful of
stable numbers matter.  This writes one small JSON file -- benchmark name
to mean/stddev/rounds -- that lives at the repo root so successive PRs can
diff it (`BENCH_micro.json` is the seed of that trajectory).
"""

from __future__ import annotations

import json
import sys
from pathlib import Path


def summarize(report: dict) -> dict:
    """Pick the stable fields out of one pytest-benchmark report."""
    benchmarks = []
    for bench in sorted(report.get("benchmarks", []), key=lambda b: b["fullname"]):
        stats = bench["stats"]
        benchmarks.append(
            {
                "name": bench["fullname"],
                "mean_s": stats["mean"],
                "stddev_s": stats["stddev"],
                "min_s": stats["min"],
                "rounds": stats["rounds"],
            }
        )
    machine = report.get("machine_info", {})
    return {
        "python": machine.get("python_version", "unknown"),
        "cpu_count": machine.get("cpu", {}).get("count", None)
        if isinstance(machine.get("cpu"), dict)
        else None,
        "n_benchmarks": len(benchmarks),
        "benchmarks": benchmarks,
    }


def main(argv: list[str]) -> int:
    if len(argv) != 3:
        print(
            "usage: python scripts/bench_summary.py <pytest-benchmark.json> <summary.json>",
            file=sys.stderr,
        )
        return 2
    source, destination = Path(argv[1]), Path(argv[2])
    try:
        report = json.loads(source.read_text())
    except FileNotFoundError:
        print(
            f"error: {source} not found -- run "
            f"`pytest benchmarks/ --benchmark-only --benchmark-json={source}` first "
            "(or just `make bench`)",
            file=sys.stderr,
        )
        return 1
    except json.JSONDecodeError as exc:
        print(f"error: {source} is not valid JSON: {exc}", file=sys.stderr)
        return 1
    summary = summarize(report)
    destination.write_text(json.dumps(summary, indent=2) + "\n")
    print(f"{summary['n_benchmarks']} benchmarks summarized into {destination}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
