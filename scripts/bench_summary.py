"""Reduce a pytest-benchmark JSON report to a compact trajectory summary.

Usage::

    python scripts/bench_summary.py benchmarks/results/benchmark.json BENCH_micro.json
    python scripts/bench_summary.py benchmarks/results/benchmark.json BENCH_micro.json --label pr2
    python scripts/bench_summary.py --check BENCH_micro.json
    python scripts/bench_summary.py --check BENCH_micro.json --baseline seed --tolerance 1.5
    python scripts/bench_summary.py --scale benchmarks/results/scale.json BENCH_scale.json

The pytest-benchmark report carries per-round samples, machine info, and
warmup details; for tracking performance across PRs only a handful of
stable numbers matter.  The destination file holds a *trajectory*: one
labelled entry per summarization, appended in order, so successive PRs can
watch means drift without digging through git history.  Re-summarizing
under an existing label replaces that entry (idempotent re-runs); the
label defaults to the report's git commit id.  A pre-trajectory
single-summary file (the seed format) is converted in place, keeping its
numbers as the first entry.

``--check`` is the regression gate: it compares the trajectory's newest
entry against a baseline entry (``--baseline <label>``, default: the
previous entry) and exits non-zero naming every benchmark whose mean
slowed by more than ``--tolerance`` (a ratio; default 1.25).  The strict
default suits same-machine comparisons (``make bench-check``); CI compares
cross-runner numbers and passes a looser tolerance.

``--scale`` summarizes the columnar scale study instead: the source is the
``benchmarks/results/scale.json`` payload written by
``benchmarks/bench_scale.py::test_columnar_round_throughput`` (clients/sec
per population size, object-path speedup, tracemalloc peak) and
``test_secure_agg_throughput`` (hierarchical masking clients/sec), appended
to a ``BENCH_scale.json`` trajectory with the same labelling rules
(``make bench-scale`` drives the full 10**7 run).  ``--check --scale``
gates the scale trajectory the same way ``--check`` gates the micro one,
except the compared numbers are throughput rates (higher is better): the
newest entry fails when any shared rate dropped past the tolerance.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def summarize(report: dict, label: str | None = None) -> dict:
    """Pick the stable fields out of one pytest-benchmark report."""
    benchmarks = []
    for bench in sorted(report.get("benchmarks", []), key=lambda b: b["fullname"]):
        stats = bench["stats"]
        benchmarks.append(
            {
                "name": bench["fullname"],
                "mean_s": stats["mean"],
                "stddev_s": stats["stddev"],
                "min_s": stats["min"],
                "rounds": stats["rounds"],
            }
        )
    machine = report.get("machine_info", {})
    if label is None:
        commit = report.get("commit_info", {}) or {}
        commit_id = commit.get("id") or ""
        label = commit_id[:12] if commit_id else "unlabeled"
    return {
        "label": label,
        "python": machine.get("python_version", "unknown"),
        "cpu_count": machine.get("cpu", {}).get("count", None)
        if isinstance(machine.get("cpu"), dict)
        else None,
        "n_benchmarks": len(benchmarks),
        "benchmarks": benchmarks,
    }


def summarize_scale(payload: dict, label: str | None = None) -> dict:
    """Reduce one ``scale.json`` payload to a scale-trajectory entry.

    The stable numbers: clients/sec at each benched population size, the
    object-path speedup at the reference size, the streaming chunk, the
    tracemalloc peak per client at the largest size, and -- when the
    secure-aggregation study ran -- the hierarchical masking throughput
    and its speedup over the per-client submit loop, plus the wire-served
    round throughput (single and concurrent campaigns) when that study ran.
    """
    columnar = payload.get("columnar", {})
    reference = payload.get("object_reference", {})
    memory = payload.get("tracemalloc", {})
    secure = payload.get("secure_agg", {})
    serve = payload.get("serve", {})
    entry = {
        "label": label or "unlabeled",
        "chunk": payload.get("chunk"),
        "clients_per_s": {
            n: row.get("clients_per_s") for n, row in sorted(
                columnar.items(), key=lambda item: int(item[0])
            )
        },
        "speedup_vs_object": payload.get("speedup_vs_object"),
        "object_reference_n": reference.get("n"),
        "peak_bytes_per_client": memory.get("peak_bytes_per_client"),
        "peak_at_n": memory.get("n"),
    }
    if secure:
        entry["secure_agg"] = {
            "n": secure.get("n"),
            "shard_size": secure.get("shard_size"),
            "clients_per_s": secure.get("clients_per_s"),
            "speedup_vs_loop": secure.get("speedup_vs_loop"),
        }
    if serve:
        campaigns = serve.get("campaigns") or {}
        entry["serve"] = {
            "n_clients": serve.get("n_clients"),
            "telemetry": serve.get("telemetry"),
            "reports_per_s": serve.get("reports_per_s"),
            "concurrent_campaigns": campaigns.get("count"),
            "concurrent_reports_per_s": campaigns.get("reports_per_s"),
        }
    return entry


def load_trajectory(destination: Path) -> list[dict]:
    """Existing entries at ``destination``, converting the seed format.

    The seed format was a single summary dict; it becomes the trajectory's
    first entry (labelled ``seed``) so its numbers stay comparable.
    """
    try:
        existing = json.loads(destination.read_text())
    except (FileNotFoundError, json.JSONDecodeError):
        return []
    if isinstance(existing, dict) and "trajectory" in existing:
        entries = existing["trajectory"]
        return entries if isinstance(entries, list) else []
    if isinstance(existing, dict) and "benchmarks" in existing:
        return [{"label": "seed", **existing}]
    return []


def append_entry(destination: Path, entry: dict) -> list[dict]:
    """Add ``entry`` to the trajectory at ``destination`` (replacing its label)."""
    entries = [e for e in load_trajectory(destination) if e.get("label") != entry["label"]]
    entries.append(entry)
    destination.write_text(json.dumps({"trajectory": entries}, indent=2) + "\n")
    return entries


def check_regressions(
    entries: list[dict],
    baseline_label: str | None = None,
    tolerance: float = 1.25,
) -> tuple[bool, list[str]]:
    """Compare the newest trajectory entry against a baseline entry.

    Returns ``(ok, messages)``: ``ok`` is False when any benchmark present
    in both entries slowed by more than ``tolerance`` (newest mean divided
    by baseline mean), or when the comparison itself is impossible (missing
    baseline, fewer than two entries, no overlapping benchmarks).
    """
    if tolerance <= 0:
        return False, [f"tolerance must be positive, got {tolerance}"]
    if not entries:
        return False, ["trajectory is empty; nothing to check"]
    newest = entries[-1]
    if baseline_label is None:
        if len(entries) < 2:
            return False, [
                "trajectory has a single entry; need a previous entry (or --baseline) "
                "to compare against"
            ]
        baseline = entries[-2]
    else:
        labelled = [e for e in entries if e.get("label") == baseline_label]
        if not labelled:
            known = ", ".join(repr(e.get("label")) for e in entries)
            return False, [f"no trajectory entry labelled {baseline_label!r} (have: {known})"]
        baseline = labelled[-1]
    base_means = {b["name"]: b["mean_s"] for b in baseline.get("benchmarks", [])}
    messages = []
    regressions = []
    compared = 0
    for bench in newest.get("benchmarks", []):
        base_mean = base_means.get(bench["name"])
        if base_mean is None or base_mean <= 0:
            continue
        compared += 1
        ratio = bench["mean_s"] / base_mean
        line = (
            f"{bench['name']}: {bench['mean_s'] * 1e3:.3f} ms vs "
            f"{base_mean * 1e3:.3f} ms ({ratio:.2f}x baseline {baseline.get('label')!r})"
        )
        if ratio > tolerance:
            regressions.append(f"REGRESSION {line} exceeds tolerance {tolerance:.2f}x")
        else:
            messages.append(f"ok {line}")
    if compared == 0:
        return False, [
            f"entries {newest.get('label')!r} and {baseline.get('label')!r} share no "
            "benchmarks; nothing compared"
        ]
    return not regressions, messages + regressions


def _scale_rates(entry: dict) -> dict[str, float]:
    """The higher-is-better throughput rates of one scale-trajectory entry."""
    rates = {}
    for n, rate in (entry.get("clients_per_s") or {}).items():
        if rate:
            rates[f"columnar@{n}"] = float(rate)
    secure = entry.get("secure_agg") or {}
    if secure.get("clients_per_s"):
        rates[f"secure_agg@{secure.get('n')}"] = float(secure["clients_per_s"])
    serve = entry.get("serve") or {}
    if serve.get("reports_per_s"):
        rates[f"serve@{serve.get('n_clients')}"] = float(serve["reports_per_s"])
    if serve.get("concurrent_reports_per_s"):
        rates[f"serve_campaigns@{serve.get('concurrent_campaigns')}"] = float(
            serve["concurrent_reports_per_s"]
        )
    return rates


def check_scale_regressions(
    entries: list[dict],
    baseline_label: str | None = None,
    tolerance: float = 1.25,
) -> tuple[bool, list[str]]:
    """Like :func:`check_regressions`, for scale entries (rates, not means).

    Each rate is clients/sec, so a regression is the newest rate dropping
    below ``baseline / tolerance``.  Rates present in only one entry (e.g.
    the secure-agg section before it existed) are skipped.
    """
    if tolerance <= 0:
        return False, [f"tolerance must be positive, got {tolerance}"]
    if not entries:
        return False, ["trajectory is empty; nothing to check"]
    newest = entries[-1]
    if baseline_label is None:
        if len(entries) < 2:
            return False, [
                "trajectory has a single entry; need a previous entry (or --baseline) "
                "to compare against"
            ]
        baseline = entries[-2]
    else:
        labelled = [e for e in entries if e.get("label") == baseline_label]
        if not labelled:
            known = ", ".join(repr(e.get("label")) for e in entries)
            return False, [f"no trajectory entry labelled {baseline_label!r} (have: {known})"]
        baseline = labelled[-1]
    base_rates = _scale_rates(baseline)
    telemetry_on = bool((newest.get("serve") or {}).get("telemetry"))
    messages = []
    regressions = []
    compared = 0
    for name, rate in _scale_rates(newest).items():
        base_rate = base_rates.get(name)
        if base_rate is None or base_rate <= 0:
            continue
        compared += 1
        ratio = base_rate / rate
        line = (
            f"{name}: {rate:,.0f} clients/s vs {base_rate:,.0f} clients/s "
            f"({ratio:.2f}x slowdown vs baseline {baseline.get('label')!r})"
        )
        if ratio > tolerance:
            message = f"REGRESSION {line} exceeds tolerance {tolerance:.2f}x"
            if name.startswith("serve") and telemetry_on:
                # Name the usual suspect: the served bench runs with fleet
                # telemetry on, so a serve-only drop implicates the uplink
                # drain/ingest path, not the aggregation core.
                message = (
                    f"TELEMETRY REGRESSION {line} exceeds tolerance "
                    f"{tolerance:.2f}x -- served round ran with fleet "
                    "telemetry enabled; profile the TELEMETRY drain/ingest "
                    "path (serve.telemetry spans) before blaming the core"
                )
            regressions.append(message)
        else:
            messages.append(f"ok {line}")
    if compared == 0:
        return False, [
            f"entries {newest.get('label')!r} and {baseline.get('label')!r} share no "
            "throughput rates; nothing compared"
        ]
    return not regressions, messages + regressions


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python scripts/bench_summary.py",
        description="Append a pytest-benchmark report to a trajectory summary, "
        "or gate on regressions with --check",
    )
    parser.add_argument(
        "source",
        nargs="?",
        help="pytest-benchmark JSON report (with --check: the trajectory file)",
    )
    parser.add_argument(
        "destination", nargs="?", help="trajectory summary file (e.g. BENCH_micro.json)"
    )
    parser.add_argument(
        "--label",
        default=None,
        help="entry label (default: the report's git commit id); an existing "
        "entry with the same label is replaced",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="regression gate: compare the trajectory's newest entry against the "
        "baseline and exit 1 naming any benchmark slower than the tolerance",
    )
    parser.add_argument(
        "--scale",
        action="store_true",
        help="summarize a columnar scale payload (benchmarks/results/scale.json) "
        "into a BENCH_scale.json trajectory instead of a pytest-benchmark report",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="LABEL",
        help="trajectory entry to compare against (default: the previous entry)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=1.25,
        metavar="RATIO",
        help="maximum allowed newest/baseline mean ratio (default: 1.25)",
    )
    args = parser.parse_args(argv)

    if args.check:
        default_path = "BENCH_scale.json" if args.scale else "BENCH_micro.json"
        trajectory_path = Path(args.source or default_path)
        entries = load_trajectory(trajectory_path)
        if not entries and not trajectory_path.exists():
            print(f"error: {trajectory_path} not found", file=sys.stderr)
            return 1
        checker = check_scale_regressions if args.scale else check_regressions
        ok, messages = checker(
            entries, baseline_label=args.baseline, tolerance=args.tolerance
        )
        for message in messages:
            print(message, file=sys.stdout if ok else sys.stderr)
        if ok:
            print(f"bench check passed ({trajectory_path}, tolerance {args.tolerance:.2f}x)")
        return 0 if ok else 1

    if args.source is None or args.destination is None:
        parser.error("source and destination are required unless --check is given")
    source, destination = Path(args.source), Path(args.destination)
    try:
        report = json.loads(source.read_text())
    except FileNotFoundError:
        hint = (
            "`make bench-scale`"
            if args.scale
            else f"`pytest benchmarks/ --benchmark-only --benchmark-json={source}` "
            "first (or just `make bench`)"
        )
        print(f"error: {source} not found -- run {hint}", file=sys.stderr)
        return 1
    except json.JSONDecodeError as exc:
        print(f"error: {source} is not valid JSON: {exc}", file=sys.stderr)
        return 1
    if args.scale:
        entry = summarize_scale(report, label=args.label)
        entries = append_entry(destination, entry)
        details = []
        if entry.get("speedup_vs_object") is not None:
            details.append(
                f"columnar {entry['speedup_vs_object']:.1f}x at "
                f"n={entry['object_reference_n']}"
            )
        secure = entry.get("secure_agg") or {}
        if secure.get("speedup_vs_loop") is not None:
            details.append(
                f"secure-agg {secure['speedup_vs_loop']:.1f}x at n={secure['n']}"
            )
        serve = entry.get("serve") or {}
        if serve.get("reports_per_s") is not None:
            details.append(
                f"served {serve['reports_per_s']:,.0f} reports/s at "
                f"n={serve['n_clients']}"
            )
        print(
            f"scale study summarized into {destination} as {entry['label']!r} "
            f"({len(entries)} trajectory entries; {'; '.join(details) or 'no sections'})"
        )
        return 0
    entry = summarize(report, label=args.label)
    entries = append_entry(destination, entry)
    print(
        f"{entry['n_benchmarks']} benchmarks summarized into {destination} "
        f"as {entry['label']!r} ({len(entries)} trajectory entries)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
