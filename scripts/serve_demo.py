"""Served-round smoke: wire-protocol rounds must match their in-process twins.

Usage::

    python scripts/serve_demo.py                  # run both legs, assert, narrate
    python scripts/serve_demo.py --out out/serve_demo  # choose the artifact root

Two deterministic loopback campaigns, each a real TCP round through the full
control-message + frame protocol (HELLO, ANNOUNCE, REPORTS, RESULT):

1. **Lossless parity.**  A 32-client fleet served on a fixed seed must
   produce an estimate *bit-identical* to the in-process
   :class:`FederatedMeanQuery` round on the same population and seed -- the
   transport is not allowed to perturb the math.  The round records a
   standard flight-recorder artifact (``events.jsonl`` + ``manifest.json``)
   renderable with ``repro.cli report``.
2. **Adversarial uplinks.**  A 24-client fleet under a lossy emulation
   profile, with three clients shipping garbage instead of their frames,
   must match :func:`in_process_estimate` with exactly those three uplinks
   rejected (``wire_rejects_total``), and the recorded span stream must
   contain the ``uplink.reject`` accounting spans.

Any parity miss, unaccounted reject, or missing artifact exits non-zero --
the CI chaos job runs this next to the failure-injection campaigns.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.core import FixedPointEncoder
from repro.federated import (
    ClientDevice,
    EmulationProfile,
    FederatedMeanQuery,
    ServeConfig,
    fleet_values,
    in_process_estimate,
    run_loopback,
)
from repro.observability import (
    FlightRecorder,
    MetricsRegistry,
    Tracer,
    instrumented,
    load_run,
)
from repro.observability.recorder import EVENTS_FILENAME

LOSSLESS_N = 32
ADVERSARIAL_N = 24
CORRUPTED = (3, 11, 19)


def _recorded_loopback(directory: Path, config: ServeConfig, values, **kwargs):
    """Run one loopback round under a flight recorder; return (served, fleet)."""
    registry = MetricsRegistry()
    recorder = FlightRecorder(
        directory,
        config={"command": "serve-demo", **config.to_manifest()},
        seed=config.seed,
        metrics=registry,
        round_span="serve.round",
    )
    with instrumented(Tracer([recorder]), registry):
        served, fleet = run_loopback(config, values, **kwargs)
    recorder.finalize(estimate=served.estimate, metrics=registry.snapshot())
    return served, fleet


def lossless_leg(out_root: Path) -> Path:
    """Leg 1: served estimate bit-identical to the in-process query."""
    values = fleet_values(LOSSLESS_N, seed=3)
    cfg = ServeConfig(
        n_clients=LOSSLESS_N, seed=11, deadline_s=30.0, registration_timeout_s=30.0
    )
    record_dir = out_root / "lossless"
    served, fleet = _recorded_loopback(record_dir, cfg, values, fleet_seed=3)

    population = [ClientDevice(i, [float(v)]) for i, v in enumerate(values)]
    in_process = FederatedMeanQuery(
        FixedPointEncoder.for_integers(cfg.n_bits), mode="basic"
    ).run(population, rng=cfg.seed)
    if served.estimate.value != in_process.value:
        raise SystemExit(
            f"PARITY MISS: served {served.estimate.value!r} != "
            f"in-process {in_process.value!r}"
        )
    if served.wire_rejects or served.late_reports or fleet.uplinks_dropped:
        raise SystemExit("lossless round lost or rejected uplinks; it must not")
    artifact = load_run(record_dir)  # must be a loadable standard artifact
    print(
        f"leg 1 ok: {LOSSLESS_N} wire clients -> estimate "
        f"{served.estimate.value:.4f} == in-process FederatedMeanQuery "
        f"(artifact: {record_dir}, {artifact.manifest['events']['spans']} spans)"
    )
    return record_dir


def adversarial_leg(out_root: Path) -> Path:
    """Leg 2: lossy + corrupted clients; rejects accounted, twin matched."""
    values = fleet_values(ADVERSARIAL_N, seed=5)
    profile = EmulationProfile(loss_rate=0.25, latency_median_s=10.0)
    cfg = ServeConfig(
        n_clients=ADVERSARIAL_N,
        epsilon=2.0,
        seed=9,
        deadline_s=5.0,
        registration_timeout_s=30.0,
    )
    record_dir = out_root / "adversarial"
    served, fleet = _recorded_loopback(
        record_dir,
        cfg,
        values,
        profile=profile,
        fleet_seed=5,
        mutate=lambda cid, attempt, frame: b"\x00garbage" if cid in CORRUPTED else frame,
    )
    twin = in_process_estimate(
        values, cfg, profile=profile, fleet_seed=5, corrupted=CORRUPTED
    )
    if served.estimate.value != twin.value:
        raise SystemExit(
            f"PARITY MISS: served {served.estimate.value!r} != twin {twin.value!r}"
        )
    # Emulation loss applies after mutation, so the corrupted uplinks that
    # survived the network must ALL have been rejected at the server: every
    # sent uplink is either accepted (a survivor) or accounted as a reject.
    rejected = served.wire_rejects
    sent_corrupted = fleet.uplinks_sent - served.surviving_clients
    if rejected != sent_corrupted:
        raise SystemExit(
            f"REJECT MISS: {rejected} rejects for {sent_corrupted} bad uplinks"
        )
    events = (record_dir / EVENTS_FILENAME).read_text().splitlines()
    reject_spans = [
        span
        for span in (json.loads(line) for line in events if line.strip())
        if span.get("name") == "uplink.reject"
    ]
    if rejected and not reject_spans:
        raise SystemExit("no uplink.reject spans recorded for rejected uplinks")
    reasons = sorted({span["attributes"]["reason"] for span in reject_spans})
    print(
        f"leg 2 ok: {ADVERSARIAL_N} clients, {len(CORRUPTED)} adversarial, "
        f"loss {profile.loss_rate:.0%} -> estimate {served.estimate.value:.4f} == twin, "
        f"{rejected} uplinks rejected (reasons: {', '.join(reasons) or 'none'}), "
        f"{fleet.uplinks_dropped} dropped by emulation (artifact: {record_dir})"
    )
    return record_dir


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        type=Path,
        default=Path("out/serve_demo"),
        help="artifact root (default: out/serve_demo)",
    )
    args = parser.parse_args(argv)
    lossless_leg(args.out)
    adversarial_leg(args.out)
    print("serve demo: both legs matched their in-process twins")
    return 0


if __name__ == "__main__":
    sys.exit(main())
