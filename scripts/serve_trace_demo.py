"""Distributed-tracing smoke: one served round, one merged end-to-end timeline.

Usage::

    python scripts/serve_trace_demo.py                       # run, assert, narrate
    python scripts/serve_trace_demo.py --out out/serve_trace_demo

One deterministic loopback campaign under simulated clocks: a 24-client
fleet played through the full wire protocol (HELLO, ANNOUNCE with trace
context, REPORTS, RESULT, TELEMETRY) while a flight recorder captures the
merged span stream.  The round must

1. match its in-process :func:`in_process_estimate` twin bit-for-bit --
   telemetry is observability, never arithmetic;
2. ingest telemetry from *every* fleet client, with each remote span
   stamped with the server's deterministic round trace id
   (:func:`round_trace_id`), so client and server spans form one trace;
3. export as valid Chrome trace-event JSON (``trace.json`` next to the
   artifact) with the server phases on track 0 and one track per client.

Both clocks are simulated (``SimClock`` server-side and per-client), so the
artifact and the exported timeline are deterministic.  Any parity miss,
missing client, foreign trace id, or malformed export exits non-zero -- the
CI chaos job runs this next to the failure-injection campaigns and uploads
``trace.json`` for inspection in Perfetto.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.federated import (
    ServeConfig,
    fleet_values,
    in_process_estimate,
    round_trace_id,
    run_loopback,
)
from repro.observability import (
    FlightRecorder,
    MetricsRegistry,
    SimClock,
    Tracer,
    instrumented,
    load_run,
    write_chrome_trace,
)
from repro.observability.chrome_trace import SERVER_TRACK

N_CLIENTS = 24
SEED = 11
FLEET_SEED = 3
FLEET_SPANS = {"fleet.round", "fleet.encode", "fleet.uplink"}


def run_traced_leg(out_root: Path) -> Path:
    """Serve one recorded round with telemetry and verify the merged trace."""
    values = fleet_values(N_CLIENTS, seed=FLEET_SEED)
    cfg = ServeConfig(
        n_clients=N_CLIENTS, seed=SEED, deadline_s=30.0, registration_timeout_s=30.0
    )
    record_dir = out_root / "run"
    registry = MetricsRegistry()
    recorder = FlightRecorder(
        record_dir,
        config={"command": "serve-trace-demo", **cfg.to_manifest()},
        seed=cfg.seed,
        metrics=registry,
        round_span="serve.round",
    )
    sim = SimClock(start=1.0, step=0.001)
    with instrumented(Tracer([recorder], clock=sim, wall_clock=sim), registry):
        served, fleet = run_loopback(
            cfg,
            values,
            fleet_seed=FLEET_SEED,
            clock_factory=lambda: SimClock(start=1.0, step=0.001),
        )
    recorder.finalize(estimate=served.estimate, metrics=registry.snapshot())

    twin = in_process_estimate(values, cfg, fleet_seed=FLEET_SEED)
    if served.estimate.value != twin.value:
        raise SystemExit(
            f"PARITY MISS: served {served.estimate.value!r} != twin {twin.value!r}"
        )
    if served.telemetry_clients != N_CLIENTS or fleet.telemetry_sent != N_CLIENTS:
        raise SystemExit(
            f"TELEMETRY MISS: {served.telemetry_clients} ingested / "
            f"{fleet.telemetry_sent} sent for {N_CLIENTS} clients"
        )
    print(
        f"leg 1 ok: {N_CLIENTS} wire clients -> estimate "
        f"{served.estimate.value:.4f} == in-process twin, "
        f"{served.telemetry_clients} telemetry uplinks, "
        f"{served.remote_spans} remote spans ingested"
    )
    return record_dir


def verify_merged_trace(record_dir: Path) -> list:
    """Every client's spans must sit under the server's round trace id."""
    artifact = load_run(record_dir)
    spans = artifact.spans()
    expected_trace = round_trace_id(SEED)
    if artifact.manifest["config"].get("trace_id") != expected_trace:
        raise SystemExit("manifest trace_id does not match round_trace_id(seed)")
    remote = [span for span in spans if span.attributes.get("remote")]
    trace_ids = {span.attributes.get("trace_id") for span in remote}
    if trace_ids != {expected_trace}:
        raise SystemExit(
            f"TRACE MISS: remote spans carry trace ids {sorted(trace_ids)}, "
            f"expected only {expected_trace}"
        )
    clients = {int(span.attributes["client"]) for span in remote}
    if clients != set(range(N_CLIENTS)):
        raise SystemExit(
            f"TRACE MISS: telemetry from clients {sorted(clients)}, "
            f"expected all of 0..{N_CLIENTS - 1}"
        )
    names = {span.name for span in remote}
    if not FLEET_SPANS <= names:
        raise SystemExit(f"TRACE MISS: remote span names {sorted(names)}")
    round_ids = {span.span_id for span in spans if span.name == "serve.round"}
    orphans = [
        span
        for span in remote
        if span.name == "fleet.round" and span.parent_id not in round_ids
    ]
    if orphans:
        raise SystemExit(f"{len(orphans)} fleet.round spans not parented to a round")
    if artifact.manifest["events"]["remote_spans"] != len(remote):
        raise SystemExit("manifest remote_spans count disagrees with event log")
    print(
        f"leg 2 ok: {len(remote)} remote spans from {len(clients)} clients all "
        f"under trace {expected_trace}, every fleet.round parented to serve.round"
    )
    return spans


def export_timeline(record_dir: Path, spans) -> Path:
    """Write the Chrome trace next to the artifact and validate its shape."""
    trace_path = record_dir.parent / "trace.json"
    write_chrome_trace(trace_path, spans, label="serve-trace-demo")
    document = json.loads(trace_path.read_text())  # must be valid JSON on disk
    events = document["traceEvents"]
    if document["otherData"]["clients"] != N_CLIENTS:
        raise SystemExit(
            f"EXPORT MISS: {document['otherData']['clients']} client tracks "
            f"for {N_CLIENTS} clients"
        )
    tracks = {
        event["args"]["name"]
        for event in events
        if event["ph"] == "M" and event["name"] == "thread_name"
    }
    if "server" not in tracks or len(tracks) != N_CLIENTS + 1:
        raise SystemExit(f"EXPORT MISS: thread tracks {sorted(tracks)}")
    bad = [
        event
        for event in events
        if event["ph"] == "X" and (event["ts"] < 0.0 or event["dur"] < 1.0)
    ]
    if bad:
        raise SystemExit(f"EXPORT MISS: {len(bad)} events with bad ts/dur")
    server_events = sum(
        1 for e in events if e["ph"] == "X" and e["tid"] == SERVER_TRACK
    )
    print(
        f"leg 3 ok: {trace_path} holds {len(events)} trace events "
        f"({server_events} server-track) across {N_CLIENTS + 1} tracks"
    )
    return trace_path


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        type=Path,
        default=Path("out/serve_trace_demo"),
        help="artifact root (default: out/serve_trace_demo)",
    )
    args = parser.parse_args(argv)
    record_dir = run_traced_leg(args.out)
    spans = verify_merged_trace(record_dir)
    export_timeline(record_dir, spans)
    print("serve trace demo: merged end-to-end timeline verified")
    return 0


if __name__ == "__main__":
    sys.exit(main())
