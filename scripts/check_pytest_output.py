"""Fail if a captured `pytest -q` run printed anything beyond progress output.

A clean quiet run emits only progress lines (dots/result letters with an
optional percentage), the final summary line, and blanks.  Anything else --
a stray `print()` from a README quickstart, argparse usage text, a series
table -- means output capture regressed (the global `-s` crept back into
`addopts`, or a test stopped consuming its output with `capsys`).

Usage::

    pytest tests/ -q -p no:warnings | tee out.txt
    python scripts/check_pytest_output.py out.txt
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: Lines a clean `pytest -q -p no:warnings` run is allowed to print.
ALLOWED = (
    re.compile(r"^[.sxXEFP]*\s*(\[\s*\d+%\])?$"),          # progress dots
    re.compile(r"^\d+ (passed|failed|error|skipped|xfailed|xpassed|warning)"),
    re.compile(r"^=+ .* =+$"),                               # section banners
    re.compile(r"^bringing up nodes\.\.\.$"),                # xdist preamble
)


def check(text: str) -> list[str]:
    """Return the offending lines (empty list = clean)."""
    return [
        line
        for line in text.splitlines()
        if line.strip() and not any(pattern.match(line) for pattern in ALLOWED)
    ]


def main(argv: list[str]) -> int:
    if len(argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    offending = check(Path(argv[1]).read_text())
    if offending:
        print(f"stray pytest output ({len(offending)} line(s)):", file=sys.stderr)
        for line in offending[:20]:
            print(f"  {line!r}", file=sys.stderr)
        return 1
    print("pytest output clean: progress and summary only")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
