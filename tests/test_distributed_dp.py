"""Distributed DP histogram mechanisms."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.privacy import BernoulliNoiseAggregator, SampleAndThreshold


class TestBernoulliNoiseAggregator:
    def test_noise_volume_scales(self):
        low_eps = BernoulliNoiseAggregator(epsilon=0.5, delta=1e-6)
        high_eps = BernoulliNoiseAggregator(epsilon=2.0, delta=1e-6)
        assert low_eps.noise_bits_per_index > high_eps.noise_bits_per_index

    def test_noise_volume_grows_with_smaller_delta(self):
        loose = BernoulliNoiseAggregator(epsilon=1.0, delta=1e-3)
        tight = BernoulliNoiseAggregator(epsilon=1.0, delta=1e-9)
        assert tight.noise_bits_per_index > loose.noise_bits_per_index

    def test_unbiased(self, rng):
        agg = BernoulliNoiseAggregator(epsilon=1.0, delta=1e-6)
        counts = np.full(4, 100_000.0)
        sums = counts * np.array([0.1, 0.4, 0.7, 0.0])
        estimates = np.array(
            [agg.privatize_bit_means(sums, counts, rng) for _ in range(300)]
        )
        np.testing.assert_allclose(estimates.mean(axis=0), [0.1, 0.4, 0.7, 0.0], atol=0.005)

    def test_unsampled_bits_stay_zero(self, rng):
        agg = BernoulliNoiseAggregator(epsilon=1.0, delta=1e-6)
        means = agg.privatize_bit_means(np.zeros(3), np.zeros(3), rng)
        assert means.tolist() == [0.0, 0.0, 0.0]

    def test_noise_std_formula(self, rng):
        agg = BernoulliNoiseAggregator(epsilon=1.0, delta=1e-6)
        count = 10_000.0
        sums = np.array([5_000.0])
        draws = [
            float(agg.privatize_bit_means(sums, np.array([count]), rng)[0])
            for _ in range(500)
        ]
        assert np.std(draws) == pytest.approx(agg.expected_mean_noise_std(count), rel=0.2)

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            BernoulliNoiseAggregator(epsilon=0.0, delta=1e-6)
        with pytest.raises(ConfigurationError):
            BernoulliNoiseAggregator(epsilon=1.0, delta=0.0)
        with pytest.raises(ConfigurationError):
            BernoulliNoiseAggregator(epsilon=1.0, delta=1e-6, noise_constant=0.0)

    def test_shape_mismatch_raises(self, rng):
        agg = BernoulliNoiseAggregator(epsilon=1.0, delta=1e-6)
        with pytest.raises(ConfigurationError):
            agg.privatize_bit_means(np.zeros(2), np.zeros(3), rng)


class TestSampleAndThreshold:
    def test_parameters(self):
        mech = SampleAndThreshold(epsilon=1.0, delta=1e-6)
        assert mech.sample_rate == pytest.approx(1 - np.exp(-1.0))
        assert mech.threshold == 14

    def test_higher_epsilon_keeps_more(self):
        assert (
            SampleAndThreshold(2.0, 1e-6).sample_rate
            > SampleAndThreshold(0.5, 1e-6).sample_rate
        )

    def test_large_counts_unbiased(self, rng):
        mech = SampleAndThreshold(epsilon=1.0, delta=1e-6)
        counts = np.full(3, 50_000.0)
        sums = counts * np.array([0.2, 0.5, 0.9])
        estimates = np.array(
            [mech.privatize_bit_means(sums, counts, rng) for _ in range(200)]
        )
        np.testing.assert_allclose(estimates.mean(axis=0), [0.2, 0.5, 0.9], atol=0.01)

    def test_small_counts_suppressed(self, rng):
        mech = SampleAndThreshold(epsilon=1.0, delta=1e-6)
        # 5 one-reports can never clear a threshold of 14.
        means = mech.privatize_bit_means(np.array([5.0]), np.array([1000.0]), rng)
        assert means[0] == 0.0

    def test_requires_raw_counts(self, rng):
        mech = SampleAndThreshold(epsilon=1.0, delta=1e-6)
        with pytest.raises(ConfigurationError):
            mech.privatize_bit_means(np.array([-1.0]), np.array([10.0]), rng)
        with pytest.raises(ConfigurationError):
            mech.privatize_bit_means(np.array([20.0]), np.array([10.0]), rng)

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            SampleAndThreshold(epsilon=-1.0, delta=1e-6)
        with pytest.raises(ConfigurationError):
            SampleAndThreshold(epsilon=1.0, delta=1.0)


class TestDistributedVsLocalError:
    def test_distributed_beats_local_rr_at_scale(self, rng):
        """Section 3.3: distributed DP has a better n-dependence than LDP."""
        from repro.experiments.methods import distributed_mean_estimate, mean_methods
        from repro.data.census import sample_ages

        n, n_bits, eps = 50_000, 8, 0.5
        values = sample_ages(n, rng)
        truth = values.mean()

        local = mean_methods(n_bits, epsilon=eps, include=["weighted a=0.5"])["weighted a=0.5"]
        local_errs, dist_errs = [], []
        agg = BernoulliNoiseAggregator(epsilon=eps, delta=1e-6)
        for _ in range(20):
            local_errs.append(abs(local(values, rng) - truth))
            dist_errs.append(
                abs(distributed_mean_estimate(values, n_bits, agg, rng) - truth)
            )
        assert np.mean(dist_errs) < np.mean(local_errs)
