"""Fixed-point encoding and bit decomposition."""

import numpy as np
import pytest

from repro.core.encoding import (
    FixedPointEncoder,
    bit_matrix,
    bit_means,
    extract_bit,
    mean_from_bit_means,
    required_bits,
)
from repro.exceptions import ConfigurationError, EncodingError


class TestRequiredBits:
    @pytest.mark.parametrize(
        "value,expected",
        [(0, 1), (1, 1), (2, 2), (3, 2), (4, 3), (255, 8), (256, 9), (1023, 10), (1024, 11)],
    )
    def test_values(self, value, expected):
        assert required_bits(value) == expected

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            required_bits(-1)


class TestExtractBit:
    def test_known_pattern(self):
        # 0b1010 = 10
        enc = np.array([10], dtype=np.uint64)
        assert extract_bit(enc, 0)[0] == 0
        assert extract_bit(enc, 1)[0] == 1
        assert extract_bit(enc, 2)[0] == 0
        assert extract_bit(enc, 3)[0] == 1

    def test_vectorized(self):
        enc = np.arange(8, dtype=np.uint64)
        assert extract_bit(enc, 0).tolist() == [0, 1, 0, 1, 0, 1, 0, 1]

    def test_out_of_range_index_raises(self):
        with pytest.raises(ValueError):
            extract_bit(np.array([1], dtype=np.uint64), -1)
        with pytest.raises(ValueError):
            extract_bit(np.array([1], dtype=np.uint64), 63)


class TestBitMatrix:
    def test_reconstructs_values(self):
        values = np.array([0, 1, 5, 255, 170], dtype=np.uint64)
        matrix = bit_matrix(values, 8)
        weights = np.exp2(np.arange(8))
        np.testing.assert_array_equal(matrix @ weights, values.astype(float))

    def test_shape(self):
        assert bit_matrix(np.arange(10, dtype=np.uint64), 5).shape == (10, 5)

    def test_entries_are_binary(self):
        matrix = bit_matrix(np.arange(100, dtype=np.uint64), 7)
        assert set(np.unique(matrix)) <= {0, 1}

    def test_invalid_bits_raise(self):
        with pytest.raises(ValueError):
            bit_matrix(np.array([1], dtype=np.uint64), 0)
        with pytest.raises(ValueError):
            bit_matrix(np.array([1], dtype=np.uint64), 64)


class TestBitMeans:
    def test_linear_decomposition_identity(self):
        """mean(x) == sum_j 2^j * bit_mean_j -- the identity behind Eq. 1."""
        rng = np.random.default_rng(0)
        values = rng.integers(0, 1024, size=1000).astype(np.uint64)
        means = bit_means(values, 10)
        assert mean_from_bit_means(means) == pytest.approx(values.mean())

    def test_constant_input(self):
        means = bit_means(np.full(10, 5, dtype=np.uint64), 4)
        np.testing.assert_array_equal(means, [1.0, 0.0, 1.0, 0.0])

    def test_empty_raises(self):
        with pytest.raises(EncodingError):
            bit_means(np.array([], dtype=np.uint64), 4)


class TestFixedPointEncoderConstruction:
    def test_basic_roundtrip(self):
        enc = FixedPointEncoder(n_bits=8)
        np.testing.assert_array_equal(enc.decode(enc.encode([0.0, 42.0, 255.0])), [0.0, 42.0, 255.0])

    def test_invalid_bits(self):
        with pytest.raises(ConfigurationError):
            FixedPointEncoder(n_bits=0)
        with pytest.raises(ConfigurationError):
            FixedPointEncoder(n_bits=64)

    def test_invalid_scale(self):
        with pytest.raises(ConfigurationError):
            FixedPointEncoder(n_bits=8, scale=0.0)
        with pytest.raises(ConfigurationError):
            FixedPointEncoder(n_bits=8, scale=-1.0)
        with pytest.raises(ConfigurationError):
            FixedPointEncoder(n_bits=8, scale=float("nan"))

    def test_invalid_offset(self):
        with pytest.raises(ConfigurationError):
            FixedPointEncoder(n_bits=8, offset=float("inf"))

    def test_for_range_endpoints(self):
        enc = FixedPointEncoder.for_range(-10.0, 10.0, n_bits=10)
        assert enc.encode([-10.0])[0] == 0
        assert enc.encode([10.0])[0] == 1023
        assert enc.decode_scalar(0) == pytest.approx(-10.0)
        assert enc.decode_scalar(1023) == pytest.approx(10.0)

    def test_for_range_invalid(self):
        with pytest.raises(ConfigurationError):
            FixedPointEncoder.for_range(5.0, 5.0, n_bits=8)
        with pytest.raises(ConfigurationError):
            FixedPointEncoder.for_range(10.0, 0.0, n_bits=8)

    def test_for_integers(self):
        enc = FixedPointEncoder.for_integers(12)
        assert enc.scale == 1.0 and enc.offset == 0.0
        assert enc.max_encoded == 4095

    def test_widened_keeps_grid(self):
        enc = FixedPointEncoder(n_bits=8, scale=0.5, offset=3.0)
        wide = enc.widened(16)
        assert wide.n_bits == 16
        assert wide.scale == enc.scale and wide.offset == enc.offset


class TestFixedPointEncoderClipping:
    def test_clipping_winsorizes(self):
        enc = FixedPointEncoder(n_bits=8, clip=True)
        assert enc.encode([1e9])[0] == 255
        assert enc.encode([-5.0])[0] == 0

    def test_strict_mode_raises(self):
        enc = FixedPointEncoder(n_bits=8, clip=False)
        with pytest.raises(EncodingError):
            enc.encode([300.0])
        with pytest.raises(EncodingError):
            enc.encode([-1.0])

    def test_non_finite_raises(self):
        enc = FixedPointEncoder(n_bits=8)
        with pytest.raises(EncodingError):
            enc.encode([float("nan")])
        with pytest.raises(EncodingError):
            enc.encode([float("inf")])


class TestFixedPointEncoderBits:
    def test_bit_index_guard(self, encoder8):
        encoded = encoder8.encode([7.0])
        with pytest.raises(ValueError):
            encoder8.bit(encoded, 8)

    def test_true_bit_means_match_manual(self, encoder8):
        values = np.array([0.0, 1.0, 2.0, 3.0])
        means = encoder8.true_bit_means(values)
        assert means[0] == pytest.approx(0.5)   # values 1, 3
        assert means[1] == pytest.approx(0.5)   # values 2, 3
        assert means[2:].sum() == 0.0

    def test_mean_from_bit_means_roundtrip(self, encoder10, rng):
        values = rng.integers(0, 1024, size=500).astype(float)
        means = encoder10.true_bit_means(values)
        assert encoder10.mean_from_bit_means(means) == pytest.approx(values.mean())

    def test_mean_from_bit_means_wrong_length(self, encoder8):
        with pytest.raises(ValueError):
            encoder8.mean_from_bit_means(np.zeros(4))

    def test_scaled_encoder_mean_roundtrip(self):
        enc = FixedPointEncoder.for_range(100.0, 200.0, n_bits=12)
        rng = np.random.default_rng(1)
        values = rng.uniform(100.0, 200.0, size=2000)
        recovered = enc.mean_from_bit_means(enc.true_bit_means(values))
        # Quantization error bounded by half a grid step.
        assert abs(recovered - values.mean()) <= enc.quantization_error_bound()


class TestFixedPointEncoderIntrospection:
    def test_representable_bounds(self):
        enc = FixedPointEncoder.for_range(-4.0, 4.0, n_bits=8)
        assert enc.representable_min == pytest.approx(-4.0)
        assert enc.representable_max == pytest.approx(4.0)

    def test_quantization_error_bound(self):
        enc = FixedPointEncoder(n_bits=8, scale=0.25)
        assert enc.quantization_error_bound() == 0.125

    def test_encoder_is_hashable_value_object(self):
        a = FixedPointEncoder(n_bits=8)
        b = FixedPointEncoder(n_bits=8)
        assert a == b
