"""Randomized response: the epsilon-LDP bit perturbation."""

import math

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.privacy import RandomizedResponse


class TestConstruction:
    def test_epsilon_derives_p(self):
        rr = RandomizedResponse(epsilon=1.0)
        assert rr.p == pytest.approx(math.e / (1 + math.e))

    def test_p_derives_epsilon(self):
        rr = RandomizedResponse(p=0.75)
        assert rr.epsilon == pytest.approx(math.log(3))

    def test_roundtrip(self):
        rr = RandomizedResponse(epsilon=2.5)
        rr2 = RandomizedResponse(p=rr.p)
        assert rr2.epsilon == pytest.approx(2.5)

    def test_exactly_one_parameter_required(self):
        with pytest.raises(ConfigurationError):
            RandomizedResponse()
        with pytest.raises(ConfigurationError):
            RandomizedResponse(epsilon=1.0, p=0.7)

    def test_invalid_epsilon(self):
        for eps in (0.0, -1.0, float("inf"), float("nan")):
            with pytest.raises(ConfigurationError):
                RandomizedResponse(epsilon=eps)

    def test_invalid_p(self):
        for p in (0.5, 1.0, 0.3, 1.5):
            with pytest.raises(ConfigurationError):
                RandomizedResponse(p=p)


class TestPerturbation:
    def test_output_is_binary(self, rng):
        rr = RandomizedResponse(epsilon=1.0)
        bits = rng.integers(0, 2, 1000).astype(np.uint8)
        out = rr.perturb_bits(bits, rng)
        assert set(np.unique(out)) <= {0, 1}
        assert out.shape == bits.shape

    def test_truth_probability(self, rng):
        rr = RandomizedResponse(epsilon=2.0)
        bits = np.ones(200_000, dtype=np.uint8)
        out = rr.perturb_bits(bits, rng)
        assert out.mean() == pytest.approx(rr.p, abs=0.005)

    def test_flip_probability_symmetric(self, rng):
        rr = RandomizedResponse(epsilon=2.0)
        zeros = np.zeros(200_000, dtype=np.uint8)
        out = rr.perturb_bits(zeros, rng)
        assert out.mean() == pytest.approx(1 - rr.p, abs=0.005)

    def test_non_binary_input_raises(self, rng):
        rr = RandomizedResponse(epsilon=1.0)
        with pytest.raises(ConfigurationError):
            rr.perturb_bits(np.array([2], dtype=np.uint8), rng)

    def test_ldp_guarantee_ratio(self, rng):
        """P(report=1 | true=1) / P(report=1 | true=0) == e^eps exactly."""
        rr = RandomizedResponse(epsilon=1.5)
        assert rr.p / (1 - rr.p) == pytest.approx(math.exp(1.5))


class TestUnbiasing:
    def test_identity_points(self):
        rr = RandomizedResponse(epsilon=1.0)
        # Reported mean p corresponds to true mean 1; (1-p) to true mean 0.
        assert rr.unbias_bit_means(np.array([rr.p]))[0] == pytest.approx(1.0)
        assert rr.unbias_bit_means(np.array([1 - rr.p]))[0] == pytest.approx(0.0)

    def test_midpoint_maps_to_half(self):
        rr = RandomizedResponse(epsilon=3.0)
        assert rr.unbias_bit_means(np.array([0.5]))[0] == pytest.approx(0.5)

    def test_can_leave_unit_interval(self):
        rr = RandomizedResponse(epsilon=1.0)
        assert rr.unbias_bit_means(np.array([0.0]))[0] < 0.0
        assert rr.unbias_bit_means(np.array([1.0]))[0] > 1.0

    def test_end_to_end_unbiased(self, rng):
        rr = RandomizedResponse(epsilon=1.0)
        true_mean = 0.3
        bits = (rng.random(500_000) < true_mean).astype(np.uint8)
        reported = rr.perturb_bits(bits, rng)
        est = rr.unbias_bit_means(np.array([reported.mean()]))[0]
        assert est == pytest.approx(true_mean, abs=0.01)


class TestVarianceFormulas:
    def test_per_report_variance_formula(self):
        rr = RandomizedResponse(epsilon=2.0)
        e = math.exp(2.0)
        assert rr.per_report_variance() == pytest.approx(e / (e - 1) ** 2)

    def test_variance_decreases_with_epsilon(self):
        assert (
            RandomizedResponse(epsilon=3.0).per_report_variance()
            < RandomizedResponse(epsilon=0.5).per_report_variance()
        )

    def test_estimator_variance_bound(self):
        rr = RandomizedResponse(epsilon=1.0)
        assert rr.estimator_variance_bound(100) == pytest.approx(
            rr.per_report_variance() / 100
        )
        assert rr.estimator_variance_bound(0) == float("inf")

    def test_bound_holds_in_simulation(self, rng):
        rr = RandomizedResponse(epsilon=1.0)
        count = 1_000
        bits = (rng.random(count) < 0.5).astype(np.uint8)
        estimates = [
            float(rr.unbias_bit_means(np.array([rr.perturb_bits(bits, rng).mean()]))[0])
            for _ in range(400)
        ]
        assert np.var(estimates) <= rr.estimator_variance_bound(count) * 1.2

    def test_flip_probability(self):
        rr = RandomizedResponse(epsilon=1.0)
        assert rr.flip_probability() == pytest.approx(1 - rr.p)
