"""Bit squashing and the DP-noise threshold helpers."""

import numpy as np
import pytest

from repro.core.squashing import (
    per_bit_squash_thresholds,
    rr_noise_std,
    squash_bit_means,
    threshold_from_noise_multiple,
)


class TestSquashBitMeans:
    def test_zeroes_below_threshold(self):
        means = np.array([0.5, 0.04, 0.2, -0.1])
        squashed, idx = squash_bit_means(means, threshold=0.05)
        # -0.1 is loud in magnitude: clipped to 0 by clip_to_unit, but not
        # *squashed* (only index 1's 0.04 falls below the 0.05 threshold).
        assert squashed.tolist() == [0.5, 0.0, 0.2, 0.0]
        assert idx.tolist() == [1]

    def test_threshold_zero_disables_squashing(self):
        means = np.array([0.5, 0.01])
        squashed, idx = squash_bit_means(means, threshold=0.0)
        assert squashed.tolist() == [0.5, 0.01]
        assert idx.size == 0

    def test_clipping_above_one(self):
        means = np.array([1.3, 0.5])
        squashed, _ = squash_bit_means(means, threshold=0.0)
        assert squashed.tolist() == [1.0, 0.5]

    def test_clipping_can_be_disabled(self):
        means = np.array([1.3, -0.2])
        squashed, _ = squash_bit_means(means, threshold=0.0, clip_to_unit=False)
        assert squashed.tolist() == [1.3, -0.2]

    def test_negative_means_below_threshold_squashed(self):
        # DP subtrahend exceeding the true mean gives negative estimates
        # (Figure 4b); they must be squashed, not clipped into signal.
        squashed, idx = squash_bit_means(np.array([-0.02]), threshold=0.05)
        assert squashed[0] == 0.0 and idx.tolist() == [0]

    def test_large_negative_mean_not_squashed(self):
        # The contract is "magnitude falls below threshold": a large
        # *negative* noisy mean is above threshold in magnitude, so it must
        # survive squashing (clipping, if enabled, handles it separately).
        squashed, idx = squash_bit_means(
            np.array([-0.8, 0.8]), threshold=0.05, clip_to_unit=False
        )
        assert squashed.tolist() == [-0.8, 0.8]
        assert idx.size == 0

    def test_large_negative_mean_clipped_but_not_reported_squashed(self):
        squashed, idx = squash_bit_means(np.array([-0.8]), threshold=0.05)
        assert squashed[0] == 0.0  # clipped into [0, 1]
        assert idx.size == 0  # ... but not *squashed*: magnitude was loud

    def test_mixed_sign_magnitude_threshold(self):
        means = np.array([-0.02, -0.5, 0.02, 0.5])
        squashed, idx = squash_bit_means(means, threshold=0.05, clip_to_unit=False)
        assert squashed.tolist() == [0.0, -0.5, 0.0, 0.5]
        assert idx.tolist() == [0, 2]

    def test_input_not_mutated(self):
        means = np.array([0.5, 0.01])
        squash_bit_means(means, threshold=0.05)
        assert means.tolist() == [0.5, 0.01]

    def test_vector_threshold(self):
        means = np.array([0.1, 0.1, 0.1])
        squashed, idx = squash_bit_means(means, np.array([0.05, 0.2, 0.0]))
        assert squashed.tolist() == [0.1, 0.0, 0.1]
        assert idx.tolist() == [1]


class TestPerBitThresholds:
    def test_sparser_bits_get_larger_thresholds(self):
        thresholds = per_bit_squash_thresholds(2.0, 2.0, np.array([10, 1000]))
        assert thresholds[0] > thresholds[1]

    def test_matches_noise_std_scaling(self):
        thresholds = per_bit_squash_thresholds(3.0, 1.5, np.array([400]))
        assert thresholds[0] == pytest.approx(3.0 * rr_noise_std(1.5, 400))

    def test_zero_count_bits_get_zero_threshold(self):
        thresholds = per_bit_squash_thresholds(2.0, 2.0, np.array([0, 100]))
        assert thresholds[0] == 0.0 and thresholds[1] > 0.0

    def test_zero_multiple_disables(self):
        thresholds = per_bit_squash_thresholds(0.0, 2.0, np.array([10, 100]))
        assert thresholds.tolist() == [0.0, 0.0]

    def test_negative_multiple_raises(self):
        with pytest.raises(ValueError):
            per_bit_squash_thresholds(-1.0, 2.0, np.array([10]))

    def test_sparse_noise_bit_caught_where_global_threshold_fails(self):
        """The failure mode that motivated per-bit thresholds: a noise bit
        with few reports shows a mean above the population-wide threshold
        but below its own count-aware one."""
        counts = np.array([10_000, 10_000, 50])
        means = np.array([0.5, 0.4, 0.15])    # bit 2 is noise at c=50
        global_threshold = threshold_from_noise_multiple(2.0, 2.0, counts)
        assert means[2] > global_threshold    # would survive
        per_bit = per_bit_squash_thresholds(2.0, 2.0, counts)
        _, idx = squash_bit_means(means, per_bit)
        assert idx.tolist() == [2]            # caught


class TestRrNoiseStd:
    def test_decreases_with_count(self):
        assert rr_noise_std(1.0, 1000) < rr_noise_std(1.0, 100)

    def test_decreases_with_epsilon(self):
        assert rr_noise_std(3.0, 100) < rr_noise_std(0.5, 100)

    def test_scaling_in_count_is_inverse_sqrt(self):
        assert rr_noise_std(1.0, 100) / rr_noise_std(1.0, 400) == pytest.approx(2.0)

    def test_zero_count_is_infinite(self):
        assert rr_noise_std(1.0, 0) == float("inf")

    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            rr_noise_std(0.0, 100)

    def test_matches_simulation(self):
        """The worst-case bound should upper-bound observed estimator noise."""
        from repro.privacy import RandomizedResponse

        rng = np.random.default_rng(0)
        rr = RandomizedResponse(epsilon=1.0)
        count = 2_000
        bits = np.zeros(count, dtype=np.uint8)
        estimates = [
            float(rr.unbias_bit_means(np.array([rr.perturb_bits(bits, rng).mean()]))[0])
            for _ in range(300)
        ]
        assert np.std(estimates) <= rr_noise_std(1.0, count) * 1.15


class TestThresholdFromNoiseMultiple:
    def test_zero_multiple_gives_zero(self):
        assert threshold_from_noise_multiple(0.0, 1.0, np.array([100, 100])) == 0.0

    def test_scales_linearly_in_multiple(self):
        counts = np.array([100, 400])
        t1 = threshold_from_noise_multiple(1.0, 1.0, counts)
        t3 = threshold_from_noise_multiple(3.0, 1.0, counts)
        assert t3 == pytest.approx(3 * t1)

    def test_uses_median_count(self):
        counts = np.array([1, 10_000, 10_000])
        t = threshold_from_noise_multiple(1.0, 1.0, counts)
        assert t == pytest.approx(rr_noise_std(1.0, 10_000))

    def test_ignores_zero_counts(self):
        counts = np.array([0, 0, 400])
        t = threshold_from_noise_multiple(1.0, 1.0, counts)
        assert t == pytest.approx(rr_noise_std(1.0, 400))

    def test_all_zero_counts_give_zero_threshold(self):
        assert threshold_from_noise_multiple(1.0, 1.0, np.zeros(3)) == 0.0

    def test_negative_multiple_raises(self):
        with pytest.raises(ValueError):
            threshold_from_noise_multiple(-1.0, 1.0, np.array([10]))
