"""Columnar client plane: ClientBatch, chunked kernels, and bit-identity twins.

The contract under test (see ``src/repro/core/client_plane.py``): every
columnar kernel consumes randomness exactly as its object-path twin, for
*any* chunk size -- including chunk = 1 and chunk > n -- so object and
columnar populations produce bit-identical estimates for the same seed.
"""

import numpy as np
import pytest

from repro.baselines import (
    DuchiMechanism,
    HybridMechanism,
    LaplaceMean,
    PiecewiseMechanism,
    RandomizedRounding,
    SubtractiveDithering,
)
from repro.core import (
    AdaptiveBitPushing,
    BasicBitPushing,
    ClientBatch,
    FixedPointEncoder,
    VectorMeanEstimator,
    accumulate_bit_reports,
    batch_chunk_size,
    collect_client_reports,
    elicit_values,
)
from repro.core.client_plane import DEFAULT_CHUNK_CLIENTS
from repro.core.protocol import collect_bit_reports
from repro.exceptions import ConfigurationError, ProtocolError
from repro.federated import (
    ClientDevice,
    CohortSelector,
    DropoutModel,
    FederatedMeanQuery,
    NetworkModel,
    attribute_equals,
)
from repro.federated.multivalue import elicit_batch, ground_truth_mean
from repro.privacy import RandomizedResponse

CHUNKS = (1, 3, 7, 50, 200, 100_000)  # includes chunk = 1 and chunk > n


def make_devices(n=120, seed=5, multi=True):
    rng = np.random.default_rng(seed)
    devices = []
    for i in range(n):
        k = int(rng.integers(1, 4)) if multi else 1
        values = np.clip(rng.normal(600.0, 100.0, k), 0.0, None)
        devices.append(ClientDevice(i, values, {"geo": "us" if i % 2 else "eu"}))
    return devices


@pytest.fixture(scope="module")
def devices():
    return make_devices()


@pytest.fixture(scope="module")
def batch(devices):
    return ClientBatch.from_devices(devices)


# ----------------------------------------------------------------------
# Chunk-size resolution
# ----------------------------------------------------------------------


class TestBatchChunkSize:
    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_BATCH_CHUNK", raising=False)
        assert batch_chunk_size() == DEFAULT_CHUNK_CLIENTS

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH_CHUNK", "1234")
        assert batch_chunk_size() == 1234
        monkeypatch.setenv("REPRO_BATCH_CHUNK", "  ")
        assert batch_chunk_size() == DEFAULT_CHUNK_CLIENTS

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH_CHUNK", "1234")
        assert batch_chunk_size(7) == 7

    def test_invalid(self, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH_CHUNK", "many")
        with pytest.raises(ConfigurationError, match="REPRO_BATCH_CHUNK"):
            batch_chunk_size()
        monkeypatch.delenv("REPRO_BATCH_CHUNK")
        with pytest.raises(ConfigurationError, match=">= 1"):
            batch_chunk_size(0)


# ----------------------------------------------------------------------
# ClientBatch structure
# ----------------------------------------------------------------------


class TestClientBatch:
    def test_from_devices_round_trip(self, devices, batch):
        assert len(batch) == len(devices)
        assert batch.n_clients == len(devices)
        for i, device in enumerate(devices):
            np.testing.assert_array_equal(batch.values_for(i), device.values)
            assert batch.client_ids[i] == device.client_id
            assert batch.attributes["geo"][i] == device.attributes["geo"]

    def test_from_values_uniform(self):
        b = ClientBatch.from_values([3.0, 5.0, 7.0])
        assert b.uniform
        assert b.sizes.tolist() == [1, 1, 1]
        np.testing.assert_array_equal(b.client_ids, [0, 1, 2])

    def test_local_means(self, devices, batch):
        expected = np.array([d.values.mean() for d in devices])
        np.testing.assert_allclose(batch.local_means(), expected, rtol=1e-15)

    def test_take_ragged(self, devices, batch):
        idx = np.array([17, 3, 3, 119, 0])
        sub = batch.take(idx)
        assert len(sub) == idx.size
        for pos, i in enumerate(idx):
            np.testing.assert_array_equal(sub.values_for(pos), devices[i].values)
            assert sub.client_ids[pos] == devices[i].client_id
            assert sub.attributes["geo"][pos] == devices[i].attributes["geo"]

    def test_take_uniform_fast_path(self):
        b = ClientBatch.from_values(np.arange(10.0), attributes={"k": np.arange(10)})
        sub = b.take([9, 2])
        assert sub.uniform
        assert sub.values.tolist() == [9.0, 2.0]
        assert sub.attributes["k"].tolist() == [9, 2]

    def test_take_out_of_range(self, batch):
        with pytest.raises(ConfigurationError, match="outside"):
            batch.take([0, len(batch)])

    def test_validation(self):
        with pytest.raises(ConfigurationError, match="at least one local value"):
            ClientBatch(np.array([1.0]), np.array([0, 0, 1]))
        with pytest.raises(ConfigurationError, match="span"):
            ClientBatch(np.array([1.0, 2.0]), np.array([0, 1]))
        with pytest.raises(ConfigurationError, match="client_ids"):
            ClientBatch(np.array([1.0]), np.array([0, 1]), client_ids=np.array([1, 2]))
        with pytest.raises(ConfigurationError, match="attribute column"):
            ClientBatch(
                np.array([1.0]), np.array([0, 1]), attributes={"geo": np.array([1, 2])}
            )
        with pytest.raises(ConfigurationError, match="no local values"):
            ClientBatch.from_devices([ClientDevice(0, np.empty(0))])


# ----------------------------------------------------------------------
# Elicitation twins
# ----------------------------------------------------------------------


class TestElicitValues:
    @pytest.mark.parametrize("strategy", ["sample", "max", "latest"])
    @pytest.mark.parametrize("chunk", CHUNKS)
    def test_exact_twin(self, devices, batch, strategy, chunk):
        reference = elicit_batch(
            [d.values for d in devices], strategy, np.random.default_rng(11)
        )
        columnar = elicit_values(batch, strategy, np.random.default_rng(11), chunk=chunk)
        np.testing.assert_array_equal(columnar, reference)

    def test_mean_twin_allclose(self, devices, batch):
        # "mean" is the documented ulp exception: reduceat (sequential) vs
        # ndarray.mean (pairwise) summation order.
        reference = elicit_batch([d.values for d in devices], "mean")
        np.testing.assert_allclose(elicit_values(batch, "mean"), reference, rtol=1e-15)

    def test_unknown_strategy(self, batch):
        with pytest.raises(ConfigurationError, match="unknown elicitation"):
            elicit_values(batch, "median")

    def test_ground_truth_twin(self, devices, batch):
        for strategy in ("sample", "mean", "max", "latest"):
            assert ground_truth_mean(batch, strategy) == pytest.approx(
                ground_truth_mean([d.values for d in devices], strategy), rel=1e-14
            )


# ----------------------------------------------------------------------
# Chunked report collection vs the legacy single-pass kernel
# ----------------------------------------------------------------------


class TestAccumulateBitReports:
    n_bits = 8

    @pytest.fixture(scope="class")
    def encoded(self):
        rng = np.random.default_rng(21)
        return rng.integers(0, 2**self.n_bits, size=230).astype(np.uint64)

    @pytest.mark.parametrize("chunk", CHUNKS)
    @pytest.mark.parametrize("b_send", [1, 2])
    @pytest.mark.parametrize("ldp", [False, True])
    def test_bit_identical_to_collect_bit_reports(self, encoded, chunk, b_send, ldp):
        rng = np.random.default_rng(33)
        n = encoded.size
        assignment = rng.integers(0, self.n_bits, size=(n, b_send))
        if b_send == 1:
            assignment = assignment.ravel()  # 1-D shape must be accepted too
        perturbation = RandomizedResponse(epsilon=1.0) if ldp else None
        ref = collect_bit_reports(
            encoded, self.n_bits, assignment, perturbation, np.random.default_rng(55)
        )
        got = accumulate_bit_reports(
            encoded,
            self.n_bits,
            assignment,
            perturbation,
            np.random.default_rng(55),
            chunk=chunk,
        )
        np.testing.assert_array_equal(got[0], ref[0])
        np.testing.assert_array_equal(got[1], ref[1])

    @pytest.mark.parametrize("chunk", CHUNKS)
    def test_collect_client_reports_fuses_encoding(self, chunk):
        rng = np.random.default_rng(8)
        values = rng.normal(120.0, 30.0, size=211)
        encoder = FixedPointEncoder.for_integers(9)
        assignment = rng.integers(0, encoder.n_bits, size=(211, 2))
        perturbation = RandomizedResponse(epsilon=2.0)
        ref = collect_bit_reports(
            encoder.encode(values),
            encoder.n_bits,
            assignment,
            perturbation,
            np.random.default_rng(9),
        )
        got = collect_client_reports(
            values, encoder, assignment, perturbation, np.random.default_rng(9), chunk=chunk
        )
        np.testing.assert_array_equal(got[0], ref[0])
        np.testing.assert_array_equal(got[1], ref[1])

    def test_bad_assignment(self, encoded):
        with pytest.raises(ProtocolError, match="incompatible"):
            accumulate_bit_reports(encoded, self.n_bits, np.zeros(encoded.size - 1))
        with pytest.raises(ProtocolError, match="outside"):
            accumulate_bit_reports(
                encoded, self.n_bits, np.full(encoded.size, self.n_bits)
            )


# ----------------------------------------------------------------------
# Estimator twins: object path vs columnar path, chunk-invariant
# ----------------------------------------------------------------------


class TestEstimatorTwins:
    @pytest.mark.parametrize("chunk", [1, 13, 1000])
    def test_basic_chunk_invariance_via_env(self, monkeypatch, chunk):
        # estimate() streams internally through accumulate_bit_reports; the
        # REPRO_BATCH_CHUNK knob must not change a single bit.
        rng = np.random.default_rng(3)
        values = rng.normal(500.0, 80.0, size=400)
        est = BasicBitPushing(
            FixedPointEncoder.for_integers(10),
            perturbation=RandomizedResponse(epsilon=1.5),
        )
        monkeypatch.delenv("REPRO_BATCH_CHUNK", raising=False)
        reference = est.estimate(values, np.random.default_rng(7))
        monkeypatch.setenv("REPRO_BATCH_CHUNK", str(chunk))
        chunked = est.estimate(values, np.random.default_rng(7))
        assert chunked.value == reference.value
        np.testing.assert_array_equal(chunked.counts, reference.counts)

    @pytest.mark.parametrize("mode", ["basic", "adaptive"])
    @pytest.mark.parametrize("chunk", [1, 37, None])
    def test_estimate_clients_twin(self, devices, batch, mode, chunk):
        cls = BasicBitPushing if mode == "basic" else AdaptiveBitPushing
        encoder = FixedPointEncoder.for_integers(10)

        def object_path():
            gen = np.random.default_rng(17)
            values = elicit_batch([d.values for d in devices], "sample", gen)
            return cls(encoder).estimate(values, gen)

        reference = object_path()
        columnar = cls(encoder).estimate_clients(
            batch, rng=np.random.default_rng(17), chunk=chunk
        )
        assert columnar.value == reference.value
        np.testing.assert_array_equal(columnar.counts, reference.counts)

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: DuchiMechanism(0.0, 1000.0, epsilon=1.0),
            lambda: PiecewiseMechanism(0.0, 1000.0, epsilon=1.0),
            lambda: HybridMechanism(0.0, 1000.0, epsilon=1.0),
            lambda: LaplaceMean(0.0, 1000.0, epsilon=1.0),
            lambda: SubtractiveDithering(0.0, 1000.0),
            lambda: RandomizedRounding(0.0, 1000.0),
        ],
        ids=["duchi", "piecewise", "hybrid", "laplace", "dithering", "rounding"],
    )
    @pytest.mark.parametrize("chunk", [1, 37])
    def test_baseline_estimate_clients_twin(self, devices, batch, factory, chunk):
        def object_path():
            gen = np.random.default_rng(23)
            values = elicit_batch([d.values for d in devices], "sample", gen)
            return factory().estimate(values, gen)

        reference = object_path()
        columnar = factory().estimate_clients(
            batch, rng=np.random.default_rng(23), chunk=chunk
        )
        assert columnar.value == reference.value
        assert columnar.n_clients == reference.n_clients
        assert columnar.method == reference.method


# ----------------------------------------------------------------------
# Federated server twins: run(devices) == run(batch), chunk-invariant
# ----------------------------------------------------------------------


class TestFederatedTwins:
    def run_query(self, population, mode, ldp, chunk_clients, seed=41):
        query = FederatedMeanQuery(
            FixedPointEncoder.for_integers(8),
            mode=mode,
            perturbation=RandomizedResponse(epsilon=2.0) if ldp else None,
            dropout=DropoutModel(rate=0.1),
            network=NetworkModel(loss_rate=0.05),
            chunk_clients=chunk_clients,
        )
        return query.run(
            population,
            rng=seed,
            eligibility=attribute_equals("geo", "us"),
            cohort_size=40,
        )

    @pytest.mark.parametrize("mode", ["basic", "adaptive"])
    @pytest.mark.parametrize("ldp", [False, True])
    def test_run_twin(self, devices, batch, mode, ldp):
        reference = self.run_query(devices, mode, ldp, None)
        for chunk in (None, 1, 13):
            columnar = self.run_query(batch, mode, ldp, chunk)
            assert columnar.value == reference.value
            for ref_round, col_round in zip(reference.rounds, columnar.rounds):
                np.testing.assert_array_equal(col_round.bit_means, ref_round.bit_means)
                np.testing.assert_array_equal(col_round.counts, ref_round.counts)

    def test_metadata_flags_columnar(self, devices, batch):
        assert self.run_query(batch, "basic", False, None).metadata["columnar"] is True
        assert self.run_query(devices, "basic", False, None).metadata["columnar"] is False

    def test_chunk_clients_validated(self):
        with pytest.raises(ConfigurationError, match="chunk"):
            FederatedMeanQuery(FixedPointEncoder.for_integers(8), chunk_clients=0)


# ----------------------------------------------------------------------
# Cohort selection twins
# ----------------------------------------------------------------------


class TestCohortSelection:
    def test_select_indices_stream_identical(self, devices, batch):
        selector = CohortSelector(min_cohort_size=2)
        obj = selector.select_indices(
            devices, attribute_equals("geo", "us"), cohort_size=20, rng=9
        )
        col = selector.select_indices(
            batch, attribute_equals("geo", "us"), cohort_size=20, rng=9
        )
        np.testing.assert_array_equal(obj, col)

    def test_full_population_no_copy(self, batch):
        selector = CohortSelector(min_cohort_size=2)
        # No predicate, no subsampling: the batch itself comes back.
        assert selector.select(batch, rng=0) is batch

    def test_mask_eligibility(self, devices, batch):
        cohort = CohortSelector(min_cohort_size=2).select(
            batch, attribute_equals("geo", "eu"), rng=0
        )
        expected = [d.client_id for d in devices if d.attributes["geo"] == "eu"]
        assert cohort.client_ids.tolist() == expected

    def test_plain_callable_on_batch_rejected(self, batch):
        with pytest.raises(ConfigurationError, match="mask"):
            CohortSelector(min_cohort_size=2).select(batch, lambda c: True, rng=0)


# ----------------------------------------------------------------------
# Vectorized grouping in VectorMeanEstimator stays order-identical
# ----------------------------------------------------------------------


class TestVectorGrouping:
    @staticmethod
    def reference_groups(order, n_dims, dims_per_client):
        # The original Python append loop the argsort vectorization replaced.
        offset = max(1, n_dims // dims_per_client)
        groups = [[] for _ in range(n_dims)]
        for position, client in enumerate(order):
            for j in range(dims_per_client):
                groups[(position + j * offset) % n_dims].append(int(client))
        return groups

    @pytest.mark.parametrize("dims_per_client", [1, 2, 3])
    @pytest.mark.parametrize("n_dims", [4, 5])
    def test_estimate_matches_reference_grouping(self, n_dims, dims_per_client):
        if dims_per_client > n_dims:
            pytest.skip("invalid configuration")
        rng = np.random.default_rng(2)
        vectors = rng.normal(0.2, 0.1, size=(300, n_dims))
        encoder = FixedPointEncoder.for_range(-1.0, 1.0, n_bits=8)
        estimator = VectorMeanEstimator(
            encoder, n_dims=n_dims, dims_per_client=dims_per_client
        )
        result = estimator.estimate(vectors, np.random.default_rng(6))

        # Re-run the estimation with the hand-rolled grouping loop.
        gen = np.random.default_rng(6)
        order = gen.permutation(vectors.shape[0])
        groups = self.reference_groups(order, n_dims, dims_per_client)
        for dim in range(n_dims):
            expected = BasicBitPushing(encoder).estimate(
                vectors[groups[dim], dim], gen
            )
            assert result.per_dim[dim].value == expected.value


# ----------------------------------------------------------------------
# estimate_batch dispatch: no population cap, shared chunk budget
# ----------------------------------------------------------------------


class TestBatchDispatchUncapped:
    def test_large_population_batches_bit_identically(self, monkeypatch):
        # 3000 > the old 2048 cap: rows must still go through estimate_batch
        # and match per-row estimate() exactly.
        rng = np.random.default_rng(4)
        values = rng.normal(300.0, 50.0, size=(3, 3000))
        est = BasicBitPushing(FixedPointEncoder.for_integers(9))
        batched = est.estimate_batch(values, [10, 11, 12])
        scalar = [est.estimate(values[r], np.random.default_rng(10 + r)).value for r in range(3)]
        np.testing.assert_array_equal(batched, scalar)
