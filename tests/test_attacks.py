"""Poisoning attacks and the central-randomness mitigation."""

import numpy as np
import pytest

from repro.attacks import poisoned_estimate
from repro.core import BitSamplingSchedule, FixedPointEncoder
from repro.exceptions import ConfigurationError


@pytest.fixture
def encoder():
    return FixedPointEncoder.for_integers(12)


@pytest.fixture
def values(rng):
    return np.clip(rng.normal(500.0, 80.0, 10_000), 0, None)


class TestMechanics:
    def test_zero_adversaries_no_shift(self, values, encoder):
        outcome = poisoned_estimate(values, encoder, 0.0, rng=0)
        assert outcome.attack_shift == 0.0
        assert outcome.n_adversaries == 0

    def test_honest_estimate_near_truth(self, values, encoder):
        outcome = poisoned_estimate(values, encoder, 0.01, rng=1)
        assert outcome.honest_estimate == pytest.approx(outcome.true_mean, rel=0.1)

    def test_msb_ones_biases_upward(self, values, encoder):
        outcome = poisoned_estimate(values, encoder, 0.02, randomness="local", rng=2)
        assert outcome.attack_shift > 0

    def test_assigned_zeros_biases_downward(self, values, encoder):
        outcome = poisoned_estimate(
            values, encoder, 0.05, strategy="assigned_zeros", rng=3
        )
        assert outcome.attack_shift < 0

    def test_shift_grows_with_fraction(self, values, encoder):
        small = poisoned_estimate(values, encoder, 0.005, randomness="local", rng=4)
        large = poisoned_estimate(values, encoder, 0.05, randomness="local", rng=4)
        assert abs(large.attack_shift) > abs(small.attack_shift)

    def test_validation(self, values, encoder):
        with pytest.raises(ConfigurationError):
            poisoned_estimate(values, encoder, 1.0)
        with pytest.raises(ConfigurationError):
            poisoned_estimate(values, encoder, 0.1, randomness="astral")
        with pytest.raises(ConfigurationError):
            poisoned_estimate(values, encoder, 0.1, strategy="nuke")
        with pytest.raises(ConfigurationError):
            poisoned_estimate(np.array([]), encoder, 0.1)
        with pytest.raises(ConfigurationError):
            poisoned_estimate(
                values, encoder, 0.1, schedule=BitSamplingSchedule.uniform(4)
            )


class TestCentralVsLocal:
    def test_central_randomness_reduces_attack_leverage(self, encoder):
        """Section 5: with a uniform schedule, letting clients pick their own
        bit amplifies MSB-forcing attacks by roughly the bit depth."""
        rng = np.random.default_rng(60)
        schedule = BitSamplingSchedule.uniform(12)
        shifts = {"local": [], "central": []}
        for _ in range(20):
            values = np.clip(rng.normal(500.0, 80.0, 10_000), 0, None)
            for mode in shifts:
                outcome = poisoned_estimate(
                    values, encoder, 0.01, randomness=mode, schedule=schedule, rng=rng
                )
                shifts[mode].append(outcome.attack_shift)
        assert np.mean(shifts["local"]) > 3 * np.mean(shifts["central"])

    def test_outcome_records_configuration(self, values, encoder):
        outcome = poisoned_estimate(values, encoder, 0.02, randomness="central", rng=5)
        assert outcome.randomness == "central"
        assert outcome.strategy == "msb_ones"
        assert outcome.n_adversaries == 200
