"""Baseline mean estimators: dithering, piecewise, Duchi, rounding, Laplace."""

import math

import numpy as np
import pytest

from repro.baselines import (
    DuchiMechanism,
    LaplaceMean,
    PiecewiseMechanism,
    RandomizedRounding,
    SubtractiveDithering,
)
from repro.baselines.base import RangeMeanEstimator, ScalarEstimate
from repro.exceptions import ConfigurationError

ALL_PRIVATE = [
    lambda: SubtractiveDithering(0.0, 1000.0, epsilon=2.0),
    lambda: PiecewiseMechanism(0.0, 1000.0, epsilon=2.0),
    lambda: DuchiMechanism(0.0, 1000.0, epsilon=2.0),
    lambda: RandomizedRounding(0.0, 1000.0, epsilon=2.0),
    lambda: LaplaceMean(0.0, 1000.0, epsilon=2.0),
]


class TestRangeValidation:
    def test_invalid_range_raises(self):
        with pytest.raises(ConfigurationError):
            SubtractiveDithering(5.0, 5.0)
        with pytest.raises(ConfigurationError):
            SubtractiveDithering(10.0, 0.0)
        with pytest.raises(ConfigurationError):
            SubtractiveDithering(0.0, float("inf"))

    def test_unit_scaling_roundtrip(self):
        est = SubtractiveDithering(100.0, 300.0)
        unit = est.to_unit(np.array([100.0, 200.0, 300.0]))
        np.testing.assert_allclose(unit, [0.0, 0.5, 1.0])
        assert est.from_unit(0.5) == pytest.approx(200.0)

    def test_out_of_range_clipped(self):
        est = SubtractiveDithering(0.0, 10.0)
        unit = est.to_unit(np.array([-5.0, 20.0]))
        np.testing.assert_allclose(unit, [0.0, 1.0])

    def test_empty_input_raises(self, rng):
        with pytest.raises(ConfigurationError):
            SubtractiveDithering(0.0, 10.0).estimate(np.array([]), rng)


class TestUnbiasednessAll:
    @pytest.mark.parametrize("factory", ALL_PRIVATE)
    def test_unbiased_on_fixed_population(self, factory):
        rng = np.random.default_rng(50)
        values = np.full(20_000, 321.0)
        est = factory()
        estimates = [est.estimate(values, rng).value for _ in range(60)]
        stderr = np.std(estimates) / np.sqrt(len(estimates))
        assert abs(np.mean(estimates) - 321.0) < 4 * stderr + 1e-9

    @pytest.mark.parametrize("factory", ALL_PRIVATE)
    def test_returns_scalar_estimate(self, factory, rng):
        result = factory().estimate(np.full(100, 500.0), rng)
        assert isinstance(result, ScalarEstimate)
        assert result.n_clients == 100
        assert result.metadata["epsilon"] == 2.0
        assert float(result) == result.value


class TestSubtractiveDithering:
    def test_non_private_accuracy(self, rng):
        values = rng.uniform(0, 1000, 50_000)
        est = SubtractiveDithering(0.0, 1000.0)
        assert est.estimate(values, rng).value == pytest.approx(values.mean(), abs=10.0)

    def test_variance_scales_with_range_width(self):
        """The paper's criticism: loose bounds hurt; variance ~ (H - L)^2."""
        rng = np.random.default_rng(51)
        values = np.full(5_000, 100.0)

        def std(high):
            est = SubtractiveDithering(0.0, high)
            return np.std([est.estimate(values, rng).value for _ in range(100)])

        # Quadrupling the range should roughly quadruple the error.
        ratio = std(4000.0) / std(1000.0)
        assert 2.5 < ratio < 6.0

    def test_rr_variant_noisier(self):
        rng = np.random.default_rng(52)
        values = np.full(5_000, 400.0)
        plain = SubtractiveDithering(0.0, 1000.0)
        private = SubtractiveDithering(0.0, 1000.0, epsilon=1.0)
        std_plain = np.std([plain.estimate(values, rng).value for _ in range(80)])
        std_priv = np.std([private.estimate(values, rng).value for _ in range(80)])
        assert std_priv > std_plain

    def test_per_client_variance_bound(self):
        assert SubtractiveDithering.per_client_variance_bound() == 0.25


class TestPiecewise:
    def test_constants(self):
        mech = PiecewiseMechanism(0.0, 1.0, epsilon=2.0)
        half = math.exp(1.0)
        assert mech.C == pytest.approx((half + 1) / (half - 1))
        assert mech.p_window == pytest.approx(half / (half + 1))

    def test_output_range_bounded(self, rng):
        mech = PiecewiseMechanism(0.0, 1.0, epsilon=1.0)
        t = rng.uniform(-1, 1, 10_000)
        out = mech.perturb(t, rng)
        assert np.all(np.abs(out) <= mech.C + 1e-9)

    def test_perturb_unbiased_per_input(self, rng):
        mech = PiecewiseMechanism(0.0, 1.0, epsilon=2.0)
        for t in (-0.8, 0.0, 0.6):
            outs = mech.perturb(np.full(200_000, t), rng)
            assert outs.mean() == pytest.approx(t, abs=0.02)

    def test_input_range_validated(self, rng):
        mech = PiecewiseMechanism(0.0, 1.0, epsilon=1.0)
        with pytest.raises(ConfigurationError):
            mech.perturb(np.array([1.5]), rng)

    def test_per_report_variance_matches_simulation(self, rng):
        mech = PiecewiseMechanism(0.0, 1.0, epsilon=2.0)
        outs = mech.perturb(np.zeros(300_000), rng)
        assert outs.var() == pytest.approx(mech.per_report_variance(0.0), rel=0.05)

    def test_invalid_epsilon(self):
        with pytest.raises(ConfigurationError):
            PiecewiseMechanism(0.0, 1.0, epsilon=0.0)


class TestDuchi:
    def test_output_is_plus_minus_b(self, rng):
        mech = DuchiMechanism(0.0, 1.0, epsilon=1.0)
        outs = mech.perturb(rng.uniform(-1, 1, 1000), rng)
        assert set(np.unique(outs)) <= {-mech.B, mech.B}

    def test_perturb_unbiased_per_input(self, rng):
        mech = DuchiMechanism(0.0, 1.0, epsilon=2.0)
        for t in (-0.5, 0.0, 0.9):
            outs = mech.perturb(np.full(300_000, t), rng)
            assert outs.mean() == pytest.approx(t, abs=0.02)

    def test_per_report_variance(self, rng):
        mech = DuchiMechanism(0.0, 1.0, epsilon=2.0)
        outs = mech.perturb(np.zeros(300_000), rng)
        assert outs.var() == pytest.approx(mech.per_report_variance(0.0), rel=0.02)

    def test_invalid_epsilon(self):
        with pytest.raises(ConfigurationError):
            DuchiMechanism(0.0, 1.0, epsilon=-1.0)


class TestRandomizedRounding:
    def test_non_private_unbiased(self, rng):
        values = rng.uniform(0, 100, 100_000)
        est = RandomizedRounding(0.0, 100.0)
        assert est.estimate(values, rng).value == pytest.approx(values.mean(), abs=1.0)

    def test_metadata_epsilon_none_without_rr(self, rng):
        result = RandomizedRounding(0.0, 100.0).estimate(np.full(10, 5.0), rng)
        assert result.metadata["epsilon"] is None


class TestLaplaceMean:
    def test_worse_than_one_bit_methods_at_low_epsilon(self):
        """Paper omits Laplace from plots because its error is much higher."""
        rng = np.random.default_rng(53)
        values = np.full(10_000, 400.0)
        lap = LaplaceMean(0.0, 1023.0, epsilon=0.5)
        dith = SubtractiveDithering(0.0, 1023.0, epsilon=0.5)
        lap_err = np.std([lap.estimate(values, rng).value for _ in range(60)])
        dith_err = np.std([dith.estimate(values, rng).value for _ in range(60)])
        assert lap_err > dith_err

    def test_epsilon_property(self):
        assert LaplaceMean(0.0, 1.0, epsilon=2.0).epsilon == 2.0


class TestAbstractBase:
    def test_cannot_instantiate(self):
        with pytest.raises(TypeError):
            RangeMeanEstimator(0.0, 1.0)
