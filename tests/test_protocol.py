"""Round mechanics: report collection, debiasing, pooling, Lemma 3.1."""

import numpy as np
import pytest

from repro.core.protocol import (
    bit_means_from_stats,
    collect_bit_reports,
    combine_round_stats,
    optimal_probabilities_bound,
    theoretical_variance,
)
from repro.core.sampling import BitSamplingSchedule, central_assignment
from repro.exceptions import ProtocolError
from repro.privacy import RandomizedResponse


class TestCollectBitReports:
    def test_exact_sums_on_known_data(self):
        # Clients hold 0b11, 0b01, 0b10; everyone reports bit 0.
        encoded = np.array([3, 1, 2], dtype=np.uint64)
        assignment = np.zeros(3, dtype=np.int64)
        sums, counts = collect_bit_reports(encoded, 2, assignment)
        assert sums.tolist() == [2.0, 0.0]
        assert counts.tolist() == [3, 0]

    def test_mixed_assignment(self):
        encoded = np.array([3, 3, 3, 3], dtype=np.uint64)
        assignment = np.array([0, 0, 1, 1])
        sums, counts = collect_bit_reports(encoded, 2, assignment)
        assert sums.tolist() == [2.0, 2.0]
        assert counts.tolist() == [2, 2]

    def test_multi_bit_assignment(self):
        encoded = np.array([0b11, 0b11], dtype=np.uint64)
        assignment = np.array([[0, 1], [0, 1]])
        sums, counts = collect_bit_reports(encoded, 2, assignment)
        assert sums.tolist() == [2.0, 2.0]
        assert counts.tolist() == [2, 2]

    def test_counts_match_assignment(self, rng):
        encoded = rng.integers(0, 1024, 500).astype(np.uint64)
        sched = BitSamplingSchedule.weighted(10, 0.5)
        assignment = central_assignment(500, sched, rng)
        _, counts = collect_bit_reports(encoded, 10, assignment)
        np.testing.assert_array_equal(counts, np.bincount(assignment, minlength=10))

    def test_perturbation_applied(self, rng):
        encoded = np.zeros(50_000, dtype=np.uint64)   # all bits are 0
        assignment = np.zeros(50_000, dtype=np.int64)
        rr = RandomizedResponse(epsilon=1.0)
        sums, counts = collect_bit_reports(encoded, 1, assignment, rr, rng)
        # Roughly a (1 - p) fraction of reports flip to 1.
        assert sums[0] / counts[0] == pytest.approx(1.0 - rr.p, abs=0.01)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ProtocolError):
            collect_bit_reports(np.array([1], dtype=np.uint64), 2, np.array([0, 1]))

    def test_out_of_range_assignment_raises(self):
        with pytest.raises(ProtocolError):
            collect_bit_reports(np.array([1], dtype=np.uint64), 2, np.array([5]))
        with pytest.raises(ProtocolError):
            collect_bit_reports(np.array([1], dtype=np.uint64), 2, np.array([-1]))


class TestBitMeansFromStats:
    def test_plain_means(self):
        means = bit_means_from_stats(np.array([5.0, 0.0]), np.array([10, 0]))
        assert means.tolist() == [0.5, 0.0]

    def test_zero_count_bits_are_zero(self):
        means = bit_means_from_stats(np.array([0.0, 0.0, 0.0]), np.array([0, 0, 0]))
        assert means.tolist() == [0.0, 0.0, 0.0]

    def test_unbiasing_applied_only_to_sampled_bits(self):
        rr = RandomizedResponse(epsilon=2.0)
        raw = np.array([rr.p, 0.0])       # bit 0 sampled and "all ones", bit 1 unsampled
        means = bit_means_from_stats(raw * np.array([10, 0]), np.array([10, 0]), rr)
        assert means[0] == pytest.approx(1.0)
        assert means[1] == 0.0

    def test_mismatched_shapes_raise(self):
        with pytest.raises(ProtocolError):
            bit_means_from_stats(np.zeros(3), np.zeros(2, dtype=int))


class TestCombineRoundStats:
    def test_count_weighted_pooling(self):
        pooled, counts = combine_round_stats(
            [np.array([1.0, 0.0]), np.array([0.0, 0.0])],
            [np.array([10, 0]), np.array([30, 0])],
        )
        assert pooled[0] == pytest.approx(0.25)   # (10*1 + 30*0) / 40
        assert counts[0] == 40

    def test_bit_unsampled_everywhere_stays_zero(self):
        pooled, counts = combine_round_stats(
            [np.array([0.5, 0.0])], [np.array([10, 0])]
        )
        assert pooled[1] == 0.0 and counts[1] == 0

    def test_single_round_identity(self):
        means = np.array([0.3, 0.7])
        pooled, counts = combine_round_stats([means], [np.array([5, 5])])
        np.testing.assert_allclose(pooled, means)

    def test_empty_raises(self):
        with pytest.raises(ProtocolError):
            combine_round_stats([], [])

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ProtocolError):
            combine_round_stats([np.zeros(2)], [])


class TestTheoreticalVariance:
    def test_matches_lemma_formula(self):
        means = np.array([0.5, 0.25])
        sched = BitSamplingSchedule.uniform(2)
        n = 100
        beta = np.array([0.25, 4 * 0.25 * 0.75])
        expected = (beta / 0.5).sum() / n
        assert theoretical_variance(means, sched, n) == pytest.approx(expected)

    def test_b_send_scales_down(self):
        means = np.array([0.5, 0.5])
        sched = BitSamplingSchedule.uniform(2)
        v1 = theoretical_variance(means, sched, 100, b_send=1)
        v4 = theoretical_variance(means, sched, 100, b_send=4)
        assert v4 == pytest.approx(v1 / 4)

    def test_unsampled_active_bit_is_infinite(self):
        means = np.array([0.5, 0.5])
        sched = BitSamplingSchedule.from_bit_means(np.array([0.5, 0.0]))
        assert theoretical_variance(means, sched, 100) == float("inf")

    def test_unsampled_empty_bit_is_fine(self):
        means = np.array([0.5, 0.0])
        sched = BitSamplingSchedule.from_bit_means(np.array([0.5, 0.0]))
        assert np.isfinite(theoretical_variance(means, sched, 100))

    def test_empirical_variance_matches_lemma(self, rng):
        """Monte-Carlo check of Lemma 3.1 for the basic estimator.

        The lemma models each bit-j report as an independent Bernoulli(m_j)
        draw, which corresponds to a *fresh population per repetition* (a
        fixed population sampled without replacement would enjoy a
        finite-population correction and come in below the bound).
        """
        from repro.core import BasicBitPushing, FixedPointEncoder

        n, n_bits = 2000, 6
        encoder = FixedPointEncoder.for_integers(n_bits)
        sched = BitSamplingSchedule.weighted(n_bits, 0.5)
        est = BasicBitPushing(encoder, schedule=sched)
        estimates = [
            est.estimate(rng.integers(0, 64, size=n).astype(float), rng).value
            for _ in range(600)
        ]
        empirical = np.var(estimates)
        # Uniform integers over [0, 64): every bit mean is exactly 1/2.
        predicted = theoretical_variance(np.full(n_bits, 0.5), sched, n)
        assert empirical == pytest.approx(predicted, rel=0.2)

    def test_qmc_assignment_beats_lemma_bound_on_fixed_population(self, rng):
        """Without-replacement (central QMC) sampling of a fixed population
        has *lower* variance than the lemma's with-replacement model."""
        from repro.core import BasicBitPushing, FixedPointEncoder

        n, n_bits = 2000, 6
        values = rng.integers(0, 64, size=n).astype(float)
        encoder = FixedPointEncoder.for_integers(n_bits)
        sched = BitSamplingSchedule.weighted(n_bits, 0.5)
        est = BasicBitPushing(encoder, schedule=sched)
        estimates = [est.estimate(values, rng).value for _ in range(400)]
        predicted = theoretical_variance(encoder.true_bit_means(values), sched, n)
        assert np.var(estimates) < predicted

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            theoretical_variance(np.zeros(3), BitSamplingSchedule.uniform(2), 10)


class TestOptimalBound:
    def test_is_eq7_schedule(self):
        sched = optimal_probabilities_bound(4)
        np.testing.assert_allclose(sched.probabilities, np.array([1, 2, 4, 8]) / 15)

    def test_optimal_beats_uniform_in_lemma_variance(self):
        means = np.full(8, 0.5)
        n = 1000
        v_opt = theoretical_variance(means, optimal_probabilities_bound(8), n)
        v_uni = theoretical_variance(means, BitSamplingSchedule.uniform(8), n)
        assert v_opt < v_uni
