"""Property tests for the wire format: encode/decode are exact inverses.

Hypothesis drives the mirror-image validation contract: every report
``encode_report`` accepts decodes back to an equal report, every report it
rejects raises :class:`ProtocolError` (never a bare ``struct.error``), and
decodable bytes re-encode canonically to the same frame.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ProtocolError
from repro.federated.client import BitReport
from repro.federated.wire import (
    MAGIC,
    REPORT_SIZE,
    decode_batch,
    decode_report,
    encode_batch,
    encode_report,
)

valid_reports = st.builds(
    BitReport,
    client_id=st.integers(min_value=0, max_value=2**64 - 1),
    bit_index=st.integers(min_value=0, max_value=63),
    bit=st.integers(min_value=0, max_value=1),
)


class TestRoundTrip:
    @given(report=valid_reports, rr=st.booleans())
    def test_single_report_round_trips(self, report, rr):
        decoded, decoded_rr = decode_report(encode_report(report, rr))
        assert decoded == report
        assert decoded_rr == rr

    @given(reports=st.lists(valid_reports, max_size=20), rr=st.booleans())
    def test_batch_round_trips(self, reports, rr):
        data = encode_batch(reports, rr)
        assert len(data) == REPORT_SIZE * len(reports)
        decoded = decode_batch(data)
        assert [r for r, _ in decoded] == reports
        assert all(flag == rr for _, flag in decoded)

    @given(report=valid_reports, rr=st.booleans())
    def test_decoded_reports_reencode_to_the_same_frame(self, report, rr):
        frame = encode_report(report, rr)
        decoded, decoded_rr = decode_report(frame)
        assert encode_report(decoded, decoded_rr) == frame

    @given(report=valid_reports)
    def test_numpy_integer_fields_encode_like_python_ints(self, report):
        np_report = BitReport(
            client_id=np.uint64(report.client_id),
            bit_index=np.int64(report.bit_index),
            bit=np.int8(report.bit),
        )
        assert encode_report(np_report) == encode_report(report)


class TestEncodeRejectsWhatDecodeWouldReject:
    @given(report=valid_reports, bit=st.integers().filter(lambda b: b not in (0, 1)))
    def test_non_binary_bit(self, report, bit):
        with pytest.raises(ProtocolError):
            encode_report(BitReport(report.client_id, report.bit_index, bit))

    @given(
        report=valid_reports,
        bit_index=st.one_of(
            st.integers(min_value=64), st.integers(max_value=-1)
        ),
    )
    def test_out_of_range_bit_index(self, report, bit_index):
        with pytest.raises(ProtocolError):
            encode_report(BitReport(report.client_id, bit_index, report.bit))

    @given(
        report=valid_reports,
        client_id=st.one_of(
            st.integers(min_value=2**64), st.integers(max_value=-1)
        ),
    )
    def test_client_id_outside_64_bits(self, report, client_id):
        with pytest.raises(ProtocolError):
            encode_report(BitReport(client_id, report.bit_index, report.bit))

    @given(report=valid_reports)
    @settings(max_examples=20)
    def test_non_integer_fields_raise_protocol_error_not_struct_error(self, report):
        for bad in (BitReport("c7", report.bit_index, report.bit),
                    BitReport(report.client_id, 1.5, report.bit),
                    BitReport(report.client_id, report.bit_index, None)):
            with pytest.raises(ProtocolError):
                encode_report(bad)


class TestDecodeRejectsMalformedFrames:
    @given(report=valid_reports, cut=st.integers(min_value=1, max_value=REPORT_SIZE - 1))
    @settings(max_examples=25)
    def test_truncated_frame(self, report, cut):
        with pytest.raises(ProtocolError):
            decode_report(encode_report(report)[:cut])

    @given(report=valid_reports)
    @settings(max_examples=25)
    def test_corrupted_magic(self, report):
        frame = encode_report(report)
        with pytest.raises(ProtocolError):
            decode_report(b"XXXX" + frame[len(MAGIC):])

    @given(reports=st.lists(valid_reports, min_size=1, max_size=5),
           extra=st.integers(min_value=1, max_value=REPORT_SIZE - 1))
    @settings(max_examples=25)
    def test_ragged_batch(self, reports, extra):
        with pytest.raises(ProtocolError):
            decode_batch(encode_batch(reports) + b"\x00" * extra)
