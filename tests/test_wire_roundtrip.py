"""Property tests for the wire format: encode/decode are exact inverses.

Hypothesis drives the mirror-image validation contract: every report
``encode_report`` accepts decodes back to an equal report, every report it
rejects raises :class:`ProtocolError` (never a bare ``struct.error``), and
decodable bytes re-encode canonically to the same frame.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ProtocolError
from repro.federated.client import BitReport
from repro.federated.wire import (
    MAGIC,
    MAX_MESSAGE_SIZE,
    MESSAGE_HEADER_SIZE,
    MSG_ABORT,
    MSG_ANNOUNCE,
    MSG_HELLO,
    MSG_REPORTS,
    MSG_RESULT,
    MSG_TELEMETRY,
    REPORT_SIZE,
    TELEMETRY_VERSION,
    TRACE_CONTEXT_VERSION,
    ClientTelemetry,
    TraceContext,
    decode_announce,
    decode_batch,
    decode_batch_array,
    decode_message_header,
    decode_report,
    decode_telemetry,
    encode_announce,
    encode_batch,
    encode_message,
    encode_report,
    encode_telemetry,
)

MESSAGE_KINDS = (
    MSG_HELLO,
    MSG_ANNOUNCE,
    MSG_REPORTS,
    MSG_RESULT,
    MSG_ABORT,
    MSG_TELEMETRY,
)

valid_reports = st.builds(
    BitReport,
    client_id=st.integers(min_value=0, max_value=2**64 - 1),
    bit_index=st.integers(min_value=0, max_value=63),
    bit=st.integers(min_value=0, max_value=1),
)


class TestRoundTrip:
    @given(report=valid_reports, rr=st.booleans())
    def test_single_report_round_trips(self, report, rr):
        decoded, decoded_rr = decode_report(encode_report(report, rr))
        assert decoded == report
        assert decoded_rr == rr

    @given(reports=st.lists(valid_reports, max_size=20), rr=st.booleans())
    def test_batch_round_trips(self, reports, rr):
        data = encode_batch(reports, rr)
        assert len(data) == REPORT_SIZE * len(reports)
        decoded = decode_batch(data)
        assert [r for r, _ in decoded] == reports
        assert all(flag == rr for _, flag in decoded)

    @given(report=valid_reports, rr=st.booleans())
    def test_decoded_reports_reencode_to_the_same_frame(self, report, rr):
        frame = encode_report(report, rr)
        decoded, decoded_rr = decode_report(frame)
        assert encode_report(decoded, decoded_rr) == frame

    @given(report=valid_reports)
    def test_numpy_integer_fields_encode_like_python_ints(self, report):
        np_report = BitReport(
            client_id=np.uint64(report.client_id),
            bit_index=np.int64(report.bit_index),
            bit=np.int8(report.bit),
        )
        assert encode_report(np_report) == encode_report(report)

    @given(encoded=st.integers(min_value=0, max_value=2**64 - 1), bit_index=st.integers(0, 63))
    def test_columnar_extracted_numpy_bool_bits_encode(self, encoded, bit_index):
        # The columnar client plane's shift-mask-compare extraction yields
        # np.bool_ scalars; those must frame identically to Python ints.
        extracted = (np.uint64(encoded) >> np.uint64(bit_index)) & np.uint64(1) != 0
        assert isinstance(extracted, np.bool_)
        frame = encode_report(BitReport(client_id=3, bit_index=bit_index, bit=extracted))
        assert frame == encode_report(
            BitReport(client_id=3, bit_index=bit_index, bit=int(extracted))
        )
        report, _rr = decode_report(frame)
        assert report.bit == int(extracted)


class TestEncodeRejectsWhatDecodeWouldReject:
    @given(report=valid_reports, bit=st.integers().filter(lambda b: b not in (0, 1)))
    def test_non_binary_bit(self, report, bit):
        with pytest.raises(ProtocolError):
            encode_report(BitReport(report.client_id, report.bit_index, bit))

    @given(
        report=valid_reports,
        bit_index=st.one_of(
            st.integers(min_value=64), st.integers(max_value=-1)
        ),
    )
    def test_out_of_range_bit_index(self, report, bit_index):
        with pytest.raises(ProtocolError):
            encode_report(BitReport(report.client_id, bit_index, report.bit))

    @given(
        report=valid_reports,
        client_id=st.one_of(
            st.integers(min_value=2**64), st.integers(max_value=-1)
        ),
    )
    def test_client_id_outside_64_bits(self, report, client_id):
        with pytest.raises(ProtocolError):
            encode_report(BitReport(client_id, report.bit_index, report.bit))

    @given(report=valid_reports)
    @settings(max_examples=20)
    def test_non_integer_fields_raise_protocol_error_not_struct_error(self, report):
        for bad in (BitReport("c7", report.bit_index, report.bit),
                    BitReport(report.client_id, 1.5, report.bit),
                    BitReport(report.client_id, report.bit_index, None)):
            with pytest.raises(ProtocolError):
                encode_report(bad)


class TestDecodeRejectsMalformedFrames:
    @given(report=valid_reports, cut=st.integers(min_value=1, max_value=REPORT_SIZE - 1))
    @settings(max_examples=25)
    def test_truncated_frame(self, report, cut):
        with pytest.raises(ProtocolError):
            decode_report(encode_report(report)[:cut])

    @given(report=valid_reports)
    @settings(max_examples=25)
    def test_corrupted_magic(self, report):
        frame = encode_report(report)
        with pytest.raises(ProtocolError):
            decode_report(b"XXXX" + frame[len(MAGIC):])

    @given(reports=st.lists(valid_reports, min_size=1, max_size=5),
           extra=st.integers(min_value=1, max_value=REPORT_SIZE - 1))
    @settings(max_examples=25)
    def test_ragged_batch(self, reports, extra):
        with pytest.raises(ProtocolError):
            decode_batch(encode_batch(reports) + b"\x00" * extra)


class TestPerReportFlags:
    @given(reports=st.lists(valid_reports, max_size=20), data=st.data())
    def test_per_report_flag_sequence_round_trips(self, reports, data):
        flags = data.draw(
            st.lists(st.booleans(), min_size=len(reports), max_size=len(reports))
        )
        decoded = decode_batch(encode_batch(reports, flags))
        assert [r for r, _ in decoded] == reports
        assert [f for _, f in decoded] == flags

    @given(reports=st.lists(valid_reports, max_size=10), rr=st.booleans())
    def test_numpy_bool_scalar_flag_broadcasts(self, reports, rr):
        assert encode_batch(reports, np.bool_(rr)) == encode_batch(reports, rr)

    @given(
        reports=st.lists(valid_reports, max_size=10),
        delta=st.integers(min_value=1, max_value=3),
        longer=st.booleans(),
    )
    @settings(max_examples=25)
    def test_flag_sequence_length_mismatch_rejected(self, reports, delta, longer):
        n = len(reports) + delta if longer else max(0, len(reports) - delta)
        if n == len(reports):
            return
        with pytest.raises(ProtocolError, match="randomized_response sequence"):
            encode_batch(reports, [True] * n)


#: (frame byte offset, replacement byte) for each way one frame can go bad.
_FRAME_CORRUPTIONS = [
    (0, 0x58),  # magic -> b"XPSH"
    (4, 9),  # unsupported version
    (5, 200),  # bit_index outside [0, 64)
    (6, 2),  # non-binary bit
    (7, 0xFE),  # unknown flag bits
]


class TestVectorizedBatchDecode:
    @given(reports=st.lists(valid_reports, max_size=30), data=st.data())
    def test_twin_of_scalar_decode_batch(self, reports, data):
        flags = data.draw(
            st.lists(st.booleans(), min_size=len(reports), max_size=len(reports))
        )
        payload = encode_batch(reports, flags)
        batch = decode_batch_array(payload)
        assert len(batch) == len(reports)
        assert batch.to_reports() == decode_batch(payload)

    @given(
        reports=st.lists(valid_reports, min_size=1, max_size=10),
        which=st.integers(min_value=0),
        corruption=st.sampled_from(_FRAME_CORRUPTIONS),
    )
    @settings(max_examples=50)
    def test_malformed_batches_raise_the_scalar_error(self, reports, which, corruption):
        payload = bytearray(encode_batch(reports))
        offset_in_frame, bad_byte = corruption
        position = (which % len(reports)) * REPORT_SIZE + offset_in_frame
        payload[position] = bad_byte
        corrupted = bytes(payload)
        with pytest.raises(ProtocolError) as scalar_err:
            decode_batch(corrupted)
        with pytest.raises(ProtocolError) as vector_err:
            decode_batch_array(corrupted)
        assert str(vector_err.value) == str(scalar_err.value)

    @given(reports=st.lists(valid_reports, max_size=5),
           extra=st.integers(min_value=1, max_value=REPORT_SIZE - 1))
    @settings(max_examples=25)
    def test_ragged_batch_raises_the_scalar_error(self, reports, extra):
        corrupted = encode_batch(reports) + b"\x00" * extra
        with pytest.raises(ProtocolError) as scalar_err:
            decode_batch(corrupted)
        with pytest.raises(ProtocolError) as vector_err:
            decode_batch_array(corrupted)
        assert str(vector_err.value) == str(scalar_err.value)


class TestMessageFraming:
    @given(
        kind=st.sampled_from(MESSAGE_KINDS),
        seq=st.integers(min_value=0, max_value=2**16 - 1),
        payload=st.binary(max_size=64),
    )
    def test_header_round_trips(self, kind, seq, payload):
        message = encode_message(kind, payload, seq=seq)
        decoded_kind, decoded_seq, length = decode_message_header(
            message[:MESSAGE_HEADER_SIZE]
        )
        assert (decoded_kind, decoded_seq) == (kind, seq)
        assert length == len(payload)
        assert message[MESSAGE_HEADER_SIZE:] == payload

    @given(kind=st.integers().filter(lambda k: k not in MESSAGE_KINDS))
    @settings(max_examples=25)
    def test_unknown_kind_rejected_on_encode(self, kind):
        with pytest.raises(ProtocolError):
            encode_message(kind, b"")

    @given(seq=st.one_of(st.integers(min_value=2**16), st.integers(max_value=-1)))
    @settings(max_examples=25)
    def test_out_of_range_seq_rejected(self, seq):
        with pytest.raises(ProtocolError):
            encode_message(MSG_HELLO, b"", seq=seq)

    @given(cut=st.integers(min_value=0, max_value=MESSAGE_HEADER_SIZE - 1))
    @settings(max_examples=25)
    def test_truncated_header_rejected(self, cut):
        header = encode_message(MSG_HELLO, b"")[:MESSAGE_HEADER_SIZE]
        with pytest.raises(ProtocolError):
            decode_message_header(header[:cut])

    def test_bad_magic_version_kind_and_length_rejected(self):
        good = bytearray(encode_message(MSG_REPORTS, b"x" * 4))
        for mutation in (
            (0, 0x58),  # magic
            (4, 9),  # version
            (5, 0),  # kind 0 is not a MSG_* constant
        ):
            bad = bytearray(good)
            bad[mutation[0]] = mutation[1]
            with pytest.raises(ProtocolError):
                decode_message_header(bytes(bad[:MESSAGE_HEADER_SIZE]))
        oversized = bytearray(good)
        oversized[8:12] = (MAX_MESSAGE_SIZE + 1).to_bytes(4, "big")
        with pytest.raises(ProtocolError, match="exceeds"):
            decode_message_header(bytes(oversized[:MESSAGE_HEADER_SIZE]))


json_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=20),
)

announce_fields = st.dictionaries(
    st.text(max_size=10).filter(lambda key: key != "trace"),
    json_scalars,
    max_size=6,
)

trace_contexts = st.builds(
    TraceContext,
    trace_id=st.text(min_size=1, max_size=32),
    parent_span_id=st.integers(min_value=0, max_value=2**53),
    clock_s=st.floats(allow_nan=False, allow_infinity=False),
)


class TestAnnounceTraceContext:
    @given(fields=announce_fields, context=trace_contexts)
    def test_round_trips_with_context(self, fields, context):
        decoded_fields, decoded_context = decode_announce(
            encode_announce(fields, context)
        )
        assert decoded_fields == fields
        assert decoded_context == context

    @given(fields=announce_fields)
    def test_round_trips_without_context(self, fields):
        decoded_fields, decoded_context = decode_announce(encode_announce(fields))
        assert decoded_fields == fields
        assert decoded_context is None

    @given(
        fields=announce_fields,
        version=st.one_of(
            st.integers().filter(lambda v: v != TRACE_CONTEXT_VERSION),
            st.text(max_size=4),
            st.none(),
        ),
    )
    def test_unknown_version_runs_untraced_without_dropping_fields(
        self, fields, version
    ):
        # A future server's trace sub-object of a version this decoder does
        # not speak: the round parameters parse unchanged, context is None.
        payload = json.dumps(
            {**fields, "trace": {"v": version, "anything": "goes"}}
        ).encode()
        decoded_fields, decoded_context = decode_announce(payload)
        assert decoded_fields == fields
        assert decoded_context is None

    @given(fields=announce_fields, context=trace_contexts, data=st.data())
    @settings(max_examples=30)
    def test_malformed_known_version_context_rejected(self, fields, context, data):
        corruption = data.draw(
            st.sampled_from(
                [
                    {"id": ""},  # empty trace id
                    {"id": 7},  # non-string trace id
                    {"span": -1},  # negative span id
                    {"span": True},  # bool is not a span id
                    {"span": "3"},  # non-int span id
                    {"clock_s": "now"},  # non-numeric clock
                    {"clock_s": None},
                ]
            )
        )
        payload = json.dumps(
            {**fields, "trace": {**context.to_wire(), **corruption}}
        ).encode()
        with pytest.raises(ProtocolError):
            decode_announce(payload)

    @given(junk=st.one_of(st.binary(max_size=32), st.just(b"[1, 2]")))
    @settings(max_examples=30)
    def test_non_object_payloads_rejected(self, junk):
        try:
            json.loads(junk)
        except (json.JSONDecodeError, UnicodeDecodeError):
            with pytest.raises(ProtocolError):
                decode_announce(junk)
        else:
            if not isinstance(json.loads(junk), dict):
                with pytest.raises(ProtocolError):
                    decode_announce(junk)


span_dicts = st.fixed_dictionaries(
    {
        "name": st.text(min_size=1, max_size=16),
        "span_id": st.integers(min_value=0, max_value=2**53),
        "parent_id": st.one_of(st.none(), st.integers(min_value=0, max_value=2**53)),
        "start_time_s": st.floats(
            min_value=0.0, max_value=1e9, allow_nan=False, allow_infinity=False
        ),
        "duration_s": st.floats(
            min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False
        ),
        "status": st.sampled_from(["ok", "error"]),
        "attributes": st.dictionaries(st.text(max_size=8), json_scalars, max_size=4),
    }
)

metric_snapshots = st.dictionaries(st.text(max_size=8), json_scalars, max_size=4)


class TestTelemetryRoundTrip:
    @given(
        client_id=st.integers(min_value=0, max_value=2**53),
        spans=st.lists(span_dicts, max_size=8),
        metrics=metric_snapshots,
    )
    def test_round_trips(self, client_id, spans, metrics):
        telemetry = decode_telemetry(encode_telemetry(client_id, spans, metrics))
        assert isinstance(telemetry, ClientTelemetry)
        assert telemetry.client_id == client_id
        assert list(telemetry.spans) == spans
        assert telemetry.metrics == metrics

    @given(
        client_id=st.integers(min_value=0, max_value=2**53),
        spans=st.lists(span_dicts, min_size=1, max_size=4),
        data=st.data(),
    )
    @settings(max_examples=50)
    def test_truncated_payloads_always_raise_protocol_error(
        self, client_id, spans, data
    ):
        payload = encode_telemetry(client_id, spans)
        cut = data.draw(st.integers(min_value=0, max_value=len(payload) - 1))
        with pytest.raises(ProtocolError):
            decode_telemetry(payload[:cut])

    @given(junk=st.binary(max_size=64))
    @settings(max_examples=50)
    def test_arbitrary_bytes_never_raise_anything_but_protocol_error(self, junk):
        # Ingestion safety: whatever arrives in a TELEMETRY frame either
        # decodes cleanly or raises ProtocolError -- never ValueError,
        # KeyError, or a crash the server's reject path would not catch.
        try:
            telemetry = decode_telemetry(junk)
        except ProtocolError:
            return
        assert isinstance(telemetry, ClientTelemetry)

    @given(
        spans=st.lists(span_dicts, max_size=2),
        version=st.integers().filter(lambda v: v != TELEMETRY_VERSION),
    )
    @settings(max_examples=25)
    def test_unknown_version_rejected(self, spans, version):
        payload = json.dumps(
            {"v": version, "client_id": 0, "spans": spans, "metrics": {}}
        ).encode()
        with pytest.raises(ProtocolError, match="version"):
            decode_telemetry(payload)

    @given(spans=st.lists(span_dicts, min_size=1, max_size=3), data=st.data())
    @settings(max_examples=40)
    def test_per_span_defects_rejected(self, spans, data):
        corruption = data.draw(
            st.sampled_from(
                [
                    {"name": 7},
                    {"span_id": "x"},
                    {"span_id": True},
                    {"start_time_s": "soon"},
                    {"duration_s": None},
                    {"parent_id": "root"},
                    {"attributes": [1, 2]},
                ]
            )
        )
        which = data.draw(st.integers(min_value=0, max_value=len(spans) - 1))
        bad = [dict(span) for span in spans]
        bad[which].update(corruption)
        payload = json.dumps(
            {"v": TELEMETRY_VERSION, "client_id": 0, "spans": bad, "metrics": {}}
        ).encode()
        with pytest.raises(ProtocolError, match=f"telemetry span {which}"):
            decode_telemetry(payload)
