"""Tests for the RNG-discipline linter (scripts/lint_rng.py)."""

import importlib.util
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
LINTER = REPO_ROOT / "scripts" / "lint_rng.py"

spec = importlib.util.spec_from_file_location("lint_rng", LINTER)
lint_rng = importlib.util.module_from_spec(spec)
sys.modules["lint_rng"] = lint_rng  # dataclasses resolves types via sys.modules
spec.loader.exec_module(lint_rng)


def violations_of(source: str) -> list[str]:
    return [v.message for v in lint_rng.lint_source(source, Path("snippet.py"))]


class TestRules:
    def test_stdlib_random_import_flagged(self):
        assert any("stdlib" in m for m in violations_of("import random\n"))
        assert any("stdlib" in m for m in violations_of("import random as rnd\n"))
        assert any("stdlib" in m for m in violations_of("from random import choice\n"))

    def test_module_level_numpy_rng_flagged(self):
        msgs = violations_of("import numpy as np\nx = np.random.normal(0, 1)\n")
        assert any("np.random.normal" in m for m in msgs)

    def test_numpy_alias_tracked(self):
        msgs = violations_of("import numpy\ny = numpy.random.seed(0)\n")
        assert any("np.random.seed" in m for m in msgs)

    def test_numpy_random_submodule_alias_tracked(self):
        msgs = violations_of("from numpy import random as npr\nz = npr.shuffle([1])\n")
        assert any("np.random.shuffle" in m for m in msgs)

    def test_from_numpy_random_function_import_flagged(self):
        msgs = violations_of("from numpy.random import uniform\n")
        assert any("global-state" in m for m in msgs)

    def test_unseeded_default_rng_flagged(self):
        msgs = violations_of("import numpy as np\ngen = np.random.default_rng()\n")
        assert any("unseeded" in m for m in msgs)

    def test_seeded_default_rng_allowed(self):
        assert violations_of("import numpy as np\ngen = np.random.default_rng(42)\n") == []
        assert violations_of(
            "import numpy as np\n"
            "def f(seed):\n"
            "    return np.random.default_rng(seed)\n"
        ) == []

    def test_generator_classes_allowed(self):
        clean = (
            "import numpy as np\n"
            "seq = np.random.SeedSequence(7)\n"
            "gen = np.random.Generator(np.random.PCG64(seq))\n"
            "from numpy.random import Generator, SeedSequence\n"
        )
        assert violations_of(clean) == []

    def test_pragma_suppresses(self):
        src = "import numpy as np\ngen = np.random.default_rng()  # lint-rng: allow\n"
        assert violations_of(src) == []

    def test_late_import_alias_still_caught(self):
        # The alias pass runs before the call pass, so a function-local
        # `import numpy as np` after the call site still registers.
        src = (
            "def f():\n"
            "    return np.random.random()\n"
            "def g():\n"
            "    import numpy as np\n"
            "    return np\n"
        )
        assert any("np.random.random" in m for m in violations_of(src))

    def test_syntax_error_reported_not_raised(self):
        msgs = violations_of("def broken(:\n")
        assert len(msgs) == 1 and "syntax error" in msgs[0]

    def test_unrelated_attribute_calls_untouched(self):
        clean = (
            "class Thing:\n"
            "    random = staticmethod(lambda: 4)\n"
            "t = Thing()\n"
            "t.random()\n"
        )
        assert violations_of(clean) == []


class TestCli:
    def test_src_repro_is_clean(self):
        result = subprocess.run(
            [sys.executable, str(LINTER), "src/repro"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0, result.stdout + result.stderr

    def test_violating_file_fails_with_diagnostics(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("import numpy as np\nx = np.random.normal()\n")
        result = subprocess.run(
            [sys.executable, str(LINTER), str(bad)],
            capture_output=True,
            text=True,
        )
        assert result.returncode == 1
        assert "bad.py:2" in result.stdout
        assert "1 violation(s)" in result.stderr

    def test_missing_path_is_usage_error(self):
        result = subprocess.run(
            [sys.executable, str(LINTER), "no/such/dir"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
        )
        assert result.returncode == 2

    def test_directory_sweep_aggregates(self, tmp_path):
        (tmp_path / "a.py").write_text("import random\n")
        (tmp_path / "sub").mkdir()
        (tmp_path / "sub" / "b.py").write_text("import numpy as np\nnp.random.seed(1)\n")
        violations = lint_rng.lint_paths([tmp_path])
        assert len(violations) == 2
