"""Hybrid (piecewise/Duchi mixture) baseline."""

import math

import numpy as np
import pytest

from repro.baselines import DuchiMechanism, HybridMechanism, PiecewiseMechanism
from repro.exceptions import ConfigurationError


class TestConstruction:
    def test_beta_formula(self):
        mech = HybridMechanism(0.0, 1.0, epsilon=2.0)
        assert mech.beta == pytest.approx(1.0 - math.exp(-1.0))

    def test_beta_grows_with_epsilon(self):
        assert HybridMechanism(0, 1, 4.0).beta > HybridMechanism(0, 1, 0.5).beta

    def test_invalid_epsilon(self):
        with pytest.raises(ConfigurationError):
            HybridMechanism(0.0, 1.0, epsilon=0.0)
        with pytest.raises(ConfigurationError):
            HybridMechanism(0.0, 1.0, epsilon=float("nan"))


class TestPerturbation:
    def test_unbiased_per_input(self, rng):
        mech = HybridMechanism(0.0, 1.0, epsilon=1.5)
        for t in (-0.7, 0.0, 0.4):
            outs = mech.perturb(np.full(200_000, t), rng)
            assert outs.mean() == pytest.approx(t, abs=0.03)

    def test_outputs_come_from_both_branches(self, rng):
        mech = HybridMechanism(0.0, 1.0, epsilon=1.0)
        outs = mech.perturb(np.zeros(10_000), rng)
        duchi_b = DuchiMechanism(0.0, 1.0, 1.0).B
        n_duchi = np.isin(np.abs(outs), [duchi_b]).sum()
        assert 0 < n_duchi < outs.size

    def test_variance_is_the_mixture(self, rng):
        mech = HybridMechanism(0.0, 1.0, epsilon=2.0)
        outs = mech.perturb(np.zeros(400_000), rng)
        assert outs.var() == pytest.approx(mech.per_report_variance(0.0), rel=0.05)


class TestEndToEnd:
    def test_mean_estimation(self):
        rng = np.random.default_rng(0)
        mech = HybridMechanism(0.0, 100.0, epsilon=2.0)
        values = np.full(300_000, 37.0)
        assert mech.estimate(values, rng).value == pytest.approx(37.0, abs=1.0)

    def test_dominates_components_at_moderate_epsilon(self):
        """The mixture's analytic variance sits at or below the worse
        component everywhere, and below both where they cross."""
        for eps in (0.5, 1.0, 2.0, 4.0):
            hybrid = HybridMechanism(0.0, 1.0, eps)
            pm = PiecewiseMechanism(0.0, 1.0, eps)
            duchi = DuchiMechanism(0.0, 1.0, eps)
            v_h = hybrid.per_report_variance(0.3)
            assert v_h <= max(pm.per_report_variance(0.3), duchi.per_report_variance(0.3)) + 1e-12

    def test_registry_exposes_hybrid(self, rng):
        from repro.experiments.methods import mean_methods

        method = mean_methods(8, epsilon=2.0, include=["hybrid"])["hybrid"]
        values = np.full(100_000, 100.0)
        assert method(values, rng) == pytest.approx(100.0, abs=5.0)

    def test_hybrid_requires_epsilon_in_registry(self):
        from repro.experiments.methods import mean_methods

        with pytest.raises(ConfigurationError):
            mean_methods(8, include=["hybrid"])
