"""Focused tests for FederatedMeanQuery internals and round accounting."""

import numpy as np
import pytest

from repro.core import BitSamplingSchedule, FixedPointEncoder
from repro.federated import ClientDevice, DropoutModel, FederatedMeanQuery
from repro.federated.server import RoundOutcome


def make_population(n=500, value=100.0):
    return [ClientDevice(i, [value]) for i in range(n)]


@pytest.fixture
def encoder():
    return FixedPointEncoder.for_integers(8)


class TestScheduleAdjustment:
    def test_no_floor_is_identity(self, encoder):
        query = FederatedMeanQuery(encoder, min_reports_per_bit=0)
        schedule = BitSamplingSchedule.weighted(8, 1.0)
        adjusted = query._adjust_schedule(schedule, 1_000)
        np.testing.assert_array_equal(adjusted.probabilities, schedule.probabilities)

    def test_floor_raises_rare_bits(self, encoder):
        query = FederatedMeanQuery(encoder, min_reports_per_bit=20)
        schedule = BitSamplingSchedule.weighted(8, 1.0)
        adjusted = query._adjust_schedule(schedule, 1_000)
        # Every sampled bit must expect >= 20 reports out of 1000.
        assert adjusted.probabilities.min() >= 20 / 1_000 - 1e-12
        assert adjusted.probabilities.sum() == pytest.approx(1.0)

    def test_floor_respects_zero_probability_bits(self, encoder):
        query = FederatedMeanQuery(encoder, min_reports_per_bit=10)
        schedule = BitSamplingSchedule.from_bit_means(
            np.array([0.5, 0.0, 0.5, 0.0, 0.5, 0.0, 0.5, 0.0])
        )
        adjusted = query._adjust_schedule(schedule, 1_000)
        assert (adjusted.probabilities[schedule.probabilities == 0] == 0).all()

    def test_floor_accounts_for_expected_dropout(self, encoder):
        query = FederatedMeanQuery(
            encoder, dropout=DropoutModel(0.5), min_reports_per_bit=20
        )
        # Tracker primed with the model's rate at construction.
        schedule = BitSamplingSchedule.weighted(8, 1.0)
        adjusted = query._adjust_schedule(schedule, 1_000)
        # Only ~500 survivors expected -> floor must be ~20/500.
        assert adjusted.probabilities.min() >= 20 / 500 - 1e-12

    def test_infeasible_floor_uniformizes_support(self, encoder):
        query = FederatedMeanQuery(encoder, min_reports_per_bit=500)
        schedule = BitSamplingSchedule.weighted(8, 1.0)
        adjusted = query._adjust_schedule(schedule, 1_000)
        np.testing.assert_allclose(adjusted.probabilities, 1.0 / 8)


class TestRoundOutcome:
    def test_dropout_rate(self):
        from repro.core.results import RoundSummary

        summary = RoundSummary(
            probabilities=np.ones(1), counts=np.array([80]),
            sums=np.zeros(1), bit_means=np.zeros(1), n_clients=80,
        )
        outcome = RoundOutcome(summary, planned_clients=100, surviving_clients=80,
                               round_duration_s=12.0)
        assert outcome.dropout_rate == pytest.approx(0.2)

    def test_zero_planned_is_zero_rate(self):
        from repro.core.results import RoundSummary

        summary = RoundSummary(
            probabilities=np.ones(1), counts=np.array([0]),
            sums=np.zeros(1), bit_means=np.zeros(1), n_clients=0,
        )
        outcome = RoundOutcome(summary, 0, 0, 0.0)
        assert outcome.dropout_rate == 0.0


class TestBasicModeScheduleOverride:
    def test_custom_schedule_used(self, encoder, rng):
        schedule = BitSamplingSchedule.uniform(8)
        query = FederatedMeanQuery(encoder, mode="basic", schedule=schedule)
        est = query.run(make_population(800), rng=rng)
        counts = est.rounds[0].counts
        # Uniform schedule -> equal counts per bit.
        assert counts.max() - counts.min() <= 1

    def test_default_schedule_is_eq7(self, encoder, rng):
        query = FederatedMeanQuery(encoder, mode="basic")
        est = query.run(make_population(2_550), rng=rng)
        counts = est.rounds[0].counts
        # 2^j allocation: the top bit receives about half the cohort.
        assert counts[-1] > 0.45 * 2_550


class TestSecureCollectDeterminism:
    def test_secure_and_plain_agree_exactly_without_noise(self, encoder):
        """With no perturbation, sharded secure aggregation must produce the
        same counters a plaintext collection would (it is only a transport)."""
        population = make_population(128, value=170.0)   # 0b10101010
        plain = FederatedMeanQuery(encoder, mode="basic")
        secure = FederatedMeanQuery(
            encoder, mode="basic", secure_aggregation=True, shard_size=16
        )
        est_plain = plain.run(population, rng=42)
        est_secure = secure.run(population, rng=42)
        np.testing.assert_array_equal(est_plain.counts, est_secure.counts)
        np.testing.assert_allclose(
            est_plain.rounds[0].sums, est_secure.rounds[0].sums
        )
        assert est_plain.value == est_secure.value
