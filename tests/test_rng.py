"""Deterministic RNG plumbing."""

import numpy as np
import pytest

from repro.rng import child_seeds, ensure_rng, spawn


class TestEnsureRng:
    def test_none_returns_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seeds_deterministically(self):
        a, b = ensure_rng(42), ensure_rng(42)
        assert a.random() == b.random()

    def test_different_seeds_differ(self):
        assert ensure_rng(1).random() != ensure_rng(2).random()

    def test_generator_passthrough_is_identity(self):
        gen = np.random.default_rng(0)
        assert ensure_rng(gen) is gen

    def test_seed_sequence_accepted(self):
        seq = np.random.SeedSequence(7)
        a = ensure_rng(seq)
        b = np.random.default_rng(np.random.SeedSequence(7))
        assert a.random() == b.random()

    def test_numpy_integer_accepted(self):
        assert isinstance(ensure_rng(np.int64(3)), np.random.Generator)

    def test_invalid_type_raises(self):
        with pytest.raises(TypeError):
            ensure_rng("not a seed")


class TestSpawn:
    def test_spawn_count(self):
        assert len(spawn(0, 5)) == 5

    def test_children_are_independent_of_each_other(self):
        a, b = spawn(0, 2)
        assert a.random() != b.random()

    def test_spawn_deterministic_from_seed(self):
        first = [g.random() for g in spawn(9, 3)]
        second = [g.random() for g in spawn(9, 3)]
        assert first == second

    def test_spawn_zero_is_empty(self):
        assert spawn(0, 0) == []

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            spawn(0, -1)


class TestChildSeeds:
    def test_count_and_determinism(self):
        a = child_seeds(5, 4)
        b = child_seeds(5, 4)
        assert len(a) == 4
        assert [s.entropy for s in a] == [s.entropy for s in b]

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            child_seeds(0, -2)
