"""End-to-end federated mean queries."""

import numpy as np
import pytest

from repro.core import FixedPointEncoder
from repro.exceptions import CohortTooSmallError, ConfigurationError
from repro.federated import (
    ClientDevice,
    CohortSelector,
    DropoutModel,
    FederatedMeanQuery,
    NetworkModel,
    attribute_equals,
    ground_truth_mean,
)
from repro.privacy import BitMeter, RandomizedResponse


def make_population(n=3_000, mean=200.0, std=40.0, seed=0, multi=False):
    rng = np.random.default_rng(seed)
    population = []
    for i in range(n):
        k = int(rng.integers(1, 5)) if multi else 1
        values = np.clip(rng.normal(mean, std, k), 0, None)
        population.append(
            ClientDevice(i, values, {"geo": "us" if i % 2 else "eu"})
        )
    return population


@pytest.fixture(scope="module")
def population():
    return make_population()


@pytest.fixture
def encoder():
    return FixedPointEncoder.for_integers(9)


class TestBasicMode:
    def test_accuracy(self, population, encoder):
        query = FederatedMeanQuery(encoder, mode="basic")
        truth = ground_truth_mean([c.values for c in population])
        est = query.run(population, rng=1)
        assert est.value == pytest.approx(truth, rel=0.05)
        assert est.method == "federated-basic"
        assert len(est.rounds) == 1

    def test_metadata(self, population, encoder):
        est = FederatedMeanQuery(encoder, mode="basic").run(population, rng=2)
        assert est.metadata["cohort_size"] == len(population)
        assert est.metadata["secure_aggregation"] is False
        assert len(est.metadata["dropout_rates"]) == 1


class TestAdaptiveMode:
    def test_accuracy(self, population, encoder):
        query = FederatedMeanQuery(encoder, mode="adaptive")
        truth = ground_truth_mean([c.values for c in population])
        assert query.run(population, rng=3).value == pytest.approx(truth, rel=0.05)

    def test_two_rounds_recorded(self, population, encoder):
        est = FederatedMeanQuery(encoder).run(population, rng=4)
        assert len(est.rounds) == 2
        assert est.metadata["total_duration_s"] >= 0.0

    def test_delta_controls_split(self, population, encoder):
        est = FederatedMeanQuery(encoder, delta=0.25).run(population, rng=5)
        assert est.rounds[0].n_clients + est.rounds[1].n_clients == len(population)
        assert est.rounds[0].n_clients == pytest.approx(0.25 * len(population), rel=0.05)


class TestFailures:
    def test_dropout_does_not_break_accuracy(self, population, encoder):
        query = FederatedMeanQuery(encoder, dropout=DropoutModel(0.3))
        truth = ground_truth_mean([c.values for c in population])
        est = query.run(population, rng=6)
        assert est.value == pytest.approx(truth, rel=0.08)
        assert est.metadata["dropout_rates"][0] == pytest.approx(0.3, abs=0.05)

    def test_network_loss_and_deadline(self, population, encoder):
        query = FederatedMeanQuery(
            encoder, network=NetworkModel(loss_rate=0.1, deadline_s=600.0)
        )
        est = query.run(population, rng=7)
        assert est.metadata["total_duration_s"] <= 1200.0
        assert est.n_clients == len(population)

    def test_all_clients_dropping_raises(self, encoder):
        tiny = make_population(20)
        query = FederatedMeanQuery(encoder, network=NetworkModel(loss_rate=0.9, deadline_s=1.0))
        with pytest.raises(ConfigurationError):
            query.run(tiny, rng=8)

    def test_dropout_tracker_updates(self, population, encoder):
        query = FederatedMeanQuery(encoder, dropout=DropoutModel(0.4))
        query.run(population, rng=9)
        assert query.dropout_tracker.rate == pytest.approx(0.4, abs=0.1)
        assert query.dropout_tracker.rounds_observed == 2


class TestScheduleAdjustment:
    def test_min_reports_floor_applied(self, population, encoder):
        query = FederatedMeanQuery(
            encoder, mode="basic", dropout=DropoutModel(0.5), min_reports_per_bit=25
        )
        est = query.run(population, rng=10)
        counts = est.rounds[0].counts
        # Every bit in the (full) support should clear the floor, modulo
        # dropout noise; allow a small margin.
        assert counts.min() >= 10

    def test_infeasible_floor_falls_back_to_uniform(self, encoder):
        tiny = make_population(50)
        query = FederatedMeanQuery(encoder, mode="basic", min_reports_per_bit=40)
        est = query.run(tiny, rng=11)
        counts = est.rounds[0].counts
        # Uniform fallback: every bit sampled at least once.
        assert (counts > 0).all()


class TestCohorts:
    def test_eligibility_and_cohort_size(self, population, encoder):
        query = FederatedMeanQuery(encoder, selector=CohortSelector(min_cohort_size=100))
        est = query.run(
            population, rng=12,
            eligibility=attribute_equals("geo", "us"),
            cohort_size=500,
        )
        assert est.metadata["cohort_size"] == 500

    def test_too_small_cohort_rejected(self, population, encoder):
        query = FederatedMeanQuery(
            encoder, selector=CohortSelector(min_cohort_size=10_000)
        )
        with pytest.raises(CohortTooSmallError):
            query.run(population, rng=13)


class TestMetering:
    def test_one_bit_per_client_per_query(self, encoder):
        population = make_population(400)
        meter = BitMeter(max_bits_per_value=1)
        query = FederatedMeanQuery(encoder, meter=meter, metric_name="latency")
        query.run(population, rng=14)
        assert meter.total_bits <= 400
        assert all(
            meter.bits_disclosed_for(c.client_id, "latency") <= 1 for c in population
        )

    def test_second_query_same_metric_violates_meter(self, encoder):
        population = make_population(200)
        meter = BitMeter(max_bits_per_value=1)
        query = FederatedMeanQuery(encoder, meter=meter, metric_name="latency")
        query.run(population, rng=15)
        from repro.exceptions import PrivacyBudgetExceeded

        with pytest.raises(PrivacyBudgetExceeded):
            query.run(population, rng=16)


class TestSecureAggregationIntegration:
    def test_secure_matches_plaintext_statistics(self, encoder):
        population = make_population(300)
        plain = FederatedMeanQuery(encoder, mode="basic")
        secure = FederatedMeanQuery(encoder, mode="basic", secure_aggregation=True, shard_size=16)
        truth = ground_truth_mean([c.values for c in population])
        assert plain.run(population, rng=17).value == pytest.approx(truth, rel=0.1)
        assert secure.run(population, rng=17).value == pytest.approx(truth, rel=0.1)

    def test_secure_with_ldp(self, encoder):
        population = make_population(600)
        query = FederatedMeanQuery(
            encoder, mode="basic",
            perturbation=RandomizedResponse(epsilon=3.0),
            secure_aggregation=True, shard_size=16,
        )
        truth = ground_truth_mean([c.values for c in population])
        assert query.run(population, rng=18).value == pytest.approx(truth, rel=0.35)

    def test_counts_conserved_through_shards(self, encoder):
        population = make_population(250)
        query = FederatedMeanQuery(encoder, mode="basic", secure_aggregation=True, shard_size=16)
        est = query.run(population, rng=19)
        assert est.counts.sum() == 250


class TestMultiValueClients:
    def test_sample_elicitation_matches_sampling_ground_truth(self, encoder):
        population = make_population(4_000, multi=True, seed=42)
        query = FederatedMeanQuery(encoder, elicitation="sample")
        truth = ground_truth_mean([c.values for c in population], "sample")
        assert query.run(population, rng=20).value == pytest.approx(truth, rel=0.05)

    def test_mean_elicitation(self, encoder):
        population = make_population(4_000, multi=True, seed=43)
        query = FederatedMeanQuery(encoder, elicitation="mean")
        truth = ground_truth_mean([c.values for c in population], "mean")
        assert query.run(population, rng=21).value == pytest.approx(truth, rel=0.05)


class TestConfigValidation:
    def test_invalid_mode(self, encoder):
        with pytest.raises(ConfigurationError):
            FederatedMeanQuery(encoder, mode="turbo")

    def test_invalid_delta(self, encoder):
        with pytest.raises(ConfigurationError):
            FederatedMeanQuery(encoder, delta=1.5)

    def test_squash_without_perturbation(self, encoder):
        with pytest.raises(ConfigurationError):
            FederatedMeanQuery(encoder, squash_multiple=1.0)

    def test_schedule_width_mismatch(self, encoder):
        from repro.core import BitSamplingSchedule

        with pytest.raises(ConfigurationError):
            FederatedMeanQuery(encoder, schedule=BitSamplingSchedule.uniform(4))

    def test_invalid_shard_size(self, encoder):
        with pytest.raises(ConfigurationError):
            FederatedMeanQuery(encoder, shard_size=1)

    def test_empty_population(self, encoder):
        with pytest.raises(CohortTooSmallError):
            FederatedMeanQuery(encoder).run([], rng=0)
