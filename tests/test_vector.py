"""Vector mean estimation for federated-learning gradients."""

import numpy as np
import pytest

from repro.core import FixedPointEncoder, VectorMeanEstimator
from repro.exceptions import ConfigurationError
from repro.privacy import RandomizedResponse


@pytest.fixture
def gradient_encoder():
    return FixedPointEncoder.for_range(-1.0, 1.0, n_bits=10)


class TestConstruction:
    def test_invalid_dims(self, gradient_encoder):
        with pytest.raises(ConfigurationError):
            VectorMeanEstimator(gradient_encoder, n_dims=0)

    def test_invalid_mode(self, gradient_encoder):
        with pytest.raises(ConfigurationError):
            VectorMeanEstimator(gradient_encoder, n_dims=4, mode="turbo")

    def test_invalid_dims_per_client(self, gradient_encoder):
        with pytest.raises(ConfigurationError):
            VectorMeanEstimator(gradient_encoder, n_dims=4, dims_per_client=0)
        with pytest.raises(ConfigurationError):
            VectorMeanEstimator(gradient_encoder, n_dims=4, dims_per_client=5)

    def test_shape_validated(self, gradient_encoder, rng):
        est = VectorMeanEstimator(gradient_encoder, n_dims=4)
        with pytest.raises(ConfigurationError):
            est.estimate(np.zeros((10, 3)), rng)
        with pytest.raises(ConfigurationError):
            est.estimate(np.zeros(10), rng)

    def test_too_few_clients(self, gradient_encoder, rng):
        est = VectorMeanEstimator(gradient_encoder, n_dims=8, mode="adaptive")
        with pytest.raises(ConfigurationError):
            est.estimate(np.zeros((8, 8)), rng)


class TestAccuracy:
    def test_recovers_gradient_mean(self, gradient_encoder):
        rng = np.random.default_rng(0)
        gradients = rng.normal(0.1, 0.05, size=(40_000, 8))
        est = VectorMeanEstimator(gradient_encoder, n_dims=8)
        result = est.estimate(gradients, rng)
        assert result.l2_error(gradients.mean(axis=0)) < 0.03

    def test_signed_coordinates(self, gradient_encoder):
        rng = np.random.default_rng(1)
        means = np.array([-0.4, -0.1, 0.0, 0.2, 0.5])
        gradients = rng.normal(means, 0.05, size=(50_000, 5))
        est = VectorMeanEstimator(gradient_encoder, n_dims=5)
        result = est.estimate(gradients, rng)
        np.testing.assert_allclose(result.values, means, atol=0.03)

    def test_clipping_acts_coordinatewise(self, gradient_encoder):
        rng = np.random.default_rng(2)
        gradients = np.full((20_000, 2), 5.0)   # way outside [-1, 1]
        est = VectorMeanEstimator(gradient_encoder, n_dims=2)
        result = est.estimate(gradients, rng)
        np.testing.assert_allclose(result.values, 1.0, atol=0.01)

    def test_adaptive_mode(self, gradient_encoder):
        rng = np.random.default_rng(3)
        gradients = rng.normal(0.2, 0.1, size=(30_000, 4))
        est = VectorMeanEstimator(gradient_encoder, n_dims=4, mode="adaptive")
        result = est.estimate(gradients, rng)
        assert result.l2_error(gradients.mean(axis=0)) < 0.05

    def test_ldp_variant(self, gradient_encoder):
        rng = np.random.default_rng(4)
        gradients = rng.normal(0.2, 0.1, size=(100_000, 4))
        est = VectorMeanEstimator(
            gradient_encoder, n_dims=4,
            perturbation=RandomizedResponse(epsilon=4.0),
        )
        result = est.estimate(gradients, rng)
        assert result.l2_error(gradients.mean(axis=0)) < 0.15
        assert result.metadata["ldp"] is True


class TestBudgeting:
    def test_groups_balanced_one_dim_per_client(self, gradient_encoder, rng):
        est = VectorMeanEstimator(gradient_encoder, n_dims=5)
        result = est.estimate(np.zeros((1_000, 5)), rng)
        assert result.reports_per_dim.sum() == 1_000
        assert result.reports_per_dim.max() - result.reports_per_dim.min() <= 1

    def test_dims_per_client_multiplies_evidence(self, gradient_encoder, rng):
        est = VectorMeanEstimator(gradient_encoder, n_dims=4, dims_per_client=2)
        result = est.estimate(np.zeros((1_000, 4)), rng)
        assert result.reports_per_dim.sum() == 2_000

    def test_more_dims_per_client_reduces_error(self, gradient_encoder):
        rng = np.random.default_rng(5)

        def l2(k):
            errors = []
            for _ in range(15):
                gradients = rng.normal(0.1, 0.2, size=(4_000, 8))
                est = VectorMeanEstimator(gradient_encoder, n_dims=8, dims_per_client=k)
                errors.append(est.estimate(gradients, rng).l2_error(gradients.mean(axis=0)))
            return float(np.mean(errors))

        assert l2(4) < l2(1)

    def test_l2_error_shape_check(self, gradient_encoder, rng):
        est = VectorMeanEstimator(gradient_encoder, n_dims=3)
        result = est.estimate(np.zeros((300, 3)), rng)
        with pytest.raises(ConfigurationError):
            result.l2_error(np.zeros(4))


class TestFederatedLearningLoop:
    def test_sgd_with_bitpushed_gradients_converges(self):
        """A logistic-regression round loop driven by one-bit gradient means
        reaches a loss close to the exact-gradient baseline."""
        rng = np.random.default_rng(6)
        n, d = 30_000, 6
        true_w = rng.normal(0, 1, d)
        X = rng.normal(0, 1, (n, d))
        y = (X @ true_w + rng.logistic(0, 1, n) > 0).astype(float)

        def loss(w):
            z = X @ w
            return float(np.mean(np.log1p(np.exp(-np.abs(z))) + np.maximum(z, 0) - y * z))

        def local_gradients(w):
            p = 1.0 / (1.0 + np.exp(-(X @ w)))
            return (p - y)[:, None] * X    # per-client gradient rows

        encoder = FixedPointEncoder.for_range(-2.0, 2.0, n_bits=10)
        estimator = VectorMeanEstimator(encoder, n_dims=d)

        w_private = np.zeros(d)
        w_exact = np.zeros(d)
        lr = 1.0
        for _ in range(25):
            grads = local_gradients(w_private)
            w_private -= lr * estimator.estimate(grads, rng).values
            w_exact -= lr * local_gradients(w_exact).mean(axis=0)

        assert loss(w_private) < loss(np.zeros(d))            # actually learned
        assert loss(w_private) < loss(w_exact) * 1.15         # near the baseline
