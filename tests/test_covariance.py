"""Covariance / correlation estimation via bit-pushing products."""

import numpy as np
import pytest

from repro.core import CovarianceEstimator, FixedPointEncoder, VarianceEstimator
from repro.exceptions import ConfigurationError
from repro.privacy import RandomizedResponse


@pytest.fixture
def encoders():
    return FixedPointEncoder.for_integers(8), FixedPointEncoder.for_integers(8)


def correlated_pair(rng, n, slope=0.5, noise=10.0):
    x = np.clip(rng.normal(100, 20, n), 0, None)
    y = np.clip(slope * x + rng.normal(0, noise, n) + 20, 0, None)
    return x, y


class TestConstruction:
    def test_requires_unit_scale_encoders(self):
        good = FixedPointEncoder.for_integers(8)
        bad = FixedPointEncoder.for_range(0.0, 1.0, 8)
        with pytest.raises(ConfigurationError):
            CovarianceEstimator(bad, good)
        with pytest.raises(ConfigurationError):
            CovarianceEstimator(good, bad)

    def test_product_width_bounded(self):
        wide = FixedPointEncoder.for_integers(32)
        with pytest.raises(ConfigurationError):
            CovarianceEstimator(wide, wide)

    def test_invalid_inner(self, encoders):
        with pytest.raises(ConfigurationError):
            CovarianceEstimator(*encoders, inner="psychic")

    def test_shape_validation(self, encoders, rng):
        est = CovarianceEstimator(*encoders)
        with pytest.raises(ConfigurationError):
            est.estimate(np.zeros(10), np.zeros(11), rng)
        with pytest.raises(ConfigurationError):
            est.estimate(np.zeros(3), np.zeros(3), rng)


class TestAccuracy:
    def test_positive_covariance_recovered(self, encoders):
        rng = np.random.default_rng(0)
        x, y = correlated_pair(rng, 600_000)
        truth = float(np.cov(x, y)[0, 1])
        est = CovarianceEstimator(*encoders).estimate(x, y, rng)
        assert est.value == pytest.approx(truth, rel=0.5)
        assert est.value > 0

    def test_independent_metrics_near_zero(self, encoders):
        rng = np.random.default_rng(1)
        x = np.clip(rng.normal(100, 20, 600_000), 0, None)
        y = np.clip(rng.normal(100, 20, 600_000), 0, None)
        est = CovarianceEstimator(*encoders).estimate(x, y, rng)
        # Zero covariance; the estimate's noise scale is set by the product
        # phase (~E[XY] ~ 1e4), so "near zero" means small relative to it.
        assert abs(est.value) < 0.05 * float(np.mean(x) * np.mean(y))

    def test_negative_covariance_sign(self, encoders):
        rng = np.random.default_rng(2)
        x = np.clip(rng.normal(128, 20, 600_000), 0, None)
        y = np.clip(255 - x + rng.normal(0, 5, x.size), 0, None)
        est = CovarianceEstimator(*encoders).estimate(x, y, rng)
        assert est.value < 0

    def test_phase_means_recorded(self, encoders):
        rng = np.random.default_rng(3)
        x, y = correlated_pair(rng, 100_000)
        est = CovarianceEstimator(*encoders).estimate(x, y, rng)
        assert est.mean_x == pytest.approx(np.clip(x, 0, 255).mean(), rel=0.1)
        assert est.mean_y == pytest.approx(np.clip(y, 0, 255).mean(), rel=0.1)
        assert est.n_clients == 100_000

    def test_ldp_variant_runs(self, encoders):
        rng = np.random.default_rng(4)
        x, y = correlated_pair(rng, 400_000)
        est = CovarianceEstimator(
            *encoders, perturbation=RandomizedResponse(epsilon=4.0)
        ).estimate(x, y, rng)
        assert np.isfinite(est.value)
        assert est.metadata["ldp"] is True


class TestCorrelation:
    def test_correlation_pipeline(self, encoders):
        """Covariance + two variance estimates give a usable correlation."""
        rng = np.random.default_rng(5)
        x, y = correlated_pair(rng, 600_000, slope=0.8, noise=8.0)
        truth = float(np.corrcoef(x, y)[0, 1])
        cov = CovarianceEstimator(*encoders).estimate(x, y, rng)
        var_x = VarianceEstimator(encoders[0]).estimate(x, rng).value
        var_y = VarianceEstimator(encoders[1]).estimate(y, rng).value
        estimate = cov.correlation(var_x, var_y)
        assert estimate == pytest.approx(truth, abs=0.35)
        assert estimate > 0.3

    def test_correlation_clipped_to_unit(self, encoders, rng):
        x, y = correlated_pair(np.random.default_rng(6), 50_000)
        cov = CovarianceEstimator(*encoders).estimate(x, y, rng)
        assert -1.0 <= cov.correlation(1.0, 1.0) <= 1.0

    def test_correlation_validation(self, encoders, rng):
        x, y = correlated_pair(np.random.default_rng(7), 10_000)
        cov = CovarianceEstimator(*encoders).estimate(x, y, rng)
        with pytest.raises(ConfigurationError):
            cov.correlation(0.0, 1.0)
