"""Privacy accounting: the epsilon ledger and the bit meter."""

import pytest

from repro.exceptions import ConfigurationError, PrivacyBudgetExceeded
from repro.privacy import BitMeter, PrivacyAccountant


class TestPrivacyAccountant:
    def test_spending_within_budget(self):
        acct = PrivacyAccountant(epsilon_budget=2.0)
        acct.spend(0.5)
        acct.spend(1.0)
        assert acct.spent_epsilon == pytest.approx(1.5)
        assert acct.remaining_epsilon == pytest.approx(0.5)

    def test_exceeding_epsilon_raises(self):
        acct = PrivacyAccountant(epsilon_budget=1.0)
        acct.spend(0.8)
        with pytest.raises(PrivacyBudgetExceeded):
            acct.spend(0.3)

    def test_rejected_spend_leaves_ledger_unchanged(self):
        acct = PrivacyAccountant(epsilon_budget=1.0)
        acct.spend(0.8)
        with pytest.raises(PrivacyBudgetExceeded):
            acct.spend(0.5)
        assert acct.spent_epsilon == pytest.approx(0.8)

    def test_delta_budget_enforced(self):
        acct = PrivacyAccountant(delta_budget=1e-6)
        acct.spend(0.1, delta=5e-7)
        with pytest.raises(PrivacyBudgetExceeded):
            acct.spend(0.1, delta=6e-7)

    def test_unlimited_budget_records_but_never_raises(self):
        acct = PrivacyAccountant()
        for _ in range(100):
            acct.spend(10.0)
        assert acct.spent_epsilon == pytest.approx(1000.0)
        assert acct.remaining_epsilon == float("inf")

    def test_exact_budget_spend_allowed(self):
        acct = PrivacyAccountant(epsilon_budget=1.0)
        acct.spend(0.5)
        acct.spend(0.5)   # exactly exhausts
        assert acct.remaining_epsilon == pytest.approx(0.0)

    def test_spent_totals_are_cached_running_sums(self):
        # The properties must agree with the ledger without re-summing it
        # (the running totals make a long-lived accountant O(1) per spend).
        acct = PrivacyAccountant()
        for i in range(50):
            acct.spend(0.1, delta=1e-6, note=f"round {i}")
        assert acct.spent_epsilon == pytest.approx(sum(e.epsilon for e in acct.entries))
        assert acct.spent_delta == pytest.approx(sum(e.delta for e in acct.entries))

    def test_rejected_spend_leaves_totals_unchanged(self):
        acct = PrivacyAccountant(epsilon_budget=1.0)
        acct.spend(0.75)
        with pytest.raises(PrivacyBudgetExceeded):
            acct.spend(0.5)
        assert acct.spent_epsilon == pytest.approx(0.75)
        assert acct.spent_delta == 0.0
        assert len(acct.entries) == 1

    def test_can_spend_does_not_record(self):
        acct = PrivacyAccountant(epsilon_budget=1.0)
        assert acct.can_spend(1.0)
        assert not acct.can_spend(1.1)
        assert acct.spent_epsilon == 0.0

    def test_entries_carry_notes(self):
        acct = PrivacyAccountant()
        acct.spend(0.3, note="round 1")
        assert acct.entries[0].note == "round 1"

    def test_negative_spend_rejected(self):
        with pytest.raises(ConfigurationError):
            PrivacyAccountant().spend(-0.1)

    def test_invalid_budgets(self):
        with pytest.raises(ConfigurationError):
            PrivacyAccountant(epsilon_budget=0.0)
        with pytest.raises(ConfigurationError):
            PrivacyAccountant(delta_budget=1.5)


class TestBitMeter:
    def test_single_bit_per_value_default(self):
        meter = BitMeter()
        meter.record("c1", "metric")
        with pytest.raises(PrivacyBudgetExceeded):
            meter.record("c1", "metric")

    def test_different_values_independent(self):
        meter = BitMeter()
        meter.record("c1", "metric-a")
        meter.record("c1", "metric-b")
        assert meter.bits_disclosed_by("c1") == 2

    def test_different_clients_independent(self):
        meter = BitMeter()
        meter.record("c1", "m")
        meter.record("c2", "m")
        assert meter.total_bits == 2

    def test_per_client_cap(self):
        meter = BitMeter(max_bits_per_value=1, max_bits_per_client=2)
        meter.record("c1", "a")
        meter.record("c1", "b")
        with pytest.raises(PrivacyBudgetExceeded):
            meter.record("c1", "c")

    def test_rejected_record_leaves_counters_unchanged(self):
        meter = BitMeter(max_bits_per_value=1)
        meter.record("c1", "m")
        with pytest.raises(PrivacyBudgetExceeded):
            meter.record("c1", "m")
        assert meter.bits_disclosed_for("c1", "m") == 1
        assert meter.bits_disclosed_by("c1") == 1

    def test_rejected_record_inserts_no_entries(self):
        # Regression: defaultdict reads on the check path used to insert
        # zero entries for never-before-seen keys even when the disclosure
        # was rejected, so "leaves the meter unchanged" was violated at the
        # dict level (and total_bits iterated over ghost clients).
        meter = BitMeter(max_bits_per_value=1, max_bits_per_client=1)
        meter.record("c1", "a")
        with pytest.raises(PrivacyBudgetExceeded):
            meter.record("c1", "b")  # per-client cap rejects this
        assert ("c1", "b") not in meter._per_value
        with pytest.raises(PrivacyBudgetExceeded):
            meter.record("c2", "a", n_bits=2)  # per-value cap rejects this
        assert ("c2", "a") not in meter._per_value
        assert "c2" not in meter._per_client
        assert meter.total_bits == 1

    def test_total_bits_counts_all_clients(self):
        meter = BitMeter(max_bits_per_value=2)
        meter.record("c1", "a", n_bits=2)
        meter.record("c2", "a")
        assert meter.total_bits == 3

    def test_multi_bit_disclosure(self):
        meter = BitMeter(max_bits_per_value=4)
        meter.record("c1", "m", n_bits=3)
        assert meter.bits_disclosed_for("c1", "m") == 3
        with pytest.raises(PrivacyBudgetExceeded):
            meter.record("c1", "m", n_bits=2)

    def test_unknown_client_has_zero(self):
        meter = BitMeter()
        assert meter.bits_disclosed_by("nobody") == 0
        assert meter.bits_disclosed_for("nobody", "m") == 0

    def test_invalid_configuration(self):
        with pytest.raises(ConfigurationError):
            BitMeter(max_bits_per_value=0)
        with pytest.raises(ConfigurationError):
            BitMeter(max_bits_per_client=0)
        with pytest.raises(ConfigurationError):
            BitMeter().record("c", "m", n_bits=0)
