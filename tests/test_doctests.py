"""Run every docstring example in the library as a test.

Docstring examples are part of the public documentation; if one drifts from
the code it documents, that is a bug.  This module walks the ``repro``
package and executes each module's doctests.
"""

import doctest
import importlib
import pkgutil

import pytest

import repro


def _all_modules() -> list[str]:
    names = ["repro"]
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        names.append(info.name)
    return sorted(names)


@pytest.mark.parametrize("module_name", _all_modules())
def test_module_doctests(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(
        module,
        optionflags=doctest.NORMALIZE_WHITESPACE | doctest.ELLIPSIS,
        verbose=False,
    )
    assert results.failed == 0, f"{results.failed} doctest failure(s) in {module_name}"
