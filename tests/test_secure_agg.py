"""Secure aggregation: field, Shamir, masking, and the full protocol."""

import math

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, SecureAggregationError
from repro.federated.secure_agg import (
    DEFAULT_PRIME,
    PrimeField,
    SecureAggregationSession,
    Share,
    apply_masks,
    default_threshold,
    expand_mask,
    expand_masks,
    pairwise_mask_sign,
    philox4x64,
    reconstruct_secret,
    reconstruct_secrets,
    secure_sum,
    split_secret,
    split_secrets,
)
from repro.observability import MetricsRegistry, configure, disable


class TestPrimeField:
    def test_default_prime_is_mersenne_61(self):
        assert DEFAULT_PRIME == 2**61 - 1

    def test_composite_modulus_rejected(self):
        with pytest.raises(ConfigurationError):
            PrimeField(100)
        with pytest.raises(ConfigurationError):
            PrimeField(2**61)   # not prime

    def test_arithmetic(self):
        f = PrimeField(97)
        assert f.add(95, 5) == 3
        assert f.sub(2, 5) == 94
        assert f.mul(10, 10) == 3
        assert f.neg(1) == 96

    def test_inverse(self):
        f = PrimeField(97)
        for a in (1, 2, 50, 96):
            assert f.mul(a, f.inv(a)) == 1

    def test_zero_has_no_inverse(self):
        with pytest.raises(ZeroDivisionError):
            PrimeField(97).inv(0)

    def test_vectors(self):
        f = PrimeField(97)
        assert f.add_vectors([96, 1], [2, 2]) == [1, 3]
        assert f.sub_vectors([0, 5], [1, 2]) == [96, 3]

    def test_vector_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            PrimeField(97).add_vectors([1], [1, 2])

    def test_centered_recovers_signed(self):
        f = PrimeField(97)
        assert f.centered(f.reduce(-5)) == -5
        assert f.centered(40) == 40

    def test_random_element_in_range(self, rng):
        f = PrimeField(97)
        for _ in range(50):
            assert 0 <= f.random_element(rng) < 97


class TestShamir:
    def test_roundtrip_any_threshold_subset(self):
        field = PrimeField()
        shares = split_secret(987654321, n_shares=7, threshold=4, field=field, rng=0)
        for subset in ([0, 1, 2, 3], [3, 4, 5, 6], [0, 2, 4, 6]):
            picked = [shares[i] for i in subset]
            assert reconstruct_secret(picked, field) == 987654321

    def test_more_shares_than_threshold_still_work(self):
        field = PrimeField()
        shares = split_secret(42, n_shares=5, threshold=2, field=field, rng=1)
        assert reconstruct_secret(shares, field) == 42

    def test_below_threshold_gives_garbage(self):
        field = PrimeField()
        shares = split_secret(42, n_shares=5, threshold=3, field=field, rng=2)
        assert reconstruct_secret(shares[:2], field) != 42

    def test_single_share_with_threshold_one(self):
        field = PrimeField()
        shares = split_secret(7, n_shares=3, threshold=1, field=field, rng=3)
        assert reconstruct_secret([shares[2]], field) == 7

    def test_duplicate_points_rejected(self):
        field = PrimeField()
        shares = split_secret(7, n_shares=3, threshold=2, field=field, rng=4)
        with pytest.raises(SecureAggregationError):
            reconstruct_secret([shares[0], shares[0]], field)

    def test_empty_rejected(self):
        with pytest.raises(SecureAggregationError):
            reconstruct_secret([], PrimeField())

    def test_invalid_threshold(self):
        field = PrimeField()
        with pytest.raises(ConfigurationError):
            split_secret(1, n_shares=3, threshold=0, field=field)
        with pytest.raises(ConfigurationError):
            split_secret(1, n_shares=3, threshold=4, field=field)

    def test_secret_reduced_into_field(self):
        field = PrimeField(97)
        shares = split_secret(200, n_shares=3, threshold=2, field=field, rng=5)
        assert reconstruct_secret(shares[:2], field) == 200 % 97


class TestMasking:
    def test_expand_deterministic(self):
        field = PrimeField()
        assert expand_mask(123, 5, field) == expand_mask(123, 5, field)

    def test_different_seeds_differ(self):
        field = PrimeField()
        assert expand_mask(1, 5, field) != expand_mask(2, 5, field)

    def test_mask_values_in_field(self):
        field = PrimeField(97)
        assert all(0 <= v < 97 for v in expand_mask(9, 100, field))

    def test_negative_length_rejected(self):
        with pytest.raises(ConfigurationError):
            expand_mask(1, -1, PrimeField())

    def test_sign_convention_antisymmetric(self):
        assert pairwise_mask_sign(1, 2) == -pairwise_mask_sign(2, 1)

    def test_self_pair_rejected(self):
        with pytest.raises(ConfigurationError):
            pairwise_mask_sign(3, 3)

    def test_pairwise_masks_cancel_in_sum(self):
        field = PrimeField()
        seeds = {(0, 1): 11, (0, 2): 22, (1, 2): 33}
        values = [[10, 20], [30, 40], [50, 60]]
        total = [0, 0]
        for me in range(3):
            pair_seeds = {
                other: seeds[(min(me, other), max(me, other))]
                for other in range(3) if other != me
            }
            masked = apply_masks(values[me], self_seed=0, pairwise_seeds=pair_seeds,
                                 my_id=me, field=field)
            total = field.add_vectors(total, masked)
        # Self-seeds were all 0 -> expand(0) identical for all three clients,
        # so subtract it three times to isolate the data sum.
        zero_mask = expand_mask(0, 2, field)
        for _ in range(3):
            total = field.sub_vectors(total, zero_mask)
        assert total == [90, 120]


class TestSession:
    def test_exact_sum_no_dropout(self):
        session = SecureAggregationSession(5, 4, threshold=3, rng=0)
        expected = [0, 0, 0, 0]
        for cid in range(5):
            vec = [cid, cid * 2, 7, 1]
            expected = [e + v for e, v in zip(expected, vec)]
            session.submit(cid, vec)
        assert session.finalize() == expected

    @pytest.mark.parametrize("dropped", [{1}, {0, 4}, {2, 3}])
    def test_sum_with_dropouts(self, dropped):
        session = SecureAggregationSession(5, 3, threshold=3, rng=1)
        expected = [0, 0, 0]
        for cid in range(5):
            if cid in dropped:
                continue
            vec = [cid + 1, 10, cid]
            expected = [e + v for e, v in zip(expected, vec)]
            session.submit(cid, vec)
        assert session.finalize() == expected
        assert session.dropout_count == len(dropped)

    def test_below_threshold_fails(self):
        session = SecureAggregationSession(5, 2, threshold=4, rng=2)
        session.submit(0, [1, 1])
        session.submit(1, [1, 1])
        with pytest.raises(SecureAggregationError):
            session.finalize()

    def test_masked_submission_hides_plaintext(self):
        session = SecureAggregationSession(3, 4, threshold=2, rng=3)
        masked = session.submit(0, [5, 5, 5, 5])
        # The wire message is a uniform field vector; the odds it equals the
        # plaintext are negligible.
        assert masked != [5, 5, 5, 5]

    def test_double_submit_rejected(self):
        session = SecureAggregationSession(3, 1, threshold=2, rng=4)
        session.submit(0, [1])
        with pytest.raises(SecureAggregationError):
            session.submit(0, [1])

    def test_wrong_vector_length_rejected(self):
        session = SecureAggregationSession(3, 2, threshold=2, rng=5)
        with pytest.raises(ConfigurationError):
            session.submit(0, [1])

    def test_unknown_client_rejected(self):
        session = SecureAggregationSession(3, 1, threshold=2, rng=6)
        with pytest.raises(ConfigurationError):
            session.submit(7, [1])

    def test_finalize_twice_rejected(self):
        session = SecureAggregationSession(2, 1, threshold=2, rng=7)
        session.submit(0, [1])
        session.submit(1, [2])
        assert session.finalize() == [3]
        with pytest.raises(SecureAggregationError):
            session.finalize()

    def test_submit_after_finalize_rejected(self):
        session = SecureAggregationSession(3, 1, threshold=2, rng=8)
        session.submit(0, [1])
        session.submit(1, [2])
        session.finalize()
        with pytest.raises(SecureAggregationError):
            session.submit(2, [3])

    def test_invalid_construction(self):
        with pytest.raises(ConfigurationError):
            SecureAggregationSession(1, 2, threshold=1)
        with pytest.raises(ConfigurationError):
            SecureAggregationSession(3, 0, threshold=2)
        with pytest.raises(ConfigurationError):
            SecureAggregationSession(3, 2, threshold=5)


class TestSecureSum:
    def test_matches_plain_sum(self, rng):
        vecs = rng.integers(0, 1000, size=(10, 6))
        np.testing.assert_array_equal(secure_sum(vecs, rng=0), vecs.sum(axis=0))

    def test_with_dropouts(self, rng):
        vecs = rng.integers(0, 100, size=(9, 3))
        submitted = np.ones(9, dtype=bool)
        submitted[[2, 5]] = False
        np.testing.assert_array_equal(
            secure_sum(vecs, submitted, rng=1), vecs[submitted].sum(axis=0)
        )

    def test_shape_validation(self):
        with pytest.raises(ConfigurationError):
            secure_sum(np.zeros(5))
        with pytest.raises(ConfigurationError):
            secure_sum(np.zeros((4, 2)), submitted=np.ones(3, dtype=bool))


class TestArrayFieldOps:
    """The vectorized uint64 kernels agree exactly with the scalar path."""

    def test_reduce_array_matches_scalar(self, rng):
        field = PrimeField()
        raw = rng.integers(-(2**40), 2**40, size=50)
        reduced = field.reduce_array(raw)
        assert reduced.dtype == np.uint64
        assert reduced.tolist() == [field.reduce(int(v)) for v in raw]

    def test_add_sub_arrays_match_vectors(self, rng):
        field = PrimeField()
        a = field.reduce_array(rng.integers(0, 2**60, size=32))
        b = field.reduce_array(rng.integers(0, 2**60, size=32))
        assert field.add_arrays(a, b).tolist() == field.add_vectors(a.tolist(), b.tolist())
        assert field.sub_arrays(a, b).tolist() == field.sub_vectors(a.tolist(), b.tolist())

    @pytest.mark.parametrize("k", [1, 2, 7, 8, 20, 50])
    def test_sum_rows_exact_for_any_block_count(self, k, rng):
        field = PrimeField()
        # Near-modulus rows stress the uint64 block-folding headroom.
        rows = field.reduce_array(
            rng.integers(field.modulus - 10, field.modulus, size=(k, 5))
        )
        expected = [
            int(sum(int(v) for v in rows[:, j]) % field.modulus) for j in range(5)
        ]
        assert field.sum_rows(rows).tolist() == expected

    def test_centered_array_matches_scalar(self):
        field = PrimeField(97)
        values = np.array([0, 1, 48, 49, 96], dtype=np.uint64)
        assert field.centered_array(values).tolist() == [
            field.centered(int(v)) for v in values
        ]

    def test_oversized_modulus_rejected_for_array_ops(self):
        # 2**89 - 1 is a Mersenne prime above the uint64 vectorization bound.
        field = PrimeField(2**89 - 1)
        with pytest.raises(ConfigurationError):
            field.reduce_array(np.zeros(3, dtype=np.int64))


class TestExpandMasks:
    def test_rows_bit_identical_to_expand_mask(self):
        field = PrimeField()
        seeds = [0, 1, 123, field.modulus - 1]
        batched = expand_masks(seeds, 16, field)
        assert batched.shape == (4, 16)
        assert batched.dtype == np.uint64
        for row, seed in zip(batched, seeds):
            assert [int(v) for v in row] == expand_mask(seed, 16, field)

    def test_zero_length(self):
        assert expand_masks([1, 2], 0, PrimeField()).shape == (2, 0)

    def test_negative_length_rejected(self):
        with pytest.raises(ConfigurationError):
            expand_masks([1], -1, PrimeField())


class TestPhiloxKernel:
    """The numpy philox4x64-10 kernel is pinned to numpy's own Philox."""

    def test_pinned_to_numpy_philox_random_raw(self, rng):
        keys = [0, 1, 2**32, DEFAULT_PRIME - 1] + [
            int(k) for k in rng.integers(0, DEFAULT_PRIME, size=8)
        ]
        counters = np.arange(1, 6, dtype=np.uint64)
        lanes = philox4x64(
            np.asarray(keys, dtype=np.uint64)[:, None], counters[None, :]
        )
        ours = np.stack(lanes, axis=-1)  # (keys, counters, 4)
        for i, key in enumerate(keys):
            # numpy pre-increments the counter, so its raw block j holds
            # the kernel's output at counter j + 1.
            raw = np.random.Philox(key=key).random_raw(20).reshape(5, 4)
            np.testing.assert_array_equal(ours[i], raw)

    def test_expand_masks_matches_numpy_stream(self):
        field = PrimeField()
        for seed in (0, 7, 123456789, field.modulus - 1):
            expected = np.random.Philox(key=seed).random_raw(12)[:11] % np.uint64(
                field.modulus
            )
            np.testing.assert_array_equal(
                expand_masks([seed], 11, field)[0], expected
            )

    def test_broadcasts_scalar_inputs(self):
        scalar = philox4x64(np.uint64(5), np.uint64(1))
        grid = philox4x64(np.full((2, 3), 5, dtype=np.uint64), np.uint64(1))
        for lane_s, lane_g in zip(scalar, grid):
            assert lane_g.shape == (2, 3)
            assert (lane_g == lane_s).all()


class TestMulArrays:
    def test_matches_scalar_mul_on_random_pairs(self, rng):
        field = PrimeField()
        a = field.reduce_array(rng.integers(0, field.modulus, size=500))
        b = field.reduce_array(rng.integers(0, field.modulus, size=500))
        expected = [field.mul(int(x), int(y)) for x, y in zip(a, b)]
        assert field.mul_arrays(a, b).tolist() == expected

    def test_near_modulus_corners(self):
        field = PrimeField()
        edge = [0, 1, 2, field.modulus - 2, field.modulus - 1]
        a, b = np.meshgrid(
            np.asarray(edge, dtype=np.uint64), np.asarray(edge, dtype=np.uint64)
        )
        expected = [
            [field.mul(int(x), int(y)) for x, y in zip(row_a, row_b)]
            for row_a, row_b in zip(a, b)
        ]
        assert field.mul_arrays(a, b).tolist() == expected

    def test_generic_modulus_fallback(self, rng):
        field = PrimeField(97)
        a = field.reduce_array(rng.integers(0, 97, size=40))
        b = field.reduce_array(rng.integers(0, 97, size=40))
        expected = [field.mul(int(x), int(y)) for x, y in zip(a, b)]
        assert field.mul_arrays(a, b).tolist() == expected

    def test_broadcasting(self):
        field = PrimeField()
        a = np.asarray([1, 2, 3], dtype=np.uint64)
        out = field.mul_arrays(a[:, None], a[None, :])
        assert out.shape == (3, 3)
        assert out.tolist() == [[1, 2, 3], [2, 4, 6], [3, 6, 9]]


class TestSumIndexed:
    def test_matches_per_row_sums(self, rng):
        field = PrimeField()
        rows = field.reduce_array(
            rng.integers(field.modulus - 5, field.modulus, size=(7, 4))
        )
        indices = np.asarray([[0, 1, 2], [4, 5, 6]], dtype=np.intp)
        out = field.sum_indexed(rows, indices)
        for got, picks in zip(out, indices):
            expected = [
                int(sum(int(rows[i, j]) for i in picks) % field.modulus)
                for j in range(4)
            ]
            assert got.tolist() == expected

    def test_sentinel_zero_row_padding(self):
        # Ragged index lists are padded with the index of an all-zero
        # sentinel row; repeated sentinel picks must not change the sum.
        field = PrimeField()
        rows = np.vstack(
            [
                field.reduce_array(np.asarray([[5, 6], [7, 8]])),
                np.zeros((1, 2), dtype=np.uint64),
            ]
        )
        indices = np.asarray([[0, 2, 2, 2], [0, 1, 2, 2]], dtype=np.intp)
        out = field.sum_indexed(rows, indices)
        assert out.tolist() == [[5, 6], [12, 14]]


class TestBatchedShamir:
    def test_split_secrets_stream_identical_to_scalar_loop(self, rng):
        field = PrimeField()
        secrets = [int(s) for s in rng.integers(0, field.modulus, size=9)]
        batched = split_secrets(
            secrets, n_shares=7, threshold=5, field=field, rng=np.random.default_rng(3)
        )
        gen = np.random.default_rng(3)
        for row, secret in zip(batched, secrets):
            shares = split_secret(secret, n_shares=7, threshold=5, field=field, rng=gen)
            assert [int(y) for y in row] == [s.y for s in shares]
            assert [s.x for s in shares] == list(range(1, 8))

    def test_reconstruct_secrets_matches_scalar(self, rng):
        field = PrimeField()
        secrets = [int(s) for s in rng.integers(0, field.modulus, size=6)]
        shares_matrix = split_secrets(
            secrets, n_shares=5, threshold=3, field=field, rng=1
        )
        xs = [2, 4, 5]
        ys = shares_matrix[:, [x - 1 for x in xs]]
        batched = reconstruct_secrets(xs, ys, field, expected_threshold=3)
        assert batched.tolist() == secrets
        for row, secret in zip(ys, secrets):
            shares = [Share(x=x, y=int(y)) for x, y in zip(xs, row)]
            assert reconstruct_secret(shares, field, expected_threshold=3) == secret

    def test_threshold_one_constant_polynomial(self):
        field = PrimeField()
        out = split_secrets([42, 7], n_shares=3, threshold=1, field=field, rng=0)
        assert out.tolist() == [[42, 42, 42], [7, 7, 7]]

    def test_batched_error_cases(self):
        field = PrimeField()
        ys = np.ones((2, 2), dtype=np.uint64)
        with pytest.raises(SecureAggregationError, match="zero shares"):
            reconstruct_secrets([], np.zeros((1, 0), dtype=np.uint64), field)
        with pytest.raises(SecureAggregationError, match="needs >= 3 shares"):
            reconstruct_secrets([1, 2], ys, field, expected_threshold=3)
        with pytest.raises(SecureAggregationError, match="duplicate"):
            reconstruct_secrets([1, 1], ys, field)
        with pytest.raises(ConfigurationError, match="2 columns for 3 points"):
            reconstruct_secrets([1, 2, 3], ys, field)
        with pytest.raises(ConfigurationError, match="threshold"):
            split_secrets([1], n_shares=2, threshold=3, field=field, rng=0)


class TestExpectedThreshold:
    def test_under_threshold_raises_instead_of_garbage(self):
        field = PrimeField()
        shares = split_secret(42, n_shares=5, threshold=3, field=field, rng=0)
        with pytest.raises(SecureAggregationError, match="needs >= 3 shares"):
            reconstruct_secret(shares[:2], field, expected_threshold=3)

    def test_at_threshold_reconstructs(self):
        field = PrimeField()
        shares = split_secret(42, n_shares=5, threshold=3, field=field, rng=0)
        assert reconstruct_secret(shares[:3], field, expected_threshold=3) == 42


class TestDefaultThreshold:
    @pytest.mark.parametrize("n", list(range(1, 200)))
    def test_single_formula_matches_both_historical_copies(self, n):
        # secure_sum used max(2, (2n + 2) // 3); _secure_collect used
        # max(2, ceil(2n / 3)).  The shared helper must equal both.
        assert default_threshold(n) == max(2, (2 * n + 2) // 3)
        assert default_threshold(n) == max(2, math.ceil(2 * n / 3))

    def test_invalid_n(self):
        with pytest.raises(ConfigurationError):
            default_threshold(0)


class TestSubmitBatch:
    def test_bit_identical_to_per_client_submits(self, rng):
        vecs = rng.integers(0, 1000, size=(6, 5))
        one = SecureAggregationSession(6, 5, threshold=4, rng=42)
        two = SecureAggregationSession(6, 5, threshold=4, rng=42)
        per_client = [one.submit(cid, [int(v) for v in vecs[cid]]) for cid in range(6)]
        batched = two.submit_batch(np.arange(6), vecs)
        assert [list(map(int, row)) for row in batched] == per_client
        assert one.finalize() == two.finalize()

    def test_partial_batch_then_finalize_recovers_dropouts(self, rng):
        vecs = rng.integers(0, 50, size=(7, 3))
        session = SecureAggregationSession(7, 3, threshold=5, rng=9)
        ids = [0, 2, 3, 5, 6]
        session.submit_batch(ids, vecs[ids])
        assert session.finalize() == vecs[ids].sum(axis=0).tolist()

    def test_duplicate_ids_in_batch_rejected(self):
        session = SecureAggregationSession(4, 2, threshold=3, rng=0)
        with pytest.raises(SecureAggregationError):
            session.submit_batch([1, 1], np.zeros((2, 2), dtype=np.int64))

    def test_shape_mismatch_rejected(self):
        session = SecureAggregationSession(4, 2, threshold=3, rng=0)
        with pytest.raises(ConfigurationError):
            session.submit_batch([0, 1], np.zeros((2, 3), dtype=np.int64))

    def test_empty_batch_is_noop(self):
        session = SecureAggregationSession(4, 2, threshold=2, rng=0)
        out = session.submit_batch([], np.zeros((0, 2), dtype=np.int64))
        assert out.shape == (0, 2)
        assert session.submitted_clients == ()


class TestFinalizeMetrics:
    """The failure counter respects the enabled guard and never double-counts."""

    def _failing_session(self):
        session = SecureAggregationSession(5, 2, threshold=4, rng=2)
        session.submit(0, [1, 1])
        session.submit(1, [1, 1])
        return session

    def test_failure_counted_once_across_repeated_finalize(self):
        registry = MetricsRegistry()
        configure(metrics=registry)
        try:
            session = self._failing_session()
            for _ in range(3):
                with pytest.raises(SecureAggregationError):
                    session.finalize()
            counters = registry.snapshot()["counters"]
            assert counters["secure_agg_failures_total"] == 1
            assert session.failed
        finally:
            disable()

    def test_failure_counter_respects_disabled_metrics(self):
        registry = MetricsRegistry()
        configure(metrics=registry)
        disable()  # NULL_METRICS: nothing may record, success or failure
        session = self._failing_session()
        with pytest.raises(SecureAggregationError):
            session.finalize()
        assert registry.snapshot()["counters"] == {}
