"""Secure aggregation: field, Shamir, masking, and the full protocol."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, SecureAggregationError
from repro.federated.secure_agg import (
    DEFAULT_PRIME,
    PrimeField,
    SecureAggregationSession,
    apply_masks,
    expand_mask,
    pairwise_mask_sign,
    reconstruct_secret,
    secure_sum,
    split_secret,
)


class TestPrimeField:
    def test_default_prime_is_mersenne_61(self):
        assert DEFAULT_PRIME == 2**61 - 1

    def test_composite_modulus_rejected(self):
        with pytest.raises(ConfigurationError):
            PrimeField(100)
        with pytest.raises(ConfigurationError):
            PrimeField(2**61)   # not prime

    def test_arithmetic(self):
        f = PrimeField(97)
        assert f.add(95, 5) == 3
        assert f.sub(2, 5) == 94
        assert f.mul(10, 10) == 3
        assert f.neg(1) == 96

    def test_inverse(self):
        f = PrimeField(97)
        for a in (1, 2, 50, 96):
            assert f.mul(a, f.inv(a)) == 1

    def test_zero_has_no_inverse(self):
        with pytest.raises(ZeroDivisionError):
            PrimeField(97).inv(0)

    def test_vectors(self):
        f = PrimeField(97)
        assert f.add_vectors([96, 1], [2, 2]) == [1, 3]
        assert f.sub_vectors([0, 5], [1, 2]) == [96, 3]

    def test_vector_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            PrimeField(97).add_vectors([1], [1, 2])

    def test_centered_recovers_signed(self):
        f = PrimeField(97)
        assert f.centered(f.reduce(-5)) == -5
        assert f.centered(40) == 40

    def test_random_element_in_range(self, rng):
        f = PrimeField(97)
        for _ in range(50):
            assert 0 <= f.random_element(rng) < 97


class TestShamir:
    def test_roundtrip_any_threshold_subset(self):
        field = PrimeField()
        shares = split_secret(987654321, n_shares=7, threshold=4, field=field, rng=0)
        for subset in ([0, 1, 2, 3], [3, 4, 5, 6], [0, 2, 4, 6]):
            picked = [shares[i] for i in subset]
            assert reconstruct_secret(picked, field) == 987654321

    def test_more_shares_than_threshold_still_work(self):
        field = PrimeField()
        shares = split_secret(42, n_shares=5, threshold=2, field=field, rng=1)
        assert reconstruct_secret(shares, field) == 42

    def test_below_threshold_gives_garbage(self):
        field = PrimeField()
        shares = split_secret(42, n_shares=5, threshold=3, field=field, rng=2)
        assert reconstruct_secret(shares[:2], field) != 42

    def test_single_share_with_threshold_one(self):
        field = PrimeField()
        shares = split_secret(7, n_shares=3, threshold=1, field=field, rng=3)
        assert reconstruct_secret([shares[2]], field) == 7

    def test_duplicate_points_rejected(self):
        field = PrimeField()
        shares = split_secret(7, n_shares=3, threshold=2, field=field, rng=4)
        with pytest.raises(SecureAggregationError):
            reconstruct_secret([shares[0], shares[0]], field)

    def test_empty_rejected(self):
        with pytest.raises(SecureAggregationError):
            reconstruct_secret([], PrimeField())

    def test_invalid_threshold(self):
        field = PrimeField()
        with pytest.raises(ConfigurationError):
            split_secret(1, n_shares=3, threshold=0, field=field)
        with pytest.raises(ConfigurationError):
            split_secret(1, n_shares=3, threshold=4, field=field)

    def test_secret_reduced_into_field(self):
        field = PrimeField(97)
        shares = split_secret(200, n_shares=3, threshold=2, field=field, rng=5)
        assert reconstruct_secret(shares[:2], field) == 200 % 97


class TestMasking:
    def test_expand_deterministic(self):
        field = PrimeField()
        assert expand_mask(123, 5, field) == expand_mask(123, 5, field)

    def test_different_seeds_differ(self):
        field = PrimeField()
        assert expand_mask(1, 5, field) != expand_mask(2, 5, field)

    def test_mask_values_in_field(self):
        field = PrimeField(97)
        assert all(0 <= v < 97 for v in expand_mask(9, 100, field))

    def test_negative_length_rejected(self):
        with pytest.raises(ConfigurationError):
            expand_mask(1, -1, PrimeField())

    def test_sign_convention_antisymmetric(self):
        assert pairwise_mask_sign(1, 2) == -pairwise_mask_sign(2, 1)

    def test_self_pair_rejected(self):
        with pytest.raises(ConfigurationError):
            pairwise_mask_sign(3, 3)

    def test_pairwise_masks_cancel_in_sum(self):
        field = PrimeField()
        seeds = {(0, 1): 11, (0, 2): 22, (1, 2): 33}
        values = [[10, 20], [30, 40], [50, 60]]
        total = [0, 0]
        for me in range(3):
            pair_seeds = {
                other: seeds[(min(me, other), max(me, other))]
                for other in range(3) if other != me
            }
            masked = apply_masks(values[me], self_seed=0, pairwise_seeds=pair_seeds,
                                 my_id=me, field=field)
            total = field.add_vectors(total, masked)
        # Self-seeds were all 0 -> expand(0) identical for all three clients,
        # so subtract it three times to isolate the data sum.
        zero_mask = expand_mask(0, 2, field)
        for _ in range(3):
            total = field.sub_vectors(total, zero_mask)
        assert total == [90, 120]


class TestSession:
    def test_exact_sum_no_dropout(self):
        session = SecureAggregationSession(5, 4, threshold=3, rng=0)
        expected = [0, 0, 0, 0]
        for cid in range(5):
            vec = [cid, cid * 2, 7, 1]
            expected = [e + v for e, v in zip(expected, vec)]
            session.submit(cid, vec)
        assert session.finalize() == expected

    @pytest.mark.parametrize("dropped", [{1}, {0, 4}, {2, 3}])
    def test_sum_with_dropouts(self, dropped):
        session = SecureAggregationSession(5, 3, threshold=3, rng=1)
        expected = [0, 0, 0]
        for cid in range(5):
            if cid in dropped:
                continue
            vec = [cid + 1, 10, cid]
            expected = [e + v for e, v in zip(expected, vec)]
            session.submit(cid, vec)
        assert session.finalize() == expected
        assert session.dropout_count == len(dropped)

    def test_below_threshold_fails(self):
        session = SecureAggregationSession(5, 2, threshold=4, rng=2)
        session.submit(0, [1, 1])
        session.submit(1, [1, 1])
        with pytest.raises(SecureAggregationError):
            session.finalize()

    def test_masked_submission_hides_plaintext(self):
        session = SecureAggregationSession(3, 4, threshold=2, rng=3)
        masked = session.submit(0, [5, 5, 5, 5])
        # The wire message is a uniform field vector; the odds it equals the
        # plaintext are negligible.
        assert masked != [5, 5, 5, 5]

    def test_double_submit_rejected(self):
        session = SecureAggregationSession(3, 1, threshold=2, rng=4)
        session.submit(0, [1])
        with pytest.raises(SecureAggregationError):
            session.submit(0, [1])

    def test_wrong_vector_length_rejected(self):
        session = SecureAggregationSession(3, 2, threshold=2, rng=5)
        with pytest.raises(ConfigurationError):
            session.submit(0, [1])

    def test_unknown_client_rejected(self):
        session = SecureAggregationSession(3, 1, threshold=2, rng=6)
        with pytest.raises(ConfigurationError):
            session.submit(7, [1])

    def test_finalize_twice_rejected(self):
        session = SecureAggregationSession(2, 1, threshold=2, rng=7)
        session.submit(0, [1])
        session.submit(1, [2])
        assert session.finalize() == [3]
        with pytest.raises(SecureAggregationError):
            session.finalize()

    def test_submit_after_finalize_rejected(self):
        session = SecureAggregationSession(3, 1, threshold=2, rng=8)
        session.submit(0, [1])
        session.submit(1, [2])
        session.finalize()
        with pytest.raises(SecureAggregationError):
            session.submit(2, [3])

    def test_invalid_construction(self):
        with pytest.raises(ConfigurationError):
            SecureAggregationSession(1, 2, threshold=1)
        with pytest.raises(ConfigurationError):
            SecureAggregationSession(3, 0, threshold=2)
        with pytest.raises(ConfigurationError):
            SecureAggregationSession(3, 2, threshold=5)


class TestSecureSum:
    def test_matches_plain_sum(self, rng):
        vecs = rng.integers(0, 1000, size=(10, 6))
        np.testing.assert_array_equal(secure_sum(vecs, rng=0), vecs.sum(axis=0))

    def test_with_dropouts(self, rng):
        vecs = rng.integers(0, 100, size=(9, 3))
        submitted = np.ones(9, dtype=bool)
        submitted[[2, 5]] = False
        np.testing.assert_array_equal(
            secure_sum(vecs, submitted, rng=1), vecs[submitted].sum(axis=0)
        )

    def test_shape_validation(self):
        with pytest.raises(ConfigurationError):
            secure_sum(np.zeros(5))
        with pytest.raises(ConfigurationError):
            secure_sum(np.zeros((4, 2)), submitted=np.ones(3, dtype=bool))
