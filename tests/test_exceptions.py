"""The exception hierarchy: everything derives from ReproError."""

import pytest

from repro import exceptions


@pytest.mark.parametrize(
    "subclass",
    [
        exceptions.ConfigurationError,
        exceptions.EncodingError,
        exceptions.ProtocolError,
        exceptions.PrivacyBudgetExceeded,
        exceptions.CohortTooSmallError,
        exceptions.SecureAggregationError,
        exceptions.DataGenerationError,
    ],
)
def test_all_errors_derive_from_repro_error(subclass):
    assert issubclass(subclass, exceptions.ReproError)


def test_repro_error_is_an_exception():
    assert issubclass(exceptions.ReproError, Exception)


def test_catching_base_class_catches_subclass():
    with pytest.raises(exceptions.ReproError):
        raise exceptions.EncodingError("nope")


def test_errors_carry_messages():
    err = exceptions.CohortTooSmallError("only 3 eligible")
    assert "only 3 eligible" in str(err)
