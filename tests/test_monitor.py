"""Heavy-tail / upper-bound monitoring."""

import numpy as np
import pytest

from repro.core.monitor import HighBitMonitor
from repro.exceptions import ConfigurationError


def _means(top_bit: int, n_bits: int = 12) -> np.ndarray:
    means = np.zeros(n_bits)
    means[: top_bit + 1] = 0.4
    return means


class TestConstruction:
    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            HighBitMonitor(noise_floor=-0.1)
        with pytest.raises(ConfigurationError):
            HighBitMonitor(shift_threshold=0)
        with pytest.raises(ConfigurationError):
            HighBitMonitor(window=0)


class TestTopOccupiedBit:
    def test_basic(self):
        monitor = HighBitMonitor()
        assert monitor.top_occupied_bit(_means(5)) == 5

    def test_respects_noise_floor(self):
        monitor = HighBitMonitor(noise_floor=0.05)
        means = np.array([0.5, 0.02, 0.0])
        assert monitor.top_occupied_bit(means) == 0

    def test_all_empty_is_minus_one(self):
        assert HighBitMonitor().top_occupied_bit(np.zeros(8)) == -1


class TestAlerting:
    def test_no_alert_while_stable(self):
        monitor = HighBitMonitor(window=3)
        for _ in range(10):
            assert monitor.update(_means(5)) is None

    def test_no_alert_before_window_fills(self):
        monitor = HighBitMonitor(window=4, shift_threshold=1)
        assert monitor.update(_means(2)) is None
        assert monitor.update(_means(9)) is None   # only 1 observation in window

    def test_alert_on_upward_shift(self):
        monitor = HighBitMonitor(window=3, shift_threshold=2)
        for _ in range(3):
            monitor.update(_means(4))
        alert = monitor.update(_means(8))
        assert alert is not None
        assert alert.shift == 4
        assert alert.baseline_bit == 4
        assert alert.observed_bit == 8
        assert alert.upper_bound == 2**9 - 1
        assert "grew" in alert.message

    def test_alert_on_downward_shift(self):
        monitor = HighBitMonitor(window=3, shift_threshold=2)
        for _ in range(3):
            monitor.update(_means(8))
        alert = monitor.update(_means(3))
        assert alert is not None and alert.shift == -5
        assert "shrank" in alert.message

    def test_small_shift_below_threshold_ignored(self):
        monitor = HighBitMonitor(window=3, shift_threshold=3)
        for _ in range(3):
            monitor.update(_means(5))
        assert monitor.update(_means(6)) is None

    def test_alerts_accumulate(self):
        monitor = HighBitMonitor(window=2, shift_threshold=2)
        for _ in range(2):
            monitor.update(_means(3))
        monitor.update(_means(7))
        monitor.update(_means(3))
        assert len(monitor.alerts) == 2


class TestStateAccessors:
    def test_current_upper_bound(self):
        monitor = HighBitMonitor()
        assert monitor.current_upper_bound == 0.0
        monitor.update(_means(4))
        assert monitor.current_upper_bound == 2**5 - 1

    def test_empty_data_bound_is_zero(self):
        monitor = HighBitMonitor()
        monitor.update(np.zeros(8))
        assert monitor.current_upper_bound == 0.0

    def test_rounds_observed(self):
        monitor = HighBitMonitor()
        for _ in range(5):
            monitor.update(_means(2))
        assert monitor.rounds_observed == 5


class TestEndToEndWithEstimates:
    def test_detects_telemetry_regression(self):
        """Feed federated rounds of drifting latency; the monitor should alert
        when a simulated regression multiplies the metric by 8x."""
        from repro.core import AdaptiveBitPushing, FixedPointEncoder
        from repro.data.telemetry import drifting_latency

        rng = np.random.default_rng(40)
        encoder = FixedPointEncoder.for_integers(14)
        est = AdaptiveBitPushing(encoder)
        monitor = HighBitMonitor(noise_floor=0.01, shift_threshold=2, window=3)
        alerts = []
        for round_index in range(10):
            values = drifting_latency(
                4_000, round_index, base_ms=100.0, shift_round=6, shift_factor=8.0, rng=rng
            )
            result = est.estimate(values, rng)
            alert = monitor.update(result.bit_means)
            if alert is not None:
                alerts.append((round_index, alert))
        assert alerts, "regression was never flagged"
        first_round = alerts[0][0]
        assert first_round == 6
        assert alerts[0][1].shift >= 2
