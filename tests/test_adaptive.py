"""Adaptive (two-round) bit-pushing -- Algorithm 2."""

import numpy as np
import pytest

from repro.core import AdaptiveBitPushing, BasicBitPushing, FixedPointEncoder
from repro.exceptions import ConfigurationError
from repro.privacy import RandomizedResponse


class TestConstruction:
    def test_invalid_delta(self, encoder8):
        for delta in (0.0, 1.0, -0.5, 2.0):
            with pytest.raises(ConfigurationError):
                AdaptiveBitPushing(encoder8, delta=delta)

    def test_invalid_alpha(self, encoder8):
        with pytest.raises(ConfigurationError):
            AdaptiveBitPushing(encoder8, alpha=-1.0)

    def test_invalid_randomness(self, encoder8):
        with pytest.raises(ConfigurationError):
            AdaptiveBitPushing(encoder8, randomness="psychic")

    def test_squash_without_perturbation_raises(self, encoder8):
        with pytest.raises(ConfigurationError):
            AdaptiveBitPushing(encoder8, squash_multiple=2.0)

    def test_too_few_clients_raise(self, encoder8, rng):
        with pytest.raises(ConfigurationError):
            AdaptiveBitPushing(encoder8).estimate(np.array([5.0]), rng)


class TestAccuracy:
    def test_recovers_constant_population(self, encoder8):
        est = AdaptiveBitPushing(encoder8)
        assert est.estimate(np.full(20_000, 42.0), rng=0).value == pytest.approx(42.0)

    def test_unbiasedness(self, encoder10):
        rng = np.random.default_rng(20)
        values = np.clip(rng.normal(600, 100, 5_000), 0, None)
        est = AdaptiveBitPushing(encoder10)
        estimates = [est.estimate(values, rng).value for _ in range(300)]
        stderr = np.std(estimates) / np.sqrt(len(estimates))
        assert abs(np.mean(estimates) - values.mean()) < 4 * stderr

    def test_beats_basic_under_loose_bit_depth(self):
        """The paper's core claim: adaptivity wins when the range bound is loose."""
        rng = np.random.default_rng(21)
        encoder = FixedPointEncoder.for_integers(18)   # data needs only ~11 bits
        basic = BasicBitPushing(encoder)
        adaptive = AdaptiveBitPushing(encoder)

        def rmse(estimator):
            errs = []
            for _ in range(60):
                values = np.clip(rng.normal(1000, 100, 5_000), 0, None)
                errs.append(estimator.estimate(values, rng).value - values.mean())
            return float(np.sqrt(np.mean(np.square(errs))))

        assert rmse(adaptive) < rmse(basic)

    def test_insensitive_to_bit_depth(self):
        """Figure 1c behaviour: error roughly flat as slack bits are added."""
        rng = np.random.default_rng(22)

        def rmse(n_bits):
            est = AdaptiveBitPushing(FixedPointEncoder.for_integers(n_bits))
            errs = []
            for _ in range(50):
                values = np.clip(rng.normal(1000, 100, 5_000), 0, None)
                errs.append(est.estimate(values, rng).value - values.mean())
            return float(np.sqrt(np.mean(np.square(errs))))

        assert rmse(20) < 3.0 * rmse(11)


class TestRounds:
    def test_two_rounds_recorded(self, encoder10, rng):
        result = AdaptiveBitPushing(encoder10).estimate(np.full(1_000, 300.0), rng)
        assert len(result.rounds) == 2

    def test_delta_split_respected(self, encoder10, rng):
        est = AdaptiveBitPushing(encoder10, delta=0.25)
        result = est.estimate(np.full(1_000, 300.0), rng)
        assert result.rounds[0].n_clients == 250
        assert result.rounds[1].n_clients == 750

    def test_round2_avoids_bits_found_empty(self, encoder10):
        # Half the clients hold 4 (0b0100), half hold 12 (0b1100): only
        # bit 3 has non-trivial variance, so round 2 should focus there and
        # give zero probability to bits round 1 found constant.
        rng = np.random.default_rng(23)
        values = np.array([4.0, 12.0] * 2_000)
        est = AdaptiveBitPushing(encoder10, delta=0.5)
        result = est.estimate(values, rng)
        round2 = result.rounds[1]
        assert round2.probabilities[3] == pytest.approx(1.0)
        assert round2.probabilities[9] == 0.0
        assert round2.probabilities[0] == 0.0

    def test_constant_population_falls_back_gracefully(self, encoder10, rng):
        # Constant data has zero variance at every bit; round 2 falls back
        # to the worst-case-optimal schedule and the estimate stays exact.
        est = AdaptiveBitPushing(encoder10, delta=0.5)
        result = est.estimate(np.full(4_000, 12.0), rng)
        assert result.value == pytest.approx(12.0)

    def test_caching_pools_counts(self, encoder10, rng):
        cached = AdaptiveBitPushing(encoder10, caching=True)
        result = cached.estimate(np.full(2_000, 300.0), rng)
        assert result.counts.sum() == 2_000

    def test_no_caching_still_estimates(self, encoder10):
        rng = np.random.default_rng(24)
        est = AdaptiveBitPushing(encoder10, caching=False)
        values = np.clip(rng.normal(300, 50, 5_000), 0, None)
        assert est.estimate(values, rng).value == pytest.approx(values.mean(), rel=0.1)

    def test_caching_reduces_error(self, encoder10):
        rng = np.random.default_rng(25)

        def rmse(caching):
            est = AdaptiveBitPushing(encoder10, caching=caching)
            errs = []
            for _ in range(80):
                values = np.clip(rng.normal(300, 60, 3_000), 0, None)
                errs.append(est.estimate(values, rng).value - values.mean())
            return float(np.sqrt(np.mean(np.square(errs))))

        # Pooling strictly adds evidence; allow slack for Monte-Carlo noise.
        assert rmse(True) < 1.15 * rmse(False)


class TestAdaptiveLdp:
    def test_squash_multiple_filters_noise_bits(self):
        rng = np.random.default_rng(26)
        encoder = FixedPointEncoder.for_integers(16)
        est = AdaptiveBitPushing(
            encoder,
            perturbation=RandomizedResponse(epsilon=2.0),
            squash_multiple=2.0,
        )
        values = np.clip(rng.normal(40, 10, 20_000), 0, None)   # needs ~6 bits
        result = est.estimate(values, rng)
        assert result.value == pytest.approx(values.mean(), rel=0.25)
        assert len(result.squashed_bits) > 0

    def test_squashing_under_dp_beats_no_squashing(self):
        """Figure 4 behaviour: with loose bit depth and DP noise, squashing
        improves accuracy by a large factor."""
        rng = np.random.default_rng(27)
        encoder = FixedPointEncoder.for_integers(16)
        rr = RandomizedResponse(epsilon=2.0)

        def rmse(squash_multiple):
            est = AdaptiveBitPushing(encoder, perturbation=rr, squash_multiple=squash_multiple)
            errs = []
            for _ in range(30):
                values = np.clip(rng.normal(40, 10, 10_000), 0, None)
                errs.append(est.estimate(values, rng).value - values.mean())
            return float(np.sqrt(np.mean(np.square(errs))))

        assert rmse(2.0) < 0.5 * rmse(0.0)

    def test_gamma_defaults_to_uniform_under_dp(self, encoder8):
        """RR noise is level-independent, so the DP exploratory round
        samples uniformly by default; without DP it keeps gamma = 0.5."""
        plain = AdaptiveBitPushing(encoder8)
        private = AdaptiveBitPushing(encoder8, perturbation=RandomizedResponse(epsilon=2.0))
        assert plain.gamma == 0.5
        assert private.gamma == 0.0

    def test_gamma_override_respected_under_dp(self, encoder8):
        est = AdaptiveBitPushing(
            encoder8, gamma=0.3, perturbation=RandomizedResponse(epsilon=2.0)
        )
        assert est.gamma == 0.3

    def test_metadata_records_parameters(self, encoder8, rng):
        est = AdaptiveBitPushing(
            encoder8, gamma=0.7, alpha=1.0, delta=0.4, caching=False,
            perturbation=RandomizedResponse(epsilon=3.0), squash_multiple=1.0,
        )
        result = est.estimate(np.full(1_000, 10.0), rng)
        meta = result.metadata
        assert meta["gamma"] == 0.7
        assert meta["alpha"] == 1.0
        assert meta["delta"] == 0.4
        assert meta["caching"] is False
        assert meta["ldp"] is True
