"""Guard: the README's quickstart code runs exactly as written."""

import re
from pathlib import Path

import numpy as np

README = Path(__file__).resolve().parents[1] / "README.md"


def _python_blocks(text: str) -> list[str]:
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


class TestReadme:
    def test_readme_exists_and_mentions_the_paper(self):
        text = README.read_text()
        assert "Private and Efficient Federated Numerical Aggregation" in text
        assert "EDBT 2024" in text

    def test_quickstart_block_executes(self, capsys):
        blocks = _python_blocks(README.read_text())
        assert blocks, "README has no python code blocks"
        namespace: dict = {}
        exec(compile(blocks[0], "<README quickstart>", "exec"), namespace)
        # The quickstart prints the estimate; capture it so a clean pytest
        # run emits nothing, and assert it printed what it computed.
        printed = capsys.readouterr().out
        assert str(namespace["estimate"].value) in printed
        # The block produces both estimates and they are sane.
        assert abs(namespace["estimate"].value - 420.0) < 20.0
        assert abs(namespace["private"].value - 420.0) < 60.0

    def test_documented_commands_exist(self):
        """Every `repro-figures ...` invocation in the README parses."""
        from repro.cli import ABLATIONS, FIGURE_PANELS

        text = README.read_text()
        for match in re.findall(r"repro-figures figure (\S+)", text):
            assert match.strip("`") in FIGURE_PANELS, match
        for match in re.findall(r"repro-figures ablation (\S+)", text):
            assert match.strip("`") in ABLATIONS, match

    def test_documented_doc_files_exist(self):
        root = README.parent
        for rel in ("DESIGN.md", "EXPERIMENTS.md", "docs/protocol.md",
                    "docs/privacy.md", "docs/operations.md", "LICENSE"):
            assert (root / rel).exists(), rel


class TestFigureDeterminism:
    def test_full_panel_reproducible(self):
        """Two invocations of a figure function are bit-identical."""
        from repro.experiments import figure_3b

        a = figure_3b(epsilons=(2.0,), n_clients=1_000, n_reps=3)
        b = figure_3b(epsilons=(2.0,), n_clients=1_000, n_reps=3)
        for label in a:
            np.testing.assert_array_equal(a[label].stats[0].estimates,
                                          b[label].stats[0].estimates)

    def test_experiments_md_in_sync_with_claims(self):
        """EXPERIMENTS.md was generated (has every figure section)."""
        text = (README.parent / "EXPERIMENTS.md").read_text()
        for panel in ("1a", "1b", "1c", "2a", "2b", "2c", "3a", "3b", "4a", "4b", "4c"):
            assert f"Figure {panel}" in text, panel
        assert "bitwise quantiles" in text
