"""Tests for the self-check subsystem (repro.verification).

Three concerns:

* the invariant checkers accept honest structures and *raise* on broken ones
  (tampered ledgers, unbalanced meters, mismatched secure sums);
* the statistical primitives match a scipy reference and the family-wise
  gate behaves as a Bonferroni gate;
* the Monte-Carlo oracles pass on the shipped implementations and -- the
  acceptance criterion for the whole subsystem -- *catch a deliberately
  injected bias* (a randomized-response mechanism with a broken debias
  constant).
"""

import dataclasses

import numpy as np
import pytest

from repro.core import BasicBitPushing, BitSamplingSchedule, FixedPointEncoder
from repro.exceptions import InvariantViolation, PrivacyBudgetExceeded
from repro.privacy import BitMeter, PrivacyAccountant, RandomizedResponse
from repro.verification import (
    FamilyWiseGate,
    check_apportionment,
    check_bit_meter,
    check_estimate,
    check_ledger_conservation,
    check_schedule_normalized,
    check_secure_sum,
    run_selfcheck,
)
from repro.verification.oracles import (
    adaptive_unbiasedness_oracle,
    basic_unbiasedness_oracle,
    basic_variance_bound_oracle,
    rr_debias_oracle,
    secure_agg_oracle,
    serial_twin_oracle,
    variance_estimator_oracle,
)
from repro.verification.statcheck import TestResult as StatResult
from repro.verification.statcheck import (
    chi2_sf,
    chi_square_gof,
    normal_sf,
    variance_upper_tail,
    z_test,
)


# ----------------------------------------------------------------------
# Invariants
# ----------------------------------------------------------------------

class TestScheduleInvariants:
    def test_honest_schedules_pass(self):
        for sched in (
            BitSamplingSchedule.uniform(8),
            BitSamplingSchedule.weighted(16, alpha=1.0),
            BitSamplingSchedule.from_bit_means(np.array([0.1, 0.5, 0.0])),
        ):
            check_schedule_normalized(sched)
            counts = check_apportionment(1000, sched)
            assert counts.sum() == 1000

    def test_denormalized_schedule_raises(self):
        sched = BitSamplingSchedule.uniform(4)
        # The constructor normalizes, so break the invariant from outside
        # (what a buggy in-place mutation elsewhere would amount to).
        object.__setattr__(sched, "probabilities", np.array([0.5, 0.5, 0.5, 0.5]))
        with pytest.raises(InvariantViolation, match="mass"):
            check_schedule_normalized(sched)

    def test_nan_probability_raises(self):
        sched = BitSamplingSchedule.uniform(3)
        object.__setattr__(sched, "probabilities", np.array([np.nan, 0.5, 0.5]))
        with pytest.raises(InvariantViolation, match="finite"):
            check_schedule_normalized(sched)


class TestSecureSumInvariant:
    def test_exact_match_passes(self):
        check_secure_sum(np.array([1, 2, 3]), np.array([1, 2, 3]))

    def test_single_component_mismatch_raises(self):
        with pytest.raises(InvariantViolation, match="index 1"):
            check_secure_sum(np.array([1, 5, 3]), np.array([1, 2, 3]))

    def test_shape_mismatch_raises(self):
        with pytest.raises(InvariantViolation, match="shape"):
            check_secure_sum(np.array([1, 2]), np.array([1, 2, 3]))


class TestLedgerInvariant:
    def test_honest_ledger_passes(self):
        acct = PrivacyAccountant(epsilon_budget=2.0)
        acct.spend(0.5, note="r1")
        acct.spend(0.25, delta=0.0, note="r2")
        check_ledger_conservation(acct)

    def test_tampered_cache_raises(self):
        acct = PrivacyAccountant()
        acct.spend(0.5)
        acct._spent_epsilon = 0.1  # simulate a drifted running total
        with pytest.raises(InvariantViolation, match="epsilon drift"):
            check_ledger_conservation(acct)

    def test_overspent_budget_raises(self):
        acct = PrivacyAccountant(epsilon_budget=1.0)
        acct.spend(0.9)
        # Force an entry past the budget without going through spend().
        acct._entries.append(type(acct.entries[0])(epsilon=0.5, delta=0.0, note="smuggled"))
        acct._spent_epsilon += 0.5
        with pytest.raises(InvariantViolation, match="overspent"):
            check_ledger_conservation(acct)


class TestMeterInvariant:
    def test_honest_meter_passes(self):
        meter = BitMeter(max_bits_per_value=2, max_bits_per_client=4)
        meter.record("c1", "v1")
        meter.record("c1", "v1")
        meter.record("c1", "v2")
        with pytest.raises(PrivacyBudgetExceeded):
            meter.record("c1", "v1")
        check_bit_meter(meter)

    def test_ghost_entry_raises(self):
        meter = BitMeter(max_bits_per_value=1)
        meter._per_value[("c1", "v1")] = 0  # the old defaultdict bug's footprint
        with pytest.raises(InvariantViolation, match="ghost"):
            check_bit_meter(meter)

    def test_unbalanced_books_raise(self):
        meter = BitMeter(max_bits_per_value=3)
        meter.record("c1", "v1")
        meter._per_client["c1"] = 2  # per-client says 2, per-value sums to 1
        with pytest.raises(InvariantViolation, match="balance"):
            check_bit_meter(meter)

    def test_over_cap_entry_raises(self):
        meter = BitMeter(max_bits_per_value=1)
        meter._per_value[("c1", "v1")] = 5
        meter._per_client["c1"] = 5
        with pytest.raises(InvariantViolation, match="over cap"):
            check_bit_meter(meter)


class TestEstimateInvariant:
    def test_honest_estimate_passes(self):
        rng = np.random.default_rng(7)
        values = rng.integers(0, 256, size=500).astype(np.float64)
        est = BasicBitPushing(FixedPointEncoder.for_integers(8)).estimate(values, rng=rng)
        check_estimate(est)

    def test_nan_value_raises(self):
        rng = np.random.default_rng(7)
        values = rng.integers(0, 256, size=500).astype(np.float64)
        est = BasicBitPushing(FixedPointEncoder.for_integers(8)).estimate(values, rng=rng)
        broken = dataclasses.replace(est, value=float("nan"))
        with pytest.raises(InvariantViolation, match="not finite"):
            check_estimate(broken)


# ----------------------------------------------------------------------
# Statistical primitives
# ----------------------------------------------------------------------

class TestTailFunctions:
    def test_normal_sf_matches_scipy(self):
        stats = pytest.importorskip("scipy.stats")
        for z in (-4.0, -1.0, 0.0, 0.5, 1.96, 5.0, 8.0):
            assert normal_sf(z) == pytest.approx(stats.norm.sf(z), rel=1e-12)

    def test_chi2_sf_matches_scipy(self):
        stats = pytest.importorskip("scipy.stats")
        for df in (1, 2, 5, 59, 299):
            for x in (0.1, 1.0, df * 0.5, float(df), df * 2.0, df * 5.0):
                assert chi2_sf(x, df) == pytest.approx(stats.chi2.sf(x, df), rel=1e-10)

    def test_chi2_sf_edge_cases(self):
        assert chi2_sf(0.0, 5) == 1.0
        assert chi2_sf(-1.0, 5) == 1.0
        with pytest.raises(ValueError):
            chi2_sf(1.0, 0)


class TestTestHelpers:
    def test_z_test_centered(self):
        result = z_test(0.5, 0.5, 0.1)
        assert result.statistic == 0.0
        assert result.p_value == pytest.approx(1.0)

    def test_z_test_gross_shift_has_tiny_p(self):
        assert z_test(1.0, 0.0, 0.01).p_value < 1e-300

    def test_zero_std_degenerates_to_equality(self):
        assert z_test(0.3, 0.3, 0.0).p_value == pytest.approx(1.0)
        assert z_test(0.3, 0.4, 0.0).p_value == 0.0

    def test_variance_upper_tail_one_sided(self):
        # Beating the bound is fine; exceeding it grossly is not.
        assert variance_upper_tail(0.5, 1.0, 100).p_value > 0.99
        assert variance_upper_tail(3.0, 1.0, 100).p_value < 1e-9

    def test_chi_square_gof_rejects_mass_in_empty_bin(self):
        result = chi_square_gof(np.array([5.0, 1.0]), np.array([5.0, 0.0]))
        assert result.p_value == 0.0


class TestFamilyWiseGate:
    def test_threshold_tightens_with_family_size(self):
        gate = FamilyWiseGate(alpha_family=0.01)
        gate.add(StatResult("a", 0.0, p_value=0.005))
        assert gate.per_test_alpha == pytest.approx(0.01)
        assert not gate.passed  # alone, 0.005 < 0.01
        gate.add(StatResult("b", 0.0, p_value=0.9))
        # Now each test is judged at 0.005; p == threshold survives.
        assert gate.per_test_alpha == pytest.approx(0.005)
        assert gate.passed

    def test_failures_named(self):
        gate = FamilyWiseGate(alpha_family=1e-6)
        gate.add(StatResult("fine", 1.0, p_value=0.4))
        gate.add(StatResult("broken", 40.0, p_value=1e-300))
        assert [r.name for r in gate.failures()] == ["broken"]

    def test_invalid_alpha_rejected(self):
        with pytest.raises(ValueError):
            FamilyWiseGate(alpha_family=0.0)


# ----------------------------------------------------------------------
# Oracles: honest implementations pass
# ----------------------------------------------------------------------

class TestOraclesPassOnHonestCode:
    def test_basic_unbiasedness(self):
        result = basic_unbiasedness_oracle(seed=11, n_reps=120, n_clients=1024)
        assert result.passed, result.detail

    def test_basic_variance_bound(self):
        result = basic_variance_bound_oracle(seed=11, n_reps=120, n_clients=1024)
        assert result.passed, result.detail

    def test_rr_debias(self):
        result = rr_debias_oracle(seed=11)
        assert result.passed, result.detail

    def test_adaptive_unbiasedness(self):
        result = adaptive_unbiasedness_oracle(seed=11, n_reps=80, n_clients=1024)
        assert result.passed, result.detail

    def test_variance_estimator(self):
        result = variance_estimator_oracle(seed=11, n_reps=30, n_clients=8000)
        assert result.passed, result.detail

    def test_serial_twin(self):
        result = serial_twin_oracle(seed=11, n_reps=8, n_clients=256)
        assert result.passed, result.detail

    def test_secure_agg(self):
        result = secure_agg_oracle(seed=11)
        assert result.passed, result.detail


# ----------------------------------------------------------------------
# Oracles: a deliberately injected bias is caught
# ----------------------------------------------------------------------

class BrokenDebiasRR(RandomizedResponse):
    """eps-RR whose debias map uses a wrong constant (the injected bug)."""

    def unbias_bit_means(self, means):
        means = np.asarray(means, dtype=np.float64)
        # Correct map: (r - (1 - p)) / (2p - 1).  This one "forgets" the
        # additive correction -- a classic transcription slip.
        return means / (2.0 * self.p - 1.0)


class TestInjectedBiasIsCaught:
    def test_broken_debias_constant_fails_oracle(self):
        result = rr_debias_oracle(seed=11, perturbation=BrokenDebiasRR(epsilon=1.0))
        assert not result.passed
        # O(1) bias against an O(1/sqrt(N)) stderr: decisive at any alpha.
        assert result.p_value < 1e-12

    def test_broken_debias_caught_inside_full_estimator(self):
        result = basic_unbiasedness_oracle(
            seed=11,
            n_reps=120,
            n_clients=1024,
            perturbation=BrokenDebiasRR(epsilon=1.0),
        )
        assert not result.passed

    def test_squashing_bias_visible_to_oracle(self):
        # Bit squashing is *known* to be a biased post-process on this
        # population scale; the oracle must see that, not smooth over it.
        biased = basic_unbiasedness_oracle(
            seed=11, n_reps=120, n_clients=256, squash_threshold=0.45
        )
        honest = basic_unbiasedness_oracle(seed=11, n_reps=120, n_clients=256)
        assert honest.passed
        assert biased.p_value < honest.p_value


# ----------------------------------------------------------------------
# The assembled selfcheck
# ----------------------------------------------------------------------

class TestRunSelfcheck:
    def test_quick_selfcheck_passes(self):
        report = run_selfcheck(deep=False, seed=123)
        assert report.passed, [c.name for c in report.failures]
        assert len(report.outcomes) >= 20

    def test_report_round_trips_and_renders(self):
        report = run_selfcheck(deep=False, seed=123)
        payload = report.to_dict()
        assert payload["passed"] is True
        assert len(payload["checks"]) == len(report.outcomes)
        text = report.render()
        assert f"{len(report.outcomes)} checks, 0 failed" in text
