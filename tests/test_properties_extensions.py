"""Property-based tests on the extension estimators (histogram, quantile, analysis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    per_report_bit_variance,
    plan_cohort_size,
    predicted_nrmse,
    predicted_variance,
)
from repro.core import BitSamplingSchedule, FederatedHistogram, FixedPointEncoder, QuantileEstimator


class TestHistogramProperties:
    @given(
        n_buckets=st.integers(min_value=1, max_value=12),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=25, deadline=None)
    def test_frequencies_are_proportions(self, n_buckets, seed):
        rng = np.random.default_rng(seed)
        values = rng.uniform(0.0, 100.0, 2_000)
        hist = FederatedHistogram.uniform(0.0, 100.0, n_buckets)
        est = hist.estimate(values, rng)
        assert np.all(est.frequencies >= 0.0)
        assert np.all(est.frequencies <= 1.0)
        assert est.counts.sum() == values.size

    @given(
        center=st.floats(min_value=10.0, max_value=90.0),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=25, deadline=None)
    def test_implied_mean_within_range(self, center, seed):
        rng = np.random.default_rng(seed)
        values = rng.normal(center, 5.0, 5_000)
        hist = FederatedHistogram.uniform(0.0, 100.0, 10)
        est = hist.estimate(values, rng)
        mean = est.mean_estimate()
        assert 0.0 <= mean <= 100.0

    @given(q=st.floats(min_value=0.01, max_value=0.99), seed=st.integers(0, 2**16))
    @settings(max_examples=25, deadline=None)
    def test_quantile_within_edges(self, q, seed):
        rng = np.random.default_rng(seed)
        values = rng.uniform(0.0, 100.0, 3_000)
        est = FederatedHistogram.uniform(0.0, 100.0, 8).estimate(values, rng)
        quantile = est.quantile_estimate(q)
        assert 0.0 <= quantile <= 100.0


class TestQuantileProperties:
    @given(
        q=st.floats(min_value=0.05, max_value=0.95),
        center=st.floats(min_value=100.0, max_value=800.0),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=20, deadline=None)
    def test_estimate_within_encoder_range(self, q, center, seed):
        rng = np.random.default_rng(seed)
        encoder = FixedPointEncoder.for_integers(10)
        values = np.clip(rng.normal(center, 50.0, 5_000), 0, None)
        est = QuantileEstimator(encoder, q=q).estimate(values, rng)
        assert 0.0 <= est.value <= encoder.representable_max

    @given(value=st.integers(min_value=0, max_value=1023), seed=st.integers(0, 2**10))
    @settings(max_examples=25, deadline=None)
    def test_constant_population_found_exactly(self, value, seed):
        """For a constant population the prefix descent should land within
        one grid step of the value (the >= threshold rule rounds down)."""
        rng = np.random.default_rng(seed)
        encoder = FixedPointEncoder.for_integers(10)
        est = QuantileEstimator(encoder, q=0.5).estimate(
            np.full(5_000, float(value)), rng
        )
        assert abs(est.value - value) <= 1.0


class TestAnalysisProperties:
    @given(
        mean=st.floats(min_value=0.0, max_value=1.0),
        epsilon=st.floats(min_value=0.05, max_value=8.0),
    )
    def test_rr_variance_dominates_bernoulli(self, mean, epsilon):
        """Randomized response can only add variance."""
        assert per_report_bit_variance(mean, epsilon) >= per_report_bit_variance(mean) - 1e-12

    @given(
        n_bits=st.integers(min_value=2, max_value=12),
        n=st.integers(min_value=10, max_value=100_000),
        alpha=st.floats(min_value=0.0, max_value=1.5),
    )
    def test_predicted_variance_positive_and_decreasing_in_n(self, n_bits, n, alpha):
        means = np.full(n_bits, 0.5)
        sched = BitSamplingSchedule.weighted(n_bits, alpha)
        v_n = predicted_variance(means, sched, n)
        v_2n = predicted_variance(means, sched, 2 * n)
        assert v_n > 0
        assert v_2n == pytest.approx(v_n / 2)

    @given(
        n_bits=st.integers(min_value=2, max_value=10),
        target=st.floats(min_value=0.005, max_value=0.2),
    )
    @settings(max_examples=30)
    def test_planned_cohort_is_minimal(self, n_bits, target):
        means = np.full(n_bits, 0.5)
        sched = BitSamplingSchedule.weighted(n_bits, 1.0)
        n = plan_cohort_size(target, means, sched)
        assert predicted_nrmse(means, sched, n) <= target + 1e-12
        if n > 1:
            assert predicted_nrmse(means, sched, n - 1) > target - 1e-12
