"""Laplace mechanism."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.privacy import LaplaceMechanism


class TestConstruction:
    def test_scale(self):
        assert LaplaceMechanism(epsilon=2.0, sensitivity=4.0).scale == 2.0

    def test_invalid_epsilon(self):
        for eps in (0.0, -1.0, float("nan")):
            with pytest.raises(ConfigurationError):
                LaplaceMechanism(epsilon=eps, sensitivity=1.0)

    def test_invalid_sensitivity(self):
        for s in (0.0, -2.0, float("inf")):
            with pytest.raises(ConfigurationError):
                LaplaceMechanism(epsilon=1.0, sensitivity=s)


class TestNoise:
    def test_unbiased(self, rng):
        mech = LaplaceMechanism(epsilon=1.0, sensitivity=1.0)
        values = np.full(200_000, 5.0)
        noisy = mech.privatize(values, rng)
        assert noisy.mean() == pytest.approx(5.0, abs=0.02)

    def test_variance_matches_formula(self, rng):
        mech = LaplaceMechanism(epsilon=1.0, sensitivity=2.0)
        noisy = mech.privatize(np.zeros(200_000), rng)
        assert noisy.var() == pytest.approx(mech.per_value_variance(), rel=0.05)

    def test_shape_preserved(self, rng):
        mech = LaplaceMechanism(epsilon=1.0, sensitivity=1.0)
        assert mech.privatize(np.zeros((3, 4)), rng).shape == (3, 4)

    def test_higher_epsilon_less_noise(self, rng):
        low = LaplaceMechanism(epsilon=0.5, sensitivity=1.0)
        high = LaplaceMechanism(epsilon=5.0, sensitivity=1.0)
        assert high.per_value_variance() < low.per_value_variance()
