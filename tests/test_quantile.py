"""Bitwise quantile estimation (median / percentiles)."""

import numpy as np
import pytest

from repro.core import FixedPointEncoder, QuantileEstimator
from repro.exceptions import ConfigurationError
from repro.privacy import RandomizedResponse


class TestConstruction:
    def test_invalid_q(self, encoder10):
        for q in (0.0, 1.0, -0.5, 2.0):
            with pytest.raises(ConfigurationError):
                QuantileEstimator(encoder10, q=q)

    def test_too_few_clients(self, encoder10, rng):
        with pytest.raises(ConfigurationError):
            QuantileEstimator(encoder10).estimate(np.array([1.0, 2.0]), rng)


class TestAccuracy:
    def test_median_of_normal(self, encoder10):
        rng = np.random.default_rng(0)
        values = np.clip(rng.normal(300.0, 60.0, 100_000), 0, None)
        est = QuantileEstimator(encoder10, q=0.5).estimate(values, rng)
        assert est.value == pytest.approx(np.median(values), abs=10.0)

    def test_p90_of_skewed_data(self, encoder10):
        rng = np.random.default_rng(1)
        values = rng.exponential(80.0, 100_000)
        est = QuantileEstimator(encoder10, q=0.9).estimate(values, rng)
        assert est.value == pytest.approx(np.quantile(values, 0.9), rel=0.1)

    def test_p10(self, encoder10):
        rng = np.random.default_rng(2)
        values = np.clip(rng.normal(500.0, 100.0, 100_000), 0, None)
        est = QuantileEstimator(encoder10, q=0.1).estimate(values, rng)
        assert est.value == pytest.approx(np.quantile(values, 0.1), rel=0.1)

    def test_constant_population(self, encoder10, rng):
        est = QuantileEstimator(encoder10, q=0.5).estimate(np.full(10_000, 321.0), rng)
        assert est.value == pytest.approx(321.0, abs=1.0)

    def test_median_robust_to_heavy_tail(self, encoder10):
        """The Section 4.3 motivation: unlike the mean, the median of an
        outlier-ridden metric stays meaningful."""
        from repro.data.telemetry import binary_with_outliers

        rng = np.random.default_rng(3)
        values = binary_with_outliers(
            100_000, p_one=0.4, outlier_rate=1e-3, outlier_magnitude=1e6, rng=rng
        )
        est = QuantileEstimator(encoder10, q=0.5).estimate(values, rng)
        assert est.value <= 1.0      # raw mean would be in the hundreds
        assert values.mean() > 100.0

    def test_quantiles_monotone_in_q(self, encoder10):
        rng = np.random.default_rng(4)
        values = np.clip(rng.normal(400.0, 90.0, 120_000), 0, None)
        qs = (0.1, 0.25, 0.5, 0.75, 0.9)
        estimates = [
            QuantileEstimator(encoder10, q=q).estimate(values, rng).value for q in qs
        ]
        assert estimates == sorted(estimates)


class TestProtocolShape:
    def test_one_round_per_bit(self, encoder10, rng):
        values = np.clip(rng.normal(300, 50, 5_000), 0, None)
        est = QuantileEstimator(encoder10).estimate(values, rng)
        assert len(est.round_fractions) == 10
        assert len(est.round_sizes) == 10
        assert sum(est.round_sizes) == 5_000
        assert est.metadata["rounds"] == 10

    def test_each_client_used_once(self, encoder10, rng):
        values = np.clip(rng.normal(300, 50, 4_999), 0, None)   # not divisible by b
        est = QuantileEstimator(encoder10).estimate(values, rng)
        assert sum(est.round_sizes) == 4_999

    def test_encoded_value_consistent(self, encoder10, rng):
        values = np.clip(rng.normal(300, 50, 10_000), 0, None)
        est = QuantileEstimator(encoder10).estimate(values, rng)
        assert est.value == encoder10.decode_scalar(est.encoded_value)

    def test_scaled_encoder(self):
        rng = np.random.default_rng(5)
        values = rng.uniform(-1.0, 1.0, 100_000)
        encoder = FixedPointEncoder.for_range(-1.0, 1.0, n_bits=10)
        est = QuantileEstimator(encoder, q=0.5).estimate(values, rng)
        assert est.value == pytest.approx(0.0, abs=0.05)


class TestQuantileLdp:
    def test_median_under_rr(self, encoder10):
        rng = np.random.default_rng(6)
        values = np.clip(rng.normal(300.0, 60.0, 300_000), 0, None)
        est = QuantileEstimator(
            encoder10, q=0.5, perturbation=RandomizedResponse(epsilon=3.0)
        ).estimate(values, rng)
        assert est.value == pytest.approx(np.median(values), rel=0.15)
        assert est.metadata["ldp"] is True

    def test_rr_fractions_debiased(self, encoder10):
        # With a constant population, the debiased top-round fraction should
        # sit near the true comparison proportion (0 or 1), not near RR's p.
        rng = np.random.default_rng(7)
        values = np.full(100_000, 700.0)   # bit 9 set (512 <= 700)
        est = QuantileEstimator(
            encoder10, q=0.5, perturbation=RandomizedResponse(epsilon=2.0)
        ).estimate(values, rng)
        assert est.round_fractions[0] == pytest.approx(1.0, abs=0.05)
