"""Trial-execution engine: determinism, batch kernels, and plumbing.

The engine's whole value proposition is "faster, same bytes": every test
here is some flavour of *bit-identical* -- serial vs parallel executors,
looped vs vectorized estimators, explicit vs environment-configured worker
counts -- plus the error paths that protect the contract.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import BasicBitPushing, BitSamplingSchedule, FixedPointEncoder
from repro.exceptions import ConfigurationError, PrivacyBudgetExceeded
from repro.experiments import figure_1a, render_series_table
from repro.federated.multivalue import elicit_batch, elicit_single_value
from repro.metrics.execution import (
    CellTask,
    ParallelExecutor,
    SerialExecutor,
    configure_executor,
    executor_for,
    get_executor,
    resolve_workers,
    use_executor,
)
from repro.metrics.experiment import run_trials
from repro.observability import InMemoryExporter, MetricsRegistry, Tracer, instrumented
from repro.privacy import BitMeter, RandomizedResponse


def _make_data(rng: np.random.Generator) -> np.ndarray:
    return np.clip(rng.normal(600.0, 100.0, size=500), 0.0, None)


def _estimator(encoder=None, **kwargs) -> BasicBitPushing:
    return BasicBitPushing(encoder or FixedPointEncoder.for_integers(10), **kwargs)


def _run(executor, estimator, n_reps=12, seed=7):
    stats = run_trials(
        _make_data,
        lambda values, rng: estimator.estimate(values, rng).value,
        n_reps=n_reps,
        seed=seed,
        executor=executor,
    )
    return stats.estimates, stats.truths


# ----------------------------------------------------------------------
# Executor determinism
# ----------------------------------------------------------------------


class TestExecutorDeterminism:
    def test_parallel_matches_serial_bit_for_bit(self):
        serial_est, serial_truth = _run(SerialExecutor(), _estimator())
        for workers in (2, 3, 5):
            par_est, par_truth = _run(ParallelExecutor(workers), _estimator())
            np.testing.assert_array_equal(serial_est, par_est)
            np.testing.assert_array_equal(serial_truth, par_truth)

    def test_more_workers_than_reps(self):
        serial = _run(SerialExecutor(), _estimator(), n_reps=3)
        parallel = _run(ParallelExecutor(8), _estimator(), n_reps=3)
        np.testing.assert_array_equal(serial[0], parallel[0])

    def test_parallel_with_perturbation_matches_serial(self):
        rr = RandomizedResponse(epsilon=2.0)
        serial = _run(SerialExecutor(), _estimator(perturbation=rr))
        parallel = _run(ParallelExecutor(2), _estimator(perturbation=rr))
        np.testing.assert_array_equal(serial[0], parallel[0])

    def test_executor_advances_parent_identically(self):
        # Two consecutive cells on one generator: the second must see the
        # same spawn state regardless of how the first was executed.
        for executor in (SerialExecutor(), ParallelExecutor(2)):
            parent = np.random.default_rng(99)
            first = run_trials(
                _make_data,
                lambda values, rng: _estimator().estimate(values, rng).value,
                n_reps=4,
                seed=parent,
                executor=executor,
            )
            second = run_trials(
                _make_data,
                lambda values, rng: _estimator().estimate(values, rng).value,
                n_reps=4,
                seed=parent,
                executor=executor,
            )
            assert not np.array_equal(first.estimates, second.estimates)
            if isinstance(executor, SerialExecutor):
                baseline = (first.estimates.copy(), second.estimates.copy())
            else:
                np.testing.assert_array_equal(first.estimates, baseline[0])
                np.testing.assert_array_equal(second.estimates, baseline[1])

    def test_generator_without_seed_sequence_rejected(self):
        class _NoSeedSeq:
            seed_seq = object()

        class _FakeGen:
            bit_generator = _NoSeedSeq()

        task = CellTask(_make_data, lambda v, r: 0.0, lambda v: 0.0)
        with pytest.raises(ConfigurationError, match="SeedSequence"):
            SerialExecutor().run_cell(task, 2, _FakeGen())


# ----------------------------------------------------------------------
# Batch kernel vs per-repetition loop
# ----------------------------------------------------------------------


class TestEstimateBatch:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {},
            {"b_send": 3},
            {"randomness": "local"},
            {"perturbation": RandomizedResponse(epsilon=1.0)},
            {"perturbation": RandomizedResponse(epsilon=1.0), "squash_threshold": 0.05},
            {"squash_threshold": 0.02},
        ],
        ids=["default", "b_send=3", "local", "rr", "rr+squash", "squash"],
    )
    def test_batch_matches_loop(self, kwargs):
        encoder = FixedPointEncoder.for_integers(10)
        est = _estimator(encoder, **kwargs)
        rng = np.random.default_rng(3)
        values = np.stack([np.clip(rng.normal(600.0, 100.0, 400), 0.0, None) for _ in range(6)])
        loop = np.array(
            [est.estimate(values[r], np.random.default_rng(100 + r)).value for r in range(6)]
        )
        batch = est.estimate_batch(
            values, [np.random.default_rng(100 + r) for r in range(6)]
        )
        np.testing.assert_array_equal(loop, batch)

    def test_flat_alpha_schedule(self):
        encoder = FixedPointEncoder.for_integers(8)
        schedule = BitSamplingSchedule.weighted(8, alpha=0.5)
        est = _estimator(encoder, schedule=schedule)
        rng = np.random.default_rng(11)
        values = np.stack([rng.uniform(0, 255, 300) for _ in range(4)])
        loop = np.array(
            [est.estimate(values[r], np.random.default_rng(r)).value for r in range(4)]
        )
        batch = est.estimate_batch(values, [np.random.default_rng(r) for r in range(4)])
        np.testing.assert_array_equal(loop, batch)

    def test_batch_rejects_bad_shapes(self):
        est = _estimator()
        with pytest.raises(ConfigurationError):
            est.estimate_batch(np.zeros(5), [np.random.default_rng(0)])
        with pytest.raises(ConfigurationError):
            est.estimate_batch(np.zeros((2, 0)), [np.random.default_rng(0)] * 2)
        with pytest.raises(ConfigurationError):
            est.estimate_batch(np.zeros((2, 5)), [np.random.default_rng(0)])

    def test_run_trials_batch_dispatch_matches_plain_callable(self):
        # An estimator exposing estimate_batch must give the same cell as
        # the identical estimator hidden behind a plain closure.
        est = _estimator()

        def plain(values, rng):
            return est.estimate(values, rng).value

        def dispatched(values, rng):
            return est.estimate(values, rng).value

        dispatched.estimate_batch = est.estimate_batch

        plain_stats = run_trials(_make_data, plain, n_reps=10, seed=5)
        batch_stats = run_trials(_make_data, dispatched, n_reps=10, seed=5)
        np.testing.assert_array_equal(plain_stats.estimates, batch_stats.estimates)

        parallel = run_trials(
            _make_data, dispatched, n_reps=10, seed=5, executor=ParallelExecutor(3)
        )
        np.testing.assert_array_equal(plain_stats.estimates, parallel.estimates)

    def test_ragged_populations_fall_back_to_loop(self):
        est = _estimator()

        def ragged(rng):
            return np.clip(rng.normal(600.0, 100.0, int(rng.integers(100, 200))), 0.0, None)

        def plain(values, rng):
            return est.estimate(values, rng).value

        def dispatched(values, rng):
            return est.estimate(values, rng).value

        dispatched.estimate_batch = est.estimate_batch
        plain_stats = run_trials(ragged, plain, n_reps=6, seed=2)
        batch_stats = run_trials(ragged, dispatched, n_reps=6, seed=2)
        np.testing.assert_array_equal(plain_stats.estimates, batch_stats.estimates)


# ----------------------------------------------------------------------
# Figure regression: --workers N output is byte-identical
# ----------------------------------------------------------------------


class TestFigureWorkersRegression:
    def test_figure_1a_table_identical_across_worker_counts(self):
        kwargs = {"n_clients": 500, "n_reps": 6, "mus": (100, 1000)}
        serial = figure_1a(**kwargs, executor=SerialExecutor())
        parallel = figure_1a(**kwargs, executor=ParallelExecutor(2))
        assert render_series_table("Figure 1a", serial) == render_series_table(
            "Figure 1a", parallel
        )
        for label in serial:
            for cell_s, cell_p in zip(serial[label].stats, parallel[label].stats):
                np.testing.assert_array_equal(cell_s.estimates, cell_p.estimates)
                np.testing.assert_array_equal(cell_s.truths, cell_p.truths)


# ----------------------------------------------------------------------
# Worker-count resolution and default-executor plumbing
# ----------------------------------------------------------------------


class TestWorkerResolution:
    def test_explicit_count(self):
        assert resolve_workers(1) == 1
        assert resolve_workers(4) == 4

    def test_env_fallback(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert resolve_workers(None) == 1
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert resolve_workers(None) == 3
        monkeypatch.setenv("REPRO_WORKERS", "")
        assert resolve_workers(None) == 1

    def test_invalid_counts_rejected(self, monkeypatch):
        with pytest.raises(ConfigurationError):
            resolve_workers(0)
        with pytest.raises(ConfigurationError):
            resolve_workers(-2)
        monkeypatch.setenv("REPRO_WORKERS", "many")
        with pytest.raises(ConfigurationError, match="REPRO_WORKERS"):
            resolve_workers(None)

    def test_executor_for(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert isinstance(executor_for(1), SerialExecutor)
        assert isinstance(executor_for(None), SerialExecutor)
        parallel = executor_for(4)
        assert isinstance(parallel, ParallelExecutor)
        assert parallel.workers == 4

    def test_parallel_requires_two_workers(self):
        with pytest.raises(ConfigurationError):
            ParallelExecutor(1)

    def test_default_executor_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "2")
        configure_executor(None)
        try:
            executor = get_executor()
            assert isinstance(executor, ParallelExecutor)
            assert executor.workers == 2
        finally:
            configure_executor(None)

    def test_use_executor_restores_previous(self):
        configure_executor(None)
        inner = SerialExecutor()
        with use_executor(inner) as active:
            assert active is inner
            assert get_executor() is inner
        assert get_executor() is not inner
        configure_executor(None)


# ----------------------------------------------------------------------
# Observability: executor spans and engine metrics
# ----------------------------------------------------------------------


class TestExecutorObservability:
    def _run_instrumented(self, executor):
        memory = InMemoryExporter()
        registry = MetricsRegistry()
        with instrumented(Tracer([memory]), registry):
            _run(executor, _estimator(), n_reps=6)
        return memory.records, registry.snapshot()

    def test_serial_span_and_metrics(self):
        records, snapshot = self._run_instrumented(SerialExecutor())
        chunk_spans = [r for r in records if r.name == "executor.chunk"]
        assert len(chunk_spans) == 1
        assert chunk_spans[0].attributes["backend"] == "serial"
        assert chunk_spans[0].attributes["reps"] == 6
        assert snapshot["counters"]["trials_executed_total"] == 6
        assert snapshot["gauges"]["executor_workers"] == 1
        assert snapshot["histograms"]["trial_cell_duration_s"]["count"] == 1

    def test_parallel_spans_and_metrics(self):
        records, snapshot = self._run_instrumented(ParallelExecutor(3))
        chunk_spans = [r for r in records if r.name == "executor.chunk"]
        assert len(chunk_spans) == 3
        assert all(s.attributes["backend"] == "process-pool" for s in chunk_spans)
        assert sorted(s.attributes["chunk"] for s in chunk_spans) == [0, 1, 2]
        assert sum(s.attributes["reps"] for s in chunk_spans) == 6
        assert snapshot["counters"]["trials_executed_total"] == 6
        assert snapshot["gauges"]["executor_workers"] == 3


# ----------------------------------------------------------------------
# Satellite kernels: elicit_batch and BitMeter.record_batch
# ----------------------------------------------------------------------


class TestElicitBatch:
    @pytest.mark.parametrize("strategy", ["sample", "mean", "max", "latest"])
    def test_matches_per_client_loop(self, strategy):
        rng = np.random.default_rng(17)
        value_sets = [rng.normal(50, 10, int(rng.integers(1, 6))) for _ in range(40)]
        gen_loop = np.random.default_rng(5)
        gen_batch = np.random.default_rng(5)
        looped = np.array(
            [elicit_single_value(v, strategy, gen_loop) for v in value_sets]
        )
        batched = elicit_batch(value_sets, strategy, gen_batch)
        np.testing.assert_array_equal(looped, batched)
        # The batched path must consume the stream exactly as the loop did.
        assert gen_batch.bit_generator.state == gen_loop.bit_generator.state

    def test_empty_set_rejected(self):
        with pytest.raises(ConfigurationError):
            elicit_batch([np.array([1.0]), np.array([])], "sample", np.random.default_rng(0))


class TestBitMeterBatch:
    def test_matches_record_loop(self):
        loop_meter = BitMeter(max_bits_per_value=2)
        batch_meter = BitMeter(max_bits_per_value=2)
        ids = ["a", "b", "c", "a"]
        for cid in ids:
            loop_meter.record(cid, "v0")
        batch_meter.record_batch(ids, "v0")
        for cid in set(ids):
            assert loop_meter.bits_disclosed_by(cid) == batch_meter.bits_disclosed_by(cid)
        assert loop_meter.total_bits == batch_meter.total_bits

    def test_rejected_batch_leaves_meter_unchanged(self):
        meter = BitMeter(max_bits_per_value=1)
        meter.record("a", "v0")
        with pytest.raises(PrivacyBudgetExceeded):
            meter.record_batch(["b", "c", "a"], "v0")
        # Atomic: neither b nor c was committed before the failure on a.
        assert meter.bits_disclosed_by("b") == 0
        assert meter.bits_disclosed_by("c") == 0
        assert meter.total_bits == 1

    def test_duplicates_within_batch_counted(self):
        meter = BitMeter(max_bits_per_value=1)
        with pytest.raises(PrivacyBudgetExceeded):
            meter.record_batch(["x", "x"], "v0")
        assert meter.total_bits == 0

    def test_client_cap_enforced(self):
        meter = BitMeter(max_bits_per_value=5, max_bits_per_client=2)
        meter.record_batch(["a", "b"], "v0", n_bits=2)
        with pytest.raises(PrivacyBudgetExceeded):
            meter.record_batch(["a"], "v1")
        assert meter.bits_disclosed_by("a") == 2
