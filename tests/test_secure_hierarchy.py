"""Hierarchical secure aggregation: twin tests, shard recovery, server wiring.

The contract under test (PR tentpole): hierarchical secure sum == flat
``secure_sum`` == plaintext, across shard trees, worker counts, and scripted
per-shard dropout patterns -- and a shard falling below its threshold
degrades the round instead of aborting it.
"""

import numpy as np
import pytest

from repro.core import FixedPointEncoder
from repro.exceptions import ConfigurationError, RoundFailedError
from repro.federated import ClientDevice, DropoutModel, FederatedMeanQuery
from repro.federated.faults import FaultEvent, FaultSchedule
from repro.federated.secure_agg import (
    hierarchical_secure_sum,
    secure_sum,
    shard_bounds,
)
from repro.observability import (
    HealthMonitor,
    MetricsRegistry,
    configure,
    disable,
)
from repro.observability.health import ShardFailureRule
from repro.privacy.accountant import BitMeter


@pytest.fixture
def encoder():
    return FixedPointEncoder.for_integers(8)


def make_population(n, value=170.0):
    return [ClientDevice(i, [value]) for i in range(n)]


class TestShardBounds:
    @pytest.mark.parametrize("shard_size", [2, 3, 4, 16, 32])
    @pytest.mark.parametrize("n", list(range(2, 70)))
    def test_every_residue_has_no_singleton_shard(self, n, shard_size):
        """Regression for the lone-client plaintext leak: for every value of
        ``n % shard_size`` the partition must cover [0, n) contiguously with
        no shard smaller than 2 clients."""
        bounds = shard_bounds(n, shard_size)
        assert bounds[0][0] == 0
        assert bounds[-1][1] == n
        for (lo, hi), (lo2, _) in zip(bounds, bounds[1:]):
            assert hi == lo2
        assert all(hi - lo >= 2 for lo, hi in bounds)
        assert all(hi - lo <= shard_size + 1 for lo, hi in bounds)

    def test_remainder_of_one_folds_into_previous_shard(self):
        assert shard_bounds(33, 32) == [(0, 33)]
        assert shard_bounds(9, 4) == [(0, 4), (4, 9)]

    def test_single_client_is_a_singleton_shard(self):
        # Nothing to fold into; the aggregator fails it instead of leaking.
        assert shard_bounds(1, 4) == [(0, 1)]

    def test_invalid_arguments(self):
        with pytest.raises(ConfigurationError):
            shard_bounds(10, 1)
        with pytest.raises(ConfigurationError):
            shard_bounds(-1, 4)


class TestHierarchicalTwin:
    @pytest.mark.parametrize("shard_size", [2, 5, 8, 64])
    def test_matches_flat_and_plaintext_full_participation(self, shard_size, rng):
        vecs = rng.integers(0, 1000, size=(41, 6))
        plain = vecs.sum(axis=0)
        flat = secure_sum(vecs, rng=0)
        result = hierarchical_secure_sum(vecs, shard_size=shard_size, rng=1)
        np.testing.assert_array_equal(flat, plain)
        np.testing.assert_array_equal(result.total, plain)
        assert not result.failed_shards
        assert result.included_submitters == 41

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_dropout_matches_plaintext_over_included(self, seed):
        draw = np.random.default_rng(seed)
        vecs = draw.integers(0, 100, size=(50, 4))
        submitted = draw.random(50) > 0.25
        result = hierarchical_secure_sum(
            vecs, submitted=submitted, shard_size=8, rng=seed
        )
        included = result.included
        assert submitted[included].all()
        np.testing.assert_array_equal(result.total, vecs[included].sum(axis=0))
        # Every recovered shard kept all of its submitters.
        recovered_submitters = sum(s.submitted for s in result.shards if s.recovered)
        assert included.size == recovered_submitters

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_bit_identical_for_any_worker_count(self, workers):
        draw = np.random.default_rng(3)
        vecs = draw.integers(0, 200, size=(37, 5))
        submitted = draw.random(37) > 0.2
        result = hierarchical_secure_sum(
            vecs,
            submitted=submitted,
            shard_size=6,
            workers=workers,
            rng=np.random.default_rng(11),
        )
        reference = hierarchical_secure_sum(
            vecs,
            submitted=submitted,
            shard_size=6,
            workers=1,
            rng=np.random.default_rng(11),
        )
        np.testing.assert_array_equal(result.total, reference.total)
        assert [s.recovered for s in result.shards] == [
            s.recovered for s in reference.shards
        ]

    def test_whole_shard_blackout_is_contained(self):
        vecs = np.ones((24, 3), dtype=np.int64)
        submitted = np.ones(24, dtype=bool)
        submitted[8:16] = False  # shard 1 of shard_size=8 goes dark
        result = hierarchical_secure_sum(vecs, submitted=submitted, shard_size=8, rng=5)
        assert [s.index for s in result.failed_shards] == [1]
        assert result.excluded_clients == 8
        np.testing.assert_array_equal(result.total, np.full(3, 16))

    def test_below_threshold_shard_excluded_not_fatal(self):
        vecs = np.arange(30).reshape(10, 3)
        submitted = np.ones(10, dtype=bool)
        submitted[[0, 1, 2]] = False  # 2/5 submitted < threshold 4 in shard 0
        result = hierarchical_secure_sum(vecs, submitted=submitted, shard_size=5, rng=6)
        assert len(result.failed_shards) == 1
        assert result.failed_shards[0].index == 0
        np.testing.assert_array_equal(result.total, vecs[5:].sum(axis=0))

    def test_shard_metrics_recorded(self):
        registry = MetricsRegistry()
        configure(metrics=registry)
        try:
            vecs = np.ones((12, 2), dtype=np.int64)
            submitted = np.ones(12, dtype=bool)
            submitted[:6] = False
            hierarchical_secure_sum(vecs, submitted=submitted, shard_size=6, rng=7)
            counters = registry.snapshot()["counters"]
            assert counters["secure_shards_total"] == 2
            assert counters["secure_shard_failures_total"] == 1
            assert counters["secure_clients_excluded_total"] == 6
        finally:
            disable()


class TestServerSecureRounds:
    """The hierarchical plane wired into FederatedMeanQuery rounds."""

    @pytest.mark.parametrize("n", [17, 33, 47, 48, 49])
    def test_every_residue_stays_exact_vs_plain(self, encoder, n):
        """No client is ever aggregated outside a masking session: the
        always-on check_secure_sum invariant inside _secure_collect would
        raise on any leak, and the estimate must match plaintext exactly."""
        population = make_population(n)
        plain = FederatedMeanQuery(encoder, mode="basic")
        secure = FederatedMeanQuery(
            encoder, mode="basic", secure_aggregation=True, shard_size=16
        )
        est_plain = plain.run(population, rng=7)
        est_secure = secure.run(population, rng=7)
        np.testing.assert_array_equal(est_plain.counts, est_secure.counts)
        assert est_plain.value == est_secure.value

    def test_dropout_routes_into_sessions_and_stays_exact(self, encoder):
        """Mid-round dropout becomes intra-session dropout; recovery keeps the
        masked aggregate bit-exact vs plaintext (internal invariant), and the
        round completes with the included clients."""
        query = FederatedMeanQuery(
            encoder,
            mode="basic",
            secure_aggregation=True,
            shard_size=8,
            dropout=DropoutModel(rate=0.2, jitter=0.0),
        )
        est = query.run(make_population(64), rng=3)
        assert est.metadata["surviving_clients"][0] <= 64
        assert est.metadata["surviving_clients"][0] > 0

    def test_worker_counts_agree_on_server_rounds(self, encoder, monkeypatch):
        population = make_population(40)

        def run_with(workers):
            monkeypatch.setenv("REPRO_WORKERS", str(workers))
            query = FederatedMeanQuery(
                encoder,
                mode="basic",
                secure_aggregation=True,
                shard_size=8,
                dropout=DropoutModel(rate=0.15, jitter=0.0),
            )
            return query.run(population, rng=21)

        est1 = run_with(1)
        est2 = run_with(3)
        np.testing.assert_array_equal(est1.counts, est2.counts)
        assert est1.value == est2.value

    def test_shard_blackout_fault_degrades_not_aborts(self, encoder):
        query = FederatedMeanQuery(
            encoder,
            mode="basic",
            secure_aggregation=True,
            shard_size=8,
            faults=FaultSchedule([FaultEvent(first_round=1, shard_blackout=(0,))]),
        )
        est = query.run(make_population(32), rng=4)
        assert est.metadata["degraded_rounds"] == [True]
        assert est.metadata["surviving_clients"] == [24]
        assert est.metadata["variance_inflation"][0] == pytest.approx(32 / 24)

    def test_all_shards_blacked_out_fails_quorum(self, encoder):
        query = FederatedMeanQuery(
            encoder,
            mode="basic",
            secure_aggregation=True,
            shard_size=8,
            faults=FaultSchedule(
                [FaultEvent(first_round=1, shard_blackout=(0, 1))]
            ),
        )
        with pytest.raises(RoundFailedError):
            query.run(make_population(16), rng=4)

    def test_meter_records_only_included_clients(self, encoder):
        meter = BitMeter(max_bits_per_value=1)
        query = FederatedMeanQuery(
            encoder,
            mode="basic",
            secure_aggregation=True,
            shard_size=8,
            meter=meter,
            faults=FaultSchedule([FaultEvent(first_round=1, shard_blackout=(1,))]),
        )
        query.run(make_population(24), rng=5)
        # Shard 1's clients (ids 8..15) disclosed nothing: their masked rows
        # were never unmasked.
        included = set(range(8)) | set(range(16, 24))
        for cid in range(24):
            expected = 1 if cid in included else 0
            assert meter.bits_disclosed_by(cid) == expected, cid

    def test_shard_failure_health_rule_fires_and_resolves(self, encoder):
        registry = MetricsRegistry()
        configure(metrics=registry)
        try:
            monitor = HealthMonitor(
                rules=[ShardFailureRule(window=2)], metrics=registry
            )
            population = make_population(32)
            # Adaptive mode runs two rounds: round 1 is the clean baseline
            # for the counter-delta window, round 2 blacks out shard 0.
            faulty = FederatedMeanQuery(
                encoder,
                mode="adaptive",
                secure_aggregation=True,
                shard_size=8,
                faults=FaultSchedule(
                    [FaultEvent(first_round=2, shard_blackout=(0,))]
                ),
                health=monitor,
            )
            faulty.run(population, rng=6)  # fires on round 2
            clean = FederatedMeanQuery(
                encoder,
                mode="adaptive",
                secure_aggregation=True,
                shard_size=8,
                health=monitor,
            )
            clean.run(population, rng=7)  # two clean rounds push it out
            states = [(e.rule, e.state) for e in monitor.events]
            assert ("shard-failure", "fired") in states
            assert ("shard-failure", "resolved") in states
        finally:
            disable()
