"""Error metrics and the experiment harness."""

import numpy as np
import pytest

from repro.metrics import (
    SeriesResult,
    bias,
    nrmse,
    nrmse_standard_error,
    rmse,
    run_trials,
    standard_error,
    sweep,
)


class TestErrorMetrics:
    def test_rmse_known_value(self):
        assert rmse(np.array([1.0, 3.0]), np.array([0.0, 0.0])) == pytest.approx(
            np.sqrt(5.0)
        )

    def test_rmse_scalar_truth_broadcast(self):
        assert rmse(np.array([2.0, 4.0]), np.array([3.0])) == pytest.approx(1.0)

    def test_rmse_zero_for_perfect(self):
        assert rmse(np.array([5.0, 5.0]), np.array([5.0, 5.0])) == 0.0

    def test_nrmse_normalizes_by_truth(self):
        assert nrmse(np.array([11.0]), np.array([10.0])) == pytest.approx(0.1)

    def test_nrmse_zero_truth_rejected(self):
        with pytest.raises(ValueError):
            nrmse(np.array([1.0]), np.array([0.0]))

    def test_bias_signed(self):
        assert bias(np.array([1.0, 3.0]), np.array([2.0, 2.0])) == 0.0
        assert bias(np.array([3.0, 3.0]), np.array([2.0, 2.0])) == 1.0

    def test_standard_error(self):
        samples = np.array([1.0, 2.0, 3.0, 4.0])
        assert standard_error(samples) == pytest.approx(samples.std(ddof=1) / 2.0)

    def test_standard_error_needs_two(self):
        assert np.isnan(standard_error(np.array([1.0])))

    def test_nrmse_stderr_shrinks_with_reps(self, rng):
        truths = np.full(400, 10.0)
        estimates = truths + rng.normal(0, 1, 400)
        few = nrmse_standard_error(estimates[:20], truths[:20])
        many = nrmse_standard_error(estimates, truths)
        assert many < few

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ValueError):
            rmse(np.array([1.0, 2.0]), np.array([1.0, 2.0, 3.0]))
        with pytest.raises(ValueError):
            rmse(np.array([]), np.array([]))


class TestRunTrials:
    def test_deterministic_given_seed(self):
        def make(rng):
            return rng.normal(100, 10, 1000)

        def estimate(values, rng):
            return values.mean() + rng.normal(0, 1)

        a = run_trials(make, estimate, n_reps=10, seed=3)
        b = run_trials(make, estimate, n_reps=10, seed=3)
        np.testing.assert_array_equal(a.estimates, b.estimates)
        np.testing.assert_array_equal(a.truths, b.truths)

    def test_populations_shared_across_methods(self):
        """Two different estimators under the same seed see identical data."""
        seen = {}

        def make(rng):
            values = rng.normal(0, 1, 100)
            seen.setdefault("first", values.copy())
            return values

        run_trials(make, lambda v, r: 0.0, n_reps=1, seed=5)
        first = seen.pop("first")
        run_trials(make, lambda v, r: 1.0, n_reps=1, seed=5)
        np.testing.assert_array_equal(seen["first"], first)

    def test_truth_defaults_to_sample_mean(self):
        stats = run_trials(
            lambda rng: np.array([2.0, 4.0]), lambda v, r: 3.0, n_reps=3, seed=0
        )
        assert stats.nrmse == 0.0
        assert stats.mean_truth == 3.0

    def test_custom_truth_fn(self):
        stats = run_trials(
            lambda rng: np.array([1.0, 5.0]),
            lambda v, r: 4.0,
            n_reps=2,
            seed=0,
            truth_fn=lambda v: float(np.max(v)),
        )
        assert stats.mean_truth == 5.0
        assert stats.rmse == pytest.approx(1.0)

    def test_accessors(self, rng):
        stats = run_trials(
            lambda r: r.normal(10, 1, 50), lambda v, r: v.mean() + 0.1, n_reps=20, seed=1
        )
        assert stats.n_reps == 20
        assert stats.bias == pytest.approx(0.1)
        assert stats.nrmse == pytest.approx(0.01, rel=0.01)
        assert stats.estimate_stderr > 0

    def test_invalid_reps(self):
        with pytest.raises(ValueError):
            run_trials(lambda r: np.array([1.0]), lambda v, r: 1.0, n_reps=0)


class TestSweep:
    def _cell(self, x):
        def make(rng):
            return rng.normal(x, 1.0, 200)

        def estimate(values, rng):
            return float(values.mean())

        return make, estimate

    def test_series_structure(self):
        series = sweep("m", [10.0, 20.0], self._cell, n_reps=5, seed=0)
        assert series.label == "m"
        assert series.x == [10.0, 20.0]
        assert len(series.stats) == 2
        assert len(series.nrmse) == 2

    def test_rows_metrics(self):
        series = sweep("m", [10.0], self._cell, n_reps=5, seed=0)
        x, val, err = series.rows("nrmse")[0]
        assert x == 10.0 and val == 0.0
        x, val, err = series.rows("rmse")[0]
        assert val == 0.0
        with pytest.raises(ValueError):
            series.rows("mape")

    def test_deterministic(self):
        a = sweep("m", [5.0, 6.0], self._cell, n_reps=5, seed=9)
        b = sweep("m", [5.0, 6.0], self._cell, n_reps=5, seed=9)
        assert a.nrmse == b.nrmse

    def test_sweep_points_have_independent_seeds(self):
        series = sweep("m", [5.0, 5.0], self._cell, n_reps=5, seed=9)
        cell_a, cell_b = series.stats
        assert not np.array_equal(cell_a.estimates, cell_b.estimates)


class TestSeriesResult:
    def test_append(self):
        series = SeriesResult("x")
        cell = run_trials(lambda r: np.array([1.0]), lambda v, r: 1.0, n_reps=2, seed=0)
        series.append(3.0, cell)
        assert series.x == [3.0]
        assert series.nrmse == [0.0]
