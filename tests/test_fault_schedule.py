"""Round-failure recovery: retry policy, quorum degradation, fault schedules.

The deployment setting is lossy by design; these tests pin the robustness
subsystem that keeps multi-round campaigns alive through it -- scripted
fault injection (deterministic storms), bounded retries with simulated-time
backoff, and quorum-based graceful degradation -- including the acceptance
scenario: a campaign that survives one killed round and two degraded ones,
bit-identically across runs.
"""

import numpy as np
import pytest

from repro.core import FixedPointEncoder
from repro.exceptions import ConfigurationError, RoundFailedError
from repro.federated import (
    MAX_EFFECTIVE_RATE,
    ClientDevice,
    DropoutModel,
    FaultEvent,
    FaultSchedule,
    FederatedMeanQuery,
    MonitoringCampaign,
    NetworkModel,
    RetryPolicy,
    StreamingAggregator,
    TotalBlackout,
)
from repro.observability import (
    InMemoryExporter,
    MetricsRegistry,
    Tracer,
    instrumented,
)


def make_population(n=400, seed=0):
    rng = np.random.default_rng(seed)
    return [
        ClientDevice(i, [v])
        for i, v in enumerate(np.clip(rng.normal(100, 20, n), 0, None))
    ]


class TestFaultEvent:
    def test_single_round_coverage(self):
        event = FaultEvent(first_round=3, blackout=True)
        assert not event.covers(2)
        assert event.covers(3)
        assert not event.covers(4)

    def test_range_coverage(self):
        event = FaultEvent(first_round=2, last_round=4, loss_rate=0.5)
        assert [event.covers(k) for k in range(1, 6)] == [False, True, True, True, False]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FaultEvent(first_round=0, blackout=True)
        with pytest.raises(ConfigurationError):
            FaultEvent(first_round=3, last_round=2, blackout=True)
        with pytest.raises(ConfigurationError):
            FaultEvent(first_round=1, loss_rate=1.0)
        with pytest.raises(ConfigurationError):
            FaultEvent(first_round=1, dropout_rate=0.99)  # above the clip ceiling
        with pytest.raises(ConfigurationError):
            FaultEvent(first_round=1, deadline_factor=0.0)
        with pytest.raises(ConfigurationError):
            FaultEvent(first_round=1)  # no effect


class TestFaultSchedule:
    def test_spec_round_trip(self):
        schedule = FaultSchedule.from_spec("2:blackout;4-5:loss=0.6;6:deadline*0.5,dropout=0.4")
        assert len(schedule) == 3
        assert schedule.at(2).blackout
        assert schedule.at(4).loss_rate == 0.6
        assert schedule.at(5).loss_rate == 0.6
        active6 = schedule.at(6)
        assert active6.deadline_factor == 0.5 and active6.dropout_rate == 0.4
        assert not schedule.at(1).any

    def test_spec_errors(self):
        for bad in ("", "3", "3:", "x:blackout", "3:explode", "3:loss=high"):
            with pytest.raises(ConfigurationError):
                FaultSchedule.from_spec(bad)

    def test_json_round_trip(self):
        schedule = FaultSchedule.from_json(
            '[{"first_round": 1, "blackout": true}, {"first_round": 2, "loss_rate": 0.3}]'
        )
        assert schedule.at(1).blackout and schedule.at(2).loss_rate == 0.3
        with pytest.raises(ConfigurationError):
            FaultSchedule.from_json('[{"first_round": 1, "explode": true}]')

    def test_load_dispatches_on_shape(self, tmp_path):
        path = tmp_path / "faults.json"
        path.write_text('[{"first_round": 2, "loss_rate": 0.5}]')
        assert FaultSchedule.load(str(path)).at(2).loss_rate == 0.5
        assert FaultSchedule.load('[{"first_round": 2, "loss_rate": 0.5}]').at(2).loss_rate == 0.5
        assert FaultSchedule.load("2:loss=0.5").at(2).loss_rate == 0.5
        with pytest.raises(ConfigurationError):
            FaultSchedule.load(str(tmp_path / "missing.json"))

    def test_later_events_win_on_overlap(self):
        schedule = FaultSchedule.from_spec("1-5:loss=0.2;3:loss=0.8")
        assert schedule.at(2).loss_rate == 0.2
        assert schedule.at(3).loss_rate == 0.8

    def test_clock_advances_per_attempt_and_resets(self):
        schedule = FaultSchedule.from_spec("2:blackout")
        assert not schedule.begin_attempt().blackout
        assert schedule.begin_attempt().blackout
        assert schedule.attempts_started == 2
        schedule.reset()
        assert schedule.attempts_started == 0
        assert not schedule.begin_attempt().blackout

    def test_apply_wrappers_pass_through_when_inactive(self):
        schedule = FaultSchedule.from_spec("7:blackout")
        base_dropout = DropoutModel(rate=0.1)
        base_network = NetworkModel(loss_rate=0.1, deadline_s=100.0)
        active = schedule.at(1)
        assert active.apply_dropout(base_dropout) is base_dropout
        assert active.apply_network(base_network) is base_network

    def test_apply_wrappers_override_fields(self):
        active = FaultSchedule.from_spec("1:loss=0.6,deadline*0.5,latency*2,dropout=0.4").at(1)
        dropout = active.apply_dropout(DropoutModel(rate=0.05, jitter=0.1))
        assert dropout.rate == 0.4 and dropout.jitter == 0.0
        network = active.apply_network(NetworkModel(loss_rate=0.05, deadline_s=600.0))
        assert network.loss_rate == 0.6
        assert network.deadline_s == 300.0
        assert network.latency_median_s == 180.0

    def test_network_faults_without_base_network(self):
        # Faults can introduce weather into a run configured without one.
        network = FaultSchedule.from_spec("1:loss=0.3").at(1).apply_network(None)
        assert network is not None and network.loss_rate == 0.3

    def test_blackout_kills_everyone(self):
        survivors = TotalBlackout().draw_survivors(1_000, np.random.default_rng(0))
        assert not survivors.any()


class TestRetryPolicy:
    def test_exponential_backoff(self):
        policy = RetryPolicy(max_attempts=4, backoff_base_s=30.0, backoff_factor=2.0)
        assert [policy.backoff_s(k) for k in (1, 2, 3)] == [30.0, 60.0, 120.0]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_base_s=-1.0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ConfigurationError):
            RetryPolicy().backoff_s(0)


class TestDropoutClipAlignment:
    def test_rate_above_ceiling_rejected_at_construction(self):
        # Regression: rate=0.98 used to pass validation but silently clip
        # to 0.95 in draw_survivors; validation now matches the ceiling.
        with pytest.raises(ConfigurationError):
            DropoutModel(rate=0.98)
        DropoutModel(rate=MAX_EFFECTIVE_RATE)  # the boundary is legal

    def test_jitter_clip_surfaces_via_metric(self):
        model = DropoutModel(rate=0.9, jitter=1.0)
        registry = MetricsRegistry()
        with instrumented(metrics=registry):
            for seed in range(20):
                model.draw_survivors(100, seed)
        clips = registry.snapshot()["counters"].get("dropout_rate_clips_total", 0)
        assert clips > 0  # jittered draws beyond [0, ceiling] are counted


class TestQuorumAndRetryRounds:
    def _query(self, **kwargs):
        return FederatedMeanQuery(FixedPointEncoder.for_integers(8), mode="basic", **kwargs)

    def test_below_quorum_raises_without_retry(self):
        query = self._query(min_quorum=1_000)
        with pytest.raises(RoundFailedError) as info:
            query.run(make_population(400), rng=0)
        assert info.value.planned == 400
        assert info.value.survived == 400  # nobody dropped; quorum was simply higher

    def test_blackout_recovered_by_retry(self):
        query = self._query(
            faults=FaultSchedule.from_spec("1:blackout"),
            retry=RetryPolicy(max_attempts=2, backoff_base_s=45.0),
        )
        est = query.run(make_population(), rng=1)
        assert est.metadata["round_attempts"] == [2]
        assert est.metadata["backoff_s"] == [45.0]
        assert est.metadata["attempt_history"] == [[[400, 0], [400, 400]]]
        assert est.metadata["total_duration_s"] >= 45.0

    def test_retries_exhausted_still_raises(self):
        query = self._query(
            faults=FaultSchedule.from_spec("1-3:blackout"),
            retry=RetryPolicy(max_attempts=3),
        )
        with pytest.raises(RoundFailedError):
            query.run(make_population(), rng=2)

    def test_legacy_all_dropped_message_preserved(self):
        query = self._query(faults=FaultSchedule.from_spec("1:blackout"))
        with pytest.raises(ConfigurationError, match="every client dropped out"):
            query.run(make_population(), rng=3)

    def test_degraded_round_completes_above_quorum(self):
        query = self._query(
            faults=FaultSchedule.from_spec("1:loss=0.6"),
            network=NetworkModel(loss_rate=0.0, deadline_s=600.0),
            min_quorum=50,
        )
        est = query.run(make_population(), rng=4)
        assert est.metadata["degraded_rounds"] == [True]
        (inflation,) = est.metadata["variance_inflation"]
        assert inflation == pytest.approx(1 / 0.4, rel=0.25)

    def test_below_quorum_retries_then_degrades(self):
        # Attempt 1 is below quorum (95% dropout of 400 -> ~20 survivors);
        # attempt 2 runs at 60% dropout -> ~160 survivors: above quorum,
        # below half the plan -> completes degraded on the second attempt.
        query = self._query(
            faults=FaultSchedule.from_spec("1:dropout=0.95;2:dropout=0.6"),
            min_quorum=50,
            retry=RetryPolicy(max_attempts=2),
        )
        est = query.run(make_population(), rng=5)
        assert est.metadata["round_attempts"] == [2]
        assert est.metadata["degraded_rounds"] == [True]

    def test_adaptive_rounds_retry_independently(self):
        query = FederatedMeanQuery(
            FixedPointEncoder.for_integers(8),
            mode="adaptive",
            faults=FaultSchedule.from_spec("1:blackout;3:blackout"),
            retry=RetryPolicy(max_attempts=2),
        )
        est = query.run(make_population(), rng=6)
        # Round 1: attempts 1 (killed) + 2; round 2: attempts 3 (killed) + 4.
        assert est.metadata["round_attempts"] == [2, 2]

    def test_no_retry_no_faults_is_bit_identical_to_default(self):
        # The recovery wrapper must be a no-op for unconfigured queries.
        population = make_population()
        plain = self._query().run(population, rng=7)
        wrapped = self._query(degraded_fraction=0.5, min_quorum=1).run(population, rng=7)
        np.testing.assert_array_equal(plain.bit_means, wrapped.bit_means)
        assert plain.value == wrapped.value


class TestStreamingDegradation:
    def test_target_reports_flags_degraded_snapshots(self):
        from repro.federated import BitReport

        agg = StreamingAggregator(
            FixedPointEncoder.for_integers(4), min_reports=10, target_reports=100
        )
        for client in range(40):
            agg.submit(BitReport(client_id=client, bit_index=client % 4, bit=1))
        early = agg.estimate()
        assert early.metadata["degraded"] is True
        assert early.metadata["evidence_ratio"] == pytest.approx(0.4)
        for client in range(40, 140):
            agg.submit(BitReport(client_id=client, bit_index=client % 4, bit=1))
        full = agg.estimate()
        assert full.metadata["degraded"] is False

    def test_target_below_minimum_rejected(self):
        with pytest.raises(ConfigurationError):
            StreamingAggregator(
                FixedPointEncoder.for_integers(4), min_reports=10, target_reports=5
            )


class TestChaosCampaignIntegration:
    """The acceptance scenario: retry + quorum degradation keep a campaign alive."""

    SPEC = "1:blackout;3-4:loss=0.6"

    def _run_campaign(self, seed=0):
        population = make_population(400, seed=17)
        query = FederatedMeanQuery(
            FixedPointEncoder.for_integers(8),
            mode="basic",
            min_quorum=20,
            retry=RetryPolicy(max_attempts=3, backoff_base_s=60.0),
            faults=FaultSchedule.from_spec(self.SPEC),
        )
        campaign = MonitoringCampaign(query)
        memory = InMemoryExporter()
        registry = MetricsRegistry()
        with instrumented(Tracer([memory]), registry):
            for day in range(4):
                campaign.run_round(population, rng=np.random.default_rng(seed + day))
        return campaign, registry.snapshot(), memory.records

    def test_campaign_survives_kill_and_degradation(self):
        campaign, snapshot, spans = self._run_campaign()
        assert campaign.rounds_run == 4

        counters = snapshot["counters"]
        # Campaign round 1 = attempts 1 (blackout) + 2; rounds 2 and 3 run
        # at 60% loss (attempts 3, 4): degraded; round 4 (attempt 5) clean.
        assert counters["round_attempts_total"] == 5.0
        assert counters["rounds_failed_total"] == 1.0
        assert counters["round_retries_total"] == 1.0
        assert counters["rounds_degraded_total"] == 2.0
        assert counters["rounds_total"] == 4.0
        # Per-attempt report accounting still reconciles.
        assert counters["round_reports_planned_total"] == (
            counters["round_reports_delivered_total"]
            + counters["round_reports_lost_total"]
        )

        retry_spans = [s for s in spans if s.name == "round.retry"]
        assert len(retry_spans) == 1
        assert retry_spans[0].attributes["backoff_s"] == 60.0

        assert [r.metadata["round_attempts"] for r in campaign.records] == [[2], [1], [1], [1]]
        assert [r.metadata["degraded"] for r in campaign.records] == [False, True, True, False]
        assert campaign.rounds_degraded == 2
        assert campaign.total_attempts == 5
        # Degraded rounds completed under-strength yet still estimate sanely
        # (the widened tolerance IS the degradation: ~160 of 400 reporters).
        for estimate in campaign.estimates:
            assert estimate == pytest.approx(100.0, rel=0.35)

    def test_same_seed_is_bit_identical(self):
        first, _, _ = self._run_campaign(seed=99)
        second, _, _ = self._run_campaign(seed=99)
        assert first.estimates == second.estimates
        for a, b in zip(first.records, second.records):
            np.testing.assert_array_equal(a.estimate.bit_means, b.estimate.bit_means)
            assert a.metadata["round_attempts"] == b.metadata["round_attempts"]
