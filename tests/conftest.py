"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import FixedPointEncoder


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic generator, fresh per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def encoder8() -> FixedPointEncoder:
    """An 8-bit integer encoder (values 0..255)."""
    return FixedPointEncoder.for_integers(8)


@pytest.fixture
def encoder10() -> FixedPointEncoder:
    """A 10-bit integer encoder (values 0..1023)."""
    return FixedPointEncoder.for_integers(10)


@pytest.fixture
def normal_values(rng) -> np.ndarray:
    """A 10k-client Normal(600, 100) population, clipped non-negative."""
    return np.clip(rng.normal(600.0, 100.0, size=10_000), 0.0, None)
