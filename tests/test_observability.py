"""Unit tests for the observability substrate: spans, metrics, exporters."""

import json
import threading

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.observability import (
    NULL_METRICS,
    NULL_TRACER,
    ConsoleExporter,
    InMemoryExporter,
    JsonLinesExporter,
    MetricsRegistry,
    Tracer,
    configure,
    disable,
    format_span_tree,
    get_metrics,
    get_tracer,
    instrumented,
)


class TestTracer:
    def test_span_records_name_duration_and_attributes(self):
        exporter = InMemoryExporter()
        tracer = Tracer([exporter])
        with tracer.span("work", {"n": 3}) as span:
            span.set_attribute("extra", "yes")
        (record,) = exporter.records
        assert record.name == "work"
        assert record.attributes == {"n": 3, "extra": "yes"}
        assert record.duration_s >= 0.0
        assert record.status == "ok"
        assert record.parent_id is None

    def test_nesting_assigns_parent_ids(self):
        exporter = InMemoryExporter()
        tracer = Tracer([exporter])
        with tracer.span("outer") as outer:
            with tracer.span("inner"):
                pass
        inner, outer_record = exporter.records
        assert inner.name == "inner"
        assert inner.parent_id == outer.span_id
        assert outer_record.parent_id is None
        assert exporter.children_of(outer_record.span_id) == [inner]

    def test_sibling_spans_share_parent(self):
        exporter = InMemoryExporter()
        tracer = Tracer([exporter])
        with tracer.span("root"):
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        a, b, root = exporter.records
        assert a.parent_id == b.parent_id == root.span_id

    def test_exception_marks_error_status_and_propagates(self):
        exporter = InMemoryExporter()
        tracer = Tracer([exporter])
        with pytest.raises(ValueError):
            with tracer.span("explodes"):
                raise ValueError("boom")
        (record,) = exporter.records
        assert record.status == "error"
        assert "boom" in record.attributes["error"]

    def test_thread_stacks_are_independent(self):
        exporter = InMemoryExporter()
        tracer = Tracer([exporter])
        barrier = threading.Barrier(2)

        def work(name):
            with tracer.span(name):
                barrier.wait(timeout=5)

        threads = [threading.Thread(target=work, args=(f"t{i}",)) for i in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(r.parent_id is None for r in exporter.records)
        assert sorted(exporter.names()) == ["t0", "t1"]

    def test_null_tracer_spans_do_nothing(self):
        span = NULL_TRACER.span("ignored", {"a": 1})
        with span as inner:
            inner.set_attribute("b", 2)
        assert NULL_TRACER.span("x") is NULL_TRACER.span("y")
        assert not NULL_TRACER.enabled


class TestRuntimeConfiguration:
    def test_defaults_are_null(self):
        assert get_tracer() is NULL_TRACER
        assert get_metrics() is NULL_METRICS

    def test_instrumented_installs_and_restores(self):
        tracer = Tracer([InMemoryExporter()])
        registry = MetricsRegistry()
        with instrumented(tracer, registry) as (active_tracer, active_metrics):
            assert get_tracer() is tracer is active_tracer
            assert get_metrics() is registry is active_metrics
        assert get_tracer() is NULL_TRACER
        assert get_metrics() is NULL_METRICS

    def test_instrumented_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with instrumented(Tracer(), MetricsRegistry()):
                raise RuntimeError("oops")
        assert get_tracer() is NULL_TRACER

    def test_configure_and_disable(self):
        tracer = Tracer()
        configure(tracer=tracer)
        try:
            assert get_tracer() is tracer
            assert get_metrics() is NULL_METRICS
        finally:
            disable()
        assert get_tracer() is NULL_TRACER


class TestMetrics:
    def test_counter_accumulates_and_rejects_negatives(self):
        registry = MetricsRegistry()
        counter = registry.counter("reports_total")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ConfigurationError):
            counter.inc(-1)

    def test_gauge_sets_and_moves(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("dropout_rate")
        gauge.set(0.25)
        assert gauge.value == 0.25
        gauge.inc(-0.05)
        assert gauge.value == pytest.approx(0.20)

    def test_histogram_buckets_and_overflow(self):
        registry = MetricsRegistry()
        hist = registry.histogram("latency", buckets=(1.0, 10.0))
        hist.observe(0.5)
        hist.observe(1.0)  # inclusive upper bound
        hist.observe(5.0, count=3)
        hist.observe(99.0)
        data = hist.to_dict()
        assert data["counts"] == [2, 3, 1]
        assert data["count"] == 6
        assert data["sum"] == pytest.approx(0.5 + 1.0 + 15.0 + 99.0)

    def test_histogram_observe_array_matches_scalar_path(self):
        registry = MetricsRegistry()
        values = np.array([0.2, 1.5, 7.0, 200.0])
        array_hist = registry.histogram("a", buckets=(1.0, 10.0))
        array_hist.observe_array(values)
        scalar_hist = registry.histogram("b", buckets=(1.0, 10.0))
        for v in values:
            scalar_hist.observe(float(v))
        assert array_hist.to_dict() == scalar_hist.to_dict()

    def test_histogram_rejects_bad_buckets(self):
        registry = MetricsRegistry()
        with pytest.raises(ConfigurationError):
            registry.histogram("bad", buckets=(2.0, 1.0))
        with pytest.raises(ConfigurationError):
            registry.histogram("empty", buckets=())

    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        with pytest.raises(ConfigurationError):
            registry.gauge("x")

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        registry.gauge("g").set(7.0)
        registry.histogram("h", buckets=(1.0,)).observe(0.5)
        snap = registry.snapshot()
        assert snap["counters"] == {"c": 2.0}
        assert snap["gauges"] == {"g": 7.0}
        assert snap["histograms"]["h"]["counts"] == [1, 0]
        json.dumps(snap)  # snapshot must be JSON-serializable as-is

    def test_reset_clears_instruments(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.reset()
        assert registry.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_null_metrics_swallow_everything(self):
        NULL_METRICS.counter("c").inc(5)
        NULL_METRICS.gauge("g").set(1.0)
        NULL_METRICS.histogram("h").observe(2.0)
        assert NULL_METRICS.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}
        assert not NULL_METRICS.enabled

    def test_counter_thread_safety(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits")

        def spin():
            for _ in range(10_000):
                counter.inc()

        threads = [threading.Thread(target=spin) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 40_000


class TestExporters:
    def test_jsonl_exporter_writes_spans_and_metrics(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        exporter = JsonLinesExporter(path)
        tracer = Tracer([exporter])
        with tracer.span("outer", {"k": "v"}):
            with tracer.span("inner"):
                pass
        exporter.export_metrics({"counters": {"c": 1.0}})
        exporter.close()
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert [line["type"] for line in lines] == ["span", "span", "metrics"]
        assert lines[0]["name"] == "inner"  # children close first
        assert lines[1]["name"] == "outer"
        assert lines[0]["parent_id"] == lines[1]["span_id"]
        assert lines[2]["metrics"] == {"counters": {"c": 1.0}}

    def test_jsonl_exporter_rejects_use_after_close(self, tmp_path):
        exporter = JsonLinesExporter(tmp_path / "t.jsonl")
        exporter.close()
        with pytest.raises(ValueError):
            exporter.export_metrics({})

    def test_console_exporter_prints_one_line_per_span(self, capsys):
        tracer = Tracer([ConsoleExporter()])
        with tracer.span("hello", {"n": 1}):
            pass
        out = capsys.readouterr().out
        assert "hello" in out
        assert "n=1" in out
        assert out.count("\n") == 1

    def test_format_span_tree_indents_children(self):
        exporter = InMemoryExporter()
        tracer = Tracer([exporter])
        with tracer.span("root"):
            with tracer.span("child"):
                with tracer.span("grandchild"):
                    pass
        tree = format_span_tree(exporter.records)
        lines = tree.splitlines()
        assert lines[0].startswith("root")
        assert lines[1].startswith("  child")
        assert lines[2].startswith("    grandchild")
