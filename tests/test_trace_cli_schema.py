"""Schema stability test for ``repro.cli trace --json`` (PR 5 satellite).

Downstream tooling parses this output; the test pins the top-level keys,
their types, and the per-span record fields so accidental schema drift
fails loudly.
"""

from __future__ import annotations

import io
import json

from repro.cli import run_traced_round

TOP_LEVEL_TYPES = {
    "target": str,
    "seed": int,
    "quick": bool,
    "clients": int,
    "columnar": bool,
    "secure_agg": bool,
    "shard_size": int,
    "estimate": float,
    "truth": float,
    "reconciled": bool,
    "n_spans": int,
    "trace_path": str,
    "analysis": dict,
    "health": dict,
    "recovery": dict,
    "spans": list,
    "metrics": dict,
}

SPAN_FIELD_TYPES = {
    "type": str,
    "name": str,
    "span_id": int,
    "start_time_s": float,
    "duration_s": float,
    "status": str,
    "attributes": dict,
}

ANALYSIS_KEYS = {
    "truth",
    "observed_error",
    "predicted_std",
    "bound_2sigma",
    "within_bound",
    "epsilon",
}


def _trace_json(tmp_path, **kwargs):
    stream = io.StringIO()
    run_traced_round(
        "1a",
        quick=True,
        seed=0,
        out_path=str(tmp_path / "trace.jsonl"),
        stream=stream,
        as_json=True,
        **kwargs,
    )
    return json.loads(stream.getvalue())


class TestTraceJsonSchema:
    def test_top_level_keys_and_types(self, tmp_path):
        payload = _trace_json(tmp_path)
        assert set(payload) == set(TOP_LEVEL_TYPES) | {"record_dir", "chunk"}
        for key, expected in TOP_LEVEL_TYPES.items():
            assert isinstance(payload[key], expected), (key, type(payload[key]))
        assert payload["record_dir"] is None
        # chunk is nullable: None means the REPRO_BATCH_CHUNK default.
        assert payload["chunk"] is None or isinstance(payload["chunk"], int)

    def test_columnar_round_trip(self, tmp_path):
        payload = _trace_json(tmp_path, clients=500, chunk=64)
        assert payload["columnar"] is True
        assert payload["clients"] == 500
        assert payload["chunk"] == 64
        names = {span["name"] for span in payload["spans"]}
        assert "client_plane.elicit" in names
        assert "client_plane.collect" in names

    def test_span_record_fields(self, tmp_path):
        payload = _trace_json(tmp_path)
        assert payload["n_spans"] == len(payload["spans"])
        assert payload["spans"], "trace produced no spans"
        for span in payload["spans"]:
            assert set(span) == set(SPAN_FIELD_TYPES) | {"parent_id"}
            for key, expected in SPAN_FIELD_TYPES.items():
                assert isinstance(span[key], expected), (key, type(span[key]))
            assert span["parent_id"] is None or isinstance(span["parent_id"], int)
        names = {span["name"] for span in payload["spans"]}
        assert "federated.query" in names
        assert "federated.round" in names

    def test_analysis_and_recovery_sections(self, tmp_path):
        payload = _trace_json(tmp_path)
        assert set(payload["analysis"]) == ANALYSIS_KEYS
        assert payload["analysis"]["bound_2sigma"] >= 0.0
        assert set(payload["recovery"]) == {
            "round_attempts",
            "degraded_rounds",
            "backoff_s",
        }
        assert isinstance(payload["recovery"]["round_attempts"], list)

    def test_health_section_shape(self, tmp_path):
        payload = _trace_json(tmp_path)
        health = payload["health"]
        assert {
            "rules",
            "evaluations",
            "fired_total",
            "resolved_total",
            "by_rule",
            "by_severity",
            "active",
        } <= set(health)
        assert health["evaluations"] >= 1

    def test_metrics_snapshot_shape(self, tmp_path):
        payload = _trace_json(tmp_path)
        assert set(payload["metrics"]) == {"counters", "gauges", "histograms"}
        counters = payload["metrics"]["counters"]
        assert counters["round_reports_planned_total"] == (
            counters["round_reports_delivered_total"]
            + counters["round_reports_lost_total"]
        )

    def test_json_output_is_machine_only(self, tmp_path):
        stream = io.StringIO()
        run_traced_round(
            "1a",
            quick=True,
            seed=0,
            out_path=str(tmp_path / "trace.jsonl"),
            stream=stream,
            as_json=True,
        )
        # The whole stream must be one JSON document -- no banner lines.
        json.loads(stream.getvalue())

    def test_recorded_json_points_at_artifact(self, tmp_path):
        payload = _trace_json(
            tmp_path, record_dir=str(tmp_path / "run"), sim_clock=True
        )
        assert payload["record_dir"] == str(tmp_path / "run")
