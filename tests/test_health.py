"""Health plane tests (PR 6): SLO rules, fire/resolve engine, live watch.

The health monitor is the campaign's watchdog; these tests pin each
built-in rule's trigger arithmetic, the one-fired/one-resolved transition
semantics, the ``alerts.jsonl`` sink round trip, the stderr-only live
monitor, and -- via the CLI -- byte-identical alert logs under
``--sim-clock``.
"""

from __future__ import annotations

import io
import json

import pytest

from repro.cli import run_traced_round
from repro.core.monitor import HighBitMonitor
from repro.exceptions import ConfigurationError
from repro.observability import (
    ALERTS_FILENAME,
    HealthMonitor,
    InMemoryExporter,
    LiveMonitor,
    MetricsRegistry,
    Tracer,
    default_rules,
    instrumented,
    load_alerts,
)
from repro.observability.health import (
    DropoutClipRule,
    EpsilonBurnRateRule,
    HealthRule,
    HealthSample,
    MonitorShiftRule,
    QuorumDegradationRule,
    Reading,
    RetryStormRule,
    StragglerSkewRule,
    VarianceDriftRule,
    rank_active,
)
from repro.observability.tracing import SpanRecord


def _round(attempt=1, failed=False, degraded=False, t_s=0.0, counters=None, **kw):
    return HealthSample(
        kind="round",
        t_s=t_s,
        attempt=attempt,
        failed=failed,
        degraded=degraded,
        counters=counters or {},
        **kw,
    )


class TestRules:
    def test_retry_storm_fires_and_clears_with_the_window(self):
        rule = RetryStormRule(window=5, threshold=2)
        readings = [rule.evaluate(_round(attempt=a)) for a in (1, 2, 1, 2)]
        assert [r.firing for r in readings] == [False, False, False, True]
        # Five clean attempts push the retries out of the window.
        for _ in range(5):
            reading = rule.evaluate(_round(attempt=1))
        assert reading.firing is False

    def test_retry_storm_ignores_other_kinds(self):
        rule = RetryStormRule()
        assert rule.evaluate(HealthSample(kind="estimate", t_s=0.0)).firing is None

    def test_epsilon_burn_rate_tracks_the_schedule(self):
        rule = EpsilonBurnRateRule(budget=2.0, planned_rounds=4)
        # Round 1 spends 1.5 of the 0.5 earned so far: way ahead of schedule.
        assert rule.evaluate(_round(epsilon_spent=1.5)).firing is True
        # Three more on-schedule rounds let the allowance catch up.
        for spent in (1.6, 1.8, 2.0):
            reading = rule.evaluate(_round(epsilon_spent=spent))
        assert reading.firing is False

    def test_epsilon_burn_rate_reads_the_counter_snapshot(self):
        rule = EpsilonBurnRateRule(budget=1.0, planned_rounds=2)
        reading = rule.evaluate(_round(counters={"privacy_epsilon_spent_total": 2.0}))
        assert reading.firing is True
        assert rule.evaluate(_round()).firing is None  # no spend signal at all

    def test_quorum_degradation_needs_a_full_window(self):
        rule = QuorumDegradationRule(window=3, max_rate=0.5)
        assert rule.evaluate(_round(degraded=True)).firing is None
        assert rule.evaluate(_round(failed=True)).firing is None
        assert rule.evaluate(_round()).firing is True  # 2/3 >= 0.5
        assert rule.evaluate(_round()).firing is False  # degraded slid out: 1/3
        assert rule.evaluate(_round()).firing is False  # 0/3

    def test_dropout_clip_watches_the_counter_delta(self):
        rule = DropoutClipRule(window=3, threshold=1)
        clips = [0.0, 0.0, 1.0, 1.0, 1.0, 1.0]
        readings = [
            rule.evaluate(_round(counters={"dropout_rate_clips_total": c})) for c in clips
        ]
        assert [r.firing for r in readings] == [False, False, True, True, True, False]

    def test_monitor_shift_on_campaign_samples(self):
        rule = MonitorShiftRule()
        fired = rule.evaluate(HealthSample(kind="campaign", t_s=0.0, shift=True))
        quiet = rule.evaluate(HealthSample(kind="campaign", t_s=1.0, shift=False))
        assert fired.firing is True and quiet.firing is False

    def test_monitor_shift_on_counter_advance(self):
        rule = MonitorShiftRule()
        assert rule.evaluate(_round(counters={"monitor_shifts_total": 0.0})).firing is False
        assert rule.evaluate(_round(counters={"monitor_shifts_total": 1.0})).firing is True
        assert rule.evaluate(_round(counters={"monitor_shifts_total": 1.0})).firing is False

    def test_variance_drift_scores_the_normal_tail(self):
        rule = VarianceDriftRule(alpha=1e-4)
        plausible = HealthSample(
            kind="estimate", t_s=0.0, observed_error=1.0, predicted_std=1.0
        )
        implausible = HealthSample(
            kind="estimate", t_s=0.0, observed_error=10.0, predicted_std=1.0
        )
        no_model = HealthSample(kind="estimate", t_s=0.0, observed_error=1.0)
        assert rule.evaluate(plausible).firing is False
        assert rule.evaluate(implausible).firing is True
        assert rule.evaluate(no_model).firing is None

    def test_straggler_skew_fires_on_divergent_slow_decile(self):
        rule = StragglerSkewRule(max_ratio=4.0)
        healthy = rule.evaluate(
            _round(uplink_median_s=0.010, uplink_slow_decile_s=0.030)
        )
        assert healthy.firing is False
        skewed = rule.evaluate(
            _round(uplink_median_s=0.010, uplink_slow_decile_s=0.050)
        )
        assert skewed.firing is True
        assert skewed.value == pytest.approx(5.0)
        assert "5.00x" in skewed.detail
        recovered = rule.evaluate(
            _round(uplink_median_s=0.010, uplink_slow_decile_s=0.011)
        )
        assert recovered.firing is False

    def test_straggler_skew_has_no_opinion_without_uplink_timings(self):
        rule = StragglerSkewRule()
        # In-process rounds (no wire) and estimate samples carry no timings.
        assert rule.evaluate(_round()).firing is None
        assert rule.evaluate(HealthSample(kind="estimate", t_s=0.0)).firing is None
        # A degenerate (sub-floor) median is ignored rather than divided by.
        degenerate = rule.evaluate(
            _round(uplink_median_s=0.0, uplink_slow_decile_s=1.0)
        )
        assert degenerate.firing is None

    def test_straggler_skew_reads_round_span_attributes(self):
        monitor = HealthMonitor(
            rules=[StragglerSkewRule(max_ratio=4.0)], round_span="serve.round"
        )
        monitor.export(
            SpanRecord(
                name="serve.round",
                span_id=1,
                parent_id=None,
                start_time_s=0.0,
                duration_s=1.0,
                attributes={
                    "round_index": 0,
                    "attempt": 1,
                    "uplink_median_s": 0.002,
                    "uplink_slow_decile_s": 0.020,
                },
            )
        )
        (event,) = monitor.events
        assert event.rule == "straggler-skew"
        assert event.state == "fired"

    def test_rule_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            EpsilonBurnRateRule(budget=0.0)
        with pytest.raises(ConfigurationError):
            RetryStormRule(window=0)
        with pytest.raises(ConfigurationError):
            QuorumDegradationRule(max_rate=1.5)
        with pytest.raises(ConfigurationError):
            VarianceDriftRule(alpha=1.0)
        with pytest.raises(ConfigurationError):
            StragglerSkewRule(max_ratio=1.0)
        with pytest.raises(ConfigurationError):
            StragglerSkewRule(floor_s=0.0)

    def test_default_rules_gate_the_budget_rule(self):
        names = [r.name for r in default_rules()]
        assert "epsilon-burn-rate" not in names
        assert "straggler-skew" in names
        names = [r.name for r in default_rules(epsilon_budget=2.0)]
        assert names[0] == "epsilon-burn-rate"


class _AlwaysOn(HealthRule):
    name = "always-on"
    severity = "critical"

    def __init__(self):
        self.firing = True

    def evaluate(self, sample):
        return Reading(self.firing, value=1.0, detail="scripted")


class TestHealthMonitor:
    def test_fire_once_resolve_once(self):
        rule = _AlwaysOn()
        monitor = HealthMonitor(rules=[rule])
        assert len(monitor.observe_round(0, 1, 10, 10)) == 1
        assert monitor.observe_round(1, 1, 10, 10) == []  # active, no re-fire
        rule.firing = False
        transitions = monitor.observe_round(2, 1, 10, 10)
        assert [t.state for t in transitions] == ["resolved"]
        assert monitor.observe_round(3, 1, 10, 10) == []
        assert [e.state for e in monitor.events] == ["fired", "resolved"]
        assert monitor.active_alerts() == []

    def test_duplicate_rule_names_rejected(self):
        with pytest.raises(ConfigurationError, match="unique"):
            HealthMonitor(rules=[RetryStormRule(), RetryStormRule()])

    def test_invalid_severity_rejected(self):
        bad = _AlwaysOn()
        bad.severity = "catastrophic"
        with pytest.raises(ConfigurationError, match="severity"):
            HealthMonitor(rules=[bad])

    def test_summary_shape(self):
        rule = _AlwaysOn()
        monitor = HealthMonitor(rules=[rule])
        monitor.observe_round(0, 1, 10, 10)
        summary = monitor.summary()
        assert summary["evaluations"] == 1
        assert summary["fired_total"] == 1
        assert summary["resolved_total"] == 0
        assert summary["by_rule"] == {"always-on": {"fired": 1, "resolved": 0}}
        assert summary["by_severity"] == {"critical": 1}
        assert summary["active"][0]["rule"] == "always-on"
        assert {r["name"] for r in summary["rules"]} == {"always-on"}

    def test_sink_round_trip(self, tmp_path):
        rule = _AlwaysOn()
        monitor = HealthMonitor(rules=[rule], sink=tmp_path / ALERTS_FILENAME)
        monitor.observe_round(0, 1, 10, 10, duration_s=1.5)
        rule.firing = False
        monitor.observe_round(1, 1, 10, 10, duration_s=1.5)
        monitor.close()
        alerts = load_alerts(tmp_path)
        assert [a["state"] for a in alerts] == ["fired", "resolved"]
        assert alerts[0]["rule"] == "always-on"
        assert alerts[0]["t_s"] == pytest.approx(1.5)
        assert alerts[1]["t_s"] == pytest.approx(3.0)

    def test_load_alerts_missing_and_truncated(self, tmp_path):
        assert load_alerts(tmp_path) == []
        path = tmp_path / ALERTS_FILENAME
        path.write_text('{"rule": "ok"}\n{"rule": "trunc')
        assert load_alerts(tmp_path) == [{"rule": "ok"}]

    def test_span_driven_sample_uses_span_end_time(self):
        rule = RetryStormRule(window=2, threshold=1)
        monitor = HealthMonitor(rules=[rule])
        span = SpanRecord(
            name="federated.round",
            span_id=1,
            parent_id=None,
            start_time_s=10.0,
            duration_s=2.0,
            attributes={"round_index": 0, "attempt": 2, "planned_clients": 10},
        )
        monitor.export(span)
        assert monitor.events[0].t_s == pytest.approx(12.0)
        monitor.export(
            SpanRecord(
                name="not.a.round", span_id=2, parent_id=None,
                start_time_s=99.0, duration_s=0.0, attributes={},
            )
        )
        assert monitor.summary()["evaluations"] == 1

    def test_rank_active_orders_by_severity(self):
        ranked = rank_active(
            [
                {"rule": "b", "severity": "info"},
                {"rule": "a", "severity": "critical"},
                {"rule": "c", "severity": "warning"},
            ]
        )
        assert [a["rule"] for a in ranked] == ["a", "c", "b"]


class TestMonitorShiftInstrumentation:
    def _trigger_shift(self):
        monitor = HighBitMonitor(noise_floor=0.01, shift_threshold=2, window=3)
        quiet = [0.4, 0.5, 0.3, 0.0, 0.0, 0.0, 0.0, 0.0]
        for _ in range(3):
            monitor.update(quiet)
        alert = monitor.update([0.4, 0.5, 0.3, 0.0, 0.0, 0.0, 0.2, 0.0])
        assert alert is not None
        return alert

    def test_shift_emits_span_and_counter(self):
        memory = InMemoryExporter()
        registry = MetricsRegistry()
        with instrumented(Tracer([memory]), registry):
            alert = self._trigger_shift()
        spans = [r for r in memory.records if r.name == "monitor.shift"]
        assert len(spans) == 1
        assert spans[0].attributes["shift"] == alert.shift
        assert spans[0].attributes["observed_bit"] == alert.observed_bit
        assert registry.snapshot()["counters"]["monitor_shifts_total"] == 1.0

    def test_shift_costs_nothing_uninstrumented(self):
        # No tracer/metrics installed: the update still works, silently.
        self._trigger_shift()


class TestLiveMonitor:
    def test_update_lines_and_finish(self):
        stream = io.StringIO()
        live = LiveMonitor(planned_rounds=2, stream=stream)
        live.update(round_index=0, survived=90, planned=100, duration_s=10.0)
        live.update(round_index=1, attempt=3, survived=80, planned=100,
                    degraded=True, duration_s=10.0)
        live.finish(estimate=123.456)
        lines = stream.getvalue().splitlines()
        assert len(lines) == 3
        assert lines[0].startswith("[watch] round 0 | 90/100 reports")
        assert "ETA" in lines[0]
        assert "attempt 3" in lines[1] and "degraded" in lines[1]
        assert lines[2].startswith("[watch] done | 2 round(s) | 170 reports")
        assert "estimate 123.456" in lines[2]
        assert "alerts: none" in lines[2]

    def test_active_alerts_rendered_most_severe_first(self):
        rule = _AlwaysOn()
        health = HealthMonitor(rules=[rule])
        health.observe_round(0, 1, 10, 10)
        stream = io.StringIO()
        live = LiveMonitor(health=health, stream=stream)
        live.update(round_index=0, survived=10, planned=10)
        assert "alerts: always-on(critical)" in stream.getvalue()

    def test_exporter_protocol_ignores_other_spans(self):
        stream = io.StringIO()
        live = LiveMonitor(stream=stream)
        live.export(
            SpanRecord(
                name="round.assign", span_id=1, parent_id=None,
                start_time_s=0.0, duration_s=0.1, attributes={},
            )
        )
        assert stream.getvalue() == ""


class TestWatchCli:
    def test_watch_writes_stderr_and_keeps_stdout_json_clean(self, tmp_path):
        stdout, stderr = io.StringIO(), io.StringIO()
        run_traced_round(
            "1a",
            quick=True,
            seed=0,
            out_path=str(tmp_path / "trace.jsonl"),
            stream=stdout,
            as_json=True,
            watch=True,
            watch_stream=stderr,
        )
        payload = json.loads(stdout.getvalue())  # stdout stays one JSON doc
        assert payload["health"]["evaluations"] >= 1
        watch_lines = stderr.getvalue().splitlines()
        assert all(line.startswith("[watch] ") for line in watch_lines)
        assert any(line.startswith("[watch] done") for line in watch_lines)
        # One line per round attempt plus the closing summary.
        assert len(watch_lines) == sum(payload["recovery"]["round_attempts"]) + 1


class TestAlertsByteIdentity:
    def _recorded_chaos(self, tmp_path, name):
        record_dir = tmp_path / name
        run_traced_round(
            "3a",
            quick=True,
            seed=3,
            sim_clock=True,
            max_retries=4,
            min_quorum=100,
            fault_schedule="1:blackout;2:blackout",
            record_dir=str(record_dir),
            stream=io.StringIO(),
        )
        return record_dir

    def test_sim_clock_alerts_are_byte_identical(self, tmp_path):
        dir_a = self._recorded_chaos(tmp_path / "a", "run")
        dir_b = self._recorded_chaos(tmp_path / "b", "run")
        alerts_a = (dir_a / ALERTS_FILENAME).read_bytes()
        assert alerts_a, "chaos run produced no alert transitions"
        assert alerts_a == (dir_b / ALERTS_FILENAME).read_bytes()
        # The storm of back-to-back retries must actually be in the log.
        rules = {a["rule"] for a in load_alerts(dir_a)}
        assert "retry-storm" in rules

    def test_health_summary_lands_in_the_manifest(self, tmp_path):
        record_dir = self._recorded_chaos(tmp_path, "run")
        manifest = json.loads((record_dir / "manifest.json").read_text())
        health = manifest["health"]
        assert health["fired_total"] >= 1
        assert health["by_rule"]["retry-storm"]["fired"] >= 1
