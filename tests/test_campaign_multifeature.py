"""Monitoring campaigns and multi-feature bit-budgeted queries."""

import numpy as np
import pytest

from repro.core import FixedPointEncoder
from repro.exceptions import ConfigurationError
from repro.federated import (
    ClientDevice,
    DropoutModel,
    FederatedMeanQuery,
    MonitoringCampaign,
    MultiFeatureQuery,
)


def _population(rng, n=2_000, scale=100.0):
    return [
        ClientDevice(i, [v])
        for i, v in enumerate(np.clip(rng.normal(scale, 20, n), 0, None))
    ]


class TestMonitoringCampaign:
    def test_records_accumulate(self):
        rng = np.random.default_rng(0)
        campaign = MonitoringCampaign(
            FederatedMeanQuery(FixedPointEncoder.for_integers(10))
        )
        for _ in range(3):
            campaign.run_round(_population(rng), rng)
        assert campaign.rounds_run == 3
        assert len(campaign.records) == 3
        assert len(campaign.estimates) == 3
        assert all(80 < e < 120 for e in campaign.estimates)

    def test_alert_fires_on_regression(self):
        rng = np.random.default_rng(1)
        campaign = MonitoringCampaign(
            FederatedMeanQuery(FixedPointEncoder.for_integers(12))
        )
        alerts = []
        for day in range(6):
            scale = 100.0 if day < 4 else 1500.0
            record = campaign.run_round(_population(rng, scale=scale), rng)
            if record.alert:
                alerts.append(record.round_index)
        # The first alert fires the round the regression ships; the rolling
        # baseline may trail for a round or two, re-alerting until it
        # catches up.
        assert alerts and alerts[0] == 4
        assert len(campaign.alerts) == len(alerts)

    def test_no_alert_when_stable(self):
        rng = np.random.default_rng(2)
        campaign = MonitoringCampaign(
            FederatedMeanQuery(FixedPointEncoder.for_integers(10))
        )
        for _ in range(6):
            campaign.run_round(_population(rng), rng)
        assert campaign.alerts == ()

    def test_metadata_carries_ops_state(self):
        rng = np.random.default_rng(3)
        campaign = MonitoringCampaign(
            FederatedMeanQuery(
                FixedPointEncoder.for_integers(10), dropout=DropoutModel(0.25)
            )
        )
        record = campaign.run_round(_population(rng), rng)
        assert record.metadata["dropout_rate_estimate"] == pytest.approx(0.25, abs=0.08)
        assert record.metadata["upper_bound"] > 0


class TestMultiFeatureQuery:
    def _feature_population(self, rng, n=6_000):
        population = []
        for i in range(n):
            population.append(ClientDevice(i, [0.0], {"features": {
                "latency": np.clip(rng.normal(200, 30, 1), 0, None),
                "memory": np.clip(rng.normal(60, 10, 1), 0, None),
                "battery": np.clip(rng.normal(80, 5, 1), 0, None),
            }}))
        return population

    def _queries(self):
        return {
            "latency": FederatedMeanQuery(FixedPointEncoder.for_integers(9)),
            "memory": FederatedMeanQuery(FixedPointEncoder.for_integers(7)),
            "battery": FederatedMeanQuery(FixedPointEncoder.for_integers(7)),
        }

    def test_all_features_estimated(self):
        rng = np.random.default_rng(4)
        mfq = MultiFeatureQuery(self._queries())
        results = mfq.run(self._feature_population(rng), rng)
        assert results["latency"].value == pytest.approx(200, abs=15)
        assert results["memory"].value == pytest.approx(60, abs=5)
        assert results["battery"].value == pytest.approx(80, abs=5)

    def test_budget_enforced_one_feature_per_client(self):
        rng = np.random.default_rng(5)
        population = self._feature_population(rng)
        mfq = MultiFeatureQuery(self._queries(), features_per_client=1)
        mfq.run(population, rng)
        # Each client served at most one feature -> at most one bit each.
        assert mfq.total_private_bits <= len(population)
        assert all(
            mfq.meter.bits_disclosed_by(c.client_id) <= 1 for c in population
        )

    def test_budget_two_features_per_client(self):
        rng = np.random.default_rng(6)
        population = self._feature_population(rng)
        mfq = MultiFeatureQuery(self._queries(), features_per_client=2)
        mfq.run(population, rng)
        assert all(
            mfq.meter.bits_disclosed_by(c.client_id) <= 2 for c in population
        )

    def test_missing_feature_clients_skipped(self):
        rng = np.random.default_rng(7)
        population = self._feature_population(rng, n=3_000)
        # Strip "memory" from a third of the fleet.
        for client in population[::3]:
            del client.attributes["features"]["memory"]
        mfq = MultiFeatureQuery(self._queries())
        results = mfq.run(population, rng)
        assert results["memory"].value == pytest.approx(60, abs=5)

    def test_no_data_for_feature_raises(self):
        rng = np.random.default_rng(8)
        population = self._feature_population(rng, n=300)
        for client in population:
            del client.attributes["features"]["battery"]
        with pytest.raises(ConfigurationError):
            MultiFeatureQuery(self._queries()).run(population, rng)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MultiFeatureQuery({})
        with pytest.raises(ConfigurationError):
            MultiFeatureQuery(self._queries(), features_per_client=0)
        with pytest.raises(ConfigurationError):
            MultiFeatureQuery(self._queries(), features_per_client=4)
