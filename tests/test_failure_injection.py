"""Failure injection: corrupted inputs, degenerate sizes, byzantine payloads.

Production aggregation pipelines fail at the edges: a malformed report, a
shard with one client, a cohort that all dropped, a 1-bit encoder.  These
tests pin down the behaviour in each corner -- either a clean, typed error
or a correct degenerate result, never silent corruption.
"""

import numpy as np
import pytest

from repro.core import (
    AdaptiveBitPushing,
    BasicBitPushing,
    BitSamplingSchedule,
    FederatedHistogram,
    FixedPointEncoder,
)
from repro.exceptions import (
    ConfigurationError,
    ProtocolError,
    SecureAggregationError,
)
from repro.federated import (
    BitReport,
    ClientDevice,
    FaultSchedule,
    FederatedMeanQuery,
    NetworkModel,
    RetryPolicy,
    SecureAggregationSession,
    StreamingAggregator,
)
from repro.observability import MetricsRegistry, instrumented
from repro.federated.secure_agg import PrimeField, Share, reconstruct_secret
from repro.privacy import RandomizedResponse


class TestDegenerateSizes:
    def test_one_bit_encoder_works(self, rng):
        encoder = FixedPointEncoder.for_integers(1)
        values = np.array([0.0, 1.0] * 1_000)
        est = BasicBitPushing(encoder).estimate(values, rng)
        assert est.value == pytest.approx(0.5, abs=0.05)

    def test_adaptive_with_two_clients(self, encoder8, rng):
        # Smallest legal cohort: one client per round.
        result = AdaptiveBitPushing(encoder8).estimate(np.array([10.0, 10.0]), rng)
        assert result.rounds[0].n_clients == 1
        assert result.rounds[1].n_clients == 1

    def test_single_bucket_histogram(self, rng):
        hist = FederatedHistogram.uniform(0.0, 10.0, 1)
        est = hist.estimate(rng.uniform(0, 10, 100), rng)
        assert est.frequencies[0] == pytest.approx(1.0)

    def test_single_bit_schedule(self, rng):
        sched = BitSamplingSchedule.uniform(1)
        assert sched.probabilities.tolist() == [1.0]

    def test_one_client_one_bit(self, rng):
        encoder = FixedPointEncoder.for_integers(4)
        est = BasicBitPushing(encoder).estimate(np.array([8.0]), rng)
        # One client reports one bit; the estimate is whatever that bit
        # implies -- crude but well-defined and within the encodable range.
        assert 0.0 <= est.value <= encoder.representable_max


class TestByzantinePayloads:
    def test_streaming_rejects_alien_bits(self, encoder8):
        agg = StreamingAggregator(encoder8)
        with pytest.raises(ProtocolError):
            agg.submit(BitReport(0, 0, 7))

    def test_streaming_rejects_out_of_band_index(self, encoder8):
        agg = StreamingAggregator(encoder8)
        with pytest.raises(ProtocolError):
            agg.submit(BitReport(0, 63, 1))

    def test_rejected_report_leaves_counters_clean(self, encoder8):
        agg = StreamingAggregator(encoder8)
        agg.submit(BitReport(0, 0, 1))
        with pytest.raises(ProtocolError):
            agg.submit(BitReport(1, 0, 9))
        assert agg.reports_received == 1
        # The byzantine client did not burn its id: a valid retry works.
        agg.submit(BitReport(1, 0, 1))
        assert agg.reports_received == 2

    def test_perturbation_shape_change_detected(self, encoder8, rng):
        class ShapeShifter:
            def perturb_bits(self, bits, rng):
                return np.zeros(bits.size + 1)

            def unbias_bit_means(self, means):
                return means

        est = BasicBitPushing(encoder8, perturbation=ShapeShifter())
        with pytest.raises(ProtocolError):
            est.estimate(np.full(100, 5.0), rng)


class TestSecureAggregationFailures:
    def test_corrupted_share_detected_by_duplicate_point(self):
        field = PrimeField()
        with pytest.raises(SecureAggregationError):
            reconstruct_secret([Share(1, 5), Share(1, 9)], field)

    def test_exactly_threshold_survivors_succeeds(self):
        session = SecureAggregationSession(6, 2, threshold=4, rng=0)
        for cid in range(4):
            session.submit(cid, [1, 2])
        assert session.finalize() == [4, 8]

    def test_one_below_threshold_fails(self):
        session = SecureAggregationSession(6, 2, threshold=4, rng=1)
        for cid in range(3):
            session.submit(cid, [1, 2])
        with pytest.raises(SecureAggregationError):
            session.finalize()

    def test_negative_contributions_survive_centering(self):
        # Debiased counters can be negative; the field's centered decode
        # must bring them back as signed integers.
        session = SecureAggregationSession(3, 1, threshold=2, rng=2)
        session.submit(0, [-5])
        session.submit(1, [2])
        session.submit(2, [-4])
        assert session.finalize() == [-7]


class TestFederatedQueryFailureModes:
    def _population(self, n=300):
        rng = np.random.default_rng(0)
        return [
            ClientDevice(i, [v])
            for i, v in enumerate(np.clip(rng.normal(100, 20, n), 0, None))
        ]

    def test_total_network_blackout_raises(self, encoder8):
        query = FederatedMeanQuery(
            encoder8, network=NetworkModel(loss_rate=0.95, deadline_s=0.001)
        )
        with pytest.raises(ConfigurationError):
            query.run(self._population(), rng=0)

    def test_lone_client_shard_still_counted(self, encoder8):
        # 17 clients, shard size 16 -> the last shard has a single client,
        # which cannot be pairwise-masked; its counter joins the total in
        # the clear (documented behaviour) and nothing is lost.
        population = self._population(17)
        query = FederatedMeanQuery(
            encoder8, mode="basic", secure_aggregation=True, shard_size=16
        )
        est = query.run(population, rng=1)
        assert est.counts.sum() == 17

    def test_meter_violation_aborts_before_partial_state_is_trusted(self, encoder8):
        from repro.exceptions import PrivacyBudgetExceeded
        from repro.privacy import BitMeter

        population = self._population(100)
        meter = BitMeter(max_bits_per_value=1)
        query = FederatedMeanQuery(encoder8, mode="basic", meter=meter, metric_name="m")
        query.run(population, rng=2)
        with pytest.raises(PrivacyBudgetExceeded):
            query.run(population, rng=3)

    def test_extreme_dropout_jitter_clamped(self, encoder8):
        from repro.federated import DropoutModel

        # Jitter can push the effective rate above 1; the model clamps at
        # 0.95 so some clients always survive in expectation.
        model = DropoutModel(rate=0.9, jitter=0.5)
        survivors = model.draw_survivors(50_000, np.random.default_rng(0))
        assert survivors.sum() > 0

    def test_total_failure_counted_once_per_attempt(self, encoder8):
        # Regression: a fully-failed round must update the dropout tracker
        # and rounds_failed_total once per *attempt*, not once per query.
        query = FederatedMeanQuery(
            encoder8, mode="basic",
            faults=FaultSchedule.from_spec("1-3:blackout"),
            retry=RetryPolicy(max_attempts=3),
        )
        registry = MetricsRegistry()
        with instrumented(metrics=registry):
            with pytest.raises(ConfigurationError):
                query.run(self._population(100), rng=0)
        counters = registry.snapshot()["counters"]
        assert counters["rounds_failed_total"] == 3.0
        assert counters["round_attempts_total"] == 3.0
        assert counters["round_retries_total"] == 2.0
        assert query.dropout_tracker.rounds_observed == 3
        # Every attempt observed total loss, so the EWMA converges upward.
        assert query.dropout_tracker.rate > 0.6

    def test_retry_recovers_from_blackout(self, encoder8):
        query = FederatedMeanQuery(
            encoder8, mode="basic",
            faults=FaultSchedule.from_spec("1:blackout"),
            retry=RetryPolicy(max_attempts=2, backoff_base_s=30.0),
        )
        est = query.run(self._population(200), rng=1)
        assert est.metadata["round_attempts"] == [2]
        assert est.metadata["attempt_history"] == [[[200, 0], [200, 200]]]

    def test_quorum_failure_retries_with_fresh_cohort(self, encoder8):
        # Quorum 150 of a 200-cohort under 60% scripted dropout fails; the
        # clean second attempt (fresh re-draw) completes at full strength.
        query = FederatedMeanQuery(
            encoder8, mode="basic", min_quorum=150,
            faults=FaultSchedule.from_spec("1:dropout=0.6"),
            retry=RetryPolicy(max_attempts=2),
        )
        est = query.run(self._population(200), rng=2)
        (history,) = est.metadata["attempt_history"]
        assert history[0][1] < 150 <= history[1][1]

    def test_network_blackout_recovered_when_fault_lifts(self, encoder8):
        # The *base* network is fine; the fault schedule makes attempt 1
        # hopeless, and the retry runs under the base weather again.
        query = FederatedMeanQuery(
            encoder8,
            network=NetworkModel(loss_rate=0.05, deadline_s=600.0),
            faults=FaultSchedule.from_spec("1:loss=0.9,deadline*0.001"),
            min_quorum=50,
            retry=RetryPolicy(max_attempts=2),
            mode="basic",
        )
        est = query.run(self._population(300), rng=3)
        assert est.metadata["round_attempts"] == [2]

    def test_rr_epsilon_extremes(self, encoder8, rng):
        values = np.full(50_000, 100.0)
        # Tiny epsilon: nearly coin-flip reports, estimate still unbiased
        # but very noisy -- must not crash or produce non-finite output.
        noisy = BasicBitPushing(
            encoder8, perturbation=RandomizedResponse(epsilon=0.01)
        ).estimate(values, rng)
        assert np.isfinite(noisy.value)
        # Huge epsilon: effectively no noise.
        clean = BasicBitPushing(
            encoder8, perturbation=RandomizedResponse(epsilon=20.0)
        ).estimate(values, rng)
        assert clean.value == pytest.approx(100.0, abs=1.0)
