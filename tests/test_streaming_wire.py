"""Asynchronous aggregation and the report wire format."""

import numpy as np
import pytest

from repro.exceptions import CohortTooSmallError, ConfigurationError, ProtocolError
from repro.federated import (
    REPORT_SIZE,
    BitReport,
    StreamingAggregator,
    decode_batch,
    decode_report,
    encode_batch,
    encode_report,
    payload_efficiency,
)
from repro.federated.wire import MAGIC
from repro.privacy import RandomizedResponse


class TestStreamingAggregator:
    def _reports_for_constant(self, value: int, n_bits: int, n_clients: int):
        for client in range(n_clients):
            j = client % n_bits
            yield BitReport(client_id=client, bit_index=j, bit=(value >> j) & 1)

    def test_estimate_from_streamed_reports(self, encoder8):
        agg = StreamingAggregator(encoder8)
        agg.submit_many(self._reports_for_constant(42, 8, 800))
        assert agg.estimate().value == pytest.approx(42.0)

    def test_order_independence(self, encoder8, rng):
        reports = list(self._reports_for_constant(99, 8, 400))
        in_order = StreamingAggregator(encoder8)
        in_order.submit_many(reports)
        shuffled = StreamingAggregator(encoder8)
        indices = rng.permutation(len(reports))
        shuffled.submit_many([reports[i] for i in indices])
        assert in_order.estimate().value == shuffled.estimate().value

    def test_estimate_refines_as_reports_arrive(self, encoder8):
        """Snapshots are non-destructive and improve with more evidence."""
        rng = np.random.default_rng(0)
        agg = StreamingAggregator(encoder8)
        values = rng.integers(0, 256, 20_000)
        early = None
        for client, value in enumerate(values):
            j = int(rng.integers(8))
            agg.submit(BitReport(client, j, int((int(value) >> j) & 1)))
            if client == 499:
                early = agg.estimate()
        late = agg.estimate()
        truth = values.mean()
        assert abs(late.value - truth) < abs(early.value - truth) + 2.0
        assert late.n_clients == 20_000

    def test_duplicate_client_rejected(self, encoder8):
        agg = StreamingAggregator(encoder8)
        agg.submit(BitReport(7, 0, 1))
        with pytest.raises(ProtocolError):
            agg.submit(BitReport(7, 3, 0))

    def test_min_reports_guard(self, encoder8):
        agg = StreamingAggregator(encoder8, min_reports=100)
        agg.submit(BitReport(0, 0, 1))
        with pytest.raises(CohortTooSmallError):
            agg.estimate()

    def test_invalid_reports_rejected(self, encoder8):
        agg = StreamingAggregator(encoder8)
        with pytest.raises(ProtocolError):
            agg.submit(BitReport(0, 8, 1))      # index out of range
        with pytest.raises(ProtocolError):
            agg.submit(BitReport(1, 0, 2))      # non-binary bit

    def test_ldp_debiasing(self, encoder8):
        rng = np.random.default_rng(1)
        rr = RandomizedResponse(epsilon=2.0)
        agg = StreamingAggregator(encoder8, perturbation=rr)
        value = 200
        for client in range(40_000):
            j = client % 8
            true_bit = (value >> j) & 1
            noisy = int(rr.perturb_bits(np.array([true_bit], dtype=np.uint8), rng)[0])
            agg.submit(BitReport(client, j, noisy))
        assert agg.estimate().value == pytest.approx(200.0, abs=8.0)

    def test_reset(self, encoder8):
        agg = StreamingAggregator(encoder8)
        agg.submit(BitReport(0, 0, 1))
        agg.reset()
        assert agg.reports_received == 0
        agg.submit(BitReport(0, 0, 1))   # same client OK after reset
        assert agg.clients_seen == 1

    def test_invalid_min_reports(self, encoder8):
        with pytest.raises(ConfigurationError):
            StreamingAggregator(encoder8, min_reports=0)


class TestWireFormat:
    def test_roundtrip(self):
        report = BitReport(client_id=123456789, bit_index=13, bit=1)
        decoded, rr_flag = decode_report(encode_report(report, randomized_response=True))
        assert decoded == report
        assert rr_flag is True

    def test_frame_size_fixed(self):
        assert len(encode_report(BitReport(0, 0, 0))) == REPORT_SIZE
        assert REPORT_SIZE == 16

    def test_flag_roundtrip_false(self):
        _, rr_flag = decode_report(encode_report(BitReport(1, 2, 0)))
        assert rr_flag is False

    def test_bad_magic_rejected(self):
        frame = bytearray(encode_report(BitReport(0, 0, 0)))
        frame[0:4] = b"XXXX"
        with pytest.raises(ProtocolError):
            decode_report(bytes(frame))

    def test_truncated_rejected(self):
        frame = encode_report(BitReport(0, 0, 0))
        with pytest.raises(ProtocolError):
            decode_report(frame[:-1])

    def test_tampered_bit_rejected(self):
        frame = bytearray(encode_report(BitReport(0, 0, 1)))
        frame[6] = 2   # bit field
        with pytest.raises(ProtocolError):
            decode_report(bytes(frame))

    def test_unknown_flags_rejected(self):
        frame = bytearray(encode_report(BitReport(0, 0, 1)))
        frame[7] = 0x80
        with pytest.raises(ProtocolError):
            decode_report(bytes(frame))

    def test_bad_version_rejected(self):
        frame = bytearray(encode_report(BitReport(0, 0, 1)))
        frame[4] = 99
        with pytest.raises(ProtocolError):
            decode_report(bytes(frame))

    def test_encode_validation(self):
        with pytest.raises(ProtocolError):
            encode_report(BitReport(0, 0, 5))
        with pytest.raises(ProtocolError):
            encode_report(BitReport(0, 70, 1))
        with pytest.raises(ProtocolError):
            encode_report(BitReport(-1, 0, 1))

    def test_batch_roundtrip(self):
        reports = [BitReport(i, i % 8, i % 2) for i in range(20)]
        decoded = decode_batch(encode_batch(reports))
        assert [r for r, _ in decoded] == reports

    def test_ragged_batch_rejected(self):
        data = encode_batch([BitReport(0, 0, 1)]) + b"\x00"
        with pytest.raises(ProtocolError):
            decode_batch(data)

    def test_magic_is_stable(self):
        assert MAGIC == b"BPSH"

    def test_payload_efficiency(self):
        assert payload_efficiency() == pytest.approx(1.0 / 128.0)


class TestWireToAggregatorPipeline:
    def test_end_to_end_over_the_wire(self, encoder8):
        """Client encodes -> bytes cross the 'network' -> server decodes and
        folds into the streaming aggregator."""
        rng = np.random.default_rng(2)
        agg = StreamingAggregator(encoder8)
        value = 171   # 0b10101011
        frames = encode_batch(
            BitReport(client, client % 8, (value >> (client % 8)) & 1)
            for client in range(4_000)
        )
        for report, rr_flag in decode_batch(frames):
            assert rr_flag is False
            agg.submit(report)
        assert agg.estimate().value == pytest.approx(171.0)
