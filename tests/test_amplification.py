"""Privacy-amplification calculators."""

import math

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.privacy import (
    amplified_epsilon_by_sampling,
    required_epsilon_for_sampling,
    shuffle_amplification_valid,
    shuffle_amplified_epsilon,
)


class TestSamplingAmplification:
    def test_full_sampling_is_identity(self):
        assert amplified_epsilon_by_sampling(1.5, 1.0) == pytest.approx(1.5)

    def test_amplification_never_hurts(self):
        for s in (0.01, 0.1, 0.5, 0.99):
            assert amplified_epsilon_by_sampling(2.0, s) < 2.0

    def test_monotone_in_rate(self):
        eps = [amplified_epsilon_by_sampling(1.0, s) for s in (0.1, 0.3, 0.7, 1.0)]
        assert eps == sorted(eps)

    def test_monotone_in_epsilon(self):
        eps = [amplified_epsilon_by_sampling(e, 0.2) for e in (0.5, 1.0, 2.0, 4.0)]
        assert eps == sorted(eps)

    def test_small_rate_linearizes(self):
        """For tiny s, eps' ~ s * (e^eps - 1)."""
        s = 1e-4
        expected = s * (math.exp(1.0) - 1.0)
        assert amplified_epsilon_by_sampling(1.0, s) == pytest.approx(expected, rel=1e-3)

    def test_inverse_roundtrip(self):
        for target in (0.1, 0.5, 2.0):
            for s in (0.05, 0.3, 1.0):
                base = required_epsilon_for_sampling(target, s)
                assert amplified_epsilon_by_sampling(base, s) == pytest.approx(target)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            amplified_epsilon_by_sampling(0.0, 0.5)
        with pytest.raises(ConfigurationError):
            amplified_epsilon_by_sampling(1.0, 0.0)
        with pytest.raises(ConfigurationError):
            amplified_epsilon_by_sampling(1.0, 1.5)
        with pytest.raises(ConfigurationError):
            required_epsilon_for_sampling(1.0, 0.0)


class TestShuffleAmplification:
    def test_large_cohorts_amplify_strongly(self):
        eps = shuffle_amplified_epsilon(1.0, 1_000_000, 1e-8)
        assert eps < 0.05

    def test_scales_like_inverse_sqrt_n(self):
        small = shuffle_amplified_epsilon(1.0, 10_000, 1e-8)
        large = shuffle_amplified_epsilon(1.0, 1_000_000, 1e-8)
        # ~sqrt(100) = 10x, compressed slightly by log1p curvature and the
        # additive 8/n term.
        assert 7.0 < small / large < 11.0

    def test_monotone_in_epsilon(self):
        values = [shuffle_amplified_epsilon(e, 100_000, 1e-8) for e in (0.5, 1.0, 2.0)]
        assert values == sorted(values)

    def test_validity_region(self):
        assert shuffle_amplification_valid(1.0, 100_000, 1e-8)
        assert not shuffle_amplification_valid(20.0, 1_000, 1e-8)   # eps too big
        assert not shuffle_amplification_valid(1.0, 2, 1e-8)        # n too small
        assert not shuffle_amplification_valid(0.0, 100_000, 1e-8)

    def test_invalid_parameters_raise(self):
        with pytest.raises(ConfigurationError):
            shuffle_amplified_epsilon(20.0, 1_000, 1e-8)
        with pytest.raises(ConfigurationError):
            shuffle_amplified_epsilon(1.0, 1, 1e-8)
        with pytest.raises(ConfigurationError):
            shuffle_amplified_epsilon(1.0, 1_000, 0.0)

    def test_amplified_below_local(self):
        for n in (50_000, 500_000):
            assert shuffle_amplified_epsilon(0.8, n, 1e-9) < 0.8


class TestAmplificationWithProtocol:
    def test_per_bit_sampling_amplifies_low_bits(self):
        """Under the 2^j schedule, a low bit is reported by a tiny fraction
        of clients, so an observer ignorant of the assignment sees a much
        smaller effective epsilon for it."""
        from repro.core import BitSamplingSchedule

        schedule = BitSamplingSchedule.weighted(10, alpha=1.0)
        base_eps = 2.0
        effective = np.array([
            amplified_epsilon_by_sampling(base_eps, float(p))
            for p in schedule.probabilities
        ])
        assert effective[0] < 0.05          # LSB barely sampled
        assert effective[-1] < base_eps      # even the MSB gains a little
        assert np.all(np.diff(effective) > 0)
