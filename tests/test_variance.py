"""Variance estimation via bit-pushing (Section 3.4, Lemma 3.5)."""

import numpy as np
import pytest

from repro.core import FixedPointEncoder, VarianceEstimator
from repro.exceptions import ConfigurationError


class TestConstruction:
    def test_invalid_method(self, encoder8):
        with pytest.raises(ConfigurationError):
            VarianceEstimator(encoder8, method="magic")

    def test_invalid_inner(self, encoder8):
        with pytest.raises(ConfigurationError):
            VarianceEstimator(encoder8, inner="quantum")

    def test_invalid_fraction(self, encoder8):
        with pytest.raises(ConfigurationError):
            VarianceEstimator(encoder8, mean_fraction=0.0)
        with pytest.raises(ConfigurationError):
            VarianceEstimator(encoder8, mean_fraction=1.0)

    def test_too_wide_encoder_raises(self):
        with pytest.raises(ConfigurationError):
            VarianceEstimator(FixedPointEncoder.for_integers(40))

    def test_too_few_clients_raise(self, encoder8, rng):
        with pytest.raises(ConfigurationError):
            VarianceEstimator(encoder8).estimate(np.array([1.0, 2.0]), rng)


class TestAccuracy:
    @pytest.mark.parametrize("method", ["centered", "moments"])
    def test_recovers_normal_variance(self, method):
        rng = np.random.default_rng(30)
        values = np.clip(rng.normal(500, 100, 100_000), 0, None)
        est = VarianceEstimator(FixedPointEncoder.for_integers(10), method=method)
        result = est.estimate(values, rng)
        assert result.value == pytest.approx(values.var(), rel=0.3)

    def test_constant_population_gives_near_zero(self):
        est = VarianceEstimator(FixedPointEncoder.for_integers(8), method="centered")
        result = est.estimate(np.full(10_000, 37.0), rng=0)
        assert result.value < 5.0

    def test_value_clamped_non_negative(self, rng):
        est = VarianceEstimator(FixedPointEncoder.for_integers(8), method="moments")
        # Tiny cohorts make the raw moment difference noisy, possibly negative.
        for seed in range(10):
            result = est.estimate(np.full(40, 100.0) + rng.normal(0, 1, 40), seed)
            assert result.value >= 0.0

    def test_centered_beats_moments(self):
        """Lemma 3.5: the centered decomposition has lower estimation variance."""
        rng = np.random.default_rng(31)
        encoder = FixedPointEncoder.for_integers(10)

        def rmse(method):
            est = VarianceEstimator(encoder, method=method, inner="basic")
            errs = []
            for _ in range(40):
                values = np.clip(rng.normal(500, 60, 20_000), 0, None)
                errs.append(est.estimate(values, rng).value - values.var())
            return float(np.sqrt(np.mean(np.square(errs))))

        assert rmse("centered") < rmse("moments")

    def test_scaled_encoder(self):
        rng = np.random.default_rng(32)
        values = rng.uniform(0.0, 1.0, 200_000)
        encoder = FixedPointEncoder.for_range(0.0, 1.0, n_bits=10)
        est = VarianceEstimator(encoder, method="centered")
        result = est.estimate(values, rng)
        assert result.value == pytest.approx(values.var(), rel=0.35)


class TestResultRecord:
    def test_fields(self, rng):
        est = VarianceEstimator(FixedPointEncoder.for_integers(8), method="centered")
        values = np.clip(rng.normal(100, 20, 5_000), 0, None)
        result = est.estimate(values, rng)
        assert result.method == "centered"
        assert result.n_clients == 5_000
        assert result.mean.value == pytest.approx(values.mean(), rel=0.1)
        assert result.std == pytest.approx(np.sqrt(result.value))
        assert result.metadata["square_n_bits"] == 16
        assert float(result) == result.value

    def test_mean_fraction_split(self, rng):
        est = VarianceEstimator(
            FixedPointEncoder.for_integers(8), mean_fraction=0.25, inner="basic"
        )
        result = est.estimate(np.clip(rng.normal(100, 10, 4_000), 0, None), rng)
        assert result.mean.n_clients == 1_000

    def test_mean_and_variance_helper(self, rng):
        est = VarianceEstimator(FixedPointEncoder.for_integers(8))
        values = np.clip(rng.normal(100, 15, 20_000), 0, None)
        result = est.estimate(values, rng)
        mean, var = VarianceEstimator.mean_and_variance(result.mean, result)
        assert mean == result.mean.value
        assert var == result.value
