"""One-bit federated histograms."""

import numpy as np
import pytest

from repro.core import FederatedHistogram
from repro.exceptions import ConfigurationError
from repro.privacy import BernoulliNoiseAggregator, RandomizedResponse


class TestConstruction:
    def test_uniform_edges(self):
        hist = FederatedHistogram.uniform(0.0, 10.0, 5)
        np.testing.assert_allclose(hist.edges, [0, 2, 4, 6, 8, 10])
        assert hist.n_buckets == 5

    def test_invalid_edges(self):
        with pytest.raises(ConfigurationError):
            FederatedHistogram(np.array([1.0]))
        with pytest.raises(ConfigurationError):
            FederatedHistogram(np.array([0.0, 0.0, 1.0]))
        with pytest.raises(ConfigurationError):
            FederatedHistogram(np.array([0.0, np.inf]))

    def test_local_and_distributed_exclusive(self):
        with pytest.raises(ConfigurationError):
            FederatedHistogram.uniform(
                0, 1, 2,
                perturbation=RandomizedResponse(epsilon=1.0),
                distributed=BernoulliNoiseAggregator(1.0, 1e-6),
            )

    def test_invalid_bucket_count(self):
        with pytest.raises(ConfigurationError):
            FederatedHistogram.uniform(0, 1, 0)


class TestBucketing:
    def test_bucket_of_clips(self):
        hist = FederatedHistogram.uniform(0.0, 10.0, 5)
        idx = hist.bucket_of(np.array([-5.0, 0.0, 3.0, 9.9, 10.0, 50.0]))
        assert idx.tolist() == [0, 0, 1, 4, 4, 4]

    def test_edge_values_land_right(self):
        hist = FederatedHistogram(np.array([0.0, 1.0, 2.0]))
        assert hist.bucket_of(np.array([1.0]))[0] == 1   # right-open buckets


class TestEstimation:
    def test_recovers_shape(self):
        rng = np.random.default_rng(0)
        values = rng.normal(50.0, 10.0, 200_000)
        hist = FederatedHistogram.uniform(0.0, 100.0, 10)
        est = hist.estimate(values, rng)
        true_freq, _ = np.histogram(np.clip(values, 0, 99.99), bins=hist.edges)
        np.testing.assert_allclose(est.frequencies, true_freq / values.size, atol=0.01)

    def test_one_report_per_client(self, rng):
        hist = FederatedHistogram.uniform(0.0, 10.0, 5)
        est = hist.estimate(rng.uniform(0, 10, 5_000), rng)
        assert est.counts.sum() == 5_000
        assert est.n_clients == 5_000

    def test_needs_enough_clients(self, rng):
        hist = FederatedHistogram.uniform(0.0, 10.0, 5)
        with pytest.raises(ConfigurationError):
            hist.estimate(np.array([1.0, 2.0]), rng)

    def test_ldp_estimate_unbiased(self):
        rng = np.random.default_rng(1)
        values = rng.uniform(0.0, 10.0, 400_000)
        hist = FederatedHistogram.uniform(
            0.0, 10.0, 4, perturbation=RandomizedResponse(epsilon=2.0)
        )
        est = hist.estimate(values, rng)
        np.testing.assert_allclose(est.frequencies, 0.25, atol=0.02)
        assert est.metadata["ldp"] is True

    def test_distributed_estimate(self):
        rng = np.random.default_rng(2)
        values = rng.uniform(0.0, 10.0, 400_000)
        hist = FederatedHistogram.uniform(
            0.0, 10.0, 4, distributed=BernoulliNoiseAggregator(1.0, 1e-6)
        )
        est = hist.estimate(values, rng)
        np.testing.assert_allclose(est.frequencies, 0.25, atol=0.02)
        assert est.metadata["distributed"] is True

    def test_frequencies_clipped_to_unit(self):
        rng = np.random.default_rng(3)
        values = np.full(10_000, 5.0)   # everything in one bucket
        hist = FederatedHistogram.uniform(
            0.0, 10.0, 10, perturbation=RandomizedResponse(epsilon=0.5)
        )
        est = hist.estimate(values, rng)
        assert est.frequencies.min() >= 0.0
        assert est.frequencies.max() <= 1.0


class TestDerivedStatistics:
    @pytest.fixture
    def estimate(self):
        rng = np.random.default_rng(4)
        values = rng.normal(50.0, 10.0, 300_000)
        return FederatedHistogram.uniform(0.0, 100.0, 20).estimate(values, rng), values

    def test_mean_estimate(self, estimate):
        est, values = estimate
        assert est.mean_estimate() == pytest.approx(values.mean(), abs=2.0)

    def test_median_estimate(self, estimate):
        est, values = estimate
        assert est.quantile_estimate(0.5) == pytest.approx(np.median(values), abs=3.0)

    def test_tail_quantile(self, estimate):
        est, values = estimate
        assert est.quantile_estimate(0.9) == pytest.approx(
            np.quantile(values, 0.9), abs=5.0
        )

    def test_quantile_bounds(self, estimate):
        est, _ = estimate
        assert est.quantile_estimate(0.0) <= est.quantile_estimate(1.0)
        with pytest.raises(ConfigurationError):
            est.quantile_estimate(1.5)

    def test_empty_mass_rejected(self):
        from repro.core.histogram import HistogramEstimate

        empty = HistogramEstimate(
            edges=np.array([0.0, 1.0]),
            frequencies=np.array([0.0]),
            counts=np.array([10]),
            n_clients=10,
        )
        with pytest.raises(ConfigurationError):
            empty.mean_estimate()
        with pytest.raises(ConfigurationError):
            empty.quantile_estimate(0.5)
