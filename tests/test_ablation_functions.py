"""Smoke tests for the ablation experiment functions (tiny scale).

The benches exercise these at meaningful scale with claim assertions; here
we verify structure, labels and determinism cheaply, so a broken ablation
fails in the unit suite rather than only at bench time.
"""

from repro.experiments import (
    alpha_sweep,
    b_send_sweep,
    caching_ablation,
    delta_sweep,
    distributed_dp_comparison,
    dropout_adjustment,
    gamma_sweep,
    poisoning_sweep,
    variance_decomposition,
)

TINY = {"n_clients": 400, "n_reps": 2}


class TestParameterSweeps:
    def test_delta_sweep(self):
        results = delta_sweep(deltas=(0.25, 0.5), **TINY)
        assert list(results) == ["adaptive"]
        assert results["adaptive"].x == [0.25, 0.5]

    def test_gamma_sweep(self):
        results = gamma_sweep(gammas=(0.0, 1.0), **TINY)
        assert results["adaptive"].x == [0.0, 1.0]

    def test_alpha_sweep(self):
        results = alpha_sweep(alphas=(0.5,), **TINY)
        assert results["adaptive"].x == [0.5]

    def test_b_send_sweep(self):
        results = b_send_sweep(b_sends=(1, 2), **TINY)
        assert results["basic"].x == [1.0, 2.0]

    def test_caching_ablation(self):
        results = caching_ablation(cohorts=(300,), n_reps=2)
        assert set(results) == {"caching", "round-2 only"}

    def test_variance_decomposition(self):
        results = variance_decomposition(cohorts=(2_000,), n_reps=2)
        assert set(results) == {"centered", "moments"}
        for series in results.values():
            assert all(v >= 0 for v in series.nrmse)


class TestAdversarialAndSystems:
    def test_poisoning_sweep(self):
        results = poisoning_sweep(fractions=(0.0, 0.01), n_clients=400, n_reps=2)
        assert set(results) == {"local", "central"}
        for series in results.values():
            assert series.nrmse[0] == 0.0     # zero adversaries, zero shift

    def test_distributed_dp_comparison(self):
        results = distributed_dp_comparison(
            epsilons=(1.0,), n_clients=5_000, n_reps=2
        )
        assert set(results) == {"local RR", "bernoulli noise", "sample+threshold"}

    def test_dropout_adjustment(self):
        results = dropout_adjustment(
            dropout_rates=(0.0, 0.3), n_clients=300, n_reps=2
        )
        assert set(results) == {"adjusted", "unadjusted"}
        assert results["adjusted"].x == [0.0, 0.3]

    def test_determinism(self):
        a = delta_sweep(deltas=(0.5,), n_clients=300, n_reps=2, seed=9)
        b = delta_sweep(deltas=(0.5,), n_clients=300, n_reps=2, seed=9)
        assert a["adaptive"].nrmse == b["adaptive"].nrmse
