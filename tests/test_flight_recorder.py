"""Flight recorder + run report integration tests (PR 5 tentpole).

A recorded `trace --record` run must produce a complete artifact (event
log + manifest), render into a report containing every section the issue
demands (phase percentiles, bits sent, epsilon spend, recovery timeline,
Lemma 3.1 bound), and -- under ``--sim-clock`` -- be byte-identical across
two same-seed runs.
"""

from __future__ import annotations

import io
import json

import pytest

from repro.cli import main, run_traced_round
from repro.observability import (
    build_chrome_trace,
    build_report,
    load_run,
    render_markdown,
    write_chrome_trace,
)
from repro.observability.chrome_trace import SERVER_TRACK
from repro.observability.recorder import (
    ARTIFACT_FORMAT,
    EVENTS_FILENAME,
    MANIFEST_FILENAME,
    FlightRecorder,
)
from repro.observability.tracing import SpanRecord


def _run_recorded(tmp_path, name="run", **kwargs):
    record_dir = tmp_path / name
    defaults = dict(
        target="3a",
        quick=True,
        seed=7,
        sim_clock=True,
        record_dir=str(record_dir),
        stream=io.StringIO(),
    )
    defaults.update(kwargs)
    result = run_traced_round(**defaults)
    return record_dir, result


class TestFlightRecorderUnit:
    def test_round_boundary_snapshot_written(self, tmp_path):
        class FakeMetrics:
            def snapshot(self):
                return {"counters": {"rounds_total": 1.0}}

        recorder = FlightRecorder(tmp_path / "run", metrics=FakeMetrics())
        recorder.export(
            SpanRecord(
                name="federated.round",
                span_id=1,
                parent_id=None,
                start_time_s=0.0,
                duration_s=0.1,
                attributes={"round_index": 1, "attempt": 1},
            )
        )
        recorder.record_event("note", {"detail": "hello"})
        manifest = recorder.finalize()
        lines = [
            json.loads(line)
            for line in (tmp_path / "run" / EVENTS_FILENAME).read_text().splitlines()
        ]
        types = [line["type"] for line in lines]
        assert types == ["span", "round", "event"]
        assert lines[1]["metrics"]["counters"]["rounds_total"] == 1.0
        assert manifest["events"] == {
            "path": EVENTS_FILENAME,
            "spans": 1,
            "rounds": 1,
            "events": 1,
            "remote_spans": 0,
        }

    def test_finalize_twice_raises(self, tmp_path):
        recorder = FlightRecorder(tmp_path / "run")
        recorder.finalize()
        with pytest.raises(ValueError):
            recorder.finalize()

    def test_load_run_skips_malformed_tail(self, tmp_path):
        recorder = FlightRecorder(tmp_path / "run")
        recorder.record_event("ok")
        recorder.finalize()
        events = tmp_path / "run" / EVENTS_FILENAME
        events.write_text(events.read_text() + '{"type": "span", "trunc')
        artifact = load_run(tmp_path / "run")
        assert artifact.skipped_lines == 1
        assert len(artifact.events) == 1

    def test_load_run_missing_manifest_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_run(tmp_path / "nope")


class TestRecordedRun:
    def test_artifact_contents(self, tmp_path):
        record_dir, result = _run_recorded(tmp_path)
        assert (record_dir / EVENTS_FILENAME).exists()
        manifest = json.loads((record_dir / MANIFEST_FILENAME).read_text())
        assert manifest["format"] == ARTIFACT_FORMAT
        assert manifest["seed"] == 7
        assert manifest["config"]["target"] == "3a"
        assert manifest["config"]["epsilon"] == 2.0
        # Two adaptive rounds -> two ledger spends of epsilon=2 each.
        assert manifest["privacy"]["epsilon_spent"] == pytest.approx(4.0)
        assert len(manifest["privacy"]["ledger"]) == 2
        # Every delivered report is one metered bit.
        delivered = manifest["metrics"]["counters"]["round_reports_delivered_total"]
        assert manifest["bit_meter"]["total_bits"] == int(delivered)
        assert manifest["bit_meter"]["max_bits_per_value"] == 1
        assert manifest["estimate"]["n_clients"] == 2000
        assert manifest["analysis"]["bound_2sigma"] > 0
        phases = {p["name"] for p in manifest["profile"]["phases"]}
        assert "federated.round" in phases
        assert result["reconciled"]

    def test_event_log_has_round_boundaries(self, tmp_path):
        record_dir, _ = _run_recorded(tmp_path)
        lines = [
            json.loads(line)
            for line in (record_dir / EVENTS_FILENAME).read_text().splitlines()
        ]
        rounds = [line for line in lines if line["type"] == "round"]
        assert len(rounds) == 2
        assert rounds[0]["boundary"] == 1
        assert "counters" in rounds[0]["metrics"]

    def test_report_contains_required_sections(self, tmp_path):
        record_dir, _ = _run_recorded(tmp_path)
        report = build_report(load_run(record_dir))
        markdown = render_markdown(report)
        for needle in (
            "## Estimate vs. Lemma 3.1",
            "two-sigma bound",
            "## Communication budget",
            "bits sent",
            "## Privacy spend",
            "randomized response",
            "## Retry / degradation timeline",
            "## Phase profile",
            "p50 ms | p95 ms | p99 ms",
            "## Hot-path span tree",
            "federated.round",
        ):
            assert needle in markdown, f"report is missing {needle!r}"

    def test_sim_clock_runs_are_byte_identical(self, tmp_path):
        dir_a, _ = _run_recorded(tmp_path / "a", name="run")
        dir_b, _ = _run_recorded(tmp_path / "b", name="run")
        assert (dir_a / EVENTS_FILENAME).read_bytes() == (dir_b / EVENTS_FILENAME).read_bytes()
        assert (dir_a / MANIFEST_FILENAME).read_bytes() == (
            dir_b / MANIFEST_FILENAME
        ).read_bytes()
        report_a = render_markdown(build_report(load_run(dir_a)))
        report_b = render_markdown(build_report(load_run(dir_b)))
        assert report_a == report_b

    def test_chaos_run_records_retries_and_degradation(self, tmp_path):
        record_dir, result = _run_recorded(
            tmp_path,
            seed=3,
            max_retries=3,
            min_quorum=100,
            fault_schedule="1:blackout;2:loss=0.6",
        )
        assert result["reconciled"]
        report = build_report(load_run(record_dir))
        kinds = {entry["kind"] for entry in report["recovery"]}
        assert "failed" in kinds
        assert "retry" in kinds
        markdown = render_markdown(report)
        assert "retry" in markdown
        assert "below quorum" in markdown

    def test_report_cli_roundtrip(self, tmp_path, capsys):
        record_dir, _ = _run_recorded(tmp_path)
        assert main(["report", str(record_dir)]) == 0
        markdown = capsys.readouterr().out
        assert "# Run report:" in markdown
        assert "## Phase profile" in markdown
        assert main(["report", str(record_dir), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["seed"] == 7
        assert payload["privacy"]["epsilon_spent"] == pytest.approx(4.0)
        assert payload["communication"]["bits_sent"] > 0
        assert payload["analysis"]["within_bound"] in (True, False)

    def test_unrecorded_run_has_no_artifact_side_effects(self, tmp_path):
        out = tmp_path / "trace.jsonl"
        result = run_traced_round(
            "1a", quick=True, seed=0, out_path=str(out), stream=io.StringIO()
        )
        assert result["record_dir"] is None
        assert out.exists()
        assert list(tmp_path.iterdir()) == [out]


def _span(name, span_id, start, duration, parent=None, status="ok", **attributes):
    return SpanRecord(
        name=name,
        span_id=span_id,
        parent_id=parent,
        start_time_s=start,
        duration_s=duration,
        status=status,
        attributes=attributes,
    )


class TestChromeTrace:
    """Chrome trace-event export: track layout, unit conversion, determinism."""

    RECORDS = [
        _span("serve.round", 1, 100.0, 0.5, round_index=0, attempt=1),
        _span("serve.announce", 2, 100.0, 0.01, parent=1),
        _span("fleet.round", 10, 100.002, 0.4, parent=1, remote=True, client=3),
        _span("fleet.encode", 11, 100.002, 0.0, parent=10, remote=True, client=3),
        _span("fleet.round", 12, 100.003, 0.3, parent=1, remote=True, client=0),
    ]

    def test_tracks_split_server_from_clients(self):
        document = build_chrome_trace(self.RECORDS, label="demo")
        events = document["traceEvents"]
        metadata = [e for e in events if e["ph"] == "M"]
        spans = [e for e in events if e["ph"] == "X"]
        names = {e["args"]["name"] for e in metadata if e["name"] == "thread_name"}
        assert names == {"server", "client 0", "client 3"}
        # Client tracks are numbered 1.. in client-id order; server is track 0.
        by_name = {
            e["args"]["name"]: e["tid"]
            for e in metadata
            if e["name"] == "thread_name"
        }
        assert by_name["server"] == SERVER_TRACK
        assert by_name["client 0"] == 1
        assert by_name["client 3"] == 2
        tids = {e["name"]: e["tid"] for e in spans if e["cat"] == "server"}
        assert set(tids.values()) == {SERVER_TRACK}
        remote_tids = {e["args"]["client"]: e["tid"] for e in spans if e["cat"] == "fleet"}
        assert remote_tids == {0: 1, 3: 2}
        assert document["otherData"] == {"label": "demo", "spans": 5, "clients": 2}

    def test_timestamps_relative_microseconds_with_clamped_durations(self):
        events = build_chrome_trace(self.RECORDS)["traceEvents"]
        spans = {(e["name"], e["tid"]): e for e in events if e["ph"] == "X"}
        root = spans[("serve.round", SERVER_TRACK)]
        assert root["ts"] == pytest.approx(0.0)
        assert root["dur"] == pytest.approx(0.5e6)
        encode = spans[("fleet.encode", 2)]
        assert encode["ts"] == pytest.approx(2_000.0)
        assert encode["dur"] == 1.0  # zero-length spans stay clickable
        assert all(e["ts"] >= 0.0 and e["dur"] >= 1.0 for e in events if e["ph"] == "X")

    def test_span_args_carry_ids_status_and_attributes(self):
        failed = _span(
            "serve.round", 7, 0.0, 1.0, status="error", attempt=2, clients=(1, 2)
        )
        (event,) = [
            e for e in build_chrome_trace([failed])["traceEvents"] if e["ph"] == "X"
        ]
        assert event["args"]["span_id"] == 7
        assert event["args"]["status"] == "error"
        assert event["args"]["clients"] == [1, 2]
        assert "parent_id" not in event["args"]

    def test_write_is_deterministic_valid_json(self, tmp_path):
        path_a = tmp_path / "a" / "trace.json"
        path_b = tmp_path / "b" / "trace.json"
        write_chrome_trace(path_a, self.RECORDS, label="demo")
        write_chrome_trace(path_b, self.RECORDS, label="demo")
        assert path_a.read_bytes() == path_b.read_bytes()
        document = json.loads(path_a.read_text())
        assert isinstance(document["traceEvents"], list)
        assert document["displayTimeUnit"] == "ms"

    def test_report_cli_exports_chrome_trace(self, tmp_path, capsys):
        record_dir, _ = _run_recorded(tmp_path)
        out = tmp_path / "trace.json"
        assert main(["report", str(record_dir), "--chrome-trace", str(out)]) == 0
        captured = capsys.readouterr()
        assert "# Run report:" in captured.out
        document = json.loads(out.read_text())
        events = document["traceEvents"]
        assert {e["ph"] for e in events} <= {"M", "X"}
        assert any(e["name"] == "federated.round" for e in events)
        # An in-process run has no fleet clients, hence a single track.
        assert document["otherData"]["clients"] == 0
        # --json keeps stdout parseable: the notice goes to stderr.
        assert main(
            ["report", str(record_dir), "--json", "--chrome-trace", str(out)]
        ) == 0
        captured = capsys.readouterr()
        json.loads(captured.out)
        assert str(out) in captured.err
