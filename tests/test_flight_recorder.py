"""Flight recorder + run report integration tests (PR 5 tentpole).

A recorded `trace --record` run must produce a complete artifact (event
log + manifest), render into a report containing every section the issue
demands (phase percentiles, bits sent, epsilon spend, recovery timeline,
Lemma 3.1 bound), and -- under ``--sim-clock`` -- be byte-identical across
two same-seed runs.
"""

from __future__ import annotations

import io
import json

import pytest

from repro.cli import main, run_traced_round
from repro.observability import build_report, load_run, render_markdown
from repro.observability.recorder import (
    ARTIFACT_FORMAT,
    EVENTS_FILENAME,
    MANIFEST_FILENAME,
    FlightRecorder,
)
from repro.observability.tracing import SpanRecord


def _run_recorded(tmp_path, name="run", **kwargs):
    record_dir = tmp_path / name
    defaults = dict(
        target="3a",
        quick=True,
        seed=7,
        sim_clock=True,
        record_dir=str(record_dir),
        stream=io.StringIO(),
    )
    defaults.update(kwargs)
    result = run_traced_round(**defaults)
    return record_dir, result


class TestFlightRecorderUnit:
    def test_round_boundary_snapshot_written(self, tmp_path):
        class FakeMetrics:
            def snapshot(self):
                return {"counters": {"rounds_total": 1.0}}

        recorder = FlightRecorder(tmp_path / "run", metrics=FakeMetrics())
        recorder.export(
            SpanRecord(
                name="federated.round",
                span_id=1,
                parent_id=None,
                start_time_s=0.0,
                duration_s=0.1,
                attributes={"round_index": 1, "attempt": 1},
            )
        )
        recorder.record_event("note", {"detail": "hello"})
        manifest = recorder.finalize()
        lines = [
            json.loads(line)
            for line in (tmp_path / "run" / EVENTS_FILENAME).read_text().splitlines()
        ]
        types = [line["type"] for line in lines]
        assert types == ["span", "round", "event"]
        assert lines[1]["metrics"]["counters"]["rounds_total"] == 1.0
        assert manifest["events"] == {
            "path": EVENTS_FILENAME,
            "spans": 1,
            "rounds": 1,
            "events": 1,
        }

    def test_finalize_twice_raises(self, tmp_path):
        recorder = FlightRecorder(tmp_path / "run")
        recorder.finalize()
        with pytest.raises(ValueError):
            recorder.finalize()

    def test_load_run_skips_malformed_tail(self, tmp_path):
        recorder = FlightRecorder(tmp_path / "run")
        recorder.record_event("ok")
        recorder.finalize()
        events = tmp_path / "run" / EVENTS_FILENAME
        events.write_text(events.read_text() + '{"type": "span", "trunc')
        artifact = load_run(tmp_path / "run")
        assert artifact.skipped_lines == 1
        assert len(artifact.events) == 1

    def test_load_run_missing_manifest_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_run(tmp_path / "nope")


class TestRecordedRun:
    def test_artifact_contents(self, tmp_path):
        record_dir, result = _run_recorded(tmp_path)
        assert (record_dir / EVENTS_FILENAME).exists()
        manifest = json.loads((record_dir / MANIFEST_FILENAME).read_text())
        assert manifest["format"] == ARTIFACT_FORMAT
        assert manifest["seed"] == 7
        assert manifest["config"]["target"] == "3a"
        assert manifest["config"]["epsilon"] == 2.0
        # Two adaptive rounds -> two ledger spends of epsilon=2 each.
        assert manifest["privacy"]["epsilon_spent"] == pytest.approx(4.0)
        assert len(manifest["privacy"]["ledger"]) == 2
        # Every delivered report is one metered bit.
        delivered = manifest["metrics"]["counters"]["round_reports_delivered_total"]
        assert manifest["bit_meter"]["total_bits"] == int(delivered)
        assert manifest["bit_meter"]["max_bits_per_value"] == 1
        assert manifest["estimate"]["n_clients"] == 2000
        assert manifest["analysis"]["bound_2sigma"] > 0
        phases = {p["name"] for p in manifest["profile"]["phases"]}
        assert "federated.round" in phases
        assert result["reconciled"]

    def test_event_log_has_round_boundaries(self, tmp_path):
        record_dir, _ = _run_recorded(tmp_path)
        lines = [
            json.loads(line)
            for line in (record_dir / EVENTS_FILENAME).read_text().splitlines()
        ]
        rounds = [line for line in lines if line["type"] == "round"]
        assert len(rounds) == 2
        assert rounds[0]["boundary"] == 1
        assert "counters" in rounds[0]["metrics"]

    def test_report_contains_required_sections(self, tmp_path):
        record_dir, _ = _run_recorded(tmp_path)
        report = build_report(load_run(record_dir))
        markdown = render_markdown(report)
        for needle in (
            "## Estimate vs. Lemma 3.1",
            "two-sigma bound",
            "## Communication budget",
            "bits sent",
            "## Privacy spend",
            "randomized response",
            "## Retry / degradation timeline",
            "## Phase profile",
            "p50 ms | p95 ms | p99 ms",
            "## Hot-path span tree",
            "federated.round",
        ):
            assert needle in markdown, f"report is missing {needle!r}"

    def test_sim_clock_runs_are_byte_identical(self, tmp_path):
        dir_a, _ = _run_recorded(tmp_path / "a", name="run")
        dir_b, _ = _run_recorded(tmp_path / "b", name="run")
        assert (dir_a / EVENTS_FILENAME).read_bytes() == (dir_b / EVENTS_FILENAME).read_bytes()
        assert (dir_a / MANIFEST_FILENAME).read_bytes() == (
            dir_b / MANIFEST_FILENAME
        ).read_bytes()
        report_a = render_markdown(build_report(load_run(dir_a)))
        report_b = render_markdown(build_report(load_run(dir_b)))
        assert report_a == report_b

    def test_chaos_run_records_retries_and_degradation(self, tmp_path):
        record_dir, result = _run_recorded(
            tmp_path,
            seed=3,
            max_retries=3,
            min_quorum=100,
            fault_schedule="1:blackout;2:loss=0.6",
        )
        assert result["reconciled"]
        report = build_report(load_run(record_dir))
        kinds = {entry["kind"] for entry in report["recovery"]}
        assert "failed" in kinds
        assert "retry" in kinds
        markdown = render_markdown(report)
        assert "retry" in markdown
        assert "below quorum" in markdown

    def test_report_cli_roundtrip(self, tmp_path, capsys):
        record_dir, _ = _run_recorded(tmp_path)
        assert main(["report", str(record_dir)]) == 0
        markdown = capsys.readouterr().out
        assert "# Run report:" in markdown
        assert "## Phase profile" in markdown
        assert main(["report", str(record_dir), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["seed"] == 7
        assert payload["privacy"]["epsilon_spent"] == pytest.approx(4.0)
        assert payload["communication"]["bits_sent"] > 0
        assert payload["analysis"]["within_bound"] in (True, False)

    def test_unrecorded_run_has_no_artifact_side_effects(self, tmp_path):
        out = tmp_path / "trace.jsonl"
        result = run_traced_round(
            "1a", quick=True, seed=0, out_path=str(out), stream=io.StringIO()
        )
        assert result["record_dir"] is None
        assert out.exists()
        assert list(tmp_path.iterdir()) == [out]
