"""Tests for the bench regression gate (``scripts/bench_summary.py --check``)."""

from __future__ import annotations

import copy
import importlib.util
import json
from pathlib import Path

SCRIPT = Path(__file__).resolve().parent.parent / "scripts" / "bench_summary.py"

spec = importlib.util.spec_from_file_location("bench_summary", SCRIPT)
bench_summary = importlib.util.module_from_spec(spec)
spec.loader.exec_module(bench_summary)


def _entry(label, means):
    return {
        "label": label,
        "python": "3.11",
        "cpu_count": 4,
        "n_benchmarks": len(means),
        "benchmarks": [
            {"name": name, "mean_s": mean, "stddev_s": mean / 10, "min_s": mean, "rounds": 5}
            for name, mean in sorted(means.items())
        ],
    }


BASE_MEANS = {"bench::alpha": 0.010, "bench::beta": 0.020}


def _write_trajectory(path, entries):
    path.write_text(json.dumps({"trajectory": entries}, indent=2))


class TestCheckRegressions:
    def test_identical_entries_pass(self):
        entries = [_entry("seed", BASE_MEANS), _entry("pr", BASE_MEANS)]
        ok, messages = bench_summary.check_regressions(entries)
        assert ok
        assert all(m.startswith("ok ") for m in messages)

    def test_doctored_slowdown_fails_naming_the_benchmark(self):
        slowed = copy.deepcopy(BASE_MEANS)
        slowed["bench::beta"] = BASE_MEANS["bench::beta"] * 2.0
        entries = [_entry("seed", BASE_MEANS), _entry("pr", slowed)]
        ok, messages = bench_summary.check_regressions(entries, tolerance=1.25)
        assert not ok
        regression_lines = [m for m in messages if m.startswith("REGRESSION")]
        assert len(regression_lines) == 1
        assert "bench::beta" in regression_lines[0]
        assert "2.00x" in regression_lines[0]

    def test_explicit_baseline_label(self):
        entries = [
            _entry("seed", BASE_MEANS),
            _entry("mid", {k: v * 3 for k, v in BASE_MEANS.items()}),
            _entry("pr", BASE_MEANS),
        ]
        # Against the previous ("mid") entry the newest looks 3x faster; the
        # named baseline compares seed-to-pr instead.
        ok, _ = bench_summary.check_regressions(entries, baseline_label="seed")
        assert ok

    def test_missing_baseline_label_fails(self):
        entries = [_entry("seed", BASE_MEANS), _entry("pr", BASE_MEANS)]
        ok, messages = bench_summary.check_regressions(entries, baseline_label="nope")
        assert not ok
        assert "nope" in messages[0]

    def test_single_entry_fails(self):
        ok, messages = bench_summary.check_regressions([_entry("seed", BASE_MEANS)])
        assert not ok
        assert "single entry" in messages[0]

    def test_disjoint_benchmarks_fail(self):
        entries = [
            _entry("seed", {"bench::old": 0.01}),
            _entry("pr", {"bench::new": 0.01}),
        ]
        ok, messages = bench_summary.check_regressions(entries)
        assert not ok
        assert "share no" in messages[0]

    def test_small_speedup_and_slowdown_within_tolerance_pass(self):
        newer = {"bench::alpha": 0.009, "bench::beta": 0.022}
        entries = [_entry("seed", BASE_MEANS), _entry("pr", newer)]
        ok, _ = bench_summary.check_regressions(entries, tolerance=1.25)
        assert ok


def _scale_entry(label, serve_rate, columnar_rate=50_000.0, telemetry=True):
    return {
        "label": label,
        "clients_per_s": {"100000": columnar_rate},
        "serve": {
            "n_clients": 256,
            "telemetry": telemetry,
            "reports_per_s": serve_rate,
            "concurrent_campaigns": 4,
            "concurrent_reports_per_s": serve_rate * 2.5,
        },
    }


class TestScaleRegressions:
    def test_unchanged_scale_entries_pass(self):
        entries = [_scale_entry("seed", 9_000.0), _scale_entry("pr", 9_000.0)]
        ok, messages = bench_summary.check_scale_regressions(entries)
        assert ok
        assert any("serve@256" in m for m in messages)

    def test_telemetry_on_serve_regression_gets_the_distinct_message(self):
        entries = [_scale_entry("seed", 9_000.0), _scale_entry("pr", 4_000.0)]
        ok, messages = bench_summary.check_scale_regressions(entries)
        assert not ok
        serve_failures = [m for m in messages if "serve@256" in m]
        assert serve_failures
        assert all(m.startswith("TELEMETRY REGRESSION") for m in serve_failures)
        assert any("drain/ingest" in m for m in serve_failures)

    def test_telemetry_off_serve_regression_stays_plain(self):
        entries = [
            _scale_entry("seed", 9_000.0, telemetry=False),
            _scale_entry("pr", 4_000.0, telemetry=False),
        ]
        ok, messages = bench_summary.check_scale_regressions(entries)
        assert not ok
        serve_failures = [m for m in messages if "serve@256" in m]
        assert all(m.startswith("REGRESSION") for m in serve_failures)

    def test_columnar_regression_is_not_blamed_on_telemetry(self):
        entries = [
            _scale_entry("seed", 9_000.0),
            _scale_entry("pr", 9_000.0, columnar_rate=10_000.0),
        ]
        ok, messages = bench_summary.check_scale_regressions(entries)
        assert not ok
        (failure,) = [m for m in messages if "columnar@100000" in m]
        assert failure.startswith("REGRESSION ")
        assert "TELEMETRY" not in failure

    def test_summarize_scale_threads_the_telemetry_flag(self):
        payload = {
            "serve": {
                "n_clients": 256,
                "telemetry": True,
                "reports_per_s": 9_000.0,
                "campaigns": {"count": 4, "reports_per_s": 20_000.0},
            }
        }
        entry = bench_summary.summarize_scale(payload, label="pr")
        assert entry["serve"]["telemetry"] is True


class TestCheckCli:
    def test_check_passes_on_unchanged_trajectory(self, tmp_path, capsys):
        trajectory = tmp_path / "BENCH.json"
        _write_trajectory(trajectory, [_entry("seed", BASE_MEANS), _entry("pr", BASE_MEANS)])
        assert bench_summary.main(["--check", str(trajectory)]) == 0
        assert "bench check passed" in capsys.readouterr().out

    def test_check_fails_nonzero_on_doctored_entry(self, tmp_path, capsys):
        slowed = copy.deepcopy(BASE_MEANS)
        slowed["bench::alpha"] = BASE_MEANS["bench::alpha"] * 2.0
        trajectory = tmp_path / "BENCH.json"
        _write_trajectory(trajectory, [_entry("seed", BASE_MEANS), _entry("pr", slowed)])
        assert bench_summary.main(["--check", str(trajectory)]) == 1
        assert "bench::alpha" in capsys.readouterr().err

    def test_check_with_tolerance_flag(self, tmp_path):
        slowed = {k: v * 1.8 for k, v in BASE_MEANS.items()}
        trajectory = tmp_path / "BENCH.json"
        _write_trajectory(trajectory, [_entry("seed", BASE_MEANS), _entry("pr", slowed)])
        assert bench_summary.main(["--check", str(trajectory)]) == 1
        assert bench_summary.main(["--check", str(trajectory), "--tolerance", "2.0"]) == 0

    def test_check_missing_file_errors(self, tmp_path, capsys):
        assert bench_summary.main(["--check", str(tmp_path / "missing.json")]) == 1
        assert "not found" in capsys.readouterr().err

    def test_repo_trajectory_passes_against_seed(self):
        # The committed trajectory must satisfy its own gate (generous
        # tolerance: the entries were measured on different machines).
        repo_trajectory = SCRIPT.parent.parent / "BENCH_micro.json"
        assert (
            bench_summary.main(
                ["--check", str(repo_trajectory), "--baseline", "seed", "--tolerance", "3.0"]
            )
            == 0
        )

    def test_summarize_still_requires_both_positionals(self, capsys):
        try:
            bench_summary.main([])
        except SystemExit as exc:
            assert exc.code != 0
        else:  # pragma: no cover - argparse always exits
            raise AssertionError("expected SystemExit")
