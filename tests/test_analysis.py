"""Closed-form predictions vs Monte-Carlo reality."""

import numpy as np
import pytest

from repro.analysis import (
    dithering_variance,
    per_report_bit_variance,
    plan_cohort_size,
    predicted_nrmse,
    predicted_variance,
)
from repro.baselines import SubtractiveDithering
from repro.core import BasicBitPushing, BitSamplingSchedule, FixedPointEncoder
from repro.exceptions import ConfigurationError
from repro.privacy import RandomizedResponse


class TestPerReportVariance:
    def test_noise_free_is_bernoulli(self):
        assert per_report_bit_variance(0.5) == 0.25
        assert per_report_bit_variance(0.0) == 0.0
        assert per_report_bit_variance(1.0) == 0.0

    def test_rr_adds_variance(self):
        assert per_report_bit_variance(0.5, epsilon=1.0) > 0.25

    def test_rr_variance_even_for_constant_bits(self):
        # The DP term never vanishes: constant bits still produce noise.
        assert per_report_bit_variance(0.0, epsilon=1.0) > 0.1

    def test_rr_variance_near_paper_constant_for_small_eps(self):
        """For small eps the variance approaches e^eps / (e^eps - 1)^2."""
        eps = 0.2
        paper_constant = np.exp(eps) / (np.exp(eps) - 1) ** 2
        v = per_report_bit_variance(0.5, epsilon=eps)
        assert v == pytest.approx(paper_constant, rel=0.05)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            per_report_bit_variance(1.5)
        with pytest.raises(ConfigurationError):
            per_report_bit_variance(0.5, epsilon=0.0)


class TestPredictedVariance:
    def test_matches_simulation_noise_free(self):
        """Prediction vs Monte-Carlo with fresh i.i.d. populations."""
        rng = np.random.default_rng(0)
        n, n_bits = 2_000, 6
        encoder = FixedPointEncoder.for_integers(n_bits)
        sched = BitSamplingSchedule.weighted(n_bits, 1.0)
        est = BasicBitPushing(encoder, schedule=sched)
        sims = [
            est.estimate(rng.integers(0, 64, n).astype(float), rng).value
            for _ in range(600)
        ]
        predicted = predicted_variance(np.full(n_bits, 0.5), sched, n)
        assert np.var(sims) == pytest.approx(predicted, rel=0.2)

    def test_matches_simulation_with_rr(self):
        rng = np.random.default_rng(1)
        n, n_bits, eps = 4_000, 6, 1.0
        encoder = FixedPointEncoder.for_integers(n_bits)
        sched = BitSamplingSchedule.weighted(n_bits, 1.0)
        est = BasicBitPushing(encoder, schedule=sched,
                              perturbation=RandomizedResponse(epsilon=eps))
        sims = [
            est.estimate(rng.integers(0, 64, n).astype(float), rng).value
            for _ in range(400)
        ]
        predicted = predicted_variance(np.full(n_bits, 0.5), sched, n, epsilon=eps)
        assert np.var(sims) == pytest.approx(predicted, rel=0.25)

    def test_unreachable_bit_is_infinite(self):
        sched = BitSamplingSchedule.from_bit_means(np.array([0.5, 0.0]))
        assert predicted_variance(np.array([0.5, 0.5]), sched, 100) == float("inf")

    def test_b_send_scaling(self):
        sched = BitSamplingSchedule.uniform(4)
        means = np.full(4, 0.5)
        assert predicted_variance(means, sched, 100, b_send=4) == pytest.approx(
            predicted_variance(means, sched, 100) / 4
        )

    def test_validation(self):
        sched = BitSamplingSchedule.uniform(4)
        with pytest.raises(ConfigurationError):
            predicted_variance(np.zeros(3), sched, 100)
        with pytest.raises(ConfigurationError):
            predicted_variance(np.zeros(4), sched, 0)


class TestPlanning:
    def test_plan_meets_target(self):
        means = np.array([0.5, 0.4, 0.3, 0.2])
        sched = BitSamplingSchedule.weighted(4, 1.0)
        n = plan_cohort_size(0.02, means, sched)
        assert predicted_nrmse(means, sched, n) <= 0.02
        assert predicted_nrmse(means, sched, max(n - n // 10, 1)) > 0.02 * 0.9

    def test_plan_scales_inverse_square(self):
        means = np.full(6, 0.5)
        sched = BitSamplingSchedule.weighted(6, 1.0)
        n_loose = plan_cohort_size(0.02, means, sched)
        n_tight = plan_cohort_size(0.01, means, sched)
        assert n_tight == pytest.approx(4 * n_loose, rel=0.01)

    def test_ldp_needs_more_clients(self):
        means = np.full(6, 0.5)
        sched = BitSamplingSchedule.weighted(6, 1.0)
        assert plan_cohort_size(0.02, means, sched, epsilon=1.0) > plan_cohort_size(
            0.02, means, sched
        )

    def test_plan_validated_against_simulation(self):
        """A cohort planned for 2% NRMSE should deliver ~2% in simulation."""
        rng = np.random.default_rng(2)
        n_bits = 8
        encoder = FixedPointEncoder.for_integers(n_bits)
        sched = BitSamplingSchedule.weighted(n_bits, 1.0)
        # Uniform integers over the full byte: every bit mean is 1/2.
        means = np.full(n_bits, 0.5)
        n = plan_cohort_size(0.02, means, sched)
        est = BasicBitPushing(encoder, schedule=sched)
        rel_errors = []
        for _ in range(200):
            values = rng.integers(0, 256, n).astype(float)
            rel_errors.append((est.estimate(values, rng).value - 127.5) / 127.5)
        achieved = float(np.sqrt(np.mean(np.square(rel_errors))))
        assert achieved == pytest.approx(0.02, rel=0.3)

    def test_unreachable_target_raises(self):
        sched = BitSamplingSchedule.from_bit_means(np.array([0.5, 0.0]))
        with pytest.raises(ConfigurationError):
            plan_cohort_size(0.01, np.array([0.5, 0.5]), sched)

    def test_absurd_target_raises(self):
        means = np.full(4, 0.5)
        sched = BitSamplingSchedule.uniform(4)
        with pytest.raises(ConfigurationError):
            plan_cohort_size(1e-9, means, sched, max_clients=10_000)

    def test_invalid_target(self):
        with pytest.raises(ConfigurationError):
            plan_cohort_size(0.0, np.full(4, 0.5), BitSamplingSchedule.uniform(4))


class TestDitheringPrediction:
    def test_upper_bounds_simulation(self):
        rng = np.random.default_rng(3)
        width, n = 1023.0, 5_000
        values = np.full(n, 400.0)
        est = SubtractiveDithering(0.0, width)
        sims = [est.estimate(values, rng).value for _ in range(300)]
        assert np.var(sims) <= dithering_variance(width, n)

    def test_quadratic_in_width(self):
        assert dithering_variance(200.0, 100) == pytest.approx(
            4 * dithering_variance(100.0, 100)
        )

    def test_rr_inflates(self):
        assert dithering_variance(100.0, 100, epsilon=1.0) > dithering_variance(100.0, 100)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            dithering_variance(0.0, 100)
        with pytest.raises(ConfigurationError):
            dithering_variance(10.0, 100, epsilon=-1.0)
