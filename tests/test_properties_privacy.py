"""Property-based tests on the privacy layer and secure aggregation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.federated.secure_agg import (
    PrimeField,
    SecureAggregationSession,
    reconstruct_secret,
    split_secret,
)
from repro.privacy import BitMeter, PrivacyAccountant, RandomizedResponse

FIELD = PrimeField()


class TestRandomizedResponseProperties:
    @given(epsilon=st.floats(min_value=0.01, max_value=10.0))
    def test_p_in_valid_range(self, epsilon):
        rr = RandomizedResponse(epsilon=epsilon)
        assert 0.5 < rr.p < 1.0

    @given(epsilon=st.floats(min_value=0.01, max_value=10.0))
    def test_unbias_inverts_expectation_map(self, epsilon):
        """unbias(p*m + (1-p)*(1-m)) == m for every true mean m."""
        rr = RandomizedResponse(epsilon=epsilon)
        for m in (0.0, 0.123, 0.5, 0.9, 1.0):
            reported_mean = rr.p * m + (1 - rr.p) * (1 - m)
            assert rr.unbias_bit_means(np.array([reported_mean]))[0] == pytest.approx(m)

    @given(
        epsilon=st.floats(min_value=0.1, max_value=8.0),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=25)
    def test_perturbation_preserves_shape_and_binaryness(self, epsilon, seed):
        rng = np.random.default_rng(seed)
        rr = RandomizedResponse(epsilon=epsilon)
        bits = rng.integers(0, 2, size=(7, 3)).astype(np.uint8)
        out = rr.perturb_bits(bits, rng)
        assert out.shape == bits.shape
        assert set(np.unique(out)) <= {0, 1}

    @given(eps_small=st.floats(0.1, 2.0), gap=st.floats(0.5, 5.0))
    def test_variance_monotone_in_epsilon(self, eps_small, gap):
        small = RandomizedResponse(epsilon=eps_small)
        large = RandomizedResponse(epsilon=eps_small + gap)
        assert large.per_report_variance() < small.per_report_variance()


class TestAccountantProperties:
    @given(spends=st.lists(st.floats(min_value=0.0, max_value=1.0), max_size=20))
    def test_ledger_total_is_sum(self, spends):
        acct = PrivacyAccountant()
        for s in spends:
            acct.spend(s)
        assert acct.spent_epsilon == pytest.approx(sum(spends))

    @given(
        budget=st.floats(min_value=0.5, max_value=10.0),
        spends=st.lists(st.floats(min_value=0.01, max_value=2.0), min_size=1, max_size=30),
    )
    def test_budget_never_exceeded(self, budget, spends):
        from repro.exceptions import PrivacyBudgetExceeded

        acct = PrivacyAccountant(epsilon_budget=budget)
        for s in spends:
            try:
                acct.spend(s)
            except PrivacyBudgetExceeded:
                pass
        assert acct.spent_epsilon <= budget + 1e-9


class TestBitMeterProperties:
    @given(
        events=st.lists(
            st.tuples(st.integers(0, 5), st.integers(0, 3)), max_size=60
        )
    )
    def test_meter_counts_are_consistent(self, events):
        from repro.exceptions import PrivacyBudgetExceeded

        meter = BitMeter(max_bits_per_value=2, max_bits_per_client=5)
        accepted = []
        for client, value in events:
            try:
                meter.record(client, value)
                accepted.append((client, value))
            except PrivacyBudgetExceeded:
                pass
        # Caps hold for every client and value.
        for client in {c for c, _ in accepted}:
            assert meter.bits_disclosed_by(client) <= 5
            for value in {v for c, v in accepted if c == client}:
                assert meter.bits_disclosed_for(client, value) <= 2
        assert meter.total_bits == len(accepted)


class TestShamirProperties:
    @given(
        secret=st.integers(min_value=0, max_value=FIELD.modulus - 1),
        n_shares=st.integers(min_value=1, max_value=10),
        data=st.data(),
    )
    @settings(max_examples=40)
    def test_any_threshold_subset_reconstructs(self, secret, n_shares, data):
        threshold = data.draw(st.integers(min_value=1, max_value=n_shares))
        seed = data.draw(st.integers(0, 2**16))
        shares = split_secret(secret, n_shares, threshold, FIELD, seed)
        subset_idx = data.draw(
            st.permutations(range(n_shares)).map(lambda p: list(p)[:threshold])
        )
        picked = [shares[i] for i in subset_idx]
        assert reconstruct_secret(picked, FIELD) == secret


class TestSecureAggregationProperties:
    @given(
        n_clients=st.integers(min_value=2, max_value=8),
        length=st.integers(min_value=1, max_value=4),
        data=st.data(),
    )
    @settings(max_examples=20, deadline=None)
    def test_sum_exact_for_any_survivor_set(self, n_clients, length, data):
        threshold = data.draw(st.integers(min_value=2, max_value=n_clients))
        n_submitting = data.draw(st.integers(min_value=threshold, max_value=n_clients))
        submitting = data.draw(
            st.permutations(range(n_clients)).map(lambda p: sorted(p[:n_submitting]))
        )
        vectors = {
            cid: data.draw(
                st.lists(st.integers(0, 10_000), min_size=length, max_size=length)
            )
            for cid in submitting
        }
        session = SecureAggregationSession(n_clients, length, threshold, rng=0)
        for cid in submitting:
            session.submit(cid, vectors[cid])
        expected = [sum(vectors[cid][i] for cid in submitting) for i in range(length)]
        assert session.finalize() == expected
