"""Experiment harness: figure functions, method registry, report rendering, CLI.

Figure functions run here at drastically reduced scale -- the goal is to
test plumbing (labels, shapes, metrics, determinism), not to re-validate
accuracy claims (the benchmarks do that at full scale).
"""

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.exceptions import ConfigurationError
from repro.experiments import (
    figure_1a,
    figure_1c,
    figure_2a,
    figure_3b,
    figure_4a,
    figure_4b,
    figure_4c,
    mean_methods,
    render_series_table,
    render_snapshot,
    variance_methods,
)
from repro.experiments.figure1 import bits_for_normal

QUICK = {"n_reps": 3}


class TestMethodRegistry:
    def test_paper_methods_built(self):
        methods = mean_methods(10)
        assert set(methods) == {"dithering", "weighted a=0.5", "weighted a=1.0", "adaptive"}

    def test_all_methods_estimate(self, rng):
        values = np.full(2_000, 300.0)
        for label, method in mean_methods(10, epsilon=2.0, include=[
            "dithering", "weighted a=0.5", "adaptive", "piecewise", "duchi",
            "randomized-rounding", "laplace",
        ]).items():
            estimate = method(values, rng)
            assert estimate == pytest.approx(300.0, abs=120.0), label

    def test_ldp_methods_require_epsilon(self):
        with pytest.raises(ConfigurationError):
            mean_methods(10, include=["piecewise"])
        with pytest.raises(ConfigurationError):
            mean_methods(10, include=["laplace"])

    def test_unknown_label_rejected(self):
        with pytest.raises(ConfigurationError):
            mean_methods(10, include=["quantum"])

    def test_variance_methods_estimate(self, rng):
        values = np.clip(rng.normal(300, 50, 20_000), 0, None)
        for label, method in variance_methods(10).items():
            estimate = method(values, rng)
            assert estimate == pytest.approx(values.var(), rel=1.5), label

    def test_variance_unknown_label(self):
        with pytest.raises(ConfigurationError):
            variance_methods(10, include=["bogus"])


class TestFigureFunctions:
    def test_bits_for_normal_steps_at_powers_of_two(self):
        assert bits_for_normal(100.0, 100.0) == 9     # 500 -> 9 bits
        assert bits_for_normal(600.0, 100.0) == 10    # 1000 -> 10 bits
        assert bits_for_normal(700.0, 100.0) == 11    # 1100 -> 11 bits

    def test_figure_1a_structure(self):
        results = figure_1a(n_clients=500, mus=(100.0, 400.0), **QUICK)
        assert set(results) == {"dithering", "weighted a=0.5", "weighted a=1.0", "adaptive"}
        for series in results.values():
            assert series.x == [100.0, 400.0]
            assert all(v >= 0 for v in series.nrmse)

    def test_figure_1c_structure(self):
        results = figure_1c(n_clients=500, bit_depths=(11, 14), **QUICK)
        assert results["adaptive"].x == [11.0, 14.0]

    def test_figure_2a_structure(self):
        results = figure_2a(cohorts=(500, 1_000), **QUICK)
        assert results["adaptive"].x == [500.0, 1000.0]

    def test_figure_3b_structure(self):
        results = figure_3b(epsilons=(2.0,), n_clients=500, **QUICK)
        assert "piecewise" in results
        assert results["piecewise"].x == [2.0]

    def test_figure_3b_extras(self):
        results = figure_3b(epsilons=(2.0,), n_clients=300, include_extras=True, **QUICK)
        assert "laplace" in results and "duchi" in results

    def test_figure_4a_structure(self):
        results = figure_4a(multiples=(0.0, 2.0), n_clients=500, **QUICK)
        assert set(results) == {"adaptive+squash", "weighted a=1.0 (no squash)"}

    def test_figure_4c_structure(self):
        results = figure_4c(bit_depths=(8, 12), n_clients=500, **QUICK)
        assert "adaptive+squash" in results

    def test_figures_deterministic(self):
        a = figure_1a(n_clients=300, mus=(200.0,), n_reps=2, seed=7)
        b = figure_1a(n_clients=300, mus=(200.0,), n_reps=2, seed=7)
        assert a["adaptive"].nrmse == b["adaptive"].nrmse


class TestFigure4b:
    def test_snapshot_shape(self):
        snap = figure_4b(n_clients=2_000, n_bits=12, seed=1)
        assert snap.bit_means.shape == (12,)
        assert snap.counts.sum() == 2_000
        assert snap.threshold == 0.05

    def test_dense_region_and_noise_region(self):
        snap = figure_4b(n_clients=10_000, n_bits=16, seed=2)
        # Ages occupy ~7 bits: the low bits carry real means, the top bits
        # are pure randomized-response noise.
        assert snap.true_bit_means[:6].min() > 0.05
        assert snap.true_bit_means[8:].max() == 0.0
        assert set(snap.noisy_bits) >= set(range(10, 16))


class TestRendering:
    def test_series_table(self):
        results = figure_1a(n_clients=300, mus=(200.0,), n_reps=2)
        table = render_series_table("Figure 1a", results, metric="nrmse", x_name="mu")
        assert "### Figure 1a" in table
        assert "| mu |" in table
        assert "adaptive" in table
        assert "±" in table

    def test_mismatched_grids_rejected(self):
        a = figure_1a(n_clients=300, mus=(200.0,), n_reps=2)
        b = figure_1a(n_clients=300, mus=(400.0,), n_reps=2)
        with pytest.raises(ValueError):
            render_series_table("bad", {"a": a["adaptive"], "b": b["adaptive"]})

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            render_series_table("empty", {})

    def test_snapshot_rendering(self):
        snap = figure_4b(n_clients=2_000, n_bits=10, seed=3)
        text = render_snapshot(snap)
        assert "| bit |" in text
        assert "epsilon=2" in text


class TestCli:
    def test_list(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "1a" in out and "poisoning" in out

    def test_figure_quick(self, capsys):
        assert cli_main(["figure", "1c", "--quick"]) == 0
        assert "### Figure 1c" in capsys.readouterr().out

    def test_figure_4b(self, capsys):
        assert cli_main(["figure", "4b"]) == 0
        assert "| bit |" in capsys.readouterr().out

    def test_ablation_quick(self, capsys):
        assert cli_main(["ablation", "b-send", "--quick"]) == 0
        assert "b_send" in capsys.readouterr().out

    def test_unknown_panel_rejected(self, capsys):
        with pytest.raises(SystemExit):
            cli_main(["figure", "9z"])
        # Consume argparse's usage/error text so it never leaks into the
        # pytest progress output.
        captured = capsys.readouterr()
        assert "invalid choice" in captured.err

    def test_figure_choices_sorted(self):
        """4b is registered like every other panel: choices stay sorted."""
        from repro.cli import DIAGNOSTICS, FIGURES, FIGURE_PANELS

        assert FIGURE_PANELS == sorted(FIGURE_PANELS)
        assert "4b" in DIAGNOSTICS
        assert set(DIAGNOSTICS).isdisjoint(FIGURES)
