"""Public API surface: everything advertised is importable and consistent."""

import importlib

import pytest

import repro


class TestTopLevelSurface:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version_shape(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(p.isdigit() for p in parts)

    def test_all_is_sorted_modulo_dunder(self):
        names = [n for n in repro.__all__ if not n.startswith("__")]
        assert names == sorted(names)

    @pytest.mark.parametrize(
        "subpackage",
        [
            "repro.core",
            "repro.privacy",
            "repro.baselines",
            "repro.federated",
            "repro.federated.secure_agg",
            "repro.data",
            "repro.attacks",
            "repro.metrics",
            "repro.experiments",
        ],
    )
    def test_subpackage_all_resolves(self, subpackage):
        module = importlib.import_module(subpackage)
        assert hasattr(module, "__all__")
        for name in module.__all__:
            assert hasattr(module, name), f"{subpackage}.{name}"

    def test_estimators_share_estimate_signature(self):
        """Every scalar estimator exposes estimate(values, rng) -> .value."""
        import numpy as np

        values = np.full(5_000, 40.0)
        encoder = repro.FixedPointEncoder.for_integers(8)
        estimators = [
            repro.BasicBitPushing(encoder),
            repro.AdaptiveBitPushing(encoder),
            repro.QuantileEstimator(encoder, q=0.5),
        ]
        for estimator in estimators:
            result = estimator.estimate(values, rng=0)
            assert abs(result.value - 40.0) < 2.0, type(estimator).__name__

    def test_docstrings_everywhere_public(self):
        """Every public top-level object carries a docstring."""
        for name in repro.__all__:
            if name.startswith("__"):
                continue
            obj = getattr(repro, name)
            assert getattr(obj, "__doc__", None), f"{name} lacks a docstring"


class TestFigure4Helper:
    def test_squash_threshold_for_maps_multiples(self):
        from repro.core.squashing import rr_noise_std
        from repro.experiments.figure4 import squash_threshold_for

        threshold = squash_threshold_for(2.0, epsilon=2.0, n_clients=16_000, n_bits=16)
        assert threshold == pytest.approx(2.0 * rr_noise_std(2.0, 1_000))
