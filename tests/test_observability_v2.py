"""Unit tests for the second observability layer (PR 5).

Covers the satellites: orphan-safe span trees, durable JSONL export,
histogram quantiles against numpy, the deterministic SimClock, and the
phase profiler's CPU/allocation enrichment.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.observability import (
    DEFAULT_PHASE_BUCKETS,
    Histogram,
    InMemoryExporter,
    JsonLinesExporter,
    PhaseProfiler,
    SimClock,
    SpanRecord,
    Tracer,
    format_span_tree,
)


def _record(name, span_id, parent_id=None, start=0.0, duration=0.001, attrs=None):
    return SpanRecord(
        name=name,
        span_id=span_id,
        parent_id=parent_id,
        start_time_s=start,
        duration_s=duration,
        attributes=attrs or {},
    )


class TestFormatSpanTreeOrphans:
    def test_orphan_rendered_as_synthetic_root(self):
        # Parent id 99 is not among the records (exporter attached mid-run).
        records = [
            _record("root", 1, None, start=0.0),
            _record("orphan", 2, parent_id=99, start=0.5),
        ]
        tree = format_span_tree(records)
        assert "root" in tree
        assert "orphan" in tree
        # Both render at depth 0 (no leading indent on either line).
        lines = tree.splitlines()
        assert all(not line.startswith(" ") for line in lines)

    def test_orphans_interleave_with_true_roots_by_start_time(self):
        records = [
            _record("late-root", 1, None, start=2.0),
            _record("early-orphan", 2, parent_id=42, start=1.0),
        ]
        lines = format_span_tree(records).splitlines()
        assert lines[0].startswith("early-orphan")
        assert lines[1].startswith("late-root")

    def test_orphan_keeps_its_own_children(self):
        records = [
            _record("orphan", 2, parent_id=99, start=0.0),
            _record("child", 3, parent_id=2, start=0.1),
        ]
        lines = format_span_tree(records).splitlines()
        assert lines[0].startswith("orphan")
        assert lines[1].startswith("  child")

    def test_no_spans_dropped(self):
        records = [_record(f"s{i}", i, parent_id=1000 + i) for i in range(1, 8)]
        tree = format_span_tree(records)
        for i in range(1, 8):
            assert f"s{i}" in tree

    def test_fully_parented_tree_unchanged(self):
        records = [
            _record("root", 1, None, start=0.0),
            _record("child", 2, parent_id=1, start=0.1),
        ]
        lines = format_span_tree(records).splitlines()
        assert lines[0].startswith("root")
        assert lines[1].startswith("  child")


class TestJsonLinesDurability:
    def test_lines_reach_disk_without_close(self, tmp_path):
        path = tmp_path / "events.jsonl"
        exporter = JsonLinesExporter(path)
        exporter.export(_record("alpha", 1))
        exporter.export(_record("beta", 2))
        # No close(): with the flush_every=1 default every line is already
        # flushed, so a crashed run keeps its event log.
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["name"] == "alpha"
        assert json.loads(lines[1])["name"] == "beta"
        exporter.close()

    def test_append_mode_extends_existing_log(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with JsonLinesExporter(path) as first:
            first.export(_record("first", 1))
        with JsonLinesExporter(path, append=True) as second:
            second.export(_record("second", 2))
        names = [json.loads(line)["name"] for line in path.read_text().splitlines()]
        assert names == ["first", "second"]

    def test_truncate_is_still_the_non_append_default(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with JsonLinesExporter(path) as first:
            first.export(_record("first", 1))
        with JsonLinesExporter(path) as second:
            second.export(_record("second", 2))
        names = [json.loads(line)["name"] for line in path.read_text().splitlines()]
        assert names == ["second"]

    def test_flush_every_zero_buffers_until_close(self, tmp_path):
        path = tmp_path / "events.jsonl"
        exporter = JsonLinesExporter(path, flush_every=0)
        exporter.export(_record("buffered", 1))
        assert path.read_text() == ""
        exporter.close()
        assert json.loads(path.read_text())["name"] == "buffered"

    def test_negative_flush_every_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            JsonLinesExporter(tmp_path / "x.jsonl", flush_every=-1)

    def test_write_line_appends_arbitrary_payloads(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with JsonLinesExporter(path) as exporter:
            exporter.write_line({"type": "event", "kind": "note"})
        assert json.loads(path.read_text())["kind"] == "note"


class TestHistogramQuantile:
    BUCKETS = tuple(float(b) for b in np.linspace(0.5, 50.0, 100))

    def test_quantiles_match_numpy_within_bucket_width(self):
        rng = np.random.default_rng(11)
        samples = rng.uniform(1.0, 45.0, size=5_000)
        hist = Histogram("h", self.BUCKETS)
        for x in samples:
            hist.observe(float(x))
        width = self.BUCKETS[1] - self.BUCKETS[0]
        for q in (0.5, 0.9, 0.95, 0.99):
            assert hist.quantile(q) == pytest.approx(
                float(np.quantile(samples, q)), abs=2 * width
            )

    def test_overflow_clamps_to_last_bound(self):
        hist = Histogram("h", (1.0, 2.0))
        for _ in range(10):
            hist.observe(100.0)
        assert hist.quantile(0.5) == 2.0
        assert hist.quantile(0.99) == 2.0

    def test_empty_histogram_quantile_is_zero(self):
        assert Histogram("h", (1.0, 2.0)).quantile(0.5) == 0.0

    def test_invalid_q_rejected(self):
        hist = Histogram("h", (1.0,))
        with pytest.raises(Exception):
            hist.quantile(1.5)

    def test_to_dict_reports_percentiles(self):
        hist = Histogram("h", self.BUCKETS)
        for x in np.linspace(1.0, 40.0, 1_000):
            hist.observe(float(x))
        payload = hist.to_dict()
        assert {"p50", "p95", "p99"} <= set(payload)
        assert payload["p50"] <= payload["p95"] <= payload["p99"]
        assert payload["p50"] == pytest.approx(hist.quantile(0.5))

    def test_single_bucket_interpolation(self):
        hist = Histogram("h", (10.0,))
        for _ in range(100):
            hist.observe(5.0)
        # All mass in [0, 10]; median interpolates to the bucket midpoint.
        assert hist.quantile(0.5) == pytest.approx(5.0)


class TestSimClock:
    def test_arithmetic_sequence(self):
        clock = SimClock(start=1.0, step=0.5)
        assert [clock() for _ in range(3)] == [1.0, 1.5, 2.0]

    def test_tracer_timings_are_deterministic(self):
        def run():
            clock = SimClock(start=1.0, step=0.001)
            memory = InMemoryExporter()
            tracer = Tracer([memory], clock=clock, wall_clock=clock)
            with tracer.span("outer"):
                with tracer.span("inner"):
                    pass
            return [(r.name, r.start_time_s, r.duration_s) for r in memory.records]

        assert run() == run()

    def test_null_profiler_attribute_untouched(self):
        clock = SimClock()
        tracer = Tracer([], clock=clock, wall_clock=clock)
        assert tracer.profiler is None


class TestPhaseProfiler:
    def test_spans_gain_cpu_time_attribute(self):
        memory = InMemoryExporter()
        profiler = PhaseProfiler()
        tracer = Tracer([memory], profiler=profiler)
        with tracer.span("work"):
            sum(range(10_000))
        (record,) = memory.records
        assert "cpu_time_s" in record.attributes
        assert record.attributes["cpu_time_s"] >= 0.0

    def test_summary_reports_phases_with_percentiles(self):
        profiler = PhaseProfiler()
        tracer = Tracer([], profiler=profiler)
        for _ in range(5):
            with tracer.span("phase.a"):
                pass
        with tracer.span("phase.b"):
            pass
        summary = profiler.summary()
        assert summary["trace_malloc"] is False
        names = [p["name"] for p in summary["phases"]]
        assert set(names) == {"phase.a", "phase.b"}
        for phase in summary["phases"]:
            assert {"count", "total_s", "cpu_total_s", "p50_s", "p95_s", "p99_s"} <= set(
                phase
            )
        a = next(p for p in summary["phases"] if p["name"] == "phase.a")
        assert a["count"] == 5

    def test_merge_external_folds_worker_cost(self):
        profiler = PhaseProfiler()
        profiler.merge_external("executor.worker", 0.25, cpu_s=0.2)
        profiler.merge_external("executor.worker", 0.35, cpu_s=0.3)
        (phase,) = profiler.phases()
        assert phase.name == "executor.worker"
        assert phase.count == 2
        assert phase.total_s == pytest.approx(0.6)
        assert phase.cpu_total_s == pytest.approx(0.5)

    def test_tracemalloc_peak_tracked_opt_in(self):
        memory = InMemoryExporter()
        profiler = PhaseProfiler(trace_malloc=True)
        tracer = Tracer([memory], profiler=profiler)
        try:
            with tracer.span("alloc"):
                _ = [bytearray(1024) for _ in range(64)]
        finally:
            profiler.stop()
        (record,) = memory.records
        assert record.attributes.get("peak_alloc_kb", 0.0) > 0.0
        (phase,) = profiler.phases()
        assert phase.peak_alloc_kb is not None

    def test_sim_clock_as_cpu_clock_is_deterministic(self):
        def run():
            clock = SimClock(start=1.0, step=0.001)
            profiler = PhaseProfiler(cpu_clock=clock)
            tracer = Tracer([], profiler=profiler, clock=clock, wall_clock=clock)
            with tracer.span("outer"):
                with tracer.span("inner"):
                    pass
            return profiler.summary()

        assert run() == run()

    def test_default_phase_buckets_sorted(self):
        assert list(DEFAULT_PHASE_BUCKETS) == sorted(DEFAULT_PHASE_BUCKETS)
