"""Extended aggregates: higher moments, geometric means (Section 3.4 extensions)."""

import numpy as np
import pytest

from repro.core import (
    FixedPointEncoder,
    GeometricMeanEstimator,
    MomentEstimator,
    kurtosis,
    skewness,
)
from repro.exceptions import ConfigurationError
from repro.privacy import RandomizedResponse


class TestMomentConstruction:
    def test_invalid_order(self, encoder8):
        with pytest.raises(ConfigurationError):
            MomentEstimator(encoder8, order=0)

    def test_order_times_bits_bounded(self):
        with pytest.raises(ConfigurationError):
            MomentEstimator(FixedPointEncoder.for_integers(20), order=4)

    def test_invalid_inner(self, encoder8):
        with pytest.raises(ConfigurationError):
            MomentEstimator(encoder8, order=2, inner="magic")

    def test_invalid_fraction(self, encoder8):
        with pytest.raises(ConfigurationError):
            MomentEstimator(encoder8, order=2, mean_fraction=1.0)

    def test_too_few_clients(self, encoder8, rng):
        with pytest.raises(ConfigurationError):
            MomentEstimator(encoder8, order=2).estimate(np.array([1.0, 2.0]), rng)


class TestMomentAccuracy:
    def test_second_central_moment_is_variance(self, encoder8):
        rng = np.random.default_rng(80)
        values = np.clip(rng.normal(100, 20, 200_000), 0, None)
        est = MomentEstimator(encoder8, order=2).estimate(values, rng)
        assert est.value == pytest.approx(values.var(), rel=0.25)
        assert est.order == 2 and est.centered

    def test_third_central_moment_on_skewed_data(self, encoder8):
        """Exponential data has a large positive third central moment
        (2 * scale^3), unlike symmetric data where it hides in the noise."""
        rng = np.random.default_rng(81)
        values = rng.exponential(30.0, 300_000)
        truth = float(np.mean((values - values.mean()) ** 3))
        est = MomentEstimator(encoder8, order=3).estimate(values, rng)
        assert est.value == pytest.approx(truth, rel=0.4)
        assert est.value > 0

    def test_fourth_central_moment(self, encoder8):
        rng = np.random.default_rng(82)
        values = np.clip(rng.normal(100, 20, 300_000), 0, None)
        truth = float(np.mean((values - values.mean()) ** 4))
        est = MomentEstimator(encoder8, order=4).estimate(values, rng)
        assert est.value == pytest.approx(truth, rel=0.5)

    def test_raw_moment(self, encoder8):
        rng = np.random.default_rng(83)
        values = np.clip(rng.normal(100, 20, 100_000), 0, None)
        est = MomentEstimator(encoder8, order=2, centered=False).estimate(values, rng)
        assert est.value == pytest.approx(np.mean(values**2), rel=0.1)
        assert not est.centered
        assert np.isnan(est.mean_estimate)

    def test_first_central_moment_near_zero(self, encoder8):
        rng = np.random.default_rng(84)
        values = np.clip(rng.normal(100, 20, 100_000), 0, None)
        est = MomentEstimator(encoder8, order=1).estimate(values, rng)
        assert abs(est.value) < 2.0   # sigma = 20; mean error ~ fraction of it

    def test_scaled_encoder_rescales_moment(self):
        rng = np.random.default_rng(85)
        values = rng.uniform(0.0, 1.0, 200_000)
        encoder = FixedPointEncoder.for_range(0.0, 1.0, 10)
        est = MomentEstimator(encoder, order=2).estimate(values, rng)
        assert est.value == pytest.approx(values.var(), rel=0.3)

    def test_ldp_moment_still_reasonable(self, encoder8):
        rng = np.random.default_rng(86)
        values = np.clip(rng.normal(100, 20, 300_000), 0, None)
        est = MomentEstimator(
            encoder8, order=2, perturbation=RandomizedResponse(epsilon=4.0)
        ).estimate(values, rng)
        assert est.value == pytest.approx(values.var(), rel=0.8)


class TestStandardizedMoments:
    def test_skewness_of_exponential(self, encoder8):
        """Exponential skewness is exactly 2."""
        rng = np.random.default_rng(87)
        values = rng.exponential(25.0, 400_000)
        estimate = skewness(values, encoder8, rng)
        assert estimate == pytest.approx(2.0, abs=0.8)

    def test_skewness_sign_symmetric_vs_skewed(self, encoder8):
        rng = np.random.default_rng(88)
        skewed = rng.exponential(25.0, 300_000)
        assert skewness(skewed, encoder8, rng) > 0.5

    def test_kurtosis_of_normal_near_zero(self, encoder8):
        rng = np.random.default_rng(89)
        values = np.clip(rng.normal(128, 20, 400_000), 0, None)
        estimate = kurtosis(values, encoder8, rng)
        assert abs(estimate) < 1.0


class TestGeometricMean:
    def test_lognormal_geometric_mean(self):
        rng = np.random.default_rng(90)
        values = rng.lognormal(3.0, 0.5, 200_000)
        truth = float(np.exp(np.log(values).mean()))
        est = GeometricMeanEstimator(0.0, 10.0).estimate(values, rng)
        assert est.value == pytest.approx(truth, rel=0.05)
        assert est.log2_mean == pytest.approx(np.log2(values).mean(), abs=0.1)

    def test_constant_values(self):
        est = GeometricMeanEstimator(0.0, 8.0).estimate(np.full(20_000, 16.0), rng=0)
        assert est.value == pytest.approx(16.0, rel=0.01)

    def test_log_product(self):
        values = np.full(1_000, 2.0)
        est = GeometricMeanEstimator(0.0, 4.0, n_bits=10).estimate(values, rng=0)
        # product = 2^1000 -> log2 product = 1000.
        assert est.log2_product == pytest.approx(1_000.0, rel=0.02)

    def test_nonpositive_values_clipped_not_crashing(self, rng):
        values = np.array([0.0, -3.0] + [8.0] * 5_000)
        est = GeometricMeanEstimator(0.0, 6.0).estimate(values, rng)
        assert np.isfinite(est.value)

    def test_empty_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            GeometricMeanEstimator(0.0, 4.0).estimate(np.array([]), rng)

    def test_invalid_inner(self):
        with pytest.raises(ConfigurationError):
            GeometricMeanEstimator(0.0, 4.0, inner="turbo")

    def test_ldp_variant(self):
        rng = np.random.default_rng(91)
        values = rng.lognormal(3.0, 0.4, 200_000)
        truth = float(np.exp(np.log(values).mean()))
        est = GeometricMeanEstimator(
            0.0, 8.0, perturbation=RandomizedResponse(epsilon=4.0)
        ).estimate(values, rng)
        assert est.value == pytest.approx(truth, rel=0.3)
