"""Served-round integration tests: server + fleet over real loopback sockets.

The acceptance criterion lives here: a lossless served round on a fixed seed
is bit-identical to the equivalent in-process ``FederatedMeanQuery`` round,
and lossy/LDP/adversarial rounds match their deterministic
:func:`in_process_estimate` twin.  Every malformed uplink must be rejected
with ``wire_rejects_total`` accounting and never folded into the estimate.
"""

import asyncio
import io
import json
import os
import subprocess
import sys
import threading
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import run_fleet_command, run_serve_command
from repro.core import FixedPointEncoder
from repro.core.protocol import bit_means_from_stats
from repro.core.sampling import central_assignment
from repro.exceptions import ConfigurationError, RoundFailedError
from repro.federated import (
    ClientDevice,
    ClientFleet,
    EmulationProfile,
    FederatedMeanQuery,
    RetryPolicy,
    RoundServer,
    ServeConfig,
    fleet_values,
    in_process_estimate,
    round_trace_id,
    run_loopback,
)
from repro.federated.client import BitReport
from repro.federated.fleet import read_message
from repro.federated.wire import (
    MSG_ABORT,
    MSG_ANNOUNCE,
    MSG_HELLO,
    MSG_REPORTS,
    MSG_RESULT,
    REPORT_SIZE,
    encode_message,
    encode_report,
    encode_telemetry,
)
from repro.observability import (
    InMemoryExporter,
    MetricsRegistry,
    Tracer,
    instrumented,
    load_run,
)
from repro.rng import ensure_rng


class TestLoopbackParity:
    def test_lossless_round_matches_in_process_federated_round(self):
        n = 32
        values = fleet_values(n, seed=3)
        cfg = ServeConfig(n_clients=n, seed=11, deadline_s=10.0, registration_timeout_s=5.0)
        served, fleet = run_loopback(cfg, values, fleet_seed=3)

        population = [ClientDevice(i, [float(v)]) for i, v in enumerate(values)]
        in_process = FederatedMeanQuery(
            FixedPointEncoder.for_integers(10), mode="basic"
        ).run(population, rng=cfg.seed)
        twin = in_process_estimate(values, cfg, fleet_seed=3)

        assert served.estimate.value == in_process.value
        assert served.estimate.value == twin.value
        assert np.array_equal(served.estimate.counts, twin.counts)
        assert served.attempts == 1
        assert served.surviving_clients == n
        assert served.wire_rejects == 0 and served.late_reports == 0
        assert fleet.uplinks_sent == n and fleet.uplinks_dropped == 0
        assert fleet.estimate == served.estimate.value
        assert len(fleet.results) == n
        assert served.estimate.metadata["served"] is True
        assert served.estimate.metadata["transport"] == "tcp"

    def test_lossy_rr_round_matches_twin(self):
        n = 40
        values = fleet_values(n, seed=5)
        profile = EmulationProfile(loss_rate=0.3, latency_median_s=10.0)
        cfg = ServeConfig(
            n_clients=n,
            epsilon=2.0,
            seed=9,
            deadline_s=0.75,
            registration_timeout_s=5.0,
        )
        served, fleet = run_loopback(cfg, values, profile=profile, fleet_seed=5)
        twin = in_process_estimate(values, cfg, profile=profile, fleet_seed=5)

        assert served.estimate.value == twin.value
        assert fleet.uplinks_sent + fleet.uplinks_dropped == n
        assert fleet.uplinks_dropped > 0
        assert served.surviving_clients == fleet.uplinks_sent
        assert served.wire_rejects == 0
        assert served.estimate.metadata["ldp"] is True

    def test_retry_recovers_after_total_uplink_loss(self):
        n = 12
        values = fleet_values(n, seed=1)
        cfg = ServeConfig(
            n_clients=n,
            seed=4,
            deadline_s=0.3,
            registration_timeout_s=5.0,
            retry=RetryPolicy(max_attempts=2, redraw_cohort=False),
        )
        served, fleet = run_loopback(
            cfg,
            values,
            fleet_seed=1,
            mutate=lambda cid, attempt, frame: None if attempt == 1 else frame,
        )
        assert served.attempts == 2
        assert served.surviving_clients == n
        assert served.backoff_s == cfg.retry.backoff_s(1)
        assert served.estimate.metadata["attempt_history"] == [[[n, 0], [n, n]]]
        assert fleet.uplinks_dropped == n and fleet.uplinks_sent == n

        # Replay: the second assignment draw from the same server stream.
        gen = ensure_rng(cfg.seed)
        central_assignment(n, cfg.schedule, gen)  # attempt 1, all uplinks lost
        assignment = central_assignment(n, cfg.schedule, gen)
        encoded = cfg.encoder.encode(values)
        bits = ((encoded >> assignment.astype(np.uint64)) & np.uint64(1)).astype(np.float64)
        counts = np.bincount(assignment, minlength=cfg.n_bits).astype(np.int64)
        sums = np.bincount(assignment, weights=bits, minlength=cfg.n_bits)
        means = bit_means_from_stats(sums, counts, None)
        expected = cfg.encoder.decode_scalar(float(cfg.encoder.powers @ means))
        assert served.estimate.value == expected

    def test_quorum_failure_aborts_and_fleet_sees_abort(self):
        n = 6
        values = fleet_values(n, seed=2)
        cfg = ServeConfig(
            n_clients=n, seed=0, deadline_s=0.3, registration_timeout_s=5.0, min_quorum=2
        )

        async def scenario():
            server = RoundServer(cfg)
            port = await server.start()
            fleet = ClientFleet(values, seed=2, mutate=lambda cid, attempt, frame: None)
            task = asyncio.create_task(fleet.run(cfg.host, port))
            with pytest.raises(RoundFailedError, match="every client dropped"):
                await server.serve_round()
            result = await task
            await server.close()
            return result

        fleet_result = asyncio.run(scenario())
        assert fleet_result.aborted
        assert fleet_result.estimate is None
        assert fleet_result.uplinks_dropped == n

        with pytest.raises(RoundFailedError, match="every client dropped"):
            in_process_estimate(values, cfg, fleet_seed=2, corrupted=range(n))


class TestUplinkRejection:
    def test_adversarial_uplinks_are_rejected_with_accounting(self):
        registry = MetricsRegistry()
        memory = InMemoryExporter()
        with instrumented(Tracer([memory]), registry):
            served = asyncio.run(self._adversarial_scenario())

        assert served.surviving_clients == 1
        assert served.wire_rejects == 5
        assert served.late_reports == 1
        counters = registry.snapshot()["counters"]
        assert counters["wire_rejects_total"] == 5.0
        assert counters["serve_late_reports_total"] == 1.0
        reasons = sorted(
            r.attributes["reason"] for r in memory.records if r.name == "uplink.reject"
        )
        assert reasons == [
            "assignment-mismatch",
            "duplicate",
            "flag-mismatch",
            "spoofed-id",
            "unexpected-kind",
        ]
        assert any(r.name == "uplink.late" for r in memory.records)
        assert any(r.name == "uplink.drain" for r in memory.records)
        # Post-registration rejects and late reports are attributable: each
        # span names the offending connection's peer address and session id.
        attributed = [
            r for r in memory.records if r.name in ("uplink.reject", "uplink.late")
        ]
        assert attributed
        for record in attributed:
            assert record.attributes["peer"].startswith("127.0.0.1:")
            assert isinstance(record.attributes["session"], int)

    async def _adversarial_scenario(self):
        cfg = ServeConfig(n_clients=2, seed=6, deadline_s=0.5, registration_timeout_s=5.0)
        values = fleet_values(2, seed=0)
        server = RoundServer(cfg)
        port = await server.start()

        async def hello(client_id):
            reader, writer = await asyncio.open_connection(cfg.host, port)
            writer.write(
                encode_message(MSG_HELLO, json.dumps({"client_id": client_id}).encode())
            )
            await writer.drain()
            return reader, writer

        def frame_for(owner, announce, **overrides):
            encoded = cfg.encoder.encode(np.asarray([values[owner]]))
            bit_index = overrides.get("bit_index", int(announce["bit_index"]))
            bit = int((encoded[0] >> np.uint64(int(announce["bit_index"]))) & np.uint64(1))
            report = BitReport(
                client_id=overrides.get("client_id", owner),
                bit_index=bit_index,
                bit=bit,
            )
            return encode_report(report, overrides.get("rr", False))

        async def honest_but_duplicated():
            reader, writer = await hello(0)
            kind, seq, payload = await read_message(reader)
            assert kind == MSG_ANNOUNCE
            announce = json.loads(payload)
            frame = frame_for(0, announce)
            for _ in range(2):  # the second is a "duplicate" reject
                writer.write(encode_message(MSG_REPORTS, frame, seq=seq))
                await writer.drain()
            kind, _seq, _payload = await read_message(reader)
            writer.close()
            return kind

        async def adversary():
            reader, writer = await hello(1)
            kind, seq, payload = await read_message(reader)
            assert kind == MSG_ANNOUNCE
            announce = json.loads(payload)
            bad_uplinks = [
                # late: stale attempt number
                encode_message(MSG_REPORTS, frame_for(1, announce), seq=7),
                # spoofed-id: frame claims a different client
                encode_message(MSG_REPORTS, frame_for(1, announce, client_id=5), seq=seq),
                # assignment-mismatch: reports an unassigned bit
                encode_message(
                    MSG_REPORTS,
                    frame_for(
                        1, announce, bit_index=(int(announce["bit_index"]) + 1) % 10
                    ),
                    seq=seq,
                ),
                # flag-mismatch: RR flag on a non-LDP round
                encode_message(MSG_REPORTS, frame_for(1, announce, rr=True), seq=seq),
                # unexpected-kind: a client must never send RESULT
                encode_message(MSG_RESULT, b"{}", seq=seq),
            ]
            for message in bad_uplinks:
                writer.write(message)
                await writer.drain()
            kind, _seq, _payload = await read_message(reader)
            writer.close()
            return kind

        clients = asyncio.gather(honest_but_duplicated(), adversary())
        served = await server.serve_round()
        kinds = await clients
        await server.close()
        assert kinds == [MSG_RESULT, MSG_RESULT]
        return served

    def test_bad_hellos_rejected_before_registration(self):
        async def scenario():
            cfg = ServeConfig(
                n_clients=1, seed=0, deadline_s=5.0, registration_timeout_s=5.0
            )
            server = RoundServer(cfg)
            port = await server.start()
            bad_first_messages = [
                encode_message(MSG_RESULT, b"{}"),  # not a HELLO
                encode_message(MSG_HELLO, b"not json"),  # unparsable payload
                encode_message(MSG_HELLO, json.dumps({"client_id": 99}).encode()),
            ]
            writers = []
            for message in bad_first_messages:
                _reader, writer = await asyncio.open_connection(cfg.host, port)
                writer.write(message)
                await writer.drain()
                writers.append(writer)
            await asyncio.sleep(0.05)
            fleet = ClientFleet(fleet_values(1, seed=0), seed=0)
            task = asyncio.create_task(fleet.run(cfg.host, port))
            served = await server.serve_round()
            await task
            for writer in writers:
                writer.close()
            await server.close()
            return served

        served = asyncio.run(scenario())
        assert served.wire_rejects == 3
        assert served.surviving_clients == 1


def _undecodable(data: bytes) -> bytes:
    """Make arbitrary bytes guaranteed-invalid as a report frame."""
    if len(data) != REPORT_SIZE:
        return data  # wrong size is rejected before decoding
    return b"\x00" + data[1:]  # can never carry the frame magic


class TestFuzzedServedRound:
    @given(data=st.data())
    @settings(max_examples=6, deadline=None)
    def test_fuzzed_uplinks_never_break_the_round(self, data):
        n = 8
        corrupted = data.draw(
            st.sets(st.integers(min_value=0, max_value=n - 1), min_size=1, max_size=n - 1)
        )
        garbage = {
            cid: data.draw(st.binary(max_size=3 * REPORT_SIZE).map(_undecodable))
            for cid in sorted(corrupted)
        }
        values = fleet_values(n, seed=13)
        cfg = ServeConfig(n_clients=n, seed=21, deadline_s=0.4, registration_timeout_s=5.0)
        registry = MetricsRegistry()
        memory = InMemoryExporter()
        with instrumented(Tracer([memory]), registry):
            served, fleet = run_loopback(
                cfg,
                values,
                fleet_seed=13,
                mutate=lambda cid, attempt, frame: garbage.get(cid, frame),
            )
        twin = in_process_estimate(values, cfg, fleet_seed=13, corrupted=corrupted)

        assert served.estimate.value == twin.value
        assert served.surviving_clients == n - len(corrupted)
        assert served.wire_rejects == len(corrupted)
        counters = registry.snapshot()["counters"]
        assert counters["wire_rejects_total"] == float(len(corrupted))
        rejects = [r for r in memory.records if r.name == "uplink.reject"]
        assert len(rejects) == len(corrupted)
        assert {r.attributes["reason"] for r in rejects} <= {"frame", "frame-size"}
        assert fleet.uplinks_sent == n


async def _wait_for_port(port_file: Path, timeout_s: float = 10.0) -> int:
    """Poll a ``--port-file`` rendezvous path from inside an event loop."""
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout_s
    while loop.time() < deadline:
        if port_file.exists():
            text = port_file.read_text().strip()
            if text:
                return int(text)
        await asyncio.sleep(0.02)
    raise TimeoutError(f"no port appeared in {port_file}")  # pragma: no cover


async def _plain_client(host: str, port: int, client_id: int, value: float):
    """A span-free wire client for threaded CLI tests.

    The serve command installs a process-*global* tracer, so a background
    fleet thread must not emit spans of its own -- they would race the
    command's exporter teardown in a way two separate processes never do.
    """
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(encode_message(MSG_HELLO, json.dumps({"client_id": client_id}).encode()))
    await writer.drain()
    estimate = None
    try:
        while True:
            kind, seq, payload = await read_message(reader)
            if kind == MSG_RESULT:
                estimate = float(json.loads(payload)["estimate"])
                break
            if kind == MSG_ABORT:
                break
            if kind != MSG_ANNOUNCE:
                continue
            announce = json.loads(payload)
            encoder = FixedPointEncoder(
                n_bits=int(announce["n_bits"]),
                scale=float(announce["scale"]),
                offset=float(announce["offset"]),
            )
            encoded = encoder.encode(np.asarray([value]))
            bit_index = int(announce["bit_index"])
            bit = int((encoded[0] >> np.uint64(bit_index)) & np.uint64(1))
            frame = encode_report(BitReport(client_id=client_id, bit_index=bit_index, bit=bit))
            writer.write(encode_message(MSG_REPORTS, frame, seq=seq))
            await writer.drain()
    finally:
        writer.close()
    return estimate


class TestServeCli:
    def test_serve_command_records_standard_artifact(self, tmp_path):
        port_file = tmp_path / "port"
        record_dir = tmp_path / "run"
        trace_path = tmp_path / "trace.jsonl"
        values = fleet_values(5, 3)
        outcome = {}

        def fleet_thread():
            async def run():
                port = await _wait_for_port(port_file)
                return await asyncio.gather(
                    *(
                        _plain_client("127.0.0.1", port, i, float(v))
                        for i, v in enumerate(values)
                    )
                )

            outcome["estimates"] = asyncio.run(run())

        thread = threading.Thread(target=fleet_thread)
        thread.start()
        serve_out = io.StringIO()
        code = run_serve_command(
            clients=5,
            seed=3,
            deadline_s=10.0,
            registration_timeout_s=10.0,
            port_file=str(port_file),
            record_dir=str(record_dir),
            out_path=str(trace_path),
            as_json=True,
            stream=serve_out,
            error_stream=serve_out,
        )
        thread.join(timeout=30)
        assert not thread.is_alive()
        assert code == 0

        payload = json.loads(serve_out.getvalue())
        twin = in_process_estimate(
            values,
            ServeConfig(
                n_clients=5, seed=3, deadline_s=10.0, registration_timeout_s=10.0
            ),
        )
        assert payload["estimate"] == twin.value
        assert outcome["estimates"] == [twin.value] * 5

        # The artifact has the standard flight-recorder shape.
        artifact = load_run(record_dir)
        assert artifact.manifest["config"]["command"] == "serve"
        assert artifact.manifest["estimate"]["value"] == twin.value
        trace = trace_path.read_text()
        assert "serve.session" in trace and "serve.collect" in trace

    def test_fleet_command_against_a_plain_server(self, tmp_path):
        port_file = tmp_path / "port"
        cfg = ServeConfig(
            n_clients=4, seed=8, deadline_s=10.0, registration_timeout_s=10.0
        )
        outcome = {}

        def server_thread():
            async def run():
                server = RoundServer(cfg)
                port = await server.start()
                port_file.write_text(f"{port}\n")
                try:
                    return await server.serve_round()
                finally:
                    await server.close()

            outcome["served"] = asyncio.run(run())

        thread = threading.Thread(target=server_thread)
        thread.start()
        fleet_out = io.StringIO()
        code = run_fleet_command(
            clients=4,
            port_file=str(port_file),
            seed=6,
            as_json=True,
            stream=fleet_out,
            error_stream=fleet_out,
        )
        thread.join(timeout=30)
        assert not thread.is_alive()
        assert code == 0
        twin = in_process_estimate(fleet_values(4, 6), cfg, fleet_seed=6)
        assert json.loads(fleet_out.getvalue())["estimate"] == twin.value
        assert outcome["served"].estimate.value == twin.value

    def test_fleet_command_requires_a_port(self):
        err = io.StringIO()
        code = run_fleet_command(
            clients=2, port=None, port_file=None, stream=io.StringIO(), error_stream=err
        )
        assert code == 2
        assert "needs --port or --port-file" in err.getvalue()

    def test_serve_command_exit_1_on_quorum_failure(self, tmp_path):
        err = io.StringIO()
        outcome = {}
        port_file = tmp_path / "port"

        def serve():
            outcome["code"] = run_serve_command(
                clients=3,
                seed=0,
                deadline_s=0.3,
                registration_timeout_s=10.0,
                min_quorum=2,
                port_file=str(port_file),
                stream=io.StringIO(),
                error_stream=err,
            )

        thread = threading.Thread(target=serve)
        thread.start()
        values = fleet_values(3, 0)

        async def silent_fleet():
            fleet = ClientFleet(values, seed=0, mutate=lambda cid, attempt, frame: None)
            port = None
            while port is None:
                await asyncio.sleep(0.02)
                if port_file.exists() and port_file.read_text().strip():
                    port = int(port_file.read_text().strip())
            return await fleet.run("127.0.0.1", port)

        result = asyncio.run(silent_fleet())
        thread.join(timeout=30)
        assert outcome["code"] == 1
        assert "round failed" in err.getvalue()
        assert result.aborted

    def test_two_process_loopback_round(self, tmp_path):
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[1] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        port_file = tmp_path / "port"
        serve = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--clients", "4", "--seed", "5", "--deadline-s", "10",
                "--registration-timeout-s", "15",
                "--port-file", str(port_file), "--json",
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            fleet = subprocess.run(
                [
                    sys.executable, "-m", "repro.cli", "fleet",
                    "--clients", "4", "--seed", "2",
                    "--port-file", str(port_file), "--json",
                ],
                env=env,
                capture_output=True,
                text=True,
                timeout=60,
            )
            out, err = serve.communicate(timeout=60)
        finally:
            if serve.poll() is None:  # pragma: no cover - cleanup on failure
                serve.kill()
        assert serve.returncode == 0, err
        assert fleet.returncode == 0, fleet.stderr
        twin = in_process_estimate(
            fleet_values(4, 2),
            ServeConfig(n_clients=4, seed=5, deadline_s=10.0, registration_timeout_s=15.0),
            fleet_seed=2,
        )
        assert json.loads(out)["estimate"] == twin.value
        assert json.loads(fleet.stdout)["estimate"] == twin.value


class TestDistributedTracing:
    def test_loopback_telemetry_merges_fleet_spans_under_round_trace(self):
        n = 16
        values = fleet_values(n, seed=3)
        cfg = ServeConfig(n_clients=n, seed=11, deadline_s=10.0, registration_timeout_s=5.0)
        twin = in_process_estimate(values, cfg, fleet_seed=3)
        memory = InMemoryExporter()
        registry = MetricsRegistry()
        with instrumented(Tracer([memory]), registry):
            served, fleet = run_loopback(cfg, values, fleet_seed=3)

        # Telemetry never perturbs the estimate: still bit-identical.
        assert served.estimate.value == twin.value
        assert served.telemetry_clients == n
        assert fleet.telemetry_sent == n

        remote = [r for r in memory.records if r.attributes.get("remote")]
        assert served.remote_spans == len(remote) > 0
        # Every fleet client contributed spans, all under the round's trace id.
        assert {r.attributes["client"] for r in remote} == set(range(n))
        assert {r.attributes["trace_id"] for r in remote} == {round_trace_id(cfg.seed)}
        assert {r.name for r in remote} == {"fleet.round", "fleet.encode", "fleet.uplink"}
        # Remote roots are re-parented under the server's serve.round span.
        round_ids = {r.span_id for r in memory.records if r.name == "serve.round"}
        fleet_rounds = [r for r in remote if r.name == "fleet.round"]
        assert len(fleet_rounds) == n
        assert all(r.parent_id in round_ids for r in fleet_rounds)
        # Ingested spans carry connection attribution next to the client id.
        assert all(r.attributes["peer"].startswith("127.0.0.1:") for r in remote)

        # The round span carries straggler stats derived from uplink arrivals.
        (round_span,) = [r for r in memory.records if r.name == "serve.round"]
        assert round_span.attributes["uplink_median_s"] >= 0.0
        assert (
            round_span.attributes["uplink_slow_decile_s"]
            >= round_span.attributes["uplink_median_s"]
        )

        # Fleet-side counters merged into the server's registry.
        counters = registry.snapshot()["counters"]
        assert counters["fleet_uplinks_sent_total"] == float(n)
        assert counters["serve_telemetry_clients_total"] == float(n)
        assert counters["serve_telemetry_spans_total"] == float(len(remote))
        assert "telemetry_rejects_total" not in counters

    def test_telemetry_disabled_config_runs_untraced(self):
        n = 6
        values = fleet_values(n, seed=4)
        cfg = ServeConfig(
            n_clients=n,
            seed=5,
            deadline_s=10.0,
            registration_timeout_s=5.0,
            telemetry=False,
        )
        twin = in_process_estimate(values, cfg, fleet_seed=4)
        memory = InMemoryExporter()
        with instrumented(Tracer([memory]), MetricsRegistry()):
            served, fleet = run_loopback(cfg, values, fleet_seed=4)
        assert served.estimate.value == twin.value
        assert served.telemetry_clients == 0
        assert served.remote_spans == 0
        assert fleet.telemetry_sent == 0
        assert not [r for r in memory.records if r.attributes.get("remote")]

    def test_clock_skew_alignment_pins_known_offset(self):
        cfg = ServeConfig(n_clients=1, seed=2)
        server = RoundServer(cfg)
        memory = InMemoryExporter()
        tracer = Tracer([memory], wall_clock=lambda: 1000.0)
        with instrumented(tracer, MetricsRegistry()):
            # HELLO anchor: client clock read 400 when the server read 1000,
            # so every remote timestamp shifts forward by exactly 600.
            server._clock_offsets[0] = tracer.wall_time() - 400.0
            server._attempt_spans[1] = 77
            payload = encode_telemetry(
                0,
                [
                    {
                        "name": "fleet.round",
                        "span_id": 1,
                        "parent_id": None,
                        "start_time_s": 5.5,
                        "duration_s": 0.25,
                        "status": "ok",
                        "attributes": {"attempt": 1},
                    },
                    {
                        "name": "fleet.uplink",
                        "span_id": 2,
                        "parent_id": 1,
                        "start_time_s": 6.5,
                        "duration_s": 0.125,
                        "status": "ok",
                        "attributes": {},
                    },
                ],
            )
            server._ingest_telemetry(0, payload)

        spans = {r.name: r for r in memory.records}
        assert spans["fleet.round"].start_time_s == 605.5
        assert spans["fleet.uplink"].start_time_s == 606.5
        assert spans["fleet.round"].duration_s == 0.25
        assert spans["fleet.round"].parent_id == 77
        assert spans["fleet.uplink"].parent_id == spans["fleet.round"].span_id
        assert spans["fleet.round"].attributes["remote"] is True
        assert server._remote_spans == 2

    def test_unanchored_client_ingests_with_zero_offset(self):
        cfg = ServeConfig(n_clients=1, seed=2)
        server = RoundServer(cfg)
        memory = InMemoryExporter()
        with instrumented(Tracer([memory]), MetricsRegistry()):
            payload = encode_telemetry(
                3,
                [
                    {
                        "name": "fleet.round",
                        "span_id": 9,
                        "parent_id": None,
                        "start_time_s": 12.0,
                        "duration_s": 1.0,
                        "status": "ok",
                        "attributes": {},
                    }
                ],
            )
            server._ingest_telemetry(3, payload)
        (record,) = memory.records
        assert record.start_time_s == 12.0

    def test_corrupt_telemetry_is_rejected_never_ingested(self):
        cfg = ServeConfig(n_clients=2, seed=2)
        server = RoundServer(cfg)
        memory = InMemoryExporter()
        registry = MetricsRegistry()
        with instrumented(Tracer([memory]), registry):
            server._ingest_telemetry(0, b"\xffnot json")  # undecodable
            server._ingest_telemetry(
                1, encode_telemetry(5, [])  # claims a different client id
            )
        assert server._telemetry_clients == 0
        assert server._remote_spans == 0
        rejects = [r for r in memory.records if r.name == "telemetry.reject"]
        assert len(rejects) == 2
        assert registry.snapshot()["counters"]["telemetry_rejects_total"] == 2.0
        assert "claims client 5" in rejects[1].attributes["detail"]

    def test_plain_fleet_without_telemetry_support_still_completes(self):
        # A pre-tracing client never sends TELEMETRY: the drain gives up as
        # soon as the connections close instead of burning the full timeout.
        cfg = ServeConfig(
            n_clients=2, seed=7, deadline_s=5.0, registration_timeout_s=5.0
        )
        values = fleet_values(2, seed=1)

        async def scenario():
            server = RoundServer(cfg)
            port = await server.start()
            clients = asyncio.gather(
                *(
                    _plain_client(cfg.host, port, i, float(v))
                    for i, v in enumerate(values)
                )
            )
            served = await server.serve_round()
            estimates = await clients
            await server.close()
            return served, estimates

        memory = InMemoryExporter()
        with instrumented(Tracer([memory]), MetricsRegistry()):
            served, estimates = asyncio.run(scenario())
        twin = in_process_estimate(values, cfg)
        assert served.estimate.value == twin.value
        assert estimates == [twin.value] * 2
        assert served.telemetry_clients == 0
        assert served.remote_spans == 0


class TestFleetRendezvousTimeout:
    def test_missing_port_file_exits_2_with_one_line_error(self, tmp_path):
        err = io.StringIO()
        code = run_fleet_command(
            clients=2,
            port_file=str(tmp_path / "never-written"),
            rendezvous_timeout_s=0.2,
            stream=io.StringIO(),
            error_stream=err,
        )
        assert code == 2
        lines = [line for line in err.getvalue().splitlines() if line]
        assert len(lines) == 1
        assert lines[0].startswith("error: no port appeared in")
        assert "0.2s" in lines[0]

    def test_cli_flag_reaches_the_rendezvous(self, tmp_path, capsys):
        from repro.cli import main

        code = main(
            [
                "fleet",
                "--clients",
                "2",
                "--port-file",
                str(tmp_path / "absent"),
                "--rendezvous-timeout",
                "0.2",
            ]
        )
        assert code == 2
        assert "no port appeared" in capsys.readouterr().err


class TestConfigSurface:
    def test_emulation_profile_parse(self):
        profile = EmulationProfile.parse("loss=0.2,latency=45,sigma=0.5,scale=0.001")
        assert profile.loss_rate == 0.2
        assert profile.latency_median_s == 45.0
        assert profile.latency_sigma == 0.5
        assert profile.time_scale == 0.001
        with pytest.raises(ConfigurationError, match="bad emulation spec"):
            EmulationProfile.parse("bogus=1")
        with pytest.raises(ConfigurationError, match="not a number"):
            EmulationProfile.parse("loss=abc")
        with pytest.raises(ConfigurationError):
            EmulationProfile(loss_rate=1.5)

    def test_serve_config_validation(self):
        with pytest.raises(ConfigurationError):
            ServeConfig(n_clients=0)
        with pytest.raises(ConfigurationError):
            ServeConfig(n_clients=1, deadline_s=0.0)
        with pytest.raises(ConfigurationError):
            ServeConfig(n_clients=1, epsilon=-1.0)
        with pytest.raises(ConfigurationError):
            ServeConfig(n_clients=1, min_quorum=0)

    def test_fleet_values_deterministic(self):
        assert np.array_equal(fleet_values(16, 7), fleet_values(16, 7))
        assert not np.array_equal(fleet_values(16, 7), fleet_values(16, 8))
        assert fleet_values(16, 7).min() >= 0.0
        with pytest.raises(ConfigurationError):
            fleet_values(0)
