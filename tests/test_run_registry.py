"""Run registry + ``repro.cli runs`` + report error handling (PR 6).

Covers the cross-run analytics surface: indexing a tree of recorded
artifacts (corrupt manifests flagged, not fatal), comparing two runs
(phase percentiles, counters, estimate error, alerts) in Markdown and
JSON, the bench-check-style regression gate, and the ``report`` command's
one-line non-zero exits on missing/corrupt manifests.
"""

from __future__ import annotations

import io
import json

import pytest

from repro.cli import main, run_report_command, run_traced_round
from repro.observability import (
    check_comparison,
    compare_runs,
    render_compare_markdown,
    render_list_markdown,
    scan_runs,
)
from repro.observability.recorder import MANIFEST_FILENAME


def _record(tmp_path, name, seed=7, **kwargs):
    record_dir = tmp_path / name
    defaults = dict(
        target="3a",
        quick=True,
        seed=seed,
        sim_clock=True,
        record_dir=str(record_dir),
        stream=io.StringIO(),
    )
    defaults.update(kwargs)
    run_traced_round(**defaults)
    return record_dir


@pytest.fixture(scope="module")
def recorded_pair(tmp_path_factory):
    root = tmp_path_factory.mktemp("runs")
    baseline = _record(root, "baseline", seed=7)
    candidate = _record(root, "candidate", seed=8)
    return root, baseline, candidate


class TestScanRuns:
    def test_indexes_every_artifact(self, recorded_pair):
        root, baseline, candidate = recorded_pair
        entries = scan_runs(root)
        assert [e.directory for e in entries] == [baseline, candidate]
        assert all(e.ok for e in entries)
        by_label = {e.label: e for e in entries}
        assert by_label["baseline"].seed == 7
        assert by_label["candidate"].seed == 8
        assert by_label["baseline"].rounds == 2
        assert by_label["baseline"].estimate is not None

    def test_corrupt_manifest_is_flagged_not_fatal(self, tmp_path):
        good = _record(tmp_path, "good")
        bad = tmp_path / "bad"
        bad.mkdir()
        (bad / MANIFEST_FILENAME).write_text("{not json")
        entries = scan_runs(tmp_path)
        assert len(entries) == 2
        statuses = {e.directory.name: e.ok for e in entries}
        assert statuses == {"good": True, "bad": False}
        bad_entry = next(e for e in entries if not e.ok)
        assert "JSONDecodeError" in bad_entry.error
        markdown = render_list_markdown(entries, tmp_path)
        assert "## Unreadable artifacts" in markdown
        assert str(good) in markdown

    def test_missing_root_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            scan_runs(tmp_path / "nope")


class TestCompareRuns:
    def test_comparison_covers_every_delta_family(self, recorded_pair):
        _, baseline, candidate = recorded_pair
        comparison = compare_runs(baseline, candidate)
        assert comparison["baseline"]["seed"] == 7
        assert comparison["candidate"]["seed"] == 8
        phase_names = {p["name"] for p in comparison["phases"]}
        assert "federated.round" in phase_names
        for phase in comparison["phases"]:
            assert phase["p95_ratio"] is None or phase["p95_ratio"] > 0
        counters = comparison["counters"]
        assert counters["rounds_total"]["delta"] == 0.0
        estimate = comparison["estimate"]
        assert estimate["baseline_value"] is not None
        assert estimate["error_ratio"] is None or estimate["error_ratio"] > 0
        for side in ("baseline", "candidate"):
            rollup = comparison["alerts"][side]
            assert set(rollup) == {
                "fired_total",
                "resolved_total",
                "active",
                "by_rule",
                "by_severity",
            }

    def test_same_run_compares_clean(self, recorded_pair):
        _, baseline, _ = recorded_pair
        comparison = compare_runs(baseline, baseline)
        ok, messages = check_comparison(comparison)
        assert ok
        assert messages == ["no regressions detected"]
        for phase in comparison["phases"]:
            assert phase["p95_ratio"] == pytest.approx(1.0)

    def test_markdown_sections(self, recorded_pair):
        _, baseline, candidate = recorded_pair
        markdown = render_compare_markdown(compare_runs(baseline, candidate))
        for needle in (
            "# Run comparison: baseline -> candidate",
            "## Phase percentiles",
            "p95 ratio",
            "## Estimate",
            "observed error",
            "## Counters",
            "rounds_total",
            "## Alerts",
            "by severity",
        ):
            assert needle in markdown, f"compare markdown is missing {needle!r}"


class TestCheckComparison:
    def _doctored(self, comparison, **patches):
        doctored = json.loads(json.dumps(comparison))
        doctored.update(patches)
        return doctored

    def test_phase_regression_fails(self, recorded_pair):
        _, baseline, _ = recorded_pair
        comparison = compare_runs(baseline, baseline)
        phase = comparison["phases"][0]
        phase["candidate_p95_s"] = phase["baseline_p95_s"] * 3.0
        phase["p95_ratio"] = 3.0
        ok, messages = check_comparison(comparison)
        assert not ok
        assert any("REGRESSION" in m and phase["name"] in m for m in messages)

    def test_critical_alert_regression_fails(self, recorded_pair):
        _, baseline, _ = recorded_pair
        comparison = compare_runs(baseline, baseline)
        comparison["alerts"]["candidate"]["by_severity"] = {"critical": 1}
        ok, messages = check_comparison(comparison)
        assert not ok
        assert any("critical alert" in m for m in messages)

    def test_error_blowup_fails_and_improvement_passes(self, recorded_pair):
        _, baseline, _ = recorded_pair
        comparison = compare_runs(baseline, baseline)
        comparison["estimate"]["error_ratio"] = 2.0
        ok, messages = check_comparison(comparison)
        assert not ok
        assert any("estimate error" in m for m in messages)
        comparison["estimate"]["error_ratio"] = 0.5
        ok, _ = check_comparison(comparison)
        assert ok

    def test_tolerance_validation(self, recorded_pair):
        _, baseline, _ = recorded_pair
        comparison = compare_runs(baseline, baseline)
        with pytest.raises(ValueError):
            check_comparison(comparison, tolerance=1.0)


class TestRunsCli:
    def test_list_and_json(self, recorded_pair, capsys):
        root, _, _ = recorded_pair
        assert main(["runs", "list", str(root)]) == 0
        out = capsys.readouterr().out
        assert "# Recorded runs under" in out
        assert "baseline" in out and "candidate" in out
        assert main(["runs", "list", str(root), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload) == 2
        assert {e["label"] for e in payload} == {"baseline", "candidate"}

    def test_compare_and_json(self, recorded_pair, capsys):
        _, baseline, candidate = recorded_pair
        assert main(["runs", "compare", str(baseline), str(candidate)]) == 0
        assert "## Phase percentiles" in capsys.readouterr().out
        assert main(["runs", "compare", str(baseline), str(candidate), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) >= {"baseline", "candidate", "phases", "counters", "estimate", "alerts"}

    def test_check_exit_codes(self, recorded_pair, capsys):
        _, baseline, candidate = recorded_pair
        assert main(["runs", "check", str(baseline), str(baseline)]) == 0
        assert "no regressions detected" in capsys.readouterr().out
        # A huge tolerance can never fail a self-comparison; a missing dir must.
        assert main(["runs", "check", str(baseline), str(candidate), "--tolerance", "50"]) == 0
        capsys.readouterr()

    def test_missing_directory_is_a_one_line_error(self, recorded_pair, tmp_path, capsys):
        _, baseline, _ = recorded_pair
        assert main(["runs", "compare", str(baseline), str(tmp_path / "nope")]) == 2
        captured = capsys.readouterr()
        assert captured.out == ""
        assert captured.err.startswith("error:")
        assert len(captured.err.strip().splitlines()) == 1


class TestReportErrorHandling:
    def test_missing_manifest_one_line_exit_2(self, tmp_path, capsys):
        assert main(["report", str(tmp_path / "nope")]) == 2
        captured = capsys.readouterr()
        assert captured.out == ""
        assert captured.err.startswith("error:")
        assert "Traceback" not in captured.err
        assert len(captured.err.strip().splitlines()) == 1

    def test_corrupt_manifest_one_line_exit_2(self, tmp_path, capsys):
        run_dir = tmp_path / "run"
        run_dir.mkdir()
        (run_dir / MANIFEST_FILENAME).write_text("{definitely not json")
        assert main(["report", str(run_dir)]) == 2
        captured = capsys.readouterr()
        assert captured.out == ""
        assert captured.err.startswith("error:")
        assert "Traceback" not in captured.err

    def test_error_stream_is_injectable(self, tmp_path):
        err = io.StringIO()
        assert run_report_command(str(tmp_path / "nope"), error_stream=err) == 2
        assert err.getvalue().startswith("error:")
