"""Result dataclasses: validation and accessors."""

import numpy as np
import pytest

from repro.core.results import MeanEstimate, RoundSummary


def _round_summary(n_bits=4, n_clients=100):
    return RoundSummary(
        probabilities=np.full(n_bits, 1.0 / n_bits),
        counts=np.full(n_bits, n_clients // n_bits, dtype=np.int64),
        sums=np.zeros(n_bits),
        bit_means=np.zeros(n_bits),
        n_clients=n_clients,
    )


class TestRoundSummary:
    def test_accessors(self):
        summary = _round_summary()
        assert summary.n_bits == 4
        assert summary.total_reports == 100

    def test_inconsistent_lengths_raise(self):
        with pytest.raises(ValueError):
            RoundSummary(
                probabilities=np.zeros(4),
                counts=np.zeros(3, dtype=np.int64),
                sums=np.zeros(4),
                bit_means=np.zeros(4),
                n_clients=10,
            )


class TestMeanEstimate:
    def _estimate(self, bit_means, counts=None, n_bits=None):
        n_bits = n_bits or len(bit_means)
        counts = counts if counts is not None else np.full(n_bits, 10, dtype=np.int64)
        return MeanEstimate(
            value=1.0,
            encoded_value=1.0,
            bit_means=np.asarray(bit_means, dtype=float),
            counts=counts,
            n_clients=int(counts.sum()),
            n_bits=n_bits,
            method="test",
        )

    def test_wrong_length_raises(self):
        with pytest.raises(ValueError):
            self._estimate([0.5, 0.5], n_bits=3)

    def test_total_reports(self):
        est = self._estimate([0.5, 0.5], counts=np.array([7, 3], dtype=np.int64))
        assert est.total_reports == 10

    def test_highest_occupied_bit(self):
        assert self._estimate([0.5, 0.0, 0.2, 0.0]).highest_occupied_bit == 2

    def test_highest_occupied_bit_empty(self):
        assert self._estimate([0.0, 0.0]).highest_occupied_bit == -1

    def test_float_conversion(self):
        assert float(self._estimate([0.5])) == 1.0
