"""Workload generators: synthetic, census, telemetry."""

import numpy as np
import pytest

from repro.data import (
    AGE_BRACKETS,
    METRIC_CATALOG,
    bimodal,
    binary_with_outliers,
    constant,
    drifting_latency,
    exponential,
    lognormal,
    normal,
    pareto_latency,
    population_age_stats,
    sample_ages,
    uniform,
    zipf,
)
from repro.exceptions import DataGenerationError


class TestSynthetic:
    def test_normal_moments(self, rng):
        values = normal(200_000, 1000.0, 50.0, rng)
        assert values.mean() == pytest.approx(1000.0, rel=0.01)
        assert values.std() == pytest.approx(50.0, rel=0.05)

    def test_normal_clipping(self, rng):
        values = normal(10_000, 10.0, 100.0, rng)
        assert values.min() >= 0.0

    def test_normal_unclipped(self, rng):
        values = normal(10_000, 0.0, 100.0, rng, clip_negative=False)
        assert values.min() < 0.0

    def test_uniform_range(self, rng):
        values = uniform(10_000, 5.0, 10.0, rng)
        assert values.min() >= 5.0 and values.max() < 10.0

    def test_exponential_mean(self, rng):
        assert exponential(200_000, 7.0, rng).mean() == pytest.approx(7.0, rel=0.02)

    def test_lognormal_heavy_tail(self, rng):
        values = lognormal(100_000, 0.0, 2.0, rng)
        assert values.max() / np.median(values) > 100

    def test_constant(self):
        values = constant(100, 3.5)
        assert (values == 3.5).all()

    def test_zipf_heavy_tail(self, rng):
        values = zipf(200_000, exponent=2.0, rng=rng)
        assert np.median(values) == 1.0
        assert values.max() > 1_000

    def test_zipf_cap_winsorizes(self, rng):
        values = zipf(50_000, exponent=2.0, cap=255.0, rng=rng)
        assert values.max() <= 255.0
        assert values.min() >= 1.0

    def test_zipf_validation(self):
        with pytest.raises(DataGenerationError):
            zipf(100, exponent=1.0)
        with pytest.raises(DataGenerationError):
            zipf(100, cap=0.0)

    def test_bimodal_modes(self, rng):
        values = bimodal(100_000, 10.0, 100.0, 0.5, 1.0, rng)
        assert values.mean() == pytest.approx(55.0, rel=0.05)

    def test_validation(self):
        with pytest.raises(DataGenerationError):
            normal(0, 1.0, 1.0)
        with pytest.raises(DataGenerationError):
            normal(10, 1.0, 0.0)
        with pytest.raises(DataGenerationError):
            uniform(10, 5.0, 5.0)
        with pytest.raises(DataGenerationError):
            exponential(10, -1.0)
        with pytest.raises(DataGenerationError):
            lognormal(10, 0.0, 0.0)
        with pytest.raises(DataGenerationError):
            bimodal(10, 0.0, 1.0, 2.0, 1.0)


class TestCensus:
    def test_age_range(self):
        ages = sample_ages(50_000, rng=0)
        assert ages.min() >= 0 and ages.max() <= 94

    def test_ages_are_integers(self):
        ages = sample_ages(1_000, rng=1)
        np.testing.assert_array_equal(ages, np.round(ages))

    def test_sample_moments_match_population(self):
        ages = sample_ages(500_000, rng=2)
        mean, var = population_age_stats()
        assert ages.mean() == pytest.approx(mean, rel=0.01)
        assert ages.var() == pytest.approx(var, rel=0.02)

    def test_population_stats_plausible(self):
        mean, var = population_age_stats()
        assert 30.0 < mean < 40.0
        assert 400.0 < var < 650.0

    def test_brackets_cover_0_to_94(self):
        lows = [lo for lo, _, _ in AGE_BRACKETS]
        highs = [hi for _, hi, _ in AGE_BRACKETS]
        assert lows[0] == 0 and highs[-1] == 94
        for (lo, hi), nxt in zip(zip(lows, highs), lows[1:]):
            assert nxt == hi + 1

    def test_deterministic(self):
        np.testing.assert_array_equal(sample_ages(100, rng=7), sample_ages(100, rng=7))

    def test_invalid_n(self):
        with pytest.raises(DataGenerationError):
            sample_ages(0)


class TestTelemetry:
    def test_binary_with_outliers_shape(self, rng):
        values = binary_with_outliers(100_000, p_one=0.3, outlier_rate=1e-3, rng=rng)
        core = values[values <= 1.0]
        assert core.size > 99_000
        assert values.max() > 1_000

    def test_no_outliers_option(self, rng):
        values = binary_with_outliers(10_000, p_one=0.5, outlier_rate=0.0, rng=rng)
        assert set(np.unique(values)) <= {0.0, 1.0}

    def test_outliers_destabilize_mean_but_clipping_fixes_it(self, rng):
        """The deployment story: winsorization restores a stable statistic."""
        values = binary_with_outliers(
            50_000, p_one=0.3, outlier_rate=1e-3, outlier_magnitude=1e6, rng=rng
        )
        raw_mean = values.mean()
        clipped_mean = np.clip(values, 0, 255).mean()
        assert raw_mean > 10 * clipped_mean

    def test_pareto_latency_median(self, rng):
        values = pareto_latency(200_000, median_ms=120.0, tail_index=1.8, rng=rng)
        assert np.median(values) == pytest.approx(120.0, rel=0.02)

    def test_pareto_requires_finite_mean(self):
        with pytest.raises(DataGenerationError):
            pareto_latency(10, tail_index=1.0)

    def test_drifting_latency_shift(self, rng):
        before = drifting_latency(10_000, 5, shift_round=6, shift_factor=8.0, rng=rng)
        after = drifting_latency(10_000, 6, shift_round=6, shift_factor=8.0, rng=rng)
        assert after.mean() > 6 * before.mean()

    def test_drift_compounds(self, rng):
        flat = drifting_latency(10_000, 10, drift_per_round=0.0, rng=rng)
        drifted = drifting_latency(10_000, 10, drift_per_round=0.05, rng=rng)
        assert drifted.mean() > 1.3 * flat.mean()

    def test_metric_catalog_samples(self, rng):
        for spec in METRIC_CATALOG:
            values = spec.sample(100, rng)
            assert values.shape == (100,)
            assert spec.recommended_bits >= 1

    def test_unknown_metric_rejected(self, rng):
        from repro.data.telemetry import MetricSpec

        with pytest.raises(DataGenerationError):
            MetricSpec("bogus", "", 8).sample(10, rng)

    def test_validation(self):
        with pytest.raises(DataGenerationError):
            binary_with_outliers(0)
        with pytest.raises(DataGenerationError):
            binary_with_outliers(10, p_one=1.5)
        with pytest.raises(DataGenerationError):
            drifting_latency(10, -1)
