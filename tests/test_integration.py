"""Cross-module integration: the full pipeline, end to end."""

import numpy as np
import pytest

from repro import (
    AdaptiveBitPushing,
    BasicBitPushing,
    FixedPointEncoder,
    HighBitMonitor,
    RandomizedResponse,
    VarianceEstimator,
)
from repro.data.census import population_age_stats, sample_ages
from repro.data.telemetry import binary_with_outliers
from repro.federated import (
    ClientDevice,
    CohortSelector,
    DropoutModel,
    FederatedMeanQuery,
    NetworkModel,
    attribute_equals,
    ground_truth_mean,
)
from repro.privacy import BitMeter


class TestCensusPipeline:
    def test_mean_and_variance_from_one_bit_reports(self):
        """The paper's census experiment: mean and variance of ages, <1% /
        <10% error at n = 100k, one bit per participating client."""
        rng = np.random.default_rng(70)
        ages = sample_ages(100_000, rng)
        encoder = FixedPointEncoder.for_integers(10)

        mean_est = AdaptiveBitPushing(encoder).estimate(ages, rng)
        assert abs(mean_est.value - ages.mean()) / ages.mean() < 0.01

        var_est = VarianceEstimator(encoder, method="centered").estimate(ages, rng)
        assert abs(var_est.value - ages.var()) / ages.var() < 0.15

    def test_ldp_census_mean_still_usable(self):
        rng = np.random.default_rng(71)
        ages = sample_ages(100_000, rng)
        encoder = FixedPointEncoder.for_integers(8)
        est = BasicBitPushing(encoder, perturbation=RandomizedResponse(epsilon=2.0))
        result = est.estimate(ages, rng)
        assert abs(result.value - ages.mean()) / ages.mean() < 0.15

    def test_population_stats_agree_with_sampler(self):
        mean, var = population_age_stats()
        ages = sample_ages(300_000, rng=72)
        assert ages.mean() == pytest.approx(mean, rel=0.01)
        assert ages.var() == pytest.approx(var, rel=0.03)


class TestTelemetryPipeline:
    def test_clipping_stabilizes_outlier_metric(self):
        """Deployment finding: clip to b bits and the estimate tracks the
        clipped ground truth even with extreme outliers present."""
        rng = np.random.default_rng(73)
        values = binary_with_outliers(
            50_000, p_one=0.3, outlier_rate=1e-3, outlier_magnitude=1e6, rng=rng
        )
        encoder = FixedPointEncoder.for_integers(8)   # winsorize at 255
        clipped_truth = np.clip(values, 0, 255).mean()
        result = AdaptiveBitPushing(encoder).estimate(values, rng)
        assert result.value == pytest.approx(clipped_truth, rel=0.1)

    def test_monitor_plus_estimator_detect_shift(self):
        rng = np.random.default_rng(74)
        encoder = FixedPointEncoder.for_integers(12)
        est = BasicBitPushing(encoder)
        monitor = HighBitMonitor(noise_floor=0.005, shift_threshold=2, window=3)
        fired = []
        for round_index in range(8):
            scale = 60.0 if round_index < 5 else 700.0
            values = np.clip(rng.normal(scale, scale / 5, 5_000), 0, None)
            alert = monitor.update(est.estimate(values, rng).bit_means)
            if alert:
                fired.append(round_index)
        assert fired and fired[0] == 5


class TestFederatedEndToEnd:
    def test_geo_cohort_query_with_everything_enabled(self):
        """Cohort filter + dropout + lossy network + LDP + metering +
        dropout-aware schedule floor, in one query."""
        rng = np.random.default_rng(75)
        population = [
            ClientDevice(
                i,
                np.clip(rng.normal(150.0, 30.0, rng.integers(1, 4)), 0, None),
                {"geo": "us" if i % 3 else "eu"},
            )
            for i in range(3_000)
        ]
        meter = BitMeter(max_bits_per_value=1)
        query = FederatedMeanQuery(
            FixedPointEncoder.for_integers(8),
            mode="adaptive",
            perturbation=RandomizedResponse(epsilon=4.0),
            squash_multiple=2.0,
            dropout=DropoutModel(0.15),
            network=NetworkModel(loss_rate=0.05, deadline_s=900.0),
            selector=CohortSelector(min_cohort_size=500),
            meter=meter,
            min_reports_per_bit=10,
            metric_name="latency",
        )
        us_clients = [c for c in population if c.attributes["geo"] == "us"]
        truth = ground_truth_mean([c.values for c in us_clients])
        est = query.run(population, rng=rng, eligibility=attribute_equals("geo", "us"))
        assert est.value == pytest.approx(truth, rel=0.25)
        assert meter.total_bits <= len(us_clients)
        assert est.metadata["ldp"] is True

    def test_repeat_queries_on_different_metrics_respect_meter(self):
        rng = np.random.default_rng(76)
        population = [
            ClientDevice(i, np.clip(rng.normal(100, 20, 1), 0, None)) for i in range(800)
        ]
        meter = BitMeter(max_bits_per_value=1, max_bits_per_client=2)
        encoder = FixedPointEncoder.for_integers(8)
        for metric in ("latency", "memory"):
            FederatedMeanQuery(
                encoder, mode="basic", meter=meter, metric_name=metric
            ).run(population, rng=rng)
        assert all(meter.bits_disclosed_by(c.client_id) <= 2 for c in population)

    def test_feature_normalization_scenario(self):
        """Section 3.4 motivation: mean + variance enable feature scaling."""
        rng = np.random.default_rng(77)
        feature = np.clip(rng.normal(400.0, 80.0, 100_000), 0, None)
        encoder = FixedPointEncoder.for_integers(10)
        var_result = VarianceEstimator(encoder, method="centered").estimate(feature, rng)
        mean_hat, var_hat = var_result.mean.value, var_result.value
        normalized = (feature - mean_hat) / np.sqrt(var_hat)
        assert abs(normalized.mean()) < 0.1
        assert normalized.std() == pytest.approx(1.0, rel=0.1)
