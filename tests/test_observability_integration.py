"""End-to-end observability: traced rounds, reconciliation, zero overhead.

The contract under test: with instrumentation installed, a federated round
produces the documented span tree and metric counters that reconcile
exactly with its :class:`RoundOutcome`; with instrumentation disabled (the
default), results are bit-identical to an uninstrumented run because the
no-op tracer never touches the RNG stream.
"""

import json

import numpy as np
import pytest

from repro.cli import run_traced_round
from repro.core import AdaptiveBitPushing
from repro.exceptions import PrivacyBudgetExceeded
from repro.federated import (
    ClientDevice,
    DropoutModel,
    FederatedMeanQuery,
    NetworkModel,
)
from repro.observability import InMemoryExporter, MetricsRegistry, Tracer, instrumented
from repro.privacy import BitMeter, PrivacyAccountant


def _population(n, seed=0):
    rng = np.random.default_rng(seed)
    return [
        ClientDevice(i, np.clip(rng.normal(200.0, 40.0, rng.integers(1, 4)), 0.0, None))
        for i in range(n)
    ]


def _traced_run(query, population, seed=0):
    exporter = InMemoryExporter()
    registry = MetricsRegistry()
    with instrumented(Tracer([exporter]), registry):
        estimate = query.run(population, rng=seed)
    return estimate, exporter, registry


class TestTracedFederatedRound:
    def test_span_tree_covers_the_pipeline(self, encoder10):
        query = FederatedMeanQuery(
            encoder10,
            mode="adaptive",
            dropout=DropoutModel(rate=0.1),
            network=NetworkModel(loss_rate=0.05, deadline_s=600.0),
        )
        estimate, exporter, _ = _traced_run(query, _population(600))

        names = set(exporter.names())
        assert {
            "federated.query",
            "federated.cohort_select",
            "federated.round",
            "round.assign",
            "round.dropout",
            "network.transmit",
            "round.elicit",
            "round.collect",
            "federated.reconstruct",
        } <= names

        (root,) = exporter.roots()
        assert root.name == "federated.query"
        top_level = exporter.children_of(root.span_id)
        assert [r.name for r in top_level] == [
            "federated.cohort_select",
            "federated.round",
            "federated.round",
            "federated.reconstruct",
        ]
        for round_record in exporter.find("federated.round"):
            child_names = [r.name for r in exporter.children_of(round_record.span_id)]
            assert child_names == [
                "round.assign",
                "round.dropout",
                "network.transmit",
                "round.elicit",
                "round.collect",
            ]
        round1, round2 = exporter.find("federated.round")
        assert round1.attributes["round_index"] == 1
        assert round2.attributes["round_index"] == 2

    def test_counters_reconcile_with_round_outcomes(self, encoder10):
        query = FederatedMeanQuery(
            encoder10,
            mode="adaptive",
            dropout=DropoutModel(rate=0.15),
            network=NetworkModel(loss_rate=0.1, deadline_s=600.0),
        )
        estimate, exporter, registry = _traced_run(query, _population(800))
        counters = registry.snapshot()["counters"]

        planned = counters["round_reports_planned_total"]
        delivered = counters["round_reports_delivered_total"]
        lost = counters["round_reports_lost_total"]
        assert planned == delivered + lost
        assert planned == sum(estimate.metadata["planned_clients"])
        assert delivered == sum(estimate.metadata["surviving_clients"])
        assert delivered == sum(r.n_clients for r in estimate.rounds)
        assert counters["rounds_total"] == len(estimate.rounds) == 2

        # Span attributes carry the same numbers.
        spans = exporter.find("federated.round")
        assert sum(s.attributes["planned_clients"] for s in spans) == planned
        assert sum(s.attributes["surviving_clients"] for s in spans) == delivered

    def test_secure_aggregation_span_and_counters(self, encoder8):
        query = FederatedMeanQuery(
            encoder8, mode="basic", secure_aggregation=True, shard_size=16
        )
        estimate, exporter, registry = _traced_run(query, _population(64))
        assert exporter.find("round.secure_agg")
        assert exporter.find("secure_agg.finalize")
        counters = registry.snapshot()["counters"]
        assert counters["secure_agg_sessions_total"] == 4
        assert counters["secure_agg_dropouts_total"] == 0

    def test_bit_index_distribution_counts_every_delivered_report(self, encoder8):
        query = FederatedMeanQuery(encoder8, mode="basic")
        estimate, _, registry = _traced_run(query, _population(300))
        hist = registry.snapshot()["histograms"]["bit_index_distribution"]
        assert sum(hist["counts"]) == sum(estimate.metadata["surviving_clients"])


class TestDisabledInstrumentationIsInert:
    def test_results_bit_identical_with_and_without_tracing(self, encoder10):
        population = _population(500, seed=3)
        query = FederatedMeanQuery(
            encoder10,
            mode="adaptive",
            dropout=DropoutModel(rate=0.1),
            network=NetworkModel(loss_rate=0.05),
        )
        plain = query.run(population, rng=11)

        query2 = FederatedMeanQuery(
            encoder10,
            mode="adaptive",
            dropout=DropoutModel(rate=0.1),
            network=NetworkModel(loss_rate=0.05),
        )
        traced, _, _ = _traced_run(query2, population, seed=11)

        assert traced.value == plain.value
        np.testing.assert_array_equal(traced.bit_means, plain.bit_means)
        np.testing.assert_array_equal(traced.counts, plain.counts)

    def test_adaptive_core_bit_identical(self, encoder10, rng):
        values = rng.normal(500.0, 80.0, size=4_000).clip(0)
        plain = AdaptiveBitPushing(encoder10).estimate(values, rng=5)
        with instrumented(Tracer([InMemoryExporter()]), MetricsRegistry()):
            traced = AdaptiveBitPushing(encoder10).estimate(values, rng=5)
        assert traced.value == plain.value
        np.testing.assert_array_equal(traced.bit_means, plain.bit_means)


class TestAdaptiveCoreSpans:
    def test_round1_round2_and_cache_hits(self, encoder8, rng):
        values = rng.integers(0, 200, size=2_000)
        exporter = InMemoryExporter()
        registry = MetricsRegistry()
        with instrumented(Tracer([exporter]), registry):
            AdaptiveBitPushing(encoder8).estimate(values, rng=0)
        names = exporter.names()
        assert names.index("adaptive.round1") < names.index("adaptive.round2")
        (combine,) = exporter.find("adaptive.combine")
        assert combine.attributes["caching"] is True
        assert combine.attributes["cache_hits"] > 0
        counters = registry.snapshot()["counters"]
        assert counters["adaptive_estimates_total"] == 1
        assert counters["adaptive_cache_hits_total"] == combine.attributes["cache_hits"]


class TestPrivacyMetrics:
    def test_accountant_spend_and_denial_counters(self):
        registry = MetricsRegistry()
        with instrumented(metrics=registry):
            accountant = PrivacyAccountant(epsilon_budget=1.0)
            accountant.spend(0.4, note="r1")
            accountant.spend(0.5, note="r2")
            with pytest.raises(PrivacyBudgetExceeded):
                accountant.spend(0.5, note="r3")
        counters = registry.snapshot()["counters"]
        assert counters["privacy_epsilon_spent_total"] == pytest.approx(0.9)
        assert counters["privacy_budget_denials_total"] == 1
        assert registry.snapshot()["gauges"]["privacy_epsilon_remaining"] == pytest.approx(0.1)

    def test_meter_counters(self):
        registry = MetricsRegistry()
        with instrumented(metrics=registry):
            meter = BitMeter(max_bits_per_value=1)
            meter.record("c1", "v1")
            meter.record("c2", "v1")
            with pytest.raises(PrivacyBudgetExceeded):
                meter.record("c1", "v1")
        counters = registry.snapshot()["counters"]
        assert counters["metered_bits_total"] == 2
        assert counters["meter_denials_total"] == 1


class TestTraceCli:
    def test_run_traced_round_writes_reconciled_jsonl(self, tmp_path, capsys):
        out = tmp_path / "trace.jsonl"
        result = run_traced_round("1a", quick=True, seed=0, out_path=str(out))
        capsys.readouterr()  # swallow the printed report

        assert result["reconciled"] is True
        lines = [json.loads(line) for line in out.read_text().splitlines()]
        span_names = {line["name"] for line in lines if line["type"] == "span"}
        assert {
            "federated.cohort_select",
            "round.assign",
            "network.transmit",
            "federated.reconstruct",
        } <= span_names
        assert lines[-1]["type"] == "metrics"
        counters = lines[-1]["metrics"]["counters"]
        assert (
            counters["round_reports_planned_total"]
            == counters["round_reports_delivered_total"] + counters["round_reports_lost_total"]
        )

    def test_secure_agg_trace_includes_secure_agg_spans(self, tmp_path, capsys):
        out = tmp_path / "trace_sa.jsonl"
        result = run_traced_round("2a", quick=True, secure_agg=True, seed=1, out_path=str(out))
        capsys.readouterr()
        assert result["reconciled"] is True
        lines = [json.loads(line) for line in out.read_text().splitlines()]
        span_names = {line["name"] for line in lines if line["type"] == "span"}
        assert "round.secure_agg" in span_names
        assert "secure_agg.finalize" in span_names
