"""Property-based tests (hypothesis) on the core data structures."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core import (
    BitSamplingSchedule,
    FixedPointEncoder,
    apportion_counts,
    bit_matrix,
    central_assignment,
    mean_from_bit_means,
    multi_bit_assignment,
    squash_bit_means,
)
from repro.core.protocol import bit_means_from_stats, collect_bit_reports, combine_round_stats

# Bounded sizes keep hypothesis fast while covering the interesting shapes.
bit_depths = st.integers(min_value=1, max_value=20)
small_ints = st.integers(min_value=0, max_value=2**16 - 1)


class TestEncodingProperties:
    @given(values=st.lists(small_ints, min_size=1, max_size=200))
    def test_bit_matrix_reconstructs_exactly(self, values):
        """Binary decomposition is lossless for in-range integers."""
        enc = np.array(values, dtype=np.uint64)
        matrix = bit_matrix(enc, 16)
        weights = np.exp2(np.arange(16))
        np.testing.assert_array_equal(matrix @ weights, enc.astype(float))

    @given(values=st.lists(small_ints, min_size=1, max_size=200))
    def test_linear_decomposition_of_mean(self, values):
        """mean(x) == sum_j 2^j bit_mean_j -- exact, for any population."""
        enc = np.array(values, dtype=np.uint64)
        matrix = bit_matrix(enc, 16)
        assert mean_from_bit_means(matrix.mean(axis=0)) == pytest.approx(
            enc.mean(), rel=1e-12, abs=1e-9
        )

    @given(
        n_bits=st.integers(min_value=2, max_value=16),
        values=st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=50),
    )
    def test_encode_always_in_range(self, n_bits, values):
        """Clipping encoder never produces out-of-range codes."""
        enc = FixedPointEncoder.for_integers(n_bits)
        encoded = enc.encode(np.array(values))
        assert encoded.min() >= 0
        assert encoded.max() <= 2**n_bits - 1

    @given(
        low=st.floats(min_value=-1e5, max_value=1e5),
        width=st.floats(min_value=1e-3, max_value=1e5),
        n_bits=st.integers(min_value=4, max_value=20),
    )
    def test_range_encoder_roundtrip_error_bounded(self, low, width, n_bits):
        """decode(encode(x)) never deviates more than half a grid step."""
        enc = FixedPointEncoder.for_range(low, low + width, n_bits)
        x = np.array([low, low + width / 3, low + width])
        err = np.abs(enc.decode(enc.encode(x)) - x)
        assert err.max() <= enc.quantization_error_bound() * (1 + 1e-9)


class TestScheduleProperties:
    @given(n_bits=bit_depths, alpha=st.floats(min_value=0.0, max_value=2.0))
    def test_weighted_schedules_normalized_and_monotone(self, n_bits, alpha):
        sched = BitSamplingSchedule.weighted(n_bits, alpha)
        probs = sched.probabilities
        assert probs.sum() == pytest.approx(1.0)
        assert np.all(np.diff(probs) >= -1e-15)   # non-decreasing in j

    @given(
        means=arrays(
            np.float64,
            st.integers(min_value=1, max_value=16),
            elements=st.floats(min_value=-0.5, max_value=1.5),
        ),
        alpha=st.floats(min_value=0.1, max_value=1.5),
    )
    def test_from_bit_means_always_valid(self, means, alpha):
        """Any (possibly noisy) bit means yield a valid schedule."""
        sched = BitSamplingSchedule.from_bit_means(means, alpha=alpha)
        assert sched.probabilities.sum() == pytest.approx(1.0)
        assert np.all(sched.probabilities >= 0)

    @given(
        n=st.integers(min_value=0, max_value=100_000),
        n_bits=bit_depths,
        alpha=st.floats(min_value=0.0, max_value=1.5),
    )
    def test_apportionment_exact_and_tight(self, n, n_bits, alpha):
        sched = BitSamplingSchedule.weighted(n_bits, alpha)
        counts = apportion_counts(n, sched)
        assert counts.sum() == n
        assert np.all(counts >= 0)
        assert np.all(np.abs(counts - sched.probabilities * n) < 1.0)

    @given(
        weights=st.lists(
            st.one_of(st.just(0.0), st.floats(min_value=1e-6, max_value=10.0)),
            min_size=1,
            max_size=16,
        ).filter(lambda w: sum(w) > 1e-6),
        n=st.integers(min_value=0, max_value=50_000),
    )
    def test_apportionment_starves_zero_probability_bits(self, weights, n):
        """Holes in the schedule never receive clients, and the largest-
        remainder guarantees survive a punctured support."""
        sched = BitSamplingSchedule(np.array(weights))
        counts = apportion_counts(n, sched)
        assert counts.sum() == n
        assert np.all(counts[sched.probabilities == 0.0] == 0)
        assert np.all(np.abs(counts - sched.probabilities * n) < 1.0)

    @given(
        weights=st.lists(
            st.one_of(st.just(0.0), st.floats(min_value=1e-6, max_value=10.0)),
            min_size=2,
            max_size=12,
        ).filter(lambda w: sum(1 for x in w if x > 0) >= 2),
        n=st.integers(min_value=1, max_value=200),
        b_send=st.integers(min_value=1, max_value=4),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=40)
    def test_multi_bit_rows_are_distinct_and_in_support(self, weights, n, b_send, seed):
        """Every client gets b_send *distinct* bits, all with positive mass."""
        sched = BitSamplingSchedule(np.array(weights))
        support = set(sched.support().tolist())
        b_send = min(b_send, len(support))
        rows = multi_bit_assignment(n, sched, b_send, seed)
        assert rows.shape == (n, b_send)
        for row in rows:
            picks = set(row.tolist())
            assert len(picks) == b_send          # no repeats within a client
            assert picks <= support              # never a zero-probability bit

    @given(n=st.integers(min_value=1, max_value=2_000), n_bits=bit_depths, seed=st.integers(0, 2**16))
    @settings(max_examples=30)
    def test_central_assignment_is_a_permutation_of_the_plan(self, n, n_bits, seed):
        sched = BitSamplingSchedule.weighted(n_bits, 0.5)
        assignment = central_assignment(n, sched, seed)
        np.testing.assert_array_equal(
            np.bincount(assignment, minlength=n_bits), apportion_counts(n, sched)
        )


class TestProtocolProperties:
    @given(
        values=st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=300),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=30)
    def test_collection_conserves_reports(self, values, seed):
        """Every client's report lands in exactly one (sums, counts) bucket."""
        enc = np.array(values, dtype=np.uint64)
        sched = BitSamplingSchedule.weighted(8, 0.5)
        assignment = central_assignment(len(values), sched, seed)
        sums, counts = collect_bit_reports(enc, 8, assignment)
        assert counts.sum() == len(values)
        assert np.all(sums <= counts)
        assert np.all(sums >= 0)

    @given(
        means_a=arrays(np.float64, 6, elements=st.floats(0, 1)),
        means_b=arrays(np.float64, 6, elements=st.floats(0, 1)),
        counts_a=arrays(np.int64, 6, elements=st.integers(0, 1000)),
        counts_b=arrays(np.int64, 6, elements=st.integers(0, 1000)),
    )
    def test_pooling_is_a_convex_combination(self, means_a, means_b, counts_a, counts_b):
        pooled, counts = combine_round_stats([means_a, means_b], [counts_a, counts_b])
        lower = np.minimum(means_a, means_b)
        upper = np.maximum(means_a, means_b)
        sampled = counts > 0
        assert np.all(pooled[sampled] >= lower[sampled] - 1e-12)
        assert np.all(pooled[sampled] <= upper[sampled] + 1e-12)
        assert np.all(pooled[~sampled] == 0.0)

    @given(
        sums=arrays(np.float64, 8, elements=st.floats(0, 100)),
        counts=arrays(np.int64, 8, elements=st.integers(0, 100)),
    )
    def test_bit_means_bounded_without_perturbation(self, sums, counts):
        sums = np.minimum(sums, counts)   # raw sums can't exceed counts
        means = bit_means_from_stats(sums, counts)
        assert np.all(means >= 0.0)
        assert np.all(means <= 1.0 + 1e-12)


class TestSquashingProperties:
    @given(
        means=arrays(np.float64, st.integers(1, 24), elements=st.floats(-0.5, 1.5)),
        threshold=st.floats(min_value=0.0, max_value=0.5),
    )
    def test_squash_output_always_valid(self, means, threshold):
        squashed, idx = squash_bit_means(means, threshold)
        assert np.all(squashed >= 0.0)
        assert np.all(squashed <= 1.0)
        # Squashed bits are exactly zero.
        assert np.all(squashed[idx] == 0.0)
        # Surviving bits kept their (clipped) value.
        survivors = np.setdiff1d(np.arange(means.size), idx)
        np.testing.assert_allclose(squashed[survivors], np.clip(means[survivors], 0, 1))

    @given(
        means=arrays(np.float64, 12, elements=st.floats(-0.5, 1.5)),
        t1=st.floats(min_value=0.0, max_value=0.5),
        t2=st.floats(min_value=0.0, max_value=0.5),
    )
    def test_squashing_monotone_in_threshold(self, means, t1, t2):
        lo, hi = sorted((t1, t2))
        _, idx_lo = squash_bit_means(means, lo)
        _, idx_hi = squash_bit_means(means, hi)
        assert set(idx_lo.tolist()) <= set(idx_hi.tolist())
