"""Bit-sampling schedules and client assignment."""

import numpy as np
import pytest

from repro.core.sampling import (
    BitSamplingSchedule,
    apportion_counts,
    central_assignment,
    local_assignment,
    multi_bit_assignment,
)
from repro.exceptions import ConfigurationError


class TestScheduleConstruction:
    def test_uniform(self):
        sched = BitSamplingSchedule.uniform(4)
        np.testing.assert_allclose(sched.probabilities, 0.25)

    def test_weighted_alpha_one_is_2_pow_j(self):
        """alpha = 1.0 is the Eq. 7 worst-case optimum p_j = 2^j / (2^b - 1)."""
        sched = BitSamplingSchedule.weighted(4, alpha=1.0)
        expected = np.array([1, 2, 4, 8]) / 15
        np.testing.assert_allclose(sched.probabilities, expected)

    def test_weighted_alpha_half_is_sqrt2_pow_j(self):
        sched = BitSamplingSchedule.weighted(3, alpha=0.5)
        raw = np.sqrt(2.0) ** np.arange(3)
        np.testing.assert_allclose(sched.probabilities, raw / raw.sum())

    def test_weighted_matches_geometric_family(self):
        """weighted(alpha) and geometric(gamma) are the same 2^(cj) family."""
        np.testing.assert_allclose(
            BitSamplingSchedule.weighted(6, alpha=0.7).probabilities,
            BitSamplingSchedule.geometric(6, gamma=0.7).probabilities,
        )

    def test_geometric_gamma(self):
        sched = BitSamplingSchedule.geometric(3, gamma=1.0)
        expected = np.array([1, 2, 4]) / 7
        np.testing.assert_allclose(sched.probabilities, expected)

    def test_geometric_gamma_zero_is_uniform(self):
        sched = BitSamplingSchedule.geometric(5, gamma=0.0)
        np.testing.assert_allclose(sched.probabilities, 0.2)

    def test_probabilities_sum_to_one(self):
        for sched in (
            BitSamplingSchedule.uniform(7),
            BitSamplingSchedule.weighted(7, 0.5),
            BitSamplingSchedule.geometric(7, 0.3),
        ):
            assert sched.probabilities.sum() == pytest.approx(1.0)

    def test_no_overflow_at_60_bits(self):
        sched = BitSamplingSchedule.weighted(60, alpha=1.0)
        assert np.all(np.isfinite(sched.probabilities))
        assert sched.probabilities.sum() == pytest.approx(1.0)

    def test_immutable(self):
        sched = BitSamplingSchedule.uniform(3)
        with pytest.raises(ValueError):
            sched.probabilities[0] = 0.9

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            BitSamplingSchedule.uniform(0)
        with pytest.raises(ConfigurationError):
            BitSamplingSchedule(np.array([0.5, -0.1]))
        with pytest.raises(ConfigurationError):
            BitSamplingSchedule(np.array([0.0, 0.0]))
        with pytest.raises(ConfigurationError):
            BitSamplingSchedule(np.array([[0.5], [0.5]]))
        with pytest.raises(ConfigurationError):
            BitSamplingSchedule.weighted(4, alpha=float("nan"))


class TestFromBitMeans:
    def test_matches_lemma_33_optimum(self):
        """p_j proportional to sqrt(beta_j) with beta_j = 4^j m_j (1 - m_j)."""
        means = np.array([0.5, 0.25, 0.1, 0.0])
        sched = BitSamplingSchedule.from_bit_means(means, alpha=0.5)
        beta = np.exp2(2 * np.arange(4)) * means * (1 - means)
        expected = np.sqrt(beta) / np.sqrt(beta).sum()
        np.testing.assert_allclose(sched.probabilities, expected)

    def test_empty_bits_get_zero_probability(self):
        sched = BitSamplingSchedule.from_bit_means(np.array([0.5, 0.0, 1.0, 0.5]))
        assert sched.probabilities[1] == 0.0
        assert sched.probabilities[2] == 0.0   # mean 1.0 also has zero variance

    def test_noisy_means_clipped(self):
        # DP noise can push estimates outside [0, 1]; they must not crash.
        sched = BitSamplingSchedule.from_bit_means(np.array([-0.2, 0.5, 1.3]))
        assert sched.probabilities[0] == 0.0
        assert sched.probabilities[2] == 0.0

    def test_all_zero_falls_back_to_weighted(self):
        # The docstring promises the flat weighted(n_bits, alpha=0.5)
        # fallback, not the steep alpha=1.0 schedule.
        sched = BitSamplingSchedule.from_bit_means(np.zeros(4))
        np.testing.assert_allclose(
            sched.probabilities, BitSamplingSchedule.weighted(4, 0.5).probabilities
        )

    def test_constant_input_falls_back_to_alpha_half(self):
        # A constant population has zero variance on every bit, so every
        # beta_j weight vanishes; the fallback must match the documented
        # weighted(n_bits, alpha=0.5) regardless of the constant.
        for constant in (0.0, 1.0):
            sched = BitSamplingSchedule.from_bit_means(np.full(6, constant))
            np.testing.assert_allclose(
                sched.probabilities,
                BitSamplingSchedule.weighted(6, 0.5).probabilities,
            )

    def test_floor_guarantees_minimum_mass(self):
        sched = BitSamplingSchedule.from_bit_means(
            np.array([0.5, 0.0, 0.0, 0.5]), floor=0.01
        )
        assert np.all(sched.probabilities >= 0.01 - 1e-12)
        assert sched.probabilities.sum() == pytest.approx(1.0)

    def test_alpha_one_squares_the_optimal(self):
        means = np.array([0.5, 0.5])
        sched = BitSamplingSchedule.from_bit_means(means, alpha=1.0)
        beta = np.array([0.25, 1.0])
        np.testing.assert_allclose(sched.probabilities, beta / beta.sum())

    def test_negative_alpha_raises(self):
        with pytest.raises(ConfigurationError):
            BitSamplingSchedule.from_bit_means(np.array([0.5]), alpha=-1.0)


class TestScheduleViews:
    def test_support(self):
        sched = BitSamplingSchedule.from_bit_means(np.array([0.5, 0.0, 0.5]))
        np.testing.assert_array_equal(sched.support(), [0, 2])

    def test_expected_counts(self):
        sched = BitSamplingSchedule.uniform(4)
        np.testing.assert_allclose(sched.expected_counts(100), 25.0)

    def test_len(self):
        assert len(BitSamplingSchedule.uniform(6)) == 6


class TestApportionCounts:
    def test_sums_exactly_to_n(self):
        sched = BitSamplingSchedule.weighted(10, 0.5)
        for n in (0, 1, 7, 100, 9_999):
            assert apportion_counts(n, sched).sum() == n

    def test_within_one_of_quota(self):
        sched = BitSamplingSchedule.weighted(8, 0.5)
        counts = apportion_counts(1000, sched)
        quotas = sched.probabilities * 1000
        assert np.all(np.abs(counts - quotas) < 1.0)

    def test_zero_probability_bits_get_zero(self):
        sched = BitSamplingSchedule.from_bit_means(np.array([0.5, 0.0, 0.5]))
        counts = apportion_counts(101, sched)
        assert counts[1] == 0
        assert counts.sum() == 101

    def test_negative_n_raises(self):
        with pytest.raises(ConfigurationError):
            apportion_counts(-1, BitSamplingSchedule.uniform(2))


class TestCentralAssignment:
    def test_counts_are_exact(self, rng):
        sched = BitSamplingSchedule.weighted(6, 0.5)
        assignment = central_assignment(1000, sched, rng)
        counts = np.bincount(assignment, minlength=6)
        np.testing.assert_array_equal(counts, apportion_counts(1000, sched))

    def test_assignment_is_shuffled(self):
        sched = BitSamplingSchedule.uniform(4)
        a = central_assignment(100, sched, rng=1)
        b = central_assignment(100, sched, rng=2)
        assert not np.array_equal(a, b)

    def test_deterministic_given_seed(self):
        sched = BitSamplingSchedule.uniform(4)
        np.testing.assert_array_equal(
            central_assignment(50, sched, rng=3), central_assignment(50, sched, rng=3)
        )


class TestLocalAssignment:
    def test_counts_are_multinomial_not_exact(self):
        sched = BitSamplingSchedule.uniform(2)
        assignment = local_assignment(10_001, sched, rng=0)
        counts = np.bincount(assignment, minlength=2)
        # An odd total cannot split exactly evenly, and multinomial noise
        # means counts deviate from quota; just verify plausibility.
        assert counts.sum() == 10_001
        assert abs(counts[0] - 5000.5) < 500

    def test_respects_zero_probability(self):
        sched = BitSamplingSchedule.from_bit_means(np.array([0.5, 0.0, 0.5]))
        assignment = local_assignment(1000, sched, rng=0)
        assert not np.any(assignment == 1)

    def test_negative_n_raises(self):
        with pytest.raises(ConfigurationError):
            local_assignment(-5, BitSamplingSchedule.uniform(2))


class TestMultiBitAssignment:
    def test_shape(self, rng):
        sched = BitSamplingSchedule.weighted(8, 0.5)
        picks = multi_bit_assignment(100, sched, b_send=3, rng=rng)
        assert picks.shape == (100, 3)

    def test_bits_distinct_per_client(self, rng):
        sched = BitSamplingSchedule.uniform(8)
        picks = multi_bit_assignment(200, sched, b_send=4, rng=rng)
        for row in picks:
            assert len(set(row.tolist())) == 4

    def test_b_send_one_matches_central_mode(self, rng):
        sched = BitSamplingSchedule.weighted(6, 0.5)
        picks = multi_bit_assignment(300, sched, b_send=1, rng=rng)
        assert picks.shape == (300, 1)

    def test_never_picks_zero_probability_bits(self, rng):
        sched = BitSamplingSchedule.from_bit_means(np.array([0.5, 0.0, 0.5, 0.5]))
        picks = multi_bit_assignment(500, sched, b_send=2, rng=rng)
        assert not np.any(picks == 1)

    def test_b_send_exceeding_support_raises(self):
        sched = BitSamplingSchedule.from_bit_means(np.array([0.5, 0.0, 0.5]))
        with pytest.raises(ConfigurationError):
            multi_bit_assignment(10, sched, b_send=3)

    def test_invalid_b_send(self):
        with pytest.raises(ConfigurationError):
            multi_bit_assignment(10, BitSamplingSchedule.uniform(4), b_send=0)

    def test_weighting_respected(self):
        """Higher-probability bits appear more often in multi-bit picks."""
        sched = BitSamplingSchedule.weighted(6, 0.5)
        picks = multi_bit_assignment(5000, sched, b_send=2, rng=0)
        counts = np.bincount(picks.ravel(), minlength=6)
        assert counts[5] > counts[0]
