"""Basic (single-round) bit-pushing -- Algorithm 1."""

import numpy as np
import pytest

from repro.core import (
    BasicBitPushing,
    BitSamplingSchedule,
    FixedPointEncoder,
    estimate_mean,
)
from repro.exceptions import ConfigurationError
from repro.privacy import RandomizedResponse


class TestConstruction:
    def test_default_schedule_is_eq7(self, encoder8):
        est = BasicBitPushing(encoder8)
        np.testing.assert_allclose(
            est.schedule.probabilities,
            np.exp2(np.arange(8)) / (2**8 - 1),
        )

    def test_schedule_width_mismatch_raises(self, encoder8):
        with pytest.raises(ConfigurationError):
            BasicBitPushing(encoder8, schedule=BitSamplingSchedule.uniform(4))

    def test_invalid_randomness(self, encoder8):
        with pytest.raises(ConfigurationError):
            BasicBitPushing(encoder8, randomness="quantum")

    def test_invalid_b_send(self, encoder8):
        with pytest.raises(ConfigurationError):
            BasicBitPushing(encoder8, b_send=0)

    def test_negative_squash_threshold(self, encoder8):
        with pytest.raises(ConfigurationError):
            BasicBitPushing(encoder8, squash_threshold=-0.1)


class TestAccuracy:
    def test_constant_population_recovered_exactly_in_expectation(self, encoder8):
        est = BasicBitPushing(encoder8)
        values = np.full(20_000, 42.0)
        # Every client holds 42, so every bit report is exact: zero variance.
        assert est.estimate(values, rng=0).value == pytest.approx(42.0)

    def test_unbiasedness(self, encoder10):
        """Mean of many estimates converges to the true mean."""
        rng = np.random.default_rng(7)
        values = np.clip(rng.normal(600, 100, 5_000), 0, None)
        est = BasicBitPushing(encoder10)
        estimates = [est.estimate(values, rng).value for _ in range(300)]
        stderr = np.std(estimates) / np.sqrt(len(estimates))
        assert abs(np.mean(estimates) - values.mean()) < 4 * stderr

    def test_error_shrinks_with_n(self, encoder10):
        rng = np.random.default_rng(8)
        est = BasicBitPushing(encoder10)

        def rmse(n):
            errs = []
            for _ in range(40):
                values = np.clip(rng.normal(600, 100, n), 0, None)
                errs.append(est.estimate(values, rng).value - values.mean())
            return float(np.sqrt(np.mean(np.square(errs))))

        assert rmse(20_000) < rmse(1_000)

    def test_ten_bit_quantity_error_small_at_10k(self, encoder10):
        """Paper: 10k reports keep a 10-bit quantity comfortably below 1% NRMSE."""
        rng = np.random.default_rng(9)
        est = BasicBitPushing(encoder10)
        rel_errors = []
        for _ in range(30):
            values = np.clip(rng.normal(600, 100, 10_000), 0, None)
            rel_errors.append((est.estimate(values, rng).value - values.mean()) / values.mean())
        assert np.sqrt(np.mean(np.square(rel_errors))) < 0.02


class TestBSend:
    def test_more_bits_less_variance(self, encoder10):
        rng = np.random.default_rng(10)
        values = np.clip(rng.normal(600, 100, 3_000), 0, None)

        def variance(b_send):
            est = BasicBitPushing(encoder10, b_send=b_send)
            return np.var([est.estimate(values, rng).value for _ in range(150)])

        assert variance(4) < variance(1)

    def test_b_send_counts(self, encoder8, rng):
        est = BasicBitPushing(encoder8, b_send=3)
        result = est.estimate(np.full(1_000, 100.0), rng)
        assert result.total_reports == 3_000


class TestRandomnessModes:
    def test_local_mode_runs_and_is_reasonable(self, encoder10):
        rng = np.random.default_rng(11)
        values = np.clip(rng.normal(600, 100, 10_000), 0, None)
        est = BasicBitPushing(encoder10, randomness="local")
        assert est.estimate(values, rng).value == pytest.approx(values.mean(), rel=0.1)

    def test_central_mode_counts_deterministic(self, encoder8, rng):
        est = BasicBitPushing(encoder8)
        r1 = est.estimate(np.full(1_000, 99.0), rng)
        r2 = est.estimate(np.full(1_000, 99.0), rng)
        np.testing.assert_array_equal(r1.counts, r2.counts)


class TestLdp:
    def test_rr_estimate_still_unbiased(self, encoder8):
        rng = np.random.default_rng(12)
        values = np.full(50_000, 100.0)
        est = BasicBitPushing(encoder8, perturbation=RandomizedResponse(epsilon=2.0))
        estimates = [est.estimate(values, rng).value for _ in range(50)]
        stderr = np.std(estimates) / np.sqrt(len(estimates))
        assert abs(np.mean(estimates) - 100.0) < 4 * stderr + 1e-9

    def test_rr_increases_error(self, encoder8):
        rng = np.random.default_rng(13)
        values = np.full(10_000, 100.0)
        plain = BasicBitPushing(encoder8)
        noisy = BasicBitPushing(encoder8, perturbation=RandomizedResponse(epsilon=1.0))
        err_plain = np.std([plain.estimate(values, rng).value for _ in range(50)])
        err_noisy = np.std([noisy.estimate(values, rng).value for _ in range(50)])
        assert err_noisy > err_plain

    def test_squashing_suppresses_noise_bits(self):
        rng = np.random.default_rng(14)
        values = np.full(20_000, 3.0)    # only bits 0 and 1 are real
        encoder = FixedPointEncoder.for_integers(16)
        est = BasicBitPushing(
            encoder,
            schedule=BitSamplingSchedule.uniform(16),
            perturbation=RandomizedResponse(epsilon=2.0),
            squash_threshold=0.05,
        )
        result = est.estimate(values, rng)
        assert set(result.squashed_bits) >= set(range(4, 16))
        assert result.value == pytest.approx(3.0, abs=1.0)


class TestResultRecord:
    def test_result_fields(self, encoder8, rng):
        est = BasicBitPushing(encoder8)
        values = np.full(500, 17.0)
        result = est.estimate(values, rng)
        assert result.method == "basic"
        assert result.n_clients == 500
        assert result.n_bits == 8
        assert len(result.rounds) == 1
        assert result.total_reports == 500
        assert result.metadata["randomness"] == "central"
        assert float(result) == result.value

    def test_scaled_encoder_decodes(self, rng):
        encoder = FixedPointEncoder.for_range(1000.0, 2000.0, n_bits=10)
        est = BasicBitPushing(encoder)
        values = np.full(20_000, 1500.0)
        assert est.estimate(values, rng).value == pytest.approx(1500.0, abs=2.0)

    def test_zero_clients_raise(self, encoder8, rng):
        with pytest.raises(ConfigurationError):
            BasicBitPushing(encoder8).estimate(np.array([]), rng)


class TestConvenienceFunction:
    def test_estimate_mean(self):
        values = np.full(10_000, 77.0)
        result = estimate_mean(values, n_bits=8, rng=0)
        assert result.value == pytest.approx(77.0)

    def test_estimate_mean_with_offset_scale(self):
        rng = np.random.default_rng(15)
        values = rng.uniform(-1.0, 1.0, 50_000)
        result = estimate_mean(values, n_bits=12, scale=2.0 / 4095, offset=-1.0, rng=rng)
        assert result.value == pytest.approx(values.mean(), abs=0.02)
