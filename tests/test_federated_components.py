"""Federated substrate components: clients, multivalue, dropout, network, cohorts."""

import numpy as np
import pytest

from repro.exceptions import CohortTooSmallError, ConfigurationError, PrivacyBudgetExceeded
from repro.federated import (
    ClientDevice,
    CohortSelector,
    DropoutModel,
    DropoutRateTracker,
    NetworkModel,
    attribute_equals,
    elicit_single_value,
    ground_truth_mean,
)
from repro.privacy import BitMeter, RandomizedResponse


class TestClientDevice:
    def test_scalar_value_promoted(self):
        client = ClientDevice(1, 5.0)
        assert client.n_values == 1
        assert client.local_mean() == 5.0

    def test_empty_values_rejected(self):
        with pytest.raises(ConfigurationError):
            ClientDevice(1, np.array([]))

    def test_elicit_strategies(self, rng):
        client = ClientDevice(1, [1.0, 2.0, 9.0])
        assert client.elicit("mean", rng) == pytest.approx(4.0)
        assert client.elicit("max", rng) == 9.0
        assert client.elicit("latest", rng) == 9.0
        assert client.elicit("sample", rng) in {1.0, 2.0, 9.0}

    def test_report_bit_truthful_without_perturbation(self, encoder8, rng):
        client = ClientDevice(3, [5.0])    # 0b101
        assert client.report_bit(0, encoder8, rng=rng).bit == 1
        assert client.report_bit(1, encoder8, rng=rng).bit == 0
        assert client.report_bit(2, encoder8, rng=rng).bit == 1

    def test_report_records_meter(self, encoder8, rng):
        meter = BitMeter(max_bits_per_value=1)
        client = ClientDevice(3, [5.0])
        client.report_bit(0, encoder8, meter=meter, value_id="m", rng=rng)
        with pytest.raises(PrivacyBudgetExceeded):
            client.report_bit(1, encoder8, meter=meter, value_id="m", rng=rng)

    def test_report_with_perturbation_is_binary(self, encoder8, rng):
        client = ClientDevice(3, [5.0])
        rr = RandomizedResponse(epsilon=1.0)
        report = client.report_bit(0, encoder8, perturbation=rr, rng=rng)
        assert report.bit in (0, 1)
        assert report.client_id == 3
        assert report.bit_index == 0


class TestMultivalue:
    def test_elicit_mean(self):
        assert elicit_single_value([2.0, 4.0], "mean") == 3.0

    def test_elicit_sample_deterministic_with_seed(self):
        values = [1.0, 2.0, 3.0]
        assert elicit_single_value(values, "sample", rng=0) == elicit_single_value(
            values, "sample", rng=0
        )

    def test_unknown_strategy(self):
        with pytest.raises(ConfigurationError):
            elicit_single_value([1.0], "median")

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            elicit_single_value([], "mean")

    def test_ground_truth_sample_weights_clients_equally(self):
        """One chatty client must not dominate the sampling ground truth."""
        per_client = [np.array([0.0]), np.array([10.0] * 1_000)]
        assert ground_truth_mean(per_client, "sample") == pytest.approx(5.0)

    def test_ground_truth_max(self):
        per_client = [np.array([1.0, 5.0]), np.array([2.0])]
        assert ground_truth_mean(per_client, "max") == pytest.approx(3.5)

    def test_ground_truth_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            ground_truth_mean([], "sample")


class TestDropout:
    def test_zero_rate_keeps_everyone(self, rng):
        assert DropoutModel(0.0).draw_survivors(1000, rng).all()

    def test_rate_respected(self, rng):
        survivors = DropoutModel(0.3).draw_survivors(100_000, rng)
        assert survivors.mean() == pytest.approx(0.7, abs=0.01)

    def test_jitter_varies_rounds(self):
        model = DropoutModel(0.3, jitter=0.1)
        rates = [1 - model.draw_survivors(10_000, seed).mean() for seed in range(10)]
        assert np.std(rates) > 0.01

    def test_invalid_rate(self):
        with pytest.raises(ConfigurationError):
            DropoutModel(1.0)
        with pytest.raises(ConfigurationError):
            DropoutModel(-0.1)

    def test_tracker_ewma(self):
        tracker = DropoutRateTracker(smoothing=0.5, prior_rate=0.0)
        tracker.update(100, 80)
        assert tracker.rate == pytest.approx(0.1)
        tracker.update(100, 60)
        assert tracker.rate == pytest.approx(0.25)
        assert tracker.expected_survival == pytest.approx(0.75)
        assert tracker.rounds_observed == 2

    def test_tracker_validation(self):
        tracker = DropoutRateTracker()
        with pytest.raises(ConfigurationError):
            tracker.update(0, 0)
        with pytest.raises(ConfigurationError):
            tracker.update(10, 11)
        with pytest.raises(ConfigurationError):
            DropoutRateTracker(smoothing=0.0)


class TestNetwork:
    def test_lossless_default(self, rng):
        outcome = NetworkModel().transmit(1000, rng)
        assert outcome.delivery_rate == 1.0
        assert outcome.round_duration_s > 0

    def test_loss_rate(self, rng):
        outcome = NetworkModel(loss_rate=0.25).transmit(100_000, rng)
        assert outcome.delivery_rate == pytest.approx(0.75, abs=0.01)

    def test_deadline_drops_late_reports(self, rng):
        strict = NetworkModel(latency_median_s=90.0, deadline_s=90.0).transmit(50_000, rng)
        assert strict.delivery_rate == pytest.approx(0.5, abs=0.02)
        assert strict.round_duration_s <= 90.0

    def test_round_duration_is_max_delivered_latency(self, rng):
        outcome = NetworkModel().transmit(100, rng)
        assert outcome.round_duration_s == pytest.approx(
            outcome.latencies_s[outcome.delivered].max()
        )

    def test_zero_reports(self, rng):
        # Empty batch: vacuously fully delivered (rate 1.0, zero duration) --
        # distinguishable from a non-empty batch that lost everything (0.0).
        outcome = NetworkModel().transmit(0, rng)
        assert outcome.delivery_rate == 1.0
        assert outcome.round_duration_s == 0.0

    def test_total_loss_is_not_the_empty_batch(self, rng):
        lossy = NetworkModel(loss_rate=0.99, deadline_s=0.001).transmit(200, rng)
        assert lossy.delivery_rate == 0.0
        assert lossy.round_duration_s == 0.0

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            NetworkModel(loss_rate=1.0)
        with pytest.raises(ConfigurationError):
            NetworkModel(latency_median_s=0.0)
        with pytest.raises(ConfigurationError):
            NetworkModel(deadline_s=0.0)


class TestCohortSelector:
    def _population(self, n=100):
        return [
            ClientDevice(i, [float(i)], {"geo": "us" if i % 2 else "eu"})
            for i in range(n)
        ]

    def test_no_filter_returns_everyone(self):
        pop = self._population()
        assert len(CohortSelector().select(pop)) == 100

    def test_eligibility_filter(self):
        pop = self._population()
        cohort = CohortSelector().select(pop, eligibility=attribute_equals("geo", "us"))
        assert len(cohort) == 50
        assert all(c.attributes["geo"] == "us" for c in cohort)

    def test_missing_attribute_means_ineligible(self):
        pop = [ClientDevice(0, [1.0])]
        with pytest.raises(CohortTooSmallError):
            CohortSelector(min_cohort_size=1).select(
                pop, eligibility=attribute_equals("geo", "us")
            )

    def test_minimum_size_enforced(self):
        pop = self._population(10)
        with pytest.raises(CohortTooSmallError):
            CohortSelector(min_cohort_size=11).select(pop)

    def test_requested_cohort_below_minimum_rejected(self):
        pop = self._population(100)
        with pytest.raises(CohortTooSmallError):
            CohortSelector(min_cohort_size=10).select(pop, cohort_size=5)

    def test_subsampling(self, rng):
        pop = self._population(100)
        cohort = CohortSelector().select(pop, cohort_size=30, rng=rng)
        assert len(cohort) == 30
        assert len({c.client_id for c in cohort}) == 30

    def test_cohort_size_above_population_returns_all(self, rng):
        pop = self._population(20)
        assert len(CohortSelector().select(pop, cohort_size=50, rng=rng)) == 20

    def test_invalid_min_size(self):
        with pytest.raises(ConfigurationError):
            CohortSelector(min_cohort_size=0)
