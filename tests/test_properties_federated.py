"""Property-based tests on the federated substrate (wire, streaming, cohorts)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import FixedPointEncoder
from repro.federated import (
    BitReport,
    ClientDevice,
    CohortSelector,
    StreamingAggregator,
    decode_batch,
    decode_report,
    encode_batch,
    encode_report,
    elicit_single_value,
    ground_truth_mean,
)

report_strategy = st.builds(
    BitReport,
    client_id=st.integers(min_value=0, max_value=2**64 - 1),
    bit_index=st.integers(min_value=0, max_value=63),
    bit=st.integers(min_value=0, max_value=1),
)


class TestWireProperties:
    @given(report=report_strategy, rr=st.booleans())
    def test_roundtrip_identity(self, report, rr):
        decoded, flag = decode_report(encode_report(report, rr))
        assert decoded == report
        assert flag == rr

    @given(reports=st.lists(report_strategy, max_size=40))
    def test_batch_roundtrip(self, reports):
        decoded = decode_batch(encode_batch(reports))
        assert [r for r, _ in decoded] == reports

    @given(report=report_strategy, flip=st.integers(min_value=0, max_value=3))
    def test_magic_corruption_always_detected(self, report, flip):
        from repro.exceptions import ProtocolError

        frame = bytearray(encode_report(report))
        frame[flip] ^= 0xFF
        with pytest.raises(ProtocolError):
            decode_report(bytes(frame))


class TestStreamingProperties:
    @given(
        bits=st.lists(st.tuples(st.integers(0, 7), st.integers(0, 1)),
                      min_size=1, max_size=200),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=30)
    def test_order_invariance(self, bits, seed):
        """Any permutation of the report stream yields the same estimate."""
        encoder = FixedPointEncoder.for_integers(8)
        reports = [
            BitReport(client, j, b) for client, (j, b) in enumerate(bits)
        ]
        forward = StreamingAggregator(encoder)
        forward.submit_many(reports)
        permuted = StreamingAggregator(encoder)
        order = np.random.default_rng(seed).permutation(len(reports))
        permuted.submit_many([reports[i] for i in order])
        assert forward.estimate().value == permuted.estimate().value

    @given(
        bits=st.lists(st.tuples(st.integers(0, 7), st.integers(0, 1)),
                      min_size=1, max_size=100)
    )
    def test_estimate_bounded_by_encoder_range(self, bits):
        encoder = FixedPointEncoder.for_integers(8)
        agg = StreamingAggregator(encoder)
        agg.submit_many(
            BitReport(client, j, b) for client, (j, b) in enumerate(bits)
        )
        estimate = agg.estimate()
        assert 0.0 <= estimate.value <= encoder.representable_max


class TestElicitationProperties:
    @given(
        values=st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=30),
        seed=st.integers(0, 2**16),
    )
    def test_sample_elicitation_returns_member(self, values, seed):
        picked = elicit_single_value(np.array(values), "sample", seed)
        assert any(np.isclose(picked, v) for v in values)

    @given(
        values=st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=30)
    )
    def test_deterministic_strategies_in_hull(self, values):
        arr = np.array(values)
        for strategy in ("mean", "max", "latest"):
            picked = elicit_single_value(arr, strategy)
            assert arr.min() - 1e-9 <= picked <= arr.max() + 1e-9

    @given(
        populations=st.lists(
            st.lists(st.floats(min_value=0.0, max_value=1e3), min_size=1, max_size=5),
            min_size=1,
            max_size=20,
        )
    )
    def test_ground_truth_in_population_hull(self, populations):
        arrays = [np.array(p) for p in populations]
        truth = ground_truth_mean(arrays, "sample")
        lo = min(a.min() for a in arrays)
        hi = max(a.max() for a in arrays)
        assert lo - 1e-9 <= truth <= hi + 1e-9


class TestCohortProperties:
    @given(
        n=st.integers(min_value=1, max_value=200),
        cohort_size=st.integers(min_value=1, max_value=250),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=40)
    def test_selection_invariants(self, n, cohort_size, seed):
        population = [ClientDevice(i, [float(i)]) for i in range(n)]
        cohort = CohortSelector().select(population, cohort_size=cohort_size, rng=seed)
        ids = [c.client_id for c in cohort]
        assert len(cohort) == min(cohort_size, n)     # never over-selects
        assert len(set(ids)) == len(ids)              # no duplicates
        assert set(ids) <= set(range(n))              # only real clients
