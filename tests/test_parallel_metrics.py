"""Worker metric merging (PR 6): parallel runs must not lose counters.

Before this PR, forked trial workers ran with observability disabled, so
any counter incremented *inside* trial code (e.g. the adaptive
estimator's ``adaptive_estimates_total``) silently vanished under
``REPRO_WORKERS > 1`` while the estimates stayed bit-identical.  Workers
now record into a private registry whose closing snapshot the parent
folds in deterministically; these tests pin the fold semantics and the
serial-vs-parallel equivalence it buys.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import AdaptiveBitPushing, FixedPointEncoder
from repro.exceptions import ConfigurationError
from repro.metrics.execution import ParallelExecutor, SerialExecutor
from repro.metrics.experiment import run_trials
from repro.observability import MetricsRegistry, NullMetrics, instrumented
from repro.observability.metrics import DEFAULT_DURATION_BUCKETS


class TestMergeSnapshot:
    def _registry_with_activity(self):
        registry = MetricsRegistry()
        registry.counter("a_total").inc(2)
        registry.gauge("level").set(5.0)
        registry.histogram("dur_s").observe(0.01)
        return registry

    def test_counters_add_gauges_overwrite_histograms_fold(self):
        parent = self._registry_with_activity()
        worker = MetricsRegistry()
        worker.counter("a_total").inc(3)
        worker.counter("b_total").inc(1)
        worker.gauge("level").set(9.0)
        worker.histogram("dur_s").observe(0.02)
        worker.histogram("dur_s").observe(0.03)
        parent.merge_snapshot(worker.snapshot())
        snapshot = parent.snapshot()
        assert snapshot["counters"]["a_total"] == 5.0
        assert snapshot["counters"]["b_total"] == 1.0
        assert snapshot["gauges"]["level"] == 9.0
        hist = snapshot["histograms"]["dur_s"]
        assert hist["count"] == 3
        assert hist["sum"] == pytest.approx(0.06)

    def test_merge_is_additive_across_repeats(self):
        parent = MetricsRegistry()
        worker_snapshot = self._registry_with_activity().snapshot()
        parent.merge_snapshot(worker_snapshot)
        parent.merge_snapshot(worker_snapshot)
        snapshot = parent.snapshot()
        assert snapshot["counters"]["a_total"] == 4.0
        assert snapshot["histograms"]["dur_s"]["count"] == 2

    def test_bucket_mismatch_rejected(self):
        parent = MetricsRegistry()
        parent.histogram("dur_s", buckets=(1.0, 2.0)).observe(0.5)
        worker = MetricsRegistry()
        worker.histogram("dur_s", buckets=DEFAULT_DURATION_BUCKETS).observe(0.5)
        with pytest.raises(ConfigurationError, match="bucket"):
            parent.merge_snapshot(worker.snapshot())

    def test_null_metrics_merge_is_a_noop(self):
        NullMetrics().merge_snapshot(self._registry_with_activity().snapshot())


class TestSerialParallelEquivalence:
    def _instrumented_run(self, executor, n_reps=8):
        estimator = AdaptiveBitPushing(FixedPointEncoder.for_integers(10))
        registry = MetricsRegistry()
        with instrumented(metrics=registry):
            stats = run_trials(
                lambda rng: np.clip(rng.normal(600.0, 100.0, size=400), 0.0, None),
                lambda values, rng: estimator.estimate(values, rng).value,
                n_reps=n_reps,
                seed=7,
                executor=executor,
            )
        return stats, registry.snapshot()

    def test_worker_side_counters_survive_the_fork(self):
        serial_stats, serial = self._instrumented_run(SerialExecutor())
        parallel_stats, parallel = self._instrumented_run(ParallelExecutor(2))
        np.testing.assert_array_equal(serial_stats.estimates, parallel_stats.estimates)
        # The engine-level counter and the trial-internal counter both match.
        assert serial["counters"]["trials_executed_total"] == 8.0
        assert parallel["counters"]["trials_executed_total"] == 8.0
        assert serial["counters"]["adaptive_estimates_total"] == 8.0
        assert parallel["counters"]["adaptive_estimates_total"] == 8.0
        assert (
            serial["counters"]["adaptive_cache_hits_total"]
            == parallel["counters"]["adaptive_cache_hits_total"]
        )

    def test_counter_and_histogram_counts_identical_across_worker_counts(self):
        _, serial = self._instrumented_run(SerialExecutor())
        for workers in (2, 3):
            _, parallel = self._instrumented_run(ParallelExecutor(workers))
            assert serial["counters"] == parallel["counters"]
            assert set(serial["histograms"]) == set(parallel["histograms"])
            for name, hist in serial["histograms"].items():
                assert parallel["histograms"][name]["count"] == hist["count"], name
