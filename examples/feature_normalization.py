"""Federated feature normalization (paper Section 3.4).

Federated learning wants features standardized to zero mean / unit variance,
but no one may see the raw feature values.  Bit-pushing estimates both
moments from one-bit reports: the variance estimator spends half the cohort
on the mean, then has the rest bit-push centred squares (the
lower-variance decomposition of Lemma 3.5).

We normalize three features of very different scales and verify the result
against the true (never-disclosed) statistics, then show the same pipeline
under an epsilon-LDP guarantee.

Run:  python examples/feature_normalization.py
"""

import numpy as np

from repro.core import FixedPointEncoder, VarianceEstimator
from repro.privacy import RandomizedResponse


FEATURES = {
    # name: (generator args, encoder bits)
    "session_length_s": ((300.0, 90.0), 10),
    "images_cached": ((40.0, 12.0), 7),
    "bytes_sent_kb": ((900.0, 250.0), 11),
}


def estimate_moments(values, n_bits, rng, epsilon=None):
    perturbation = RandomizedResponse(epsilon=epsilon) if epsilon else None
    estimator = VarianceEstimator(
        FixedPointEncoder.for_integers(n_bits),
        method="centered",
        inner="adaptive",
        perturbation=perturbation,
        inner_kwargs={"squash_multiple": 2.0} if perturbation else None,
    )
    result = estimator.estimate(values, rng)
    return result.mean.value, result.value


def main() -> None:
    rng = np.random.default_rng(5)
    n_clients = 200_000

    print(f"{'feature':<18} {'true mu':>9} {'est mu':>9} {'true var':>10} {'est var':>10}")
    estimates = {}
    for name, ((mu, sigma), bits) in FEATURES.items():
        values = np.clip(rng.normal(mu, sigma, n_clients), 0.0, None)
        mean_hat, var_hat = estimate_moments(values, bits, rng)
        estimates[name] = (values, mean_hat, var_hat)
        print(f"{name:<18} {values.mean():>9.2f} {mean_hat:>9.2f} "
              f"{values.var():>10.1f} {var_hat:>10.1f}")

    print("\nnormalized-feature sanity check (should be ~0 mean, ~1 std):")
    for name, (values, mean_hat, var_hat) in estimates.items():
        normalized = (values - mean_hat) / np.sqrt(var_hat)
        print(f"  {name:<18} mean {normalized.mean():+.4f}, std {normalized.std():.4f}")

    # The same pipeline with a formal epsilon = 4 LDP guarantee on every bit.
    name = "session_length_s"
    values = estimates[name][0]
    mean_dp, var_dp = estimate_moments(values, FEATURES[name][1], rng, epsilon=4.0)
    print(f"\nwith epsilon=4 LDP ({name}): "
          f"mu {mean_dp:.2f} (true {values.mean():.2f}), "
          f"var {var_dp:.1f} (true {values.var():.1f})")


if __name__ == "__main__":
    main()
