"""Beyond the mean: moments, skewness, geometric means, histograms.

Section 3.4 of the paper closes with "other functions, e.g., higher
moments, products and geometric means, can also be approximated via
bit-pushing".  This example estimates a full descriptive-statistics panel
for a latency-like metric — mean, variance, skewness, kurtosis, geometric
mean, and a 12-bucket histogram with median / p90 — with every client
still revealing only a single bit.

Run:  python examples/extended_aggregates.py
"""

import numpy as np

from repro.core import (
    FederatedHistogram,
    FixedPointEncoder,
    GeometricMeanEstimator,
    MomentEstimator,
    VarianceEstimator,
    kurtosis,
    skewness,
)


def main() -> None:
    rng = np.random.default_rng(9)
    # A right-skewed latency population (lognormal, median ~90 ms).
    values = rng.lognormal(np.log(90.0), 0.45, size=400_000)
    encoder = FixedPointEncoder.for_integers(9)   # clip at 511 ms

    clipped = np.clip(values, 0, encoder.representable_max)
    print(f"population: n={values.size}, clipped to 9 bits (<= 511 ms)\n")
    print(f"{'statistic':<18} {'true':>10} {'one-bit estimate':>18}")

    var_result = VarianceEstimator(encoder).estimate(values, rng)
    print(f"{'mean':<18} {clipped.mean():>10.2f} {var_result.mean.value:>18.2f}")
    print(f"{'variance':<18} {clipped.var():>10.1f} {var_result.value:>18.1f}")

    m3 = MomentEstimator(encoder, order=3).estimate(values, rng)
    true_m3 = float(np.mean((clipped - clipped.mean()) ** 3))
    print(f"{'3rd c. moment':<18} {true_m3:>10.3g} {m3.value:>18.3g}")

    from scipy import stats

    print(f"{'skewness':<18} {stats.skew(clipped):>10.3f} "
          f"{skewness(values, encoder, rng):>18.3f}")
    print(f"{'excess kurtosis':<18} {stats.kurtosis(clipped):>10.3f} "
          f"{kurtosis(values, encoder, rng):>18.3f}")

    geo = GeometricMeanEstimator(log2_low=0.0, log2_high=9.0).estimate(values, rng)
    true_geo = float(np.exp(np.log(clipped.clip(1e-9)).mean()))
    print(f"{'geometric mean':<18} {true_geo:>10.2f} {geo.value:>18.2f}")

    hist = FederatedHistogram.uniform(0.0, 480.0, 12).estimate(values, rng)
    print(f"{'median (p50)':<18} {np.median(clipped):>10.1f} "
          f"{hist.quantile_estimate(0.5):>18.1f}")
    print(f"{'p90':<18} {np.quantile(clipped, 0.9):>10.1f} "
          f"{hist.quantile_estimate(0.9):>18.1f}")

    print("\nhistogram (one membership bit per client):")
    for low, high, freq in zip(hist.edges[:-1], hist.edges[1:], hist.frequencies):
        bar = "#" * int(round(freq * 120))
        print(f"  [{low:5.0f},{high:5.0f})  {freq:6.1%}  {bar}")


if __name__ == "__main__":
    main()
