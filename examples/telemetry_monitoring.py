"""Device-telemetry monitoring: the paper's deployment scenario (Section 4.3).

A fleet of simulated devices reports health metrics with the pathologies the
deployment encountered:

* ``retry_count``  -- mostly 0/1 with rare, enormous outliers: the raw mean
  is meaningless; clipping (winsorizing) the encoding to 8 bits restores a
  stable statistic;
* ``latency_ms``   -- heavy Pareto tail, aggregated day over day; a shipped
  regression multiplies latencies mid-week and the
  :class:`HighBitMonitor` flags the jump from the occupied bit range alone;
* ``build_number`` -- constant across the fleet: mean estimation is moot,
  detectable because every bit mean is 0 or 1 (zero variance everywhere).

Run:  python examples/telemetry_monitoring.py
"""

import numpy as np

from repro.core import AdaptiveBitPushing, FixedPointEncoder, HighBitMonitor
from repro.data.telemetry import METRIC_CATALOG, drifting_latency


def monitor_retry_count(rng: np.random.Generator) -> None:
    spec = next(m for m in METRIC_CATALOG if m.name == "retry_count")
    values = spec.sample(50_000, rng)
    print(f"== {spec.name}: {spec.description}")
    print(f"   raw mean {values.mean():.2f} (hostage to "
          f"{int((values > 1).sum())} outlier clients out of {values.size})")

    # Clip to the recommended 8 bits: large values truncate to 255.
    encoder = FixedPointEncoder.for_integers(spec.recommended_bits)
    clipped_truth = np.clip(values, 0, encoder.representable_max).mean()
    estimate = AdaptiveBitPushing(encoder).estimate(values, rng)
    print(f"   clipped ground truth {clipped_truth:.4f}, "
          f"bit-pushing estimate {estimate.value:.4f}  "
          f"(stable, one bit per device)\n")


def monitor_latency_regression(rng: np.random.Generator) -> None:
    print("== latency_ms: daily aggregation with a regression shipping on day 6")
    encoder = FixedPointEncoder.for_integers(14)
    estimator = AdaptiveBitPushing(encoder)
    monitor = HighBitMonitor(noise_floor=0.01, shift_threshold=2, window=3)
    for day in range(10):
        values = drifting_latency(
            8_000, day, base_ms=110.0, drift_per_round=0.01,
            shift_round=6, shift_factor=8.0, rng=rng,
        )
        estimate = estimator.estimate(values, rng)
        alert = monitor.update(estimate.bit_means)
        flag = f"  <-- ALERT: {alert.message}" if alert else ""
        print(f"   day {day}: mean ~{estimate.value:8.1f} ms, "
              f"bound <= {monitor.current_upper_bound:8.0f}{flag}")
    print()


def detect_constant_metric(rng: np.random.Generator) -> None:
    spec = next(m for m in METRIC_CATALOG if m.name == "build_number")
    values = spec.sample(20_000, rng)
    encoder = FixedPointEncoder.for_integers(spec.recommended_bits)
    estimate = AdaptiveBitPushing(encoder).estimate(values, rng)
    degenerate = np.all((estimate.bit_means < 0.01) | (estimate.bit_means > 0.99))
    print(f"== {spec.name}: {spec.description}")
    print(f"   estimate {estimate.value:.1f}; every bit mean is ~0 or ~1 -> "
          f"constant feature detected: {degenerate} "
          f"(mean/variance queries can be skipped offline)\n")


def main() -> None:
    rng = np.random.default_rng(7)
    monitor_retry_count(rng)
    monitor_latency_regression(rng)
    detect_constant_metric(rng)


if __name__ == "__main__":
    main()
