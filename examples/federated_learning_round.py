"""Federated learning with one-bit gradient aggregation.

The paper's very first motivation: "federated learning computes sample
means for gradient updates" (Section 1).  Here 30,000 simulated devices
train a logistic-regression model collaboratively.  Each round, every
device computes its local gradient, and the server estimates the *mean
gradient* with :class:`VectorMeanEstimator` — every device reveals exactly
one bit of one (clipped, fixed-point-encoded) gradient coordinate.

We train three models side by side:

* exact-gradient SGD (no privacy; the baseline);
* bit-pushed SGD (one bit per device per round);
* bit-pushed SGD + epsilon=4 randomized response on every transmitted bit.

Run:  python examples/federated_learning_round.py
"""

import numpy as np

from repro.core import FixedPointEncoder, VectorMeanEstimator
from repro.privacy import RandomizedResponse

N_DEVICES, N_FEATURES, N_ROUNDS, LR = 30_000, 8, 30, 1.0


def logistic_loss(X, y, w):
    z = X @ w
    return float(np.mean(np.log1p(np.exp(-np.abs(z))) + np.maximum(z, 0) - y * z))


def per_device_gradients(X, y, w):
    predictions = 1.0 / (1.0 + np.exp(-(X @ w)))
    return (predictions - y)[:, None] * X


def main() -> None:
    rng = np.random.default_rng(13)
    true_w = rng.normal(0.0, 1.0, N_FEATURES)
    X = rng.normal(0.0, 1.0, (N_DEVICES, N_FEATURES))
    y = (X @ true_w + rng.logistic(0, 1, N_DEVICES) > 0).astype(float)

    encoder = FixedPointEncoder.for_range(-2.0, 2.0, n_bits=10)   # gradient clip
    one_bit = VectorMeanEstimator(encoder, n_dims=N_FEATURES)
    one_bit_dp = VectorMeanEstimator(
        encoder, n_dims=N_FEATURES, perturbation=RandomizedResponse(epsilon=4.0)
    )

    weights = {"exact": np.zeros(N_FEATURES),
               "one-bit": np.zeros(N_FEATURES),
               "one-bit +4.0-LDP": np.zeros(N_FEATURES)}

    print(f"{'round':>5} {'exact':>10} {'one-bit':>10} {'one-bit+LDP':>12}")
    for round_index in range(N_ROUNDS):
        gradients = {name: per_device_gradients(X, y, w) for name, w in weights.items()}
        weights["exact"] -= LR * gradients["exact"].mean(axis=0)
        weights["one-bit"] -= LR * one_bit.estimate(gradients["one-bit"], rng).values
        weights["one-bit +4.0-LDP"] -= LR * one_bit_dp.estimate(
            gradients["one-bit +4.0-LDP"], rng
        ).values
        if round_index % 5 == 0 or round_index == N_ROUNDS - 1:
            losses = {name: logistic_loss(X, y, w) for name, w in weights.items()}
            print(f"{round_index:>5} {losses['exact']:>10.4f} "
                  f"{losses['one-bit']:>10.4f} {losses['one-bit +4.0-LDP']:>12.4f}")

    print("\nper-round disclosure per device: 1 bit of 1 clipped gradient")
    print("coordinate (plus randomized response in the LDP variant).")
    final = {name: logistic_loss(X, y, w) for name, w in weights.items()}
    gap = (final["one-bit"] - final["exact"]) / final["exact"]
    print(f"final loss gap vs exact gradients: {gap:+.1%} (one-bit), "
          f"{(final['one-bit +4.0-LDP'] - final['exact']) / final['exact']:+.1%} (LDP)")


if __name__ == "__main__":
    main()
