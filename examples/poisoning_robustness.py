"""Poisoning robustness: why the server should pick the bits (Section 5).

An attacker controlling a small fraction of clients wants to inflate the
estimated mean.  Under *local* randomness each corrupted client claims its
random draw landed on the most significant bit and reports 1 -- concentrated
leverage.  Under *central* randomness the server fixes each client's bit, so
a liar can only flip its one assigned bit.

With a uniform schedule the gap is roughly the bit depth; we sweep the
adversary fraction and print the attack-injected shift for both modes.

Run:  python examples/poisoning_robustness.py
"""

import numpy as np

from repro.attacks import poisoned_estimate
from repro.core import BitSamplingSchedule, FixedPointEncoder


def main() -> None:
    rng = np.random.default_rng(3)
    encoder = FixedPointEncoder.for_integers(12)
    schedule = BitSamplingSchedule.uniform(12)
    values = np.clip(rng.normal(500.0, 80.0, 20_000), 0.0, None)
    print(f"population: n={values.size}, true mean {values.mean():.1f}, "
          f"12-bit encoding, uniform schedule")
    print(f"\n{'adversaries':>12} {'local shift':>14} {'central shift':>14} {'leverage':>9}")

    for fraction in (0.001, 0.002, 0.005, 0.01, 0.02, 0.05):
        shifts = {}
        for mode in ("local", "central"):
            runs = [
                poisoned_estimate(
                    values, encoder, fraction, randomness=mode,
                    schedule=schedule, rng=rng,
                ).attack_shift
                for _ in range(15)
            ]
            shifts[mode] = float(np.mean(runs))
        leverage = shifts["local"] / shifts["central"] if shifts["central"] else float("inf")
        print(f"{fraction:>11.1%} {shifts['local']:>+14.1f} "
              f"{shifts['central']:>+14.1f} {leverage:>8.1f}x")

    print("\ncentral (server-chosen) randomness caps each adversary at its")
    print("assigned bit; local randomness lets every adversary claim the MSB.")


if __name__ == "__main__":
    main()
