"""Quickstart: estimate a population mean from one bit per client.

This is the paper's headline capability in ~20 lines: 10,000 simulated
clients each hold a private value; the server learns the mean to within a
fraction of a percent while each client reveals exactly one binary digit of
its (clipped, fixed-point-encoded) value -- optionally behind an epsilon-LDP
randomized-response guarantee.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    AdaptiveBitPushing,
    BasicBitPushing,
    FixedPointEncoder,
    RandomizedResponse,
)


def main() -> None:
    rng = np.random.default_rng(2024)

    # 10k clients, each holding one private value (e.g. an app-latency ms).
    values = np.clip(rng.normal(420.0, 80.0, size=10_000), 0.0, None)
    print(f"population:      n={values.size}, true mean = {values.mean():.3f}")

    # Encode values on a 10-bit grid (0..1023); larger values would clip.
    encoder = FixedPointEncoder.for_integers(n_bits=10)

    # --- Basic bit-pushing (Algorithm 1): one round, one bit per client. ---
    basic = BasicBitPushing(encoder).estimate(values, rng)
    print(f"basic:           {basic.value:.3f}  "
          f"(error {abs(basic.value - values.mean()):.3f}, "
          f"{basic.total_reports} one-bit reports)")

    # --- Adaptive bit-pushing (Algorithm 2): a first round learns which
    # bits matter, a second round concentrates on them. ---
    adaptive = AdaptiveBitPushing(encoder).estimate(values, rng)
    print(f"adaptive:        {adaptive.value:.3f}  "
          f"(error {abs(adaptive.value - values.mean()):.3f}, "
          f"{len(adaptive.rounds)} rounds)")

    # --- The same, with a formal epsilon=2 local-DP guarantee: every bit
    # passes through randomized response before leaving the client. ---
    private = BasicBitPushing(
        encoder, perturbation=RandomizedResponse(epsilon=2.0)
    ).estimate(values, rng)
    print(f"basic + 2.0-LDP: {private.value:.3f}  "
          f"(error {abs(private.value - values.mean()):.3f})")

    # Every estimate carries full per-bit diagnostics.
    print("\nper-bit report counts (adaptive):", adaptive.counts.tolist())
    print("estimated bit means (adaptive):   ",
          np.round(adaptive.bit_means, 3).tolist())


if __name__ == "__main__":
    main()
