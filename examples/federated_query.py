"""A production-shaped federated query, end to end (Sections 3.3 and 4.3).

Builds a 6,000-device population (multiple local values per device,
regional attributes), then runs a single mean query through the full
deployment pipeline:

* eligibility filtering to one geography, with minimum-cohort enforcement;
* two-round adaptive bit-pushing with central (QMC) randomness;
* client dropout and a lossy, latency-bounded network;
* dropout-aware auto-adjustment of the bit-sampling probabilities;
* epsilon-LDP randomized response on every transmitted bit, plus bit
  squashing of the noise-dominated bit positions;
* per-bit counters aggregated through sharded pairwise-masked secure
  aggregation (Shamir-backed dropout recovery);
* a bit meter enforcing the worst-case promise: at most one private bit
  per device for this metric.

Run:  python examples/federated_query.py
"""

import numpy as np

from repro.core import FixedPointEncoder
from repro.federated import (
    ClientDevice,
    CohortSelector,
    DropoutModel,
    FederatedMeanQuery,
    NetworkModel,
    attribute_equals,
    ground_truth_mean,
)
from repro.privacy import BitMeter, RandomizedResponse


def build_population(rng: np.random.Generator, n: int = 6_000) -> list[ClientDevice]:
    population = []
    for i in range(n):
        n_readings = int(rng.integers(1, 6))
        readings = np.clip(rng.normal(180.0, 35.0, n_readings), 0.0, None)
        geo = rng.choice(["us", "eu", "apac"], p=[0.5, 0.3, 0.2])
        population.append(ClientDevice(i, readings, {"geo": str(geo)}))
    return population


def main() -> None:
    rng = np.random.default_rng(11)
    population = build_population(rng)
    us_devices = [c for c in population if c.attributes["geo"] == "us"]
    truth = ground_truth_mean([c.values for c in us_devices], strategy="sample")
    print(f"population: {len(population)} devices, {len(us_devices)} in 'us'")
    print(f"sampling-consistent ground truth (us): {truth:.3f}")

    meter = BitMeter(max_bits_per_value=1)
    query = FederatedMeanQuery(
        encoder=FixedPointEncoder.for_integers(9),        # clip at 511
        mode="adaptive",
        perturbation=RandomizedResponse(epsilon=4.0),     # per-bit LDP
        squash_multiple=2.0,                              # noise-bit filter
        dropout=DropoutModel(rate=0.15, jitter=0.03),
        network=NetworkModel(loss_rate=0.05, latency_median_s=90.0, deadline_s=900.0),
        selector=CohortSelector(min_cohort_size=1_000),
        meter=meter,
        min_reports_per_bit=15,                           # dropout-aware floor
        secure_aggregation=True,
        shard_size=24,
        metric_name="reading",
    )

    estimate = query.run(population, rng=rng, eligibility=attribute_equals("geo", "us"))

    print(f"\nestimate: {estimate.value:.3f} "
          f"(relative error {abs(estimate.value - truth) / truth:.2%})")
    print(f"cohort: {estimate.metadata['cohort_size']} devices; "
          f"per-round dropout: "
          f"{[f'{d:.1%}' for d in estimate.metadata['dropout_rates']]}")
    print(f"wall-clock (simulated): {estimate.metadata['total_duration_s']:.0f} s "
          f"across {len(estimate.rounds)} rounds")
    print(f"squashed noise bits: {list(estimate.squashed_bits)}")
    print(f"privacy: ldp={estimate.metadata['ldp']}, "
          f"secure aggregation={estimate.metadata['secure_aggregation']}, "
          f"total private bits disclosed: {meter.total_bits} "
          f"(<= 1 per participating device)")


if __name__ == "__main__":
    main()
