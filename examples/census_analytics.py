"""Private census analytics with three privacy postures (Sections 3.3, 4.2).

Estimates the mean age of a census-style population under:

1. **Data minimization only** -- one bit per person, no noise.  The
   worst-case promise (a single binary digit) is enforced by the bit meter.
2. **Local DP** -- randomized response on every bit (epsilon = 1), debiased
   server-side, with the epsilon ledger recording the spend.
3. **Distributed DP** -- noise-free bits protected by the aggregation
   boundary, with Bernoulli noise added to the per-bit histograms
   (epsilon = 1, delta = 1e-6): far less error than local DP at equal
   epsilon.

Run:  python examples/census_analytics.py
"""

import numpy as np

from repro.core import (
    BasicBitPushing,
    BitSamplingSchedule,
    FixedPointEncoder,
)
from repro.data.census import sample_ages
from repro.experiments.methods import distributed_mean_estimate
from repro.privacy import (
    BernoulliNoiseAggregator,
    BitMeter,
    PrivacyAccountant,
    RandomizedResponse,
)


def main() -> None:
    rng = np.random.default_rng(42)
    n_clients, n_bits, epsilon = 100_000, 8, 1.0
    ages = sample_ages(n_clients, rng)
    truth = ages.mean()
    encoder = FixedPointEncoder.for_integers(n_bits)
    accountant = PrivacyAccountant(epsilon_budget=2.0)
    meter = BitMeter(max_bits_per_value=1)

    print(f"census population: n={n_clients}, true mean age {truth:.3f}\n")

    # 1. Data minimization only: one true bit per person.
    plain = BasicBitPushing(encoder).estimate(ages, rng)
    for person in range(n_clients):
        meter.record(person, "age")       # one bit each -- the meter enforces it
    print(f"1. one-bit, no noise:   {plain.value:.3f} "
          f"(err {abs(plain.value - truth):.3f}); "
          f"bits disclosed per person: 1 (metered, total {meter.total_bits})")

    # 2. Local DP: randomized response on the transmitted bit.
    accountant.spend(epsilon, note="local randomized response, age query")
    local = BasicBitPushing(
        encoder, perturbation=RandomizedResponse(epsilon=epsilon)
    ).estimate(ages, rng)
    print(f"2. local DP (eps=1):    {local.value:.3f} "
          f"(err {abs(local.value - truth):.3f}); "
          f"ledger: spent eps={accountant.spent_epsilon:g}, "
          f"remaining {accountant.remaining_epsilon:g}")

    # 3. Distributed DP: histogram noise inside the aggregation boundary.
    accountant.spend(epsilon, delta=1e-6, note="distributed Bernoulli noise, age query")
    mechanism = BernoulliNoiseAggregator(epsilon=epsilon, delta=1e-6)
    distributed = distributed_mean_estimate(ages, n_bits, mechanism, rng)
    print(f"3. distributed DP:      {distributed:.3f} "
          f"(err {abs(distributed - truth):.3f}); "
          f"{mechanism.noise_bits_per_index} noise bits per histogram index")

    print("\nat equal epsilon, distributed DP noise is aggregate-level, so its")
    print("error is a small fraction of the local-DP error (Section 3.3).")

    # Bonus: what the server actually learns -- per-bit counts only.
    schedule = BitSamplingSchedule.weighted(n_bits, alpha=1.0)
    print(f"\nserver-side view is just {n_bits} (count, sum) pairs; schedule "
          f"p_j = {np.round(schedule.probabilities, 4).tolist()}")


if __name__ == "__main__":
    main()
