"""Figure 1 benches: accuracy on Normal data (paper Section 4.1).

Paper claims checked here:

* 1a -- the adaptive approach reliably achieves (near-)least error across
  the mean sweep; dithering's error steps up around powers of two.
* 1b -- for variance estimation, dithering is orders of magnitude worse
  (it cannot adapt to the scale of the squared values); adaptive is best.
* 1c -- one-round methods grow in error with the bit depth (less for
  alpha=0.5 than alpha=1.0); adaptive is largely oblivious to it.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments import figure_1a, figure_1b, figure_1c, render_series_table

REPS = 25


def _mean_over_sweep(series) -> float:
    return float(np.mean(series.nrmse))


def test_figure_1a(benchmark, emit):
    results = run_once(
        benchmark,
        lambda: figure_1a(n_clients=5_000, n_reps=REPS),
    )
    emit("figure_1a", render_series_table("Figure 1a — mean NRMSE vs mu (Normal, sigma=100)", results, x_name="mu"))

    # Adaptive is the most accurate method on average over the sweep.
    averages = {label: _mean_over_sweep(series) for label, series in results.items()}
    assert averages["adaptive"] <= min(averages.values()) * 1.25
    # Everyone lands in a sane accuracy regime at n=5k.
    assert averages["adaptive"] < 0.05


def test_figure_1b(benchmark, emit):
    results = run_once(
        benchmark,
        lambda: figure_1b(n_clients=30_000, n_reps=10),
    )
    emit("figure_1b", render_series_table("Figure 1b — variance NRMSE vs mu (Normal, sigma=100)", results, x_name="mu"))

    averages = {label: _mean_over_sweep(series) for label, series in results.items()}
    # Dithering cannot adapt to the squared scale: orders of magnitude worse.
    assert averages["dithering"] > 10 * averages["adaptive"]
    # Adaptive is the best bit-pushing variant.
    assert averages["adaptive"] <= min(
        averages["weighted a=0.5"], averages["weighted a=1.0"]
    ) * 1.25


def test_figure_1c(benchmark, emit):
    results = run_once(
        benchmark,
        lambda: figure_1c(n_clients=5_000, n_reps=REPS),
    )
    emit("figure_1c", render_series_table("Figure 1c — mean NRMSE vs bit depth (Normal mu=1000)", results, x_name="bits"))

    def growth(label):
        series = results[label]
        return series.nrmse[-1] / series.nrmse[0]

    # One-round methods grow with bit depth; alpha=1.0 grows faster than 0.5.
    assert growth("weighted a=1.0") > 2.0
    assert growth("weighted a=1.0") > growth("weighted a=0.5")
    # Adaptive is largely oblivious to added slack bits.
    assert growth("adaptive") < 2.5
    # At the deepest setting adaptive clearly beats the one-round methods.
    assert results["adaptive"].nrmse[-1] < results["weighted a=1.0"].nrmse[-1]
