"""Ablation benches over the paper's design choices (see DESIGN.md §2)."""

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments import (
    alpha_sweep,
    b_send_sweep,
    caching_ablation,
    delta_sweep,
    distributed_dp_comparison,
    gamma_sweep,
    poisoning_sweep,
    render_series_table,
    schedule_sensitivity,
    variance_decomposition,
)

REPS = 25


def test_delta_split(benchmark, emit):
    """Section 3.2: the analysis-guided delta = 1/3 should be competitive
    with (or better than) the naive 1/2 split."""
    results = run_once(benchmark, lambda: delta_sweep(n_clients=5_000, n_reps=REPS))
    emit("ablation_delta", render_series_table(
        "Ablation — adaptive NRMSE vs round-split delta", results, x_name="delta",
    ))
    series = results["adaptive"]
    by_delta = dict(zip(series.x, series.nrmse))
    third = by_delta[min(by_delta, key=lambda d: abs(d - 1 / 3))]
    assert third <= 1.5 * min(by_delta.values())


def test_alpha_gamma(benchmark, emit):
    """Schedule exponents: Lemma 3.3's alpha = 0.5 optimum; gamma default 0.5."""
    def run():
        return (
            gamma_sweep(n_clients=5_000, n_reps=REPS),
            alpha_sweep(n_clients=5_000, n_reps=REPS),
        )

    gammas, alphas = run_once(benchmark, run)
    emit("ablation_gamma", render_series_table(
        "Ablation — adaptive NRMSE vs round-1 gamma", gammas, x_name="gamma",
    ))
    emit("ablation_alpha", render_series_table(
        "Ablation — adaptive NRMSE vs round-2 alpha", alphas, x_name="alpha",
    ))
    alpha_series = alphas["adaptive"]
    by_alpha = dict(zip(alpha_series.x, alpha_series.nrmse))
    # alpha = 0.5 (the analytic optimum) should be close to the best.
    assert by_alpha[0.5] <= 1.5 * min(by_alpha.values())


def test_caching(benchmark, emit):
    """Section 3.2: pooling both rounds' reports should only help."""
    results = run_once(benchmark, lambda: caching_ablation(n_reps=REPS))
    emit("ablation_caching", render_series_table(
        "Ablation — caching vs round-2-only NRMSE", results, x_name="n",
    ))
    cached = np.mean(results["caching"].nrmse)
    uncached = np.mean(results["round-2 only"].nrmse)
    assert cached <= uncached * 1.1


def test_b_send(benchmark, emit):
    """Corollary 3.2: error shrinks ~1/sqrt(b_send)."""
    results = run_once(benchmark, lambda: b_send_sweep(n_clients=5_000, n_reps=REPS))
    emit("ablation_b_send", render_series_table(
        "Ablation — basic NRMSE vs bits sent per client", results, x_name="b_send",
    ))
    series = results["basic"]
    # 8 bits per client vs 1: expect ~sqrt(8) = 2.8x improvement (allow slack).
    assert series.nrmse[-1] < series.nrmse[0] / 1.8


def test_variance_decomposition(benchmark, emit):
    """Lemma 3.5: centered decomposition beats moments."""
    results = run_once(
        benchmark, lambda: variance_decomposition(cohorts=(10_000, 50_000), n_reps=REPS)
    )
    emit("ablation_variance_decomposition", render_series_table(
        "Ablation — variance NRMSE, centered vs moments", results, x_name="n",
    ))
    assert np.mean(results["centered"].nrmse) < np.mean(results["moments"].nrmse)


def test_poisoning(benchmark, emit):
    """Section 5: central randomness cuts MSB-forcing leverage (uniform schedule)."""
    results = run_once(benchmark, lambda: poisoning_sweep(n_clients=5_000, n_reps=15))
    emit("ablation_poisoning", render_series_table(
        "Ablation — poisoning-injected relative error, local vs central randomness",
        results, x_name="adversary fraction",
    ))
    # Compare the attack-injected error at the largest adversary fraction.
    local = results["local"].nrmse[-1]
    central = results["central"].nrmse[-1]
    assert local > 3 * central


def test_schedule_sensitivity(benchmark, emit):
    """Section 4.3: the protocol is 'not overly sensitive to the
    bit-sampling probability' -- blending the schedule toward uniform moves
    the error by a small factor, not a cliff."""
    results = run_once(benchmark, lambda: schedule_sensitivity(n_clients=5_000, n_reps=REPS))
    emit("ablation_schedule_sensitivity", render_series_table(
        "Ablation — NRMSE vs schedule blend toward uniform",
        results, x_name="uniform mix fraction",
    ))
    series = results["basic"]
    assert max(series.nrmse) < 3 * min(series.nrmse)


def test_distributed_dp(benchmark, emit):
    """Section 3.3: distributed DP error sits well below local RR at equal eps."""
    results = run_once(
        benchmark, lambda: distributed_dp_comparison(n_clients=50_000, n_reps=REPS)
    )
    emit("ablation_distributed_dp", render_series_table(
        "Ablation — NRMSE under local RR vs distributed DP (census)",
        results, x_name="eps",
    ))
    for label in ("bernoulli noise", "sample+threshold"):
        assert np.mean(results[label].nrmse) < np.mean(results["local RR"].nrmse), label
