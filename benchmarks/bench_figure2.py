"""Figure 2 benches: accuracy on census-style ages (paper Section 4.1).

Paper claims checked here:

* 2a -- NRMSE decays ~n^-1/2; a few thousand clients reach ~3% for a 10-bit
  quantity and 10k reports are comfortably below 1%.
* 2b -- variance NRMSE also decays with n; adaptive is more variable at
  small n but best overall.
* 2c -- adaptive handles growing bit depth best.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments import figure_2a, figure_2b, figure_2c, render_series_table

REPS = 25
COHORTS = (1_000, 2_000, 5_000, 10_000, 20_000)


def test_figure_2a(benchmark, emit):
    results = run_once(
        benchmark,
        lambda: figure_2a(cohorts=COHORTS, n_reps=REPS),
    )
    emit("figure_2a", render_series_table("Figure 2a — census mean NRMSE vs n", results, x_name="n"))

    adaptive = results["adaptive"]
    # Headline numbers: a few percent at a few thousand clients, ~1% by
    # 10k-20k.  (Our census stand-in has mean ~35, a small normalizer, so
    # NRMSE runs slightly above the paper's quoted <1%-at-10k; the n^-1/2
    # shape is the claim under test.)
    assert adaptive.nrmse[0] < 0.05
    at_10k = adaptive.nrmse[COHORTS.index(10_000)]
    assert at_10k < 0.02
    assert adaptive.nrmse[-1] < 0.012
    # ~n^-1/2 decay: 20x the clients should cut error by ~4.5x (allow slack).
    assert adaptive.nrmse[-1] < adaptive.nrmse[0] / 2.0


def test_figure_2b(benchmark, emit):
    results = run_once(
        benchmark,
        lambda: figure_2b(cohorts=COHORTS, n_reps=15),
    )
    emit("figure_2b", render_series_table("Figure 2b — census variance NRMSE vs n", results, x_name="n"))

    adaptive = results["adaptive"]
    # Errors decay with n and the adaptive method ends up accurate.
    assert adaptive.nrmse[-1] < adaptive.nrmse[0]
    assert adaptive.nrmse[-1] < 0.1
    # Dithering is far worse throughout (cannot adapt to squared scale).
    assert np.mean(results["dithering"].nrmse) > 5 * np.mean(adaptive.nrmse)


def test_figure_2c(benchmark, emit):
    results = run_once(
        benchmark,
        lambda: figure_2c(n_clients=5_000, n_reps=REPS),
    )
    emit("figure_2c", render_series_table("Figure 2c — census mean NRMSE vs bit depth", results, x_name="bits"))

    # Adaptive handles the growing bit depth (roughly tied-)best at depth 20;
    # dithering and the aggressive weighted allocation blow up.
    final = {label: series.nrmse[-1] for label, series in results.items()}
    assert final["adaptive"] <= min(final.values()) * 1.2
    assert final["dithering"] > 20 * final["adaptive"]
    assert final["weighted a=1.0"] > 2 * final["adaptive"]
