"""Benches for streaming aggregation and vector (FL-gradient) means."""

import numpy as np

from benchmarks.conftest import run_once
from repro.core import FixedPointEncoder, VectorMeanEstimator
from repro.federated import BitReport, StreamingAggregator
from repro.privacy import RandomizedResponse


def test_streaming_throughput(benchmark, emit):
    """Asynchronous accumulation: fold 50k reports, snapshot, stay exact."""
    encoder = FixedPointEncoder.for_integers(10)
    value = 777
    reports = [
        BitReport(client, client % 10, (value >> (client % 10)) & 1)
        for client in range(50_000)
    ]

    def run():
        agg = StreamingAggregator(encoder)
        agg.submit_many(reports)
        return agg.estimate()

    estimate = run_once(benchmark, run)
    assert abs(estimate.value - value) < 1e-9
    emit("streaming", (
        "### Asynchronous (streaming) aggregation\n\n"
        f"- reports folded: 50,000 (one at a time, any order)\n"
        f"- snapshot estimate: {estimate.value:.1f} (true {value})\n"
    ))


def test_vector_gradient_mean(benchmark, emit):
    """FL gradient aggregation: d=16 mean from one bit per device."""
    rng = np.random.default_rng(0)
    d = 16
    means = rng.uniform(-0.5, 0.5, d)
    gradients = rng.normal(means, 0.1, size=(50_000, d))
    encoder = FixedPointEncoder.for_range(-1.0, 1.0, n_bits=10)

    def run():
        plain = VectorMeanEstimator(encoder, n_dims=d).estimate(gradients, rng)
        private = VectorMeanEstimator(
            encoder, n_dims=d, perturbation=RandomizedResponse(epsilon=4.0)
        ).estimate(gradients, rng)
        return plain, private

    plain, private = run_once(benchmark, run)
    truth = gradients.mean(axis=0)
    emit("vector_mean", (
        "### Vector (gradient) mean, d=16, n=50k, one bit per device\n\n"
        f"- L2 error, plain: {plain.l2_error(truth):.4f}\n"
        f"- L2 error, eps=4 LDP: {private.l2_error(truth):.4f}\n"
        f"- reports per coordinate: ~{int(plain.reports_per_dim.mean())}\n"
    ))
    assert plain.l2_error(truth) < 0.05
    assert private.l2_error(truth) < 0.2
