"""Figure 4 benches: bit squashing under DP (paper Sections 3.3 / 4.2).

Paper claims checked here:

* 4a -- squash thresholds in the sweet spot improve accuracy by a large
  factor (paper: "almost two orders of magnitude") over no squashing.
* 4b -- the noisy bit-mean histogram shows a dense signal region at low
  bits, pure-noise estimates above, and some estimates escaping [0, 1].
* 4c -- with squashing, the adaptive approach maintains accuracy as bit
  depth grows, while non-squashing methods grow with the noisy magnitude.
"""

from benchmarks.conftest import run_once
from repro.experiments import (
    figure_4a,
    figure_4b,
    figure_4c,
    render_series_table,
    render_snapshot,
)

REPS = 25


def test_figure_4a(benchmark, emit):
    results = run_once(
        benchmark,
        lambda: figure_4a(n_clients=10_000, n_reps=REPS),
    )
    emit("figure_4a", render_series_table(
        "Figure 4a — census RMSE vs squash threshold (eps=2, b=16)",
        results, metric="rmse", x_name="noise multiple",
    ))

    squash = results["adaptive+squash"]
    no_squash_rmse = squash.rmse[0]   # multiple = 0 disables squashing
    best = min(squash.rmse[1:])
    # Squashing in the sweet spot improves accuracy by a large factor.
    assert best < no_squash_rmse / 10


def test_figure_4b(benchmark, emit):
    snapshot = run_once(benchmark, lambda: figure_4b(n_clients=10_000))
    emit("figure_4b", render_snapshot(snapshot, title="Figure 4b — noisy bit means (eps=2, b=16)"))

    # Dense signal region at the low bits (ages occupy ~7 bits)...
    assert snapshot.true_bit_means[:6].min() > 0.05
    # ...pure noise above it, flagged for squashing...
    assert set(snapshot.noisy_bits) >= set(range(10, 16))
    # ...and at least one estimate escaped [0, 1], as in the paper's plot.
    assert snapshot.out_of_unit_bits.size > 0


def test_figure_4c(benchmark, emit):
    results = run_once(
        benchmark,
        lambda: figure_4c(n_clients=10_000, n_reps=REPS),
    )
    emit("figure_4c", render_series_table(
        "Figure 4c — census RMSE vs bit depth under DP (eps=2)",
        results, metric="rmse", x_name="bits",
    ))

    squash = results["adaptive+squash"]
    # Squashing keeps accuracy roughly level across the depth sweep (a
    # single-digit factor over a 4096x range increase).
    assert squash.rmse[-1] < 8 * squash.rmse[0]
    # Non-squashing methods grow strongly with depth (~2^b scaling).
    for label in ("dithering", "weighted a=0.5", "weighted a=1.0", "piecewise"):
        assert results[label].rmse[-1] > 10 * results[label].rmse[0], label
    # At depth 20 the squashing method wins by a wide margin.
    final = {label: series.rmse[-1] for label, series in results.items()}
    assert final["adaptive+squash"] < 0.2 * min(
        v for k, v in final.items() if k != "adaptive+squash"
    )
