"""Federated-substrate benches: dropout adjustment and secure aggregation."""

import numpy as np

from benchmarks.conftest import run_once
from repro.core import FixedPointEncoder
from repro.experiments import dropout_adjustment, render_series_table
from repro.federated import ClientDevice, FederatedMeanQuery, ground_truth_mean, secure_sum


def test_dropout_adjustment(benchmark, emit):
    """Section 4.3: sampling probabilities auto-adjusted for dropout keep
    utility under heavy dropout."""
    results = run_once(
        benchmark, lambda: dropout_adjustment(n_clients=4_000, n_reps=20)
    )
    emit("federated_dropout", render_series_table(
        "Federated — adaptive NRMSE vs dropout rate, schedule adjustment on/off",
        results, x_name="dropout rate",
    ))
    # Both configurations must stay usable across the dropout sweep; the
    # adjusted variant should not lose to the unadjusted one overall.
    adjusted = np.mean(results["adjusted"].nrmse)
    unadjusted = np.mean(results["unadjusted"].nrmse)
    assert adjusted < 0.2
    assert adjusted <= unadjusted * 1.25


def test_secure_aggregation_roundtrip(benchmark, emit):
    """Secure aggregation recovers exact sums under 25% dropout."""
    rng = np.random.default_rng(0)
    vectors = rng.integers(0, 1_000, size=(48, 20))
    submitted = rng.random(48) >= 0.25

    def run():
        return secure_sum(vectors, submitted, threshold=24, rng=1)

    total = run_once(benchmark, run)
    expected = vectors[submitted].sum(axis=0)
    np.testing.assert_array_equal(total, expected)
    emit("federated_secure_agg", (
        "### Secure aggregation round-trip\n\n"
        f"- clients: 48, dropouts: {int((~submitted).sum())}, threshold: 24\n"
        f"- recovered sums exactly: True\n"
    ))


def test_federated_query_end_to_end(benchmark, emit):
    """A full federated adaptive query (the deployment configuration) stays
    within a few percent of the sampling ground truth."""
    rng = np.random.default_rng(1)
    population = [
        ClientDevice(i, np.clip(rng.normal(200.0, 40.0, rng.integers(1, 4)), 0, None))
        for i in range(5_000)
    ]
    query = FederatedMeanQuery(FixedPointEncoder.for_integers(9), mode="adaptive")
    truth = ground_truth_mean([c.values for c in population])

    estimate = run_once(benchmark, lambda: query.run(population, rng=2))
    rel_err = abs(estimate.value - truth) / truth
    emit("federated_end_to_end", (
        "### Federated adaptive query, end to end\n\n"
        f"- ground truth: {truth:.3f}\n"
        f"- estimate: {estimate.value:.3f} (relative error {rel_err:.4f})\n"
        f"- rounds: {len(estimate.rounds)}, cohort: {estimate.n_clients}\n"
    ))
    assert rel_err < 0.05
