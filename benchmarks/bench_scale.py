"""Scaling study: accuracy, wall-time, and client-plane throughput vs n.

Not a paper figure, but the operational question behind Figure 2a and the
deployment's "10s of thousands of devices" remark: how do error and server
cost scale with n?  The table doubles as a regression guard on the
vectorized hot path (the whole protocol should stay sub-linear in wall time
relative to naive per-client loops).

``test_columnar_round_throughput`` is the columnar client plane's scale
trajectory: clients/sec for full federated rounds over one struct-of-arrays
:class:`~repro.core.client_plane.ClientBatch` at each population size in
``REPRO_SCALE_CLIENTS`` (default ``100000,1000000``; ``make bench-scale``
raises it to 10**7), the object-path reference at 10**6 for the speedup
ratio, and a tracemalloc pass at the largest size proving the round's
allocations stay a small constant per client (chunked streaming, no
cohort x bits blowup).  The raw numbers land in
``benchmarks/results/scale.json``; ``scripts/bench_summary.py --scale``
appends them to the repo-root ``BENCH_scale.json`` trajectory.
"""

import asyncio
import json
import os
import time
import tracemalloc

import numpy as np

from benchmarks.conftest import RESULTS_DIR, run_once
from repro.core import AdaptiveBitPushing, ClientBatch, FixedPointEncoder
from repro.core.client_plane import batch_chunk_size
from repro.data.census import sample_ages
from repro.federated import ClientDevice, FederatedMeanQuery

COHORTS = (1_000, 10_000, 100_000, 1_000_000)

#: Object-path reference size for the columnar speedup ratio.
REFERENCE_N = 1_000_000


def test_accuracy_and_walltime_scaling(benchmark, emit):
    rng = np.random.default_rng(0)
    encoder = FixedPointEncoder.for_integers(10)
    estimator = AdaptiveBitPushing(encoder)

    def run():
        rows = []
        for n in COHORTS:
            errors = []
            start = time.perf_counter()
            reps = 10 if n <= 100_000 else 3
            for _ in range(reps):
                ages = sample_ages(n, rng)
                errors.append(
                    (estimator.estimate(ages, rng).value - ages.mean()) / ages.mean()
                )
            elapsed = (time.perf_counter() - start) / reps
            rows.append((n, float(np.sqrt(np.mean(np.square(errors)))), elapsed))
        return rows

    rows = run_once(benchmark, run)
    lines = ["### Scaling: adaptive bit-pushing on census ages", "",
             "| n clients | NRMSE | s per estimate (incl. data gen) |", "|---|---|---|"]
    for n, nrmse, seconds in rows:
        lines.append(f"| {n:,} | {nrmse:.4f} | {seconds:.3f} |")
    emit("scaling", "\n".join(lines) + "\n")

    # Error decays with n (n^-1/2 shape); a million clients stay sub-second.
    nrmses = [r[1] for r in rows]
    assert nrmses[-1] < nrmses[0] / 5
    assert rows[-1][2] < 2.0


def _scale_sizes() -> tuple[int, ...]:
    raw = os.environ.get("REPRO_SCALE_CLIENTS", "").strip()
    if not raw:
        return (100_000, REFERENCE_N)
    return tuple(sorted({int(tok) for tok in raw.split(",") if tok.strip()}))


def _merge_scale_payload(update: dict) -> None:
    """Merge ``update`` into ``scale.json`` so the columnar and secure-agg
    studies can run in either order (or alone) without clobbering each
    other's sections."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "scale.json"
    try:
        payload = json.loads(path.read_text())
    except (FileNotFoundError, json.JSONDecodeError):
        payload = {}
    payload.update(update)
    path.write_text(json.dumps(payload, indent=2) + "\n")


def _columnar_population(n: int, rng: np.random.Generator) -> ClientBatch:
    return ClientBatch.from_values(np.clip(rng.normal(600.0, 100.0, n), 0.0, None))


def _object_population(n: int, rng: np.random.Generator) -> list[ClientDevice]:
    values = np.clip(rng.normal(600.0, 100.0, n), 0.0, None)
    return [ClientDevice(i, values[i : i + 1]) for i in range(n)]


def _timed_round(query: FederatedMeanQuery, population, seed: int) -> float:
    start = time.perf_counter()
    query.run(population, rng=seed)
    return time.perf_counter() - start


def test_columnar_round_throughput(benchmark, emit):
    sizes = _scale_sizes()
    chunk = batch_chunk_size()
    encoder = FixedPointEncoder.for_integers(10)
    query = FederatedMeanQuery(encoder, mode="basic")
    rng = np.random.default_rng(12)

    def run():
        columnar = {}
        for n in sizes:
            population = _columnar_population(n, rng)
            # Best of two: the first pass over a fresh 8 B/client population
            # pays cold page faults the object path never sees.
            elapsed = min(_timed_round(query, population, seed=3) for _ in range(2))
            columnar[n] = {"seconds": elapsed, "clients_per_s": n / elapsed}

        # Object-path reference at 10**6 (or the largest size benched, if
        # smaller): same round, population as N ClientDevice objects.
        n_ref = min(REFERENCE_N, max(sizes))
        object_seconds = _timed_round(query, _object_population(n_ref, rng), seed=3)

        # Memory-boundedness: re-run the largest columnar round under
        # tracemalloc, started *after* the population is built, so the peak
        # counts only what the round itself allocates.
        n_top = max(sizes)
        population = _columnar_population(n_top, rng)
        tracemalloc.start()
        query.run(population, rng=3)
        _, peak_bytes = tracemalloc.get_traced_memory()
        tracemalloc.stop()

        return columnar, n_ref, object_seconds, n_top, peak_bytes

    columnar, n_ref, object_seconds, n_top, peak_bytes = run_once(benchmark, run)
    speedup = object_seconds / columnar[n_ref]["seconds"]
    bytes_per_client = peak_bytes / n_top

    payload = {
        "chunk": chunk,
        "columnar": {str(n): row for n, row in columnar.items()},
        "object_reference": {"n": n_ref, "seconds": object_seconds},
        "speedup_vs_object": speedup,
        "tracemalloc": {"n": n_top, "peak_bytes": peak_bytes,
                        "peak_bytes_per_client": bytes_per_client},
    }
    _merge_scale_payload(payload)

    lines = [
        "### Columnar client plane: round throughput",
        "",
        f"(chunk = {chunk} clients; object reference at n = {n_ref:,}: "
        f"{object_seconds:.2f} s)",
        "",
        "| n clients | s per round | clients/sec |",
        "|---|---|---|",
    ]
    for n, row in columnar.items():
        lines.append(f"| {n:,} | {row['seconds']:.3f} | {row['clients_per_s']:,.0f} |")
    lines += [
        "",
        f"speedup vs object path at n = {n_ref:,}: {speedup:.1f}x",
        f"tracemalloc peak at n = {n_top:,}: {peak_bytes / 1e6:.1f} MB "
        f"({bytes_per_client:.0f} B/client)",
    ]
    emit("scale_columnar", "\n".join(lines) + "\n")

    # The tentpole claims: >= 10x the object path at the reference size, and
    # round allocations a small constant per client (no n x bits temporaries
    # -- the object path burns ~500+ B/client on devices alone).
    assert speedup >= 10.0, f"columnar speedup {speedup:.1f}x below 10x target"
    assert bytes_per_client < 150.0, (
        f"round peak {bytes_per_client:.0f} B/client; chunked streaming should "
        "stay well under 150 B/client"
    )


#: Secure-aggregation study size: the acceptance target is >= 5x the
#: per-client loop's clients/sec at 10**4 clients.
SECURE_N = 10_000
SECURE_VECTOR_LENGTH = 16
SECURE_SHARD_SIZE = 32


def test_secure_agg_throughput(benchmark, emit):
    """Hierarchical vectorized masking vs the per-client submit loop.

    Both paths run the identical protocol over the identical shard tree
    (same sessions, same seeds, same Shamir recovery) and must produce the
    same total; the only difference is ``submit_batch`` + array kernels vs
    one ``submit`` call per client.
    """
    from repro.federated.secure_agg import (
        SecureAggregationSession,
        default_threshold,
        hierarchical_secure_sum,
        shard_bounds,
    )

    rng = np.random.default_rng(17)
    vectors = rng.integers(0, 2, size=(SECURE_N, SECURE_VECTOR_LENGTH)).astype(np.int64)

    def per_client_loop() -> tuple[np.ndarray, float]:
        start = time.perf_counter()
        total = np.zeros(SECURE_VECTOR_LENGTH, dtype=np.int64)
        for lo, hi in shard_bounds(SECURE_N, SECURE_SHARD_SIZE):
            k = hi - lo
            session = SecureAggregationSession(
                k,
                SECURE_VECTOR_LENGTH,
                threshold=default_threshold(k),
                rng=np.random.default_rng(lo),
            )
            for local in range(k):
                session.submit(local, [int(v) for v in vectors[lo + local]])
            total += np.asarray(session.finalize(), dtype=np.int64)
        return total, time.perf_counter() - start

    def run():
        # Best of two for the vectorized path (first pass pays warmup).
        vec_seconds = float("inf")
        for _ in range(2):
            start = time.perf_counter()
            result = hierarchical_secure_sum(
                vectors, shard_size=SECURE_SHARD_SIZE, rng=1
            )
            vec_seconds = min(vec_seconds, time.perf_counter() - start)
        loop_total, loop_seconds = per_client_loop()
        np.testing.assert_array_equal(result.total, vectors.sum(axis=0))
        np.testing.assert_array_equal(loop_total, vectors.sum(axis=0))
        return vec_seconds, loop_seconds, len(result.shards)

    vec_seconds, loop_seconds, n_shards = run_once(benchmark, run)
    vec_rate = SECURE_N / vec_seconds
    loop_rate = SECURE_N / loop_seconds
    speedup = loop_seconds / vec_seconds

    _merge_scale_payload(
        {
            "secure_agg": {
                "n": SECURE_N,
                "vector_length": SECURE_VECTOR_LENGTH,
                "shard_size": SECURE_SHARD_SIZE,
                "shards": n_shards,
                "seconds": vec_seconds,
                "clients_per_s": vec_rate,
                "per_client_loop": {
                    "seconds": loop_seconds,
                    "clients_per_s": loop_rate,
                },
                "speedup_vs_loop": speedup,
            }
        }
    )

    emit(
        "scale_secure",
        "\n".join(
            [
                "### Secure aggregation: hierarchical vectorized masking",
                "",
                f"(n = {SECURE_N:,} clients, vector length "
                f"{SECURE_VECTOR_LENGTH}, shard size {SECURE_SHARD_SIZE}, "
                f"{n_shards} shards)",
                "",
                "| path | s per round | clients/sec |",
                "|---|---|---|",
                f"| vectorized hierarchical | {vec_seconds:.3f} | {vec_rate:,.0f} |",
                f"| per-client submit loop | {loop_seconds:.3f} | {loop_rate:,.0f} |",
                "",
                f"speedup: {speedup:.1f}x",
            ]
        )
        + "\n",
    )

    assert speedup >= 5.0, (
        f"secure-agg vectorized path is {speedup:.1f}x the per-client loop; "
        "acceptance floor is 5x"
    )


#: Served-round study size: one TCP loopback round of SERVE_N wire clients,
#: plus SERVE_CAMPAIGNS concurrent independent campaigns in one event loop.
SERVE_N = 256
SERVE_CAMPAIGNS = 4


def test_served_round_throughput(benchmark, emit):
    """Wire-served rounds over loopback TCP: reports/sec, single and concurrent.

    Every report crosses a real socket through the full control-message +
    frame protocol (HELLO, ANNOUNCE, REPORTS, RESULT), so this measures the
    serving stack end to end.  The estimate must stay bit-identical to the
    deterministic in-process twin -- throughput never buys back correctness.
    """
    from repro.federated import (
        ClientFleet,
        RoundServer,
        ServeConfig,
        fleet_values,
        in_process_estimate,
        run_loopback,
    )

    values = fleet_values(SERVE_N, seed=3)
    cfg = ServeConfig(
        n_clients=SERVE_N, seed=7, deadline_s=30.0, registration_timeout_s=30.0
    )
    twin = in_process_estimate(values, cfg, fleet_seed=3)

    async def campaign(seed: int):
        config = ServeConfig(
            n_clients=SERVE_N, seed=seed, deadline_s=30.0, registration_timeout_s=30.0
        )
        server = RoundServer(config)
        port = await server.start()
        fleet = ClientFleet(values, seed=3)
        fleet_task = asyncio.create_task(fleet.run(config.host, port))
        served = await server.serve_round()
        await fleet_task
        await server.close()
        return served

    async def concurrent_campaigns():
        return await asyncio.gather(
            *(campaign(seed) for seed in range(SERVE_CAMPAIGNS))
        )

    def run():
        # Best of two: the first round pays import/loop warmup.
        single_seconds = float("inf")
        for _ in range(2):
            start = time.perf_counter()
            served, fleet_result = run_loopback(cfg, values, fleet_seed=3)
            single_seconds = min(single_seconds, time.perf_counter() - start)
        assert served.estimate.value == twin.value
        assert fleet_result.uplinks_sent == SERVE_N
        start = time.perf_counter()
        all_served = asyncio.run(concurrent_campaigns())
        concurrent_seconds = time.perf_counter() - start
        assert all(s.surviving_clients == SERVE_N for s in all_served)
        return single_seconds, concurrent_seconds

    single_seconds, concurrent_seconds = run_once(benchmark, run)
    single_rate = SERVE_N / single_seconds
    concurrent_reports = SERVE_N * SERVE_CAMPAIGNS
    concurrent_rate = concurrent_reports / concurrent_seconds

    _merge_scale_payload(
        {
            "serve": {
                "n_clients": SERVE_N,
                "telemetry": cfg.telemetry,
                "seconds": single_seconds,
                "reports_per_s": single_rate,
                "campaigns": {
                    "count": SERVE_CAMPAIGNS,
                    "seconds": concurrent_seconds,
                    "reports_per_s": concurrent_rate,
                },
            }
        }
    )

    emit(
        "scale_serve",
        "\n".join(
            [
                "### Served rounds: loopback TCP throughput",
                "",
                f"(n = {SERVE_N} wire clients per round; estimate bit-identical "
                "to the in-process twin)",
                "",
                "| scenario | s per round | reports/sec |",
                "|---|---|---|",
                f"| single round | {single_seconds:.3f} | {single_rate:,.0f} |",
                f"| {SERVE_CAMPAIGNS} concurrent campaigns | "
                f"{concurrent_seconds:.3f} | {concurrent_rate:,.0f} |",
            ]
        )
        + "\n",
    )

    # Floor, not a target: a loopback round of 256 clients must clear 1k
    # reports/sec or the asyncio serving stack has a structural problem.
    assert single_rate > 1_000.0, f"served rate {single_rate:,.0f} reports/s below floor"
