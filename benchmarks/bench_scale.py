"""Scaling study: accuracy and wall-time as the cohort grows.

Not a paper figure, but the operational question behind Figure 2a and the
deployment's "10s of thousands of devices" remark: how do error and server
cost scale with n?  The table doubles as a regression guard on the
vectorized hot path (the whole protocol should stay sub-linear in wall time
relative to naive per-client loops).
"""

import time

import numpy as np

from benchmarks.conftest import run_once
from repro.core import AdaptiveBitPushing, FixedPointEncoder
from repro.data.census import sample_ages

COHORTS = (1_000, 10_000, 100_000, 1_000_000)


def test_accuracy_and_walltime_scaling(benchmark, emit):
    rng = np.random.default_rng(0)
    encoder = FixedPointEncoder.for_integers(10)
    estimator = AdaptiveBitPushing(encoder)

    def run():
        rows = []
        for n in COHORTS:
            errors = []
            start = time.perf_counter()
            reps = 10 if n <= 100_000 else 3
            for _ in range(reps):
                ages = sample_ages(n, rng)
                errors.append(
                    (estimator.estimate(ages, rng).value - ages.mean()) / ages.mean()
                )
            elapsed = (time.perf_counter() - start) / reps
            rows.append((n, float(np.sqrt(np.mean(np.square(errors)))), elapsed))
        return rows

    rows = run_once(benchmark, run)
    lines = ["### Scaling: adaptive bit-pushing on census ages", "",
             "| n clients | NRMSE | s per estimate (incl. data gen) |", "|---|---|---|"]
    for n, nrmse, seconds in rows:
        lines.append(f"| {n:,} | {nrmse:.4f} | {seconds:.3f} |")
    emit("scaling", "\n".join(lines) + "\n")

    # Error decays with n (n^-1/2 shape); a million clients stay sub-second.
    nrmses = [r[1] for r in rows]
    assert nrmses[-1] < nrmses[0] / 5
    assert rows[-1][2] < 2.0
