"""Benches for the paper's Section 3.4 extensions and the planning calculator.

These cover capabilities the paper mentions but does not plot: higher
moments / geometric means via bit-pushing, the one-bit histogram protocol,
and the offline analysis that "is sufficient to set the parameters"
(Section 4.3) -- predicted vs achieved accuracy.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.analysis import plan_cohort_size, predicted_nrmse
from repro.core import (
    BasicBitPushing,
    BitSamplingSchedule,
    FederatedHistogram,
    FixedPointEncoder,
    GeometricMeanEstimator,
    MomentEstimator,
    skewness,
)
from repro.privacy import BernoulliNoiseAggregator, RandomizedResponse


def test_extended_aggregates(benchmark, emit):
    """Moments, skewness, geometric mean: all within tolerance of the truth."""
    rng = np.random.default_rng(0)
    encoder = FixedPointEncoder.for_integers(8)

    def run():
        exp_values = rng.exponential(30.0, 300_000)
        norm_values = np.clip(rng.normal(100.0, 20.0, 300_000), 0, None)
        logn_values = rng.lognormal(3.0, 0.5, 300_000)
        rows = []
        m2 = MomentEstimator(encoder, order=2).estimate(norm_values, rng)
        rows.append(("2nd central moment (Normal)", norm_values.var(), m2.value))
        m3 = MomentEstimator(encoder, order=3).estimate(exp_values, rng)
        rows.append((
            "3rd central moment (Exp)",
            float(np.mean((exp_values - exp_values.mean()) ** 3)),
            m3.value,
        ))
        skew = skewness(exp_values, encoder, rng)
        rows.append(("skewness (Exp, true 2.0)", 2.0, skew))
        gm = GeometricMeanEstimator(0.0, 10.0).estimate(logn_values, rng)
        rows.append((
            "geometric mean (LogNormal)",
            float(np.exp(np.log(logn_values).mean())),
            gm.value,
        ))
        return rows

    rows = run_once(benchmark, run)
    lines = ["### Extended aggregates (Section 3.4)", "",
             "| aggregate | truth | one-bit estimate | rel. error |", "|---|---|---|---|"]
    for name, truth, estimate in rows:
        rel = abs(estimate - truth) / max(abs(truth), 1e-12)
        lines.append(f"| {name} | {truth:.4g} | {estimate:.4g} | {rel:.2%} |")
        assert rel < 0.5, name
    emit("extensions_aggregates", "\n".join(lines) + "\n")


def test_histogram_protocol(benchmark, emit):
    """One-bit histograms under the three privacy postures."""
    rng = np.random.default_rng(1)
    edges = np.linspace(0.0, 100.0, 11)

    def run():
        values = rng.normal(50.0, 12.0, 200_000)
        true_freq, _ = np.histogram(np.clip(values, 0, 99.99), bins=edges)
        true_freq = true_freq / values.size
        variants = {
            "plain": FederatedHistogram(edges),
            "local DP (eps=2)": FederatedHistogram(
                edges, perturbation=RandomizedResponse(epsilon=2.0)
            ),
            "distributed DP (eps=1)": FederatedHistogram(
                edges, distributed=BernoulliNoiseAggregator(1.0, 1e-6)
            ),
        }
        rows = []
        for name, hist in variants.items():
            est = hist.estimate(values, rng)
            l1 = float(np.abs(est.frequencies - true_freq).sum())
            rows.append((name, l1, est.mean_estimate(), values.mean()))
        return rows

    rows = run_once(benchmark, run)
    lines = ["### One-bit federated histograms", "",
             "| variant | L1 error | implied mean | true mean |", "|---|---|---|---|"]
    for name, l1, implied, truth in rows:
        lines.append(f"| {name} | {l1:.4f} | {implied:.2f} | {truth:.2f} |")
    emit("extensions_histogram", "\n".join(lines) + "\n")
    # Plain < distributed < local in L1 error, and all usable.
    l1s = {name: l1 for name, l1, *_ in rows}
    assert l1s["plain"] < l1s["local DP (eps=2)"]
    assert l1s["distributed DP (eps=1)"] < l1s["local DP (eps=2)"]
    assert all(l1 < 0.25 for l1 in l1s.values())


def test_covariance_protocol(benchmark, emit):
    """Covariance/correlation from one bit per client (Section 3.4 'products')."""
    from repro.core import CovarianceEstimator, VarianceEstimator

    rng = np.random.default_rng(4)
    enc = FixedPointEncoder.for_integers(8)

    def run():
        x = np.clip(rng.normal(100, 20, 600_000), 0, None)
        y = np.clip(0.7 * x + rng.normal(0, 10, x.size) + 15, 0, None)
        cov = CovarianceEstimator(enc, enc).estimate(x, y, rng)
        var_x = VarianceEstimator(enc).estimate(x, rng).value
        var_y = VarianceEstimator(enc).estimate(y, rng).value
        return (
            float(np.cov(x, y)[0, 1]), cov.value,
            float(np.corrcoef(x, y)[0, 1]), cov.correlation(var_x, var_y),
        )

    true_cov, est_cov, true_corr, est_corr = run_once(benchmark, run)
    emit("extensions_covariance", (
        "### Covariance / correlation (one bit per client)\n\n"
        f"| statistic | truth | estimate |\n|---|---|---|\n"
        f"| covariance | {true_cov:.1f} | {est_cov:.1f} |\n"
        f"| correlation | {true_corr:.3f} | {est_corr:.3f} |\n"
    ))
    assert abs(est_cov - true_cov) < 0.5 * abs(true_cov)
    assert abs(est_corr - true_corr) < 0.3


def test_quantile_protocol(benchmark, emit):
    """Bitwise median/percentiles: accurate, and robust where the raw mean
    is hostage to outliers (Section 4.3)."""
    from repro.core import QuantileEstimator
    from repro.data.telemetry import binary_with_outliers

    rng = np.random.default_rng(3)
    encoder = FixedPointEncoder.for_integers(10)

    def run():
        normal_values = np.clip(rng.normal(300.0, 60.0, 100_000), 0, None)
        rows = []
        for q in (0.1, 0.5, 0.9):
            est = QuantileEstimator(encoder, q=q).estimate(normal_values, rng)
            rows.append((f"p{int(q * 100)} (Normal)", float(np.quantile(normal_values, q)), est.value))
        outliers = binary_with_outliers(
            100_000, p_one=0.4, outlier_rate=1e-3, outlier_magnitude=1e6, rng=rng
        )
        med = QuantileEstimator(encoder, q=0.5).estimate(outliers, rng)
        rows.append(("median (outlier telemetry)", float(np.median(outliers)), med.value))
        rows.append(("(raw mean of the same data)", float(outliers.mean()), float("nan")))
        return rows

    rows = run_once(benchmark, run)
    lines = ["### Bitwise quantiles (one comparison bit per client)", "",
             "| statistic | truth | estimate |", "|---|---|---|"]
    for name, truth, estimate in rows:
        lines.append(f"| {name} | {truth:.3g} | {estimate:.3g} |")
    emit("extensions_quantile", "\n".join(lines) + "\n")
    for name, truth, estimate in rows[:3]:
        assert abs(estimate - truth) < 0.1 * truth + 5, name
    # The median of the outlier metric stays ~1 while the mean explodes.
    assert rows[3][2] <= 1.0
    assert rows[4][1] > 100.0


def test_cohort_planning(benchmark, emit):
    """plan_cohort_size: the planned n achieves the target NRMSE."""
    rng = np.random.default_rng(2)
    n_bits = 8
    encoder = FixedPointEncoder.for_integers(n_bits)
    schedule = BitSamplingSchedule.weighted(n_bits, 1.0)
    bit_means = np.full(n_bits, 0.5)    # uniform bytes

    def run():
        rows = []
        for target in (0.05, 0.02, 0.01):
            n = plan_cohort_size(target, bit_means, schedule)
            est = BasicBitPushing(encoder, schedule=schedule)
            rel = []
            for _ in range(150):
                values = rng.integers(0, 256, n).astype(float)
                rel.append((est.estimate(values, rng).value - 127.5) / 127.5)
            achieved = float(np.sqrt(np.mean(np.square(rel))))
            rows.append((target, n, predicted_nrmse(bit_means, schedule, n), achieved))
        return rows

    rows = run_once(benchmark, run)
    lines = ["### Cohort planning: predicted vs achieved NRMSE", "",
             "| target | planned n | predicted | achieved |", "|---|---|---|---|"]
    for target, n, predicted, achieved in rows:
        lines.append(f"| {target:.0%} | {n} | {predicted:.4f} | {achieved:.4f} |")
        assert achieved < target * 1.35
    emit("extensions_planning", "\n".join(lines) + "\n")
