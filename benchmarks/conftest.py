"""Shared helpers for the benchmark harness.

Each figure bench runs its experiment once (timed by pytest-benchmark),
prints the resulting series as a markdown table -- the tabular equivalent of
the paper's plot -- and saves it under ``benchmarks/results/`` for
EXPERIMENTS.md cross-referencing.  Shape assertions (who wins, what grows)
encode the paper's qualitative claims; exact values are Monte-Carlo and
environment dependent.

Benchmarks run at a reduced-but-meaningful scale so the whole suite
finishes in minutes; the EXPERIMENTS.md generator
(``python -m repro.experiments.generate``) runs the same code at full paper
scale.

Observability hook: set ``REPRO_BENCH_METRICS=1`` (or to an output path) to
run every bench with a live :class:`~repro.observability.MetricsRegistry`
and write the end-of-session snapshot as JSON (default:
``benchmarks/results/metrics_snapshot.json``).  Left unset, benches run
with the zero-overhead no-op instrumentation, so timings are undisturbed.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.observability import MetricsRegistry, instrumented

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture
def emit():
    """Print a rendered table and persist it under benchmarks/results/."""
    def _emit(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.md").write_text(text)
        print()
        print(text)

    return _emit


@pytest.fixture(scope="session", autouse=True)
def bench_metrics_snapshot():
    """Opt-in metrics collection across the whole bench session."""
    destination = os.environ.get("REPRO_BENCH_METRICS")
    if not destination:
        yield
        return
    registry = MetricsRegistry()
    with instrumented(metrics=registry):
        yield
    path = (
        RESULTS_DIR / "metrics_snapshot.json" if destination == "1" else Path(destination)
    )
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(registry.snapshot(), indent=2) + "\n")
    print(f"\n[observability] bench metrics snapshot written to {path}")


def run_once(benchmark, fn):
    """Execute ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
