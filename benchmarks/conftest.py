"""Shared helpers for the benchmark harness.

Each figure bench runs its experiment once (timed by pytest-benchmark),
prints the resulting series as a markdown table -- the tabular equivalent of
the paper's plot -- and saves it under ``benchmarks/results/`` for
EXPERIMENTS.md cross-referencing.  Shape assertions (who wins, what grows)
encode the paper's qualitative claims; exact values are Monte-Carlo and
environment dependent.

Benchmarks run at a reduced-but-meaningful scale so the whole suite
finishes in minutes; the EXPERIMENTS.md generator
(``python -m repro.experiments.generate``) runs the same code at full paper
scale.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture
def emit():
    """Print a rendered table and persist it under benchmarks/results/."""
    def _emit(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.md").write_text(text)
        print()
        print(text)

    return _emit


def run_once(benchmark, fn):
    """Execute ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
