"""Benchmark harness: one bench per paper figure/table plus ablations."""
