"""Figure 3 benches: DP tradeoffs on census data (paper Section 4.2).

Paper claims checked here:

* 3a (high privacy, eps < 1) -- on a log scale the lines cluster; the
  single-round weighted alpha=1.0 method achieves the least error;
  adaptivity holds no advantage under randomized response.
* 3b (moderate privacy, eps >= 1) -- only at large epsilon do adaptive /
  piecewise pull ahead anywhere; DP errors are roughly an order of
  magnitude above the noise-free case.
* (extra) -- Laplace noise, which the paper omitted from its plots, is
  indeed considerably worse than the plotted methods.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments import figure_3a, figure_3b, render_series_table

REPS = 25
N_CLIENTS = 10_000


def _sweep_mean(series) -> float:
    return float(np.mean(series.rmse))


def test_figure_3a(benchmark, emit):
    results = run_once(
        benchmark,
        lambda: figure_3a(n_clients=N_CLIENTS, n_reps=REPS, include_extras=True),
    )
    plotted = {k: v for k, v in results.items() if k not in ("laplace", "duchi", "randomized-rounding")}
    emit("figure_3a", render_series_table(
        "Figure 3a — census RMSE vs epsilon (high privacy, eps < 1)",
        results, metric="rmse", x_name="eps",
    ))

    averages = {label: _sweep_mean(series) for label, series in plotted.items()}
    # weighted a=1.0 is the frontrunner in the high-privacy regime.
    assert averages["weighted a=1.0"] <= min(averages.values()) * 1.3
    # Adaptivity holds no advantage under RR noise.
    assert averages["adaptive"] >= averages["weighted a=1.0"] * 0.8
    # The omitted Laplace baseline is substantially worse than the winner
    # (the paper reports 2-3x; at eps << 1 the gap compresses as every
    # method saturates, so we assert 1.5x on the sweep average).
    assert _sweep_mean(results["laplace"]) > 1.5 * averages["weighted a=1.0"]


def test_figure_3b(benchmark, emit):
    results = run_once(
        benchmark,
        lambda: figure_3b(n_clients=N_CLIENTS, n_reps=REPS),
    )
    emit("figure_3b", render_series_table(
        "Figure 3b — census RMSE vs epsilon (moderate privacy, eps >= 1)",
        results, metric="rmse", x_name="eps",
    ))

    # Errors fall as epsilon grows, for every method.
    for label, series in results.items():
        assert series.rmse[-1] < series.rmse[0], label
    # DP noise dominates: at eps=1 the RMSE is far above the sub-1% noise-free regime.
    eps1_best = min(series.rmse[0] for series in results.values())
    assert eps1_best > 1.0   # absolute RMSE in years of age
