"""End-to-end figure-cell benchmarks: the trial-execution engine's speedup.

One *figure cell* -- fresh population per repetition, one estimator run per
population, truth comparison -- is the unit every figure sweep repeats
hundreds of times.  These benches time the same cell three ways:

* ``loop``     -- the historical per-repetition path (a plain closure, no
  batch kernel, :class:`~repro.metrics.execution.SerialExecutor`);
* ``batch``    -- the same estimator dispatched through
  :meth:`~repro.core.basic.BasicBitPushing.estimate_batch`;
* ``parallel`` -- the batch-dispatched cell under a 2-worker
  :class:`~repro.metrics.execution.ParallelExecutor`.

All three produce bit-identical estimates (asserted here and in
``tests/test_execution.py``); only the wall-clock differs.  The summary
trajectory in ``BENCH_micro.json`` tracks the loop/batch ratio across PRs
-- the batch kernel's win lives in the small-population regime (see
``docs/performance.md`` for the measured crossover).
"""

import numpy as np
import pytest

from repro.core import BasicBitPushing, FixedPointEncoder
from repro.metrics.execution import ParallelExecutor, SerialExecutor
from repro.metrics.experiment import run_trials

#: A small-cohort figure cell (figure-2a style) at full-scale rep count:
#: the regime where per-repetition overhead dominates and batching pays.
N_CLIENTS = 500
N_REPS = 200
BITS = 10


@pytest.fixture(scope="module")
def estimator():
    return BasicBitPushing(FixedPointEncoder.for_integers(BITS))


def _make_data(rng):
    return np.clip(rng.normal(600.0, 100.0, N_CLIENTS), 0.0, None)


def _cell(estimator, dispatch_batch, executor):
    def run_estimator(values, rng):
        return estimator.estimate(values, rng).value

    if dispatch_batch:
        run_estimator.estimate_batch = estimator.estimate_batch
    return run_trials(
        _make_data, run_estimator, n_reps=N_REPS, seed=42, executor=executor
    )


@pytest.fixture(scope="module")
def reference(estimator):
    """The loop path's estimates: every variant must reproduce these bits."""
    return _cell(estimator, dispatch_batch=False, executor=SerialExecutor()).estimates


def test_figure_cell_loop(benchmark, estimator, reference):
    stats = benchmark(_cell, estimator, False, SerialExecutor())
    np.testing.assert_array_equal(stats.estimates, reference)


def test_figure_cell_batch(benchmark, estimator, reference):
    stats = benchmark(_cell, estimator, True, SerialExecutor())
    np.testing.assert_array_equal(stats.estimates, reference)


def test_figure_cell_parallel(benchmark, estimator, reference):
    stats = benchmark(_cell, estimator, True, ParallelExecutor(2))
    np.testing.assert_array_equal(stats.estimates, reference)
