"""Micro-benchmarks: throughput of the core protocol primitives.

These use pytest-benchmark's repeated timing (unlike the figure benches,
which run once).  They guard against performance regressions in the hot
paths: encoding, assignment, report collection, and the two estimators.
The paper's offline validation relies on these being fast enough to sweep
hundreds of configurations.
"""

import numpy as np
import pytest

from repro.core import (
    AdaptiveBitPushing,
    BasicBitPushing,
    BitSamplingSchedule,
    FixedPointEncoder,
    central_assignment,
    collect_bit_reports,
)
from repro.privacy import RandomizedResponse

N = 100_000
BITS = 16


@pytest.fixture(scope="module")
def values():
    rng = np.random.default_rng(0)
    return np.clip(rng.normal(10_000.0, 2_000.0, N), 0, None)


@pytest.fixture(scope="module")
def encoder():
    return FixedPointEncoder.for_integers(BITS)


def test_encode_throughput(benchmark, values, encoder):
    encoded = benchmark(encoder.encode, values)
    assert encoded.size == N


def test_central_assignment_throughput(benchmark):
    sched = BitSamplingSchedule.weighted(BITS, 0.5)
    assignment = benchmark(central_assignment, N, sched, 0)
    assert assignment.size == N


def test_collect_reports_throughput(benchmark, values, encoder):
    encoded = encoder.encode(values)
    sched = BitSamplingSchedule.weighted(BITS, 0.5)
    assignment = central_assignment(N, sched, 0)
    sums, counts = benchmark(collect_bit_reports, encoded, BITS, assignment)
    assert counts.sum() == N


def test_basic_estimate_throughput(benchmark, values, encoder):
    est = BasicBitPushing(encoder)
    rng = np.random.default_rng(1)
    result = benchmark(est.estimate, values, rng)
    assert result.n_clients == N


def test_adaptive_estimate_throughput(benchmark, values, encoder):
    est = AdaptiveBitPushing(encoder)
    rng = np.random.default_rng(2)
    result = benchmark(est.estimate, values, rng)
    assert result.n_clients == N


def test_ldp_estimate_throughput(benchmark, values, encoder):
    est = BasicBitPushing(encoder, perturbation=RandomizedResponse(epsilon=2.0))
    rng = np.random.default_rng(3)
    result = benchmark(est.estimate, values, rng)
    assert result.metadata["ldp"] is True
