"""Exception hierarchy for the :mod:`repro` package.

All errors raised by this library derive from :class:`ReproError`, so callers
can catch a single base class at API boundaries.  Subclasses are deliberately
fine-grained: the federated simulator, the privacy layer, and the core
protocol each signal failures that a caller may want to handle differently
(for example, retrying a round after :class:`CohortTooSmallError` but treating
:class:`PrivacyBudgetExceeded` as fatal).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """An estimator, schedule, or protocol was configured inconsistently.

    Raised eagerly at construction time whenever possible, so that
    misconfiguration surfaces before any client data is touched.
    """


class EncodingError(ReproError):
    """A value could not be represented in the configured fixed-point grid."""


class ProtocolError(ReproError):
    """A bit-pushing round produced structurally invalid data.

    Examples: report counts that disagree with the assignment plan, or a
    reported bit outside ``{0, 1}``.
    """


class PrivacyBudgetExceeded(ReproError):
    """An operation would exceed a configured privacy budget.

    This covers both the formal epsilon ledger and the worst-case *bit meter*
    (at most one private bit per value; a bounded number of private bits per
    client).
    """


class RoundFailedError(ConfigurationError):
    """A collection round attempt failed (no survivors, or below quorum).

    Carries the attempt's ``planned``/``survived`` counts so retry logic and
    operators can see how close the round came.  Subclasses
    :class:`ConfigurationError` for backward compatibility: the round loop
    historically raised that type when every client dropped out.
    """

    def __init__(self, message: str, planned: int = 0, survived: int = 0) -> None:
        super().__init__(message)
        self.planned = planned
        self.survived = survived


class CohortTooSmallError(ReproError):
    """An eligible cohort is below the configured minimum size.

    The paper (Section 4.3) requires enforcing a minimum cohort size for
    privacy; queries against too-small cohorts must not run at all.
    """


class SecureAggregationError(ReproError):
    """The secure-aggregation protocol could not complete.

    Raised when too many clients dropped out for mask recovery, when shares
    fail to reconstruct, or when a masked sum fails a consistency check.
    """


class DataGenerationError(ReproError):
    """A workload generator received parameters it cannot satisfy."""


class InvariantViolation(ReproError):
    """A runtime self-check found state that breaks a proven invariant.

    Raised by :mod:`repro.verification.invariants`: schedule normalization,
    apportionment exactness, secure-aggregation/plaintext sum agreement,
    privacy-ledger conservation, and bit-meter cap conformance.  Any instance
    of this error is a bug in the library (or memory corruption), never a
    caller mistake -- callers should report it, not handle it.
    """
