"""Device-telemetry workloads mirroring the deployment findings (Section 4.3).

The paper's online deployment aggregated "device health and performance
metrics" whose distributions were "extremely heterogeneous ... very
different from analytically-modeled statistical distributions":

* features whose typical values are 0 and 1 but where "some rare clients
  report values that are orders of magnitude higher";
* metrics that "turn out to be constant";
* distributions that drift over time (motivating the upper-bound monitor).

These generators synthesize each of those behaviours so the examples and
benches can demonstrate the corresponding mitigations (clipping to ``b``
bits, offline constant checks, :class:`~repro.core.monitor.HighBitMonitor`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import DataGenerationError
from repro.rng import ensure_rng

__all__ = [
    "binary_with_outliers",
    "pareto_latency",
    "drifting_latency",
    "MetricSpec",
    "METRIC_CATALOG",
]


def binary_with_outliers(
    n_clients: int,
    p_one: float = 0.3,
    outlier_rate: float = 1e-3,
    outlier_magnitude: float = 1e5,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Mostly-0/1 feature with rare, enormous outliers.

    This is the paper's flagship pathological case: any untrimmed mean is
    hostage to which outlier clients happen to respond.  Clipping the
    encoding to 8-16 bits (winsorization) restores a stable, meaningful
    statistic.
    """
    if n_clients <= 0:
        raise DataGenerationError(f"n_clients must be positive, got {n_clients}")
    if not 0.0 <= p_one <= 1.0:
        raise DataGenerationError(f"p_one must be in [0, 1], got {p_one}")
    if not 0.0 <= outlier_rate < 1.0:
        raise DataGenerationError(f"outlier_rate must be in [0, 1), got {outlier_rate}")
    gen = ensure_rng(rng)
    values = (gen.random(n_clients) < p_one).astype(np.float64)
    outliers = gen.random(n_clients) < outlier_rate
    values[outliers] = gen.uniform(0.1 * outlier_magnitude, outlier_magnitude, outliers.sum())
    return values


def pareto_latency(
    n_clients: int,
    median_ms: float = 120.0,
    tail_index: float = 1.5,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Heavy-tailed latency samples (Pareto tail over a fixed median).

    ``tail_index <= 1`` would have an infinite mean; we require > 1 but note
    that even then the sample mean converges slowly -- exactly the regime
    where the paper recommends bounds + clipping over raw means.
    """
    if n_clients <= 0:
        raise DataGenerationError(f"n_clients must be positive, got {n_clients}")
    if median_ms <= 0:
        raise DataGenerationError(f"median_ms must be positive, got {median_ms}")
    if tail_index <= 1.0:
        raise DataGenerationError(f"tail_index must exceed 1 for a finite mean, got {tail_index}")
    gen = ensure_rng(rng)
    # Pareto with scale chosen so the median lands at median_ms.
    scale = median_ms / 2.0 ** (1.0 / tail_index)
    return scale * (1.0 + gen.pareto(tail_index, size=n_clients))


def drifting_latency(
    n_clients: int,
    round_index: int,
    base_ms: float = 100.0,
    drift_per_round: float = 0.0,
    shift_round: int | None = None,
    shift_factor: float = 8.0,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Latency metric that drifts (and optionally jumps) across rounds.

    Feed successive rounds to :class:`~repro.core.monitor.HighBitMonitor`:
    the gradual ``drift_per_round`` stays under the radar while the
    ``shift_round`` jump (a regression shipping at time ``shift_round``)
    moves the top occupied bit and triggers an alert.
    """
    if round_index < 0:
        raise DataGenerationError(f"round_index must be >= 0, got {round_index}")
    gen = ensure_rng(rng)
    level = base_ms * (1.0 + drift_per_round) ** round_index
    if shift_round is not None and round_index >= shift_round:
        level *= shift_factor
    return np.clip(gen.normal(level, level * 0.15, size=n_clients), 0.0, None)


@dataclass(frozen=True)
class MetricSpec:
    """A named telemetry metric: generator + recommended encoding width."""

    name: str
    description: str
    recommended_bits: int

    def sample(self, n_clients: int, rng: np.random.Generator | int | None = None) -> np.ndarray:
        gen = ensure_rng(rng)
        if self.name == "crash_flag":
            return binary_with_outliers(n_clients, p_one=0.02, outlier_rate=0.0, rng=gen)
        if self.name == "retry_count":
            return binary_with_outliers(
                n_clients, p_one=0.3, outlier_rate=5e-4, outlier_magnitude=1e5, rng=gen
            )
        if self.name == "latency_ms":
            return pareto_latency(n_clients, median_ms=120.0, tail_index=1.8, rng=gen)
        if self.name == "build_number":
            return np.full(n_clients, 4217.0)
        raise DataGenerationError(f"unknown metric {self.name!r}")


#: The deployment-style metric mix used by the telemetry example.
METRIC_CATALOG: tuple[MetricSpec, ...] = (
    MetricSpec("crash_flag", "did the app crash today (0/1)", 1),
    MetricSpec("retry_count", "network retries; mostly 0/1, rare huge outliers", 8),
    MetricSpec("latency_ms", "request latency; heavy Pareto tail", 12),
    MetricSpec("build_number", "constant across the fleet (degenerate)", 13),
)
