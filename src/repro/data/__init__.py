"""Workload generators: synthetic distributions, census-style ages, telemetry."""

from repro.data.census import AGE_BRACKETS, population_age_stats, sample_ages
from repro.data.synthetic import (
    GENERATORS,
    bimodal,
    constant,
    exponential,
    lognormal,
    normal,
    uniform,
    zipf,
)
from repro.data.telemetry import (
    METRIC_CATALOG,
    MetricSpec,
    binary_with_outliers,
    drifting_latency,
    pareto_latency,
)

__all__ = [
    "AGE_BRACKETS",
    "GENERATORS",
    "METRIC_CATALOG",
    "MetricSpec",
    "bimodal",
    "binary_with_outliers",
    "constant",
    "drifting_latency",
    "exponential",
    "lognormal",
    "normal",
    "pareto_latency",
    "population_age_stats",
    "sample_ages",
    "uniform",
    "zipf",
]
