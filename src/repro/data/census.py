"""Census-style age workload.

The paper's "human-generated data" is the age column of the UCI
Census-Income (KDD) dataset, used only through its empirical mean and
variance (Section 4: "We only compute the mean age and the variance of
ages").  This environment has no network access, so we substitute a
synthetic sampler over a 1990s-US-style age pyramid: a piecewise-constant
density over 5-year brackets for ages 0-94.  See DESIGN.md for the
substitution rationale -- the experiments exercise bit occupancy, adaptivity
and squashing, all of which depend only on the distribution's shape
(skewed bell, ~7 occupied bits, mean ~35, std ~22), which this sampler
matches.

Ages are integers, so the natural encoder is ``FixedPointEncoder.for_integers``
with ``n_bits >= 7``.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DataGenerationError
from repro.rng import ensure_rng

__all__ = ["AGE_BRACKETS", "sample_ages", "population_age_stats"]

#: (low_age, high_age_inclusive, relative_weight) per 5-year bracket,
#: approximating the 1990s US resident population pyramid.
AGE_BRACKETS: tuple[tuple[int, int, float], ...] = (
    (0, 4, 7.3),
    (5, 9, 7.3),
    (10, 14, 7.0),
    (15, 19, 7.0),
    (20, 24, 7.2),
    (25, 29, 8.1),
    (30, 34, 8.8),
    (35, 39, 8.0),
    (40, 44, 7.1),
    (45, 49, 5.5),
    (50, 54, 4.5),
    (55, 59, 4.2),
    (60, 64, 4.2),
    (65, 69, 4.0),
    (70, 74, 3.2),
    (75, 79, 2.7),
    (80, 84, 1.8),
    (85, 89, 1.0),
    (90, 94, 0.4),
)


def _bracket_probabilities() -> np.ndarray:
    weights = np.array([w for _, _, w in AGE_BRACKETS], dtype=np.float64)
    return weights / weights.sum()


def sample_ages(
    n_clients: int,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Draw ``n_clients`` integer ages from the census-style pyramid.

    Each draw picks a 5-year bracket with its population weight, then an
    integer age uniformly within the bracket.

    Examples
    --------
    >>> ages = sample_ages(10_000, rng=0)
    >>> bool(30.0 < ages.mean() < 40.0)
    True
    >>> bool(int(ages.min()) >= 0 and int(ages.max()) <= 94)
    True
    """
    if n_clients <= 0:
        raise DataGenerationError(f"n_clients must be positive, got {n_clients}")
    gen = ensure_rng(rng)
    probs = _bracket_probabilities()
    bracket_idx = gen.choice(len(AGE_BRACKETS), size=n_clients, p=probs)
    lows = np.array([lo for lo, _, _ in AGE_BRACKETS])[bracket_idx]
    highs = np.array([hi for _, hi, _ in AGE_BRACKETS])[bracket_idx]
    return gen.integers(lows, highs + 1).astype(np.float64)


def population_age_stats() -> tuple[float, float]:
    """Exact (mean, variance) of the sampling distribution.

    Computed analytically over the discrete age distribution, useful as the
    asymptotic ground truth in tests (per-sample experiments still use each
    sample's empirical mean, matching the paper's protocol).
    """
    probs = _bracket_probabilities()
    mean = 0.0
    second = 0.0
    for (low, high, _), p in zip(AGE_BRACKETS, probs):
        ages = np.arange(low, high + 1, dtype=np.float64)
        per_age = p / ages.size
        mean += per_age * ages.sum()
        second += per_age * (ages**2).sum()
    return mean, second - mean**2
