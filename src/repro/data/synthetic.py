"""Synthetic workload generators for the offline experiments.

Section 4 of the paper generates synthetic data "by drawing values from
Normal, uniform and exponential distributions with varying parameters".
These helpers produce exactly those populations (plus a lognormal heavy-tail
variant used in our extended ablations), always as float arrays of one value
per client, always from an explicit RNG.

All generators return raw real values; encoding/clipping to ``b`` bits is
the estimator's job, mirroring the deployment pipeline.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DataGenerationError
from repro.rng import ensure_rng

__all__ = [
    "normal",
    "uniform",
    "exponential",
    "lognormal",
    "zipf",
    "constant",
    "bimodal",
    "GENERATORS",
]


def _check_n(n_clients: int) -> None:
    if n_clients <= 0:
        raise DataGenerationError(f"n_clients must be positive, got {n_clients}")


def normal(
    n_clients: int,
    mean: float,
    std: float,
    rng: np.random.Generator | int | None = None,
    clip_negative: bool = True,
) -> np.ndarray:
    """Normal(mean, std) values, optionally clipped at zero.

    The paper's figures use Normal data with ``std = 100`` and a swept mean;
    values are conceptually non-negative quantities, so negative draws are
    clipped (they would be clipped by the encoder anyway).
    """
    _check_n(n_clients)
    if std <= 0:
        raise DataGenerationError(f"std must be positive, got {std}")
    gen = ensure_rng(rng)
    values = gen.normal(mean, std, size=n_clients)
    return np.clip(values, 0.0, None) if clip_negative else values


def uniform(
    n_clients: int,
    low: float,
    high: float,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Uniform values on ``[low, high)``."""
    _check_n(n_clients)
    if high <= low:
        raise DataGenerationError(f"need low < high, got [{low}, {high})")
    gen = ensure_rng(rng)
    return gen.uniform(low, high, size=n_clients)


def exponential(
    n_clients: int,
    scale: float,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Exponential values with the given scale (mean = scale)."""
    _check_n(n_clients)
    if scale <= 0:
        raise DataGenerationError(f"scale must be positive, got {scale}")
    gen = ensure_rng(rng)
    return gen.exponential(scale, size=n_clients)


def lognormal(
    n_clients: int,
    log_mean: float,
    log_sigma: float,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Lognormal values -- a controllable heavy tail for robustness studies."""
    _check_n(n_clients)
    if log_sigma <= 0:
        raise DataGenerationError(f"log_sigma must be positive, got {log_sigma}")
    gen = ensure_rng(rng)
    return gen.lognormal(log_mean, log_sigma, size=n_clients)


def zipf(
    n_clients: int,
    exponent: float = 2.0,
    cap: float | None = None,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Zipf-distributed counts -- popularity/frequency metrics.

    A classic heavy tail for event counts (app opens, item views).  With
    ``exponent <= 2`` the distribution has infinite variance, so ``cap``
    (winsorization before the encoder even sees the data) keeps experiment
    ground truths finite; ``None`` leaves the tail raw.
    """
    _check_n(n_clients)
    if exponent <= 1.0:
        raise DataGenerationError(f"zipf exponent must exceed 1, got {exponent}")
    if cap is not None and cap <= 0:
        raise DataGenerationError(f"cap must be positive, got {cap}")
    gen = ensure_rng(rng)
    values = gen.zipf(exponent, size=n_clients).astype(np.float64)
    return np.minimum(values, cap) if cap is not None else values


def constant(n_clients: int, value: float) -> np.ndarray:
    """Every client holds the same value (a degenerate metric; Section 4.3
    notes some deployed features turn out constant, making mean estimation
    moot -- but the protocol must still behave)."""
    _check_n(n_clients)
    return np.full(n_clients, float(value))


def bimodal(
    n_clients: int,
    low_mode: float,
    high_mode: float,
    high_fraction: float,
    std: float,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Two-population mixture (e.g. two device generations reporting latency)."""
    _check_n(n_clients)
    if not 0.0 <= high_fraction <= 1.0:
        raise DataGenerationError(f"high_fraction must be in [0, 1], got {high_fraction}")
    if std <= 0:
        raise DataGenerationError(f"std must be positive, got {std}")
    gen = ensure_rng(rng)
    is_high = gen.random(n_clients) < high_fraction
    centers = np.where(is_high, high_mode, low_mode)
    return np.clip(gen.normal(centers, std), 0.0, None)


#: Name -> callable registry used by the CLI and the telemetry example.
GENERATORS = {
    "normal": normal,
    "uniform": uniform,
    "exponential": exponential,
    "lognormal": lognormal,
    "zipf": zipf,
    "constant": constant,
    "bimodal": bimodal,
}
