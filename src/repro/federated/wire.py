"""Wire format for one-bit reports.

The paper's communication-cost discussion (Section 5) notes that while only
a single *private* bit is disclosed, the message also carries
non-private protocol fields -- "header information, and list which bit was
sampled" -- so a report still occupies one small network packet.  This
module pins that down concretely: a fixed 16-byte frame

    magic (4) | version (1) | bit_index (1) | bit (1) | flags (1) | client_id (8)

with strict, mirror-image validation on both encode and decode (bad magic,
truncation, non-binary bit, out-of-range index, or non-integer fields all
raise :class:`~repro.exceptions.ProtocolError`), plus
the batching helpers a real uplink would use.  The ``flags`` byte records
whether randomized response was applied -- public metadata the server needs
for debiasing.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Iterable, Sequence, Union

import numpy as np

from repro.exceptions import ProtocolError
from repro.federated.client import BitReport

__all__ = [
    "MAGIC",
    "MESSAGE_MAGIC",
    "MESSAGE_HEADER_SIZE",
    "MAX_MESSAGE_SIZE",
    "MSG_HELLO",
    "MSG_ANNOUNCE",
    "MSG_REPORTS",
    "MSG_RESULT",
    "MSG_ABORT",
    "REPORT_SIZE",
    "ReportBatch",
    "encode_report",
    "decode_report",
    "encode_batch",
    "decode_batch",
    "decode_batch_array",
    "encode_message",
    "decode_message_header",
    "payload_efficiency",
]

#: Frame magic -- "bit-push".
MAGIC = b"BPSH"
#: Protocol version this module speaks.
VERSION = 1
#: Flag bit: the report's value bit passed through randomized response.
FLAG_RANDOMIZED_RESPONSE = 0x01

_STRUCT = struct.Struct(">4sBBBBQ")
#: Size of one encoded report in bytes.
REPORT_SIZE = _STRUCT.size

#: Control-message magic -- "bit-push message" -- distinct from the report
#: frame magic so a stray report can never masquerade as a control header.
MESSAGE_MAGIC = b"BPMS"

#: Length-prefixed control-message header wrapped around report frames and
#: JSON control payloads: magic (4) | version (1) | kind (1) | seq (2) |
#: payload length (4).  ``seq`` carries the round attempt number so the
#: server can recognize late reports from an abandoned attempt.
_MESSAGE_HEADER = struct.Struct(">4sBBHI")
#: Size of one control-message header in bytes.
MESSAGE_HEADER_SIZE = _MESSAGE_HEADER.size

#: Upper bound on a control-message payload; a header advertising more is
#: rejected before any buffering so a corrupt length cannot balloon memory.
MAX_MESSAGE_SIZE = 16 * 1024 * 1024

#: Client -> server: registration carrying the client id.
MSG_HELLO = 1
#: Server -> client: cohort announcement with bit assignment + round params.
MSG_ANNOUNCE = 2
#: Client -> server: concatenated 16-byte report frames.
MSG_REPORTS = 3
#: Server -> client: final round result.
MSG_RESULT = 4
#: Server -> client: round abandoned (quorum failure past retry budget).
MSG_ABORT = 5

_MESSAGE_KINDS = frozenset({MSG_HELLO, MSG_ANNOUNCE, MSG_REPORTS, MSG_RESULT, MSG_ABORT})

#: Structured view of one report frame, for vectorized batch decoding.
_FRAME_DTYPE = np.dtype(
    [
        ("magic", "S4"),
        ("version", "u1"),
        ("bit_index", "u1"),
        ("bit", "u1"),
        ("flags", "u1"),
        ("client_id", ">u8"),
    ]
)


def encode_report(report: BitReport, randomized_response: bool = False) -> bytes:
    """Serialize one report into its 16-byte frame.

    Validation is the exact mirror image of :func:`decode_report`: any frame
    this function emits will decode, and any report it rejects would have
    been rejected on decode.  Every failure raises :class:`ProtocolError` --
    a malformed report must be caught at the uplink, not when the server
    unpacks it.  Non-integer field types (a float ``bit_index``, a string
    ``client_id``) are rejected here too, where ``struct`` would otherwise
    raise its own opaque error.

    ``np.bool_`` bits are accepted and coerced: the columnar client plane's
    vectorized bit extraction yields exactly those, and a bool *is* a
    well-defined bit.
    """
    bit = report.bit
    if isinstance(bit, np.bool_):
        bit = int(bit)
    for name, value in (
        ("client_id", report.client_id),
        ("bit_index", report.bit_index),
        ("bit", bit),
    ):
        if not isinstance(value, (int, np.integer)):
            raise ProtocolError(f"report {name} must be an integer, got {value!r}")
    if bit not in (0, 1):
        raise ProtocolError(f"report bit must be 0 or 1, got {bit}")
    if not 0 <= report.bit_index < 64:
        raise ProtocolError(f"bit index {report.bit_index} outside [0, 64)")
    if not 0 <= report.client_id < 2**64:
        raise ProtocolError(f"client id {report.client_id} does not fit in 64 bits")
    flags = FLAG_RANDOMIZED_RESPONSE if randomized_response else 0
    return _STRUCT.pack(
        MAGIC, VERSION, int(report.bit_index), int(bit), flags, int(report.client_id)
    )


def decode_report(frame: bytes) -> tuple[BitReport, bool]:
    """Parse one frame; returns ``(report, randomized_response_flag)``.

    Every validation failure raises :class:`ProtocolError` -- a server must
    never fold a malformed report into its counters.
    """
    if len(frame) != REPORT_SIZE:
        raise ProtocolError(
            f"report frame must be exactly {REPORT_SIZE} bytes, got {len(frame)}"
        )
    magic, version, bit_index, bit, flags, client_id = _STRUCT.unpack(frame)
    if magic != MAGIC:
        raise ProtocolError(f"bad magic {magic!r}")
    if version != VERSION:
        raise ProtocolError(f"unsupported protocol version {version}")
    if bit not in (0, 1):
        raise ProtocolError(f"non-binary report bit {bit}")
    if bit_index >= 64:
        raise ProtocolError(f"bit index {bit_index} outside [0, 64)")
    if flags & ~FLAG_RANDOMIZED_RESPONSE:
        raise ProtocolError(f"unknown flag bits 0x{flags:02x}")
    return (
        BitReport(client_id=client_id, bit_index=bit_index, bit=bit),
        bool(flags & FLAG_RANDOMIZED_RESPONSE),
    )


def encode_batch(
    reports: Iterable[BitReport],
    randomized_response: Union[bool, Sequence[bool]] = False,
) -> bytes:
    """Concatenate report frames (a device uplinking several features).

    ``randomized_response`` is either a single flag applied to every report
    or a per-report sequence -- a device whose uplink mixes RR-perturbed and
    exact bits (e.g. different features under different privacy budgets)
    needs the latter.  A sequence whose length disagrees with the report
    count raises :class:`ProtocolError`.
    """
    reports = list(reports)
    if isinstance(randomized_response, (bool, np.bool_)):
        flags: Sequence[bool] = [bool(randomized_response)] * len(reports)
    else:
        flags = list(randomized_response)
        if len(flags) != len(reports):
            raise ProtocolError(
                f"randomized_response sequence has {len(flags)} entries "
                f"for {len(reports)} reports"
            )
    return b"".join(encode_report(r, bool(f)) for r, f in zip(reports, flags))


def decode_batch(data: bytes) -> list[tuple[BitReport, bool]]:
    """Split and parse a concatenation of frames."""
    if len(data) % REPORT_SIZE != 0:
        raise ProtocolError(
            f"batch of {len(data)} bytes is not a whole number of "
            f"{REPORT_SIZE}-byte frames"
        )
    return [
        decode_report(data[offset:offset + REPORT_SIZE])
        for offset in range(0, len(data), REPORT_SIZE)
    ]


@dataclass(frozen=True)
class ReportBatch:
    """Columnar result of :func:`decode_batch_array`.

    Arrays are index-aligned: row ``i`` describes the ``i``-th frame in the
    batch.  ``to_reports`` rebuilds the scalar-path representation (used by
    the twin tests pinning the vectorized decoder to :func:`decode_batch`).
    """

    client_ids: np.ndarray
    bit_indices: np.ndarray
    bits: np.ndarray
    randomized_response: np.ndarray

    def __len__(self) -> int:
        return int(self.client_ids.shape[0])

    def to_reports(self) -> list[tuple[BitReport, bool]]:
        """Expand back into the ``decode_batch`` representation."""
        return [
            (
                BitReport(client_id=int(c), bit_index=int(j), bit=int(b)),
                bool(rr),
            )
            for c, j, b, rr in zip(
                self.client_ids, self.bit_indices, self.bits, self.randomized_response
            )
        ]


def _frame_fields(data: bytes) -> np.ndarray:
    """View a frame concatenation through the structured frame dtype."""
    if len(data) % REPORT_SIZE != 0:
        raise ProtocolError(
            f"batch of {len(data)} bytes is not a whole number of "
            f"{REPORT_SIZE}-byte frames"
        )
    return np.frombuffer(data, dtype=_FRAME_DTYPE)


def _frame_validity(fields: np.ndarray) -> np.ndarray:
    """Vectorized mirror of ``decode_report``'s per-frame checks."""
    return (
        (fields["magic"] == MAGIC)
        & (fields["version"] == VERSION)
        & (fields["bit"] <= 1)
        & (fields["bit_index"] < 64)
        & ((fields["flags"] & ~np.uint8(FLAG_RANDOMIZED_RESPONSE)) == 0)
    )


def decode_batch_array(data: bytes) -> ReportBatch:
    """Vectorized :func:`decode_batch`: one ``np.frombuffer`` + masked checks.

    Bit-for-bit equivalent to the scalar path -- any batch this function
    accepts decodes to the same reports via :func:`decode_batch`, and any
    batch it rejects raises the *same* :class:`ProtocolError` message the
    scalar path would have raised at its first bad frame (re-raised through
    :func:`decode_report` on that frame).  This is the fleet-scale uplink
    path: a million 16-byte frames decode in one pass instead of a million
    ``struct.unpack`` calls.
    """
    fields = _frame_fields(data)
    valid = _frame_validity(fields)
    if not valid.all():
        first_bad = int(np.flatnonzero(~valid)[0])
        offset = first_bad * REPORT_SIZE
        decode_report(data[offset:offset + REPORT_SIZE])
        raise ProtocolError(  # pragma: no cover - decode_report raises first
            f"frame {first_bad} failed vectorized validation"
        )
    return ReportBatch(
        client_ids=fields["client_id"].astype(np.uint64),
        bit_indices=fields["bit_index"].astype(np.int64),
        bits=fields["bit"].astype(np.uint8),
        randomized_response=(fields["flags"] & FLAG_RANDOMIZED_RESPONSE).astype(bool),
    )


def encode_message(kind: int, payload: bytes, seq: int = 0) -> bytes:
    """Wrap a payload in a length-prefixed control-message header.

    ``kind`` must be one of the ``MSG_*`` constants and ``seq`` (the round
    attempt number) must fit in 16 bits; oversized payloads are rejected
    with :class:`ProtocolError` so the cap is enforced symmetrically with
    :func:`decode_message_header`.
    """
    if kind not in _MESSAGE_KINDS:
        raise ProtocolError(f"unknown message kind {kind}")
    if not 0 <= seq < 2**16:
        raise ProtocolError(f"message seq {seq} does not fit in 16 bits")
    if len(payload) > MAX_MESSAGE_SIZE:
        raise ProtocolError(
            f"message payload of {len(payload)} bytes exceeds the "
            f"{MAX_MESSAGE_SIZE}-byte cap"
        )
    return _MESSAGE_HEADER.pack(MESSAGE_MAGIC, VERSION, kind, seq, len(payload)) + payload


def decode_message_header(header: bytes) -> tuple[int, int, int]:
    """Parse a control-message header; returns ``(kind, seq, payload_length)``.

    The caller then reads exactly ``payload_length`` bytes off the stream.
    Validation failures raise :class:`ProtocolError` before any payload is
    buffered -- bad magic, wrong version, unknown kind, or a length past
    :data:`MAX_MESSAGE_SIZE` all reject the message at the header.
    """
    if len(header) != MESSAGE_HEADER_SIZE:
        raise ProtocolError(
            f"message header must be exactly {MESSAGE_HEADER_SIZE} bytes, "
            f"got {len(header)}"
        )
    magic, version, kind, seq, length = _MESSAGE_HEADER.unpack(header)
    if magic != MESSAGE_MAGIC:
        raise ProtocolError(f"bad message magic {magic!r}")
    if version != VERSION:
        raise ProtocolError(f"unsupported protocol version {version}")
    if kind not in _MESSAGE_KINDS:
        raise ProtocolError(f"unknown message kind {kind}")
    if length > MAX_MESSAGE_SIZE:
        raise ProtocolError(
            f"message payload of {length} bytes exceeds the "
            f"{MAX_MESSAGE_SIZE}-byte cap"
        )
    return kind, seq, length


def payload_efficiency() -> float:
    """Private payload bits per transmitted bit (the Section 5 observation).

    One private bit inside a 16-byte frame: the overhead is why "the
    distinction between sending a single bit versus a few numeric values is
    not so meaningful" for a single feature -- and why multi-feature batches
    amortize it.
    """
    return 1.0 / (REPORT_SIZE * 8)
