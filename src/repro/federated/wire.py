"""Wire format for one-bit reports.

The paper's communication-cost discussion (Section 5) notes that while only
a single *private* bit is disclosed, the message also carries
non-private protocol fields -- "header information, and list which bit was
sampled" -- so a report still occupies one small network packet.  This
module pins that down concretely: a fixed 16-byte frame

    magic (4) | version (1) | bit_index (1) | bit (1) | flags (1) | client_id (8)

with strict, mirror-image validation on both encode and decode (bad magic,
truncation, non-binary bit, out-of-range index, or non-integer fields all
raise :class:`~repro.exceptions.ProtocolError`), plus
the batching helpers a real uplink would use.  The ``flags`` byte records
whether randomized response was applied -- public metadata the server needs
for debiasing.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Sequence, Union

import numpy as np

from repro.exceptions import ProtocolError
from repro.federated.client import BitReport

__all__ = [
    "MAGIC",
    "MESSAGE_MAGIC",
    "MESSAGE_HEADER_SIZE",
    "MAX_MESSAGE_SIZE",
    "MSG_HELLO",
    "MSG_ANNOUNCE",
    "MSG_REPORTS",
    "MSG_RESULT",
    "MSG_ABORT",
    "MSG_TELEMETRY",
    "REPORT_SIZE",
    "TRACE_CONTEXT_VERSION",
    "TELEMETRY_VERSION",
    "ClientTelemetry",
    "ReportBatch",
    "TraceContext",
    "encode_report",
    "decode_report",
    "encode_batch",
    "decode_batch",
    "decode_batch_array",
    "encode_announce",
    "decode_announce",
    "encode_telemetry",
    "decode_telemetry",
    "encode_message",
    "decode_message_header",
    "payload_efficiency",
]

#: Frame magic -- "bit-push".
MAGIC = b"BPSH"
#: Protocol version this module speaks.
VERSION = 1
#: Flag bit: the report's value bit passed through randomized response.
FLAG_RANDOMIZED_RESPONSE = 0x01

_STRUCT = struct.Struct(">4sBBBBQ")
#: Size of one encoded report in bytes.
REPORT_SIZE = _STRUCT.size

#: Control-message magic -- "bit-push message" -- distinct from the report
#: frame magic so a stray report can never masquerade as a control header.
MESSAGE_MAGIC = b"BPMS"

#: Length-prefixed control-message header wrapped around report frames and
#: JSON control payloads: magic (4) | version (1) | kind (1) | seq (2) |
#: payload length (4).  ``seq`` carries the round attempt number so the
#: server can recognize late reports from an abandoned attempt.
_MESSAGE_HEADER = struct.Struct(">4sBBHI")
#: Size of one control-message header in bytes.
MESSAGE_HEADER_SIZE = _MESSAGE_HEADER.size

#: Upper bound on a control-message payload; a header advertising more is
#: rejected before any buffering so a corrupt length cannot balloon memory.
MAX_MESSAGE_SIZE = 16 * 1024 * 1024

#: Client -> server: registration carrying the client id.
MSG_HELLO = 1
#: Server -> client: cohort announcement with bit assignment + round params.
MSG_ANNOUNCE = 2
#: Client -> server: concatenated 16-byte report frames.
MSG_REPORTS = 3
#: Server -> client: final round result.
MSG_RESULT = 4
#: Server -> client: round abandoned (quorum failure past retry budget).
MSG_ABORT = 5
#: Client -> server: serialized spans + metrics snapshot after RESULT/ABORT.
MSG_TELEMETRY = 6

_MESSAGE_KINDS = frozenset(
    {MSG_HELLO, MSG_ANNOUNCE, MSG_REPORTS, MSG_RESULT, MSG_ABORT, MSG_TELEMETRY}
)

#: Structured view of one report frame, for vectorized batch decoding.
_FRAME_DTYPE = np.dtype(
    [
        ("magic", "S4"),
        ("version", "u1"),
        ("bit_index", "u1"),
        ("bit", "u1"),
        ("flags", "u1"),
        ("client_id", ">u8"),
    ]
)


def encode_report(report: BitReport, randomized_response: bool = False) -> bytes:
    """Serialize one report into its 16-byte frame.

    Validation is the exact mirror image of :func:`decode_report`: any frame
    this function emits will decode, and any report it rejects would have
    been rejected on decode.  Every failure raises :class:`ProtocolError` --
    a malformed report must be caught at the uplink, not when the server
    unpacks it.  Non-integer field types (a float ``bit_index``, a string
    ``client_id``) are rejected here too, where ``struct`` would otherwise
    raise its own opaque error.

    ``np.bool_`` bits are accepted and coerced: the columnar client plane's
    vectorized bit extraction yields exactly those, and a bool *is* a
    well-defined bit.
    """
    bit = report.bit
    if isinstance(bit, np.bool_):
        bit = int(bit)
    for name, value in (
        ("client_id", report.client_id),
        ("bit_index", report.bit_index),
        ("bit", bit),
    ):
        if not isinstance(value, (int, np.integer)):
            raise ProtocolError(f"report {name} must be an integer, got {value!r}")
    if bit not in (0, 1):
        raise ProtocolError(f"report bit must be 0 or 1, got {bit}")
    if not 0 <= report.bit_index < 64:
        raise ProtocolError(f"bit index {report.bit_index} outside [0, 64)")
    if not 0 <= report.client_id < 2**64:
        raise ProtocolError(f"client id {report.client_id} does not fit in 64 bits")
    flags = FLAG_RANDOMIZED_RESPONSE if randomized_response else 0
    return _STRUCT.pack(
        MAGIC, VERSION, int(report.bit_index), int(bit), flags, int(report.client_id)
    )


def decode_report(frame: bytes) -> tuple[BitReport, bool]:
    """Parse one frame; returns ``(report, randomized_response_flag)``.

    Every validation failure raises :class:`ProtocolError` -- a server must
    never fold a malformed report into its counters.
    """
    if len(frame) != REPORT_SIZE:
        raise ProtocolError(
            f"report frame must be exactly {REPORT_SIZE} bytes, got {len(frame)}"
        )
    magic, version, bit_index, bit, flags, client_id = _STRUCT.unpack(frame)
    if magic != MAGIC:
        raise ProtocolError(f"bad magic {magic!r}")
    if version != VERSION:
        raise ProtocolError(f"unsupported protocol version {version}")
    if bit not in (0, 1):
        raise ProtocolError(f"non-binary report bit {bit}")
    if bit_index >= 64:
        raise ProtocolError(f"bit index {bit_index} outside [0, 64)")
    if flags & ~FLAG_RANDOMIZED_RESPONSE:
        raise ProtocolError(f"unknown flag bits 0x{flags:02x}")
    return (
        BitReport(client_id=client_id, bit_index=bit_index, bit=bit),
        bool(flags & FLAG_RANDOMIZED_RESPONSE),
    )


def encode_batch(
    reports: Iterable[BitReport],
    randomized_response: Union[bool, Sequence[bool]] = False,
) -> bytes:
    """Concatenate report frames (a device uplinking several features).

    ``randomized_response`` is either a single flag applied to every report
    or a per-report sequence -- a device whose uplink mixes RR-perturbed and
    exact bits (e.g. different features under different privacy budgets)
    needs the latter.  A sequence whose length disagrees with the report
    count raises :class:`ProtocolError`.
    """
    reports = list(reports)
    if isinstance(randomized_response, (bool, np.bool_)):
        flags: Sequence[bool] = [bool(randomized_response)] * len(reports)
    else:
        flags = list(randomized_response)
        if len(flags) != len(reports):
            raise ProtocolError(
                f"randomized_response sequence has {len(flags)} entries "
                f"for {len(reports)} reports"
            )
    return b"".join(encode_report(r, bool(f)) for r, f in zip(reports, flags))


def decode_batch(data: bytes) -> list[tuple[BitReport, bool]]:
    """Split and parse a concatenation of frames."""
    if len(data) % REPORT_SIZE != 0:
        raise ProtocolError(
            f"batch of {len(data)} bytes is not a whole number of "
            f"{REPORT_SIZE}-byte frames"
        )
    return [
        decode_report(data[offset:offset + REPORT_SIZE])
        for offset in range(0, len(data), REPORT_SIZE)
    ]


@dataclass(frozen=True)
class ReportBatch:
    """Columnar result of :func:`decode_batch_array`.

    Arrays are index-aligned: row ``i`` describes the ``i``-th frame in the
    batch.  ``to_reports`` rebuilds the scalar-path representation (used by
    the twin tests pinning the vectorized decoder to :func:`decode_batch`).
    """

    client_ids: np.ndarray
    bit_indices: np.ndarray
    bits: np.ndarray
    randomized_response: np.ndarray

    def __len__(self) -> int:
        return int(self.client_ids.shape[0])

    def to_reports(self) -> list[tuple[BitReport, bool]]:
        """Expand back into the ``decode_batch`` representation."""
        return [
            (
                BitReport(client_id=int(c), bit_index=int(j), bit=int(b)),
                bool(rr),
            )
            for c, j, b, rr in zip(
                self.client_ids, self.bit_indices, self.bits, self.randomized_response
            )
        ]


def _frame_fields(data: bytes) -> np.ndarray:
    """View a frame concatenation through the structured frame dtype."""
    if len(data) % REPORT_SIZE != 0:
        raise ProtocolError(
            f"batch of {len(data)} bytes is not a whole number of "
            f"{REPORT_SIZE}-byte frames"
        )
    return np.frombuffer(data, dtype=_FRAME_DTYPE)


def _frame_validity(fields: np.ndarray) -> np.ndarray:
    """Vectorized mirror of ``decode_report``'s per-frame checks."""
    return (
        (fields["magic"] == MAGIC)
        & (fields["version"] == VERSION)
        & (fields["bit"] <= 1)
        & (fields["bit_index"] < 64)
        & ((fields["flags"] & ~np.uint8(FLAG_RANDOMIZED_RESPONSE)) == 0)
    )


def decode_batch_array(data: bytes) -> ReportBatch:
    """Vectorized :func:`decode_batch`: one ``np.frombuffer`` + masked checks.

    Bit-for-bit equivalent to the scalar path -- any batch this function
    accepts decodes to the same reports via :func:`decode_batch`, and any
    batch it rejects raises the *same* :class:`ProtocolError` message the
    scalar path would have raised at its first bad frame (re-raised through
    :func:`decode_report` on that frame).  This is the fleet-scale uplink
    path: a million 16-byte frames decode in one pass instead of a million
    ``struct.unpack`` calls.
    """
    fields = _frame_fields(data)
    valid = _frame_validity(fields)
    if not valid.all():
        first_bad = int(np.flatnonzero(~valid)[0])
        offset = first_bad * REPORT_SIZE
        decode_report(data[offset:offset + REPORT_SIZE])
        raise ProtocolError(  # pragma: no cover - decode_report raises first
            f"frame {first_bad} failed vectorized validation"
        )
    return ReportBatch(
        client_ids=fields["client_id"].astype(np.uint64),
        bit_indices=fields["bit_index"].astype(np.int64),
        bits=fields["bit"].astype(np.uint8),
        randomized_response=(fields["flags"] & FLAG_RANDOMIZED_RESPONSE).astype(bool),
    )


def encode_message(kind: int, payload: bytes, seq: int = 0) -> bytes:
    """Wrap a payload in a length-prefixed control-message header.

    ``kind`` must be one of the ``MSG_*`` constants and ``seq`` (the round
    attempt number) must fit in 16 bits; oversized payloads are rejected
    with :class:`ProtocolError` so the cap is enforced symmetrically with
    :func:`decode_message_header`.
    """
    if kind not in _MESSAGE_KINDS:
        raise ProtocolError(f"unknown message kind {kind}")
    if not 0 <= seq < 2**16:
        raise ProtocolError(f"message seq {seq} does not fit in 16 bits")
    if len(payload) > MAX_MESSAGE_SIZE:
        raise ProtocolError(
            f"message payload of {len(payload)} bytes exceeds the "
            f"{MAX_MESSAGE_SIZE}-byte cap"
        )
    return _MESSAGE_HEADER.pack(MESSAGE_MAGIC, VERSION, kind, seq, len(payload)) + payload


def decode_message_header(header: bytes) -> tuple[int, int, int]:
    """Parse a control-message header; returns ``(kind, seq, payload_length)``.

    The caller then reads exactly ``payload_length`` bytes off the stream.
    Validation failures raise :class:`ProtocolError` before any payload is
    buffered -- bad magic, wrong version, unknown kind, or a length past
    :data:`MAX_MESSAGE_SIZE` all reject the message at the header.
    """
    if len(header) != MESSAGE_HEADER_SIZE:
        raise ProtocolError(
            f"message header must be exactly {MESSAGE_HEADER_SIZE} bytes, "
            f"got {len(header)}"
        )
    magic, version, kind, seq, length = _MESSAGE_HEADER.unpack(header)
    if magic != MESSAGE_MAGIC:
        raise ProtocolError(f"bad message magic {magic!r}")
    if version != VERSION:
        raise ProtocolError(f"unsupported protocol version {version}")
    if kind not in _MESSAGE_KINDS:
        raise ProtocolError(f"unknown message kind {kind}")
    if length > MAX_MESSAGE_SIZE:
        raise ProtocolError(
            f"message payload of {length} bytes exceeds the "
            f"{MAX_MESSAGE_SIZE}-byte cap"
        )
    return kind, seq, length


# ----------------------------------------------------------------------
# Trace-context and telemetry payloads (distributed tracing over the wire)
# ----------------------------------------------------------------------

#: Version of the ``"trace"`` sub-object carried inside ANNOUNCE payloads.
#: Decoders ignore (treat as absent) any version they do not speak, so a
#: newer server never breaks an older fleet and vice versa.
TRACE_CONTEXT_VERSION = 1

#: Version of the TELEMETRY payload.  Unlike trace context -- which is
#: advisory -- telemetry of an unknown version is rejected outright with
#: :class:`ProtocolError`: the server must never ingest spans it cannot
#: interpret.
TELEMETRY_VERSION = 1

#: Keys every serialized span must carry, with their accepted types.
_SPAN_FIELDS: tuple[tuple[str, tuple[type, ...]], ...] = (
    ("name", (str,)),
    ("span_id", (int,)),
    ("start_time_s", (int, float)),
    ("duration_s", (int, float)),
)


@dataclass(frozen=True)
class TraceContext:
    """The round's trace identity, propagated server -> client in ANNOUNCE.

    ``trace_id`` names the whole round (one id per served round, shared by
    every span on both sides of the wire); ``parent_span_id`` is the server
    span the client's ``fleet.round`` spans are re-parented under on
    ingestion; ``clock_s`` is the server's wall clock at announce time, the
    second anchor (after HELLO) for clock-skew alignment.
    """

    trace_id: str
    parent_span_id: int
    clock_s: float

    def to_wire(self) -> dict[str, Any]:
        """The versioned ``"trace"`` sub-object shipped inside ANNOUNCE."""
        return {
            "v": TRACE_CONTEXT_VERSION,
            "id": self.trace_id,
            "span": int(self.parent_span_id),
            "clock_s": float(self.clock_s),
        }


def encode_announce(
    fields: Mapping[str, Any], context: TraceContext | None = None
) -> bytes:
    """Serialize one ANNOUNCE payload, optionally carrying trace context.

    The context rides as a versioned ``"trace"`` sub-object next to the
    round parameters, so pre-tracing decoders (which only read the keys
    they know) parse new announcements unchanged -- the framing is
    backward-compatible in both directions.
    """
    payload = dict(fields)
    if context is not None:
        payload["trace"] = context.to_wire()
    return json.dumps(payload).encode()


def decode_announce(payload: bytes) -> tuple[dict[str, Any], TraceContext | None]:
    """Parse an ANNOUNCE payload into ``(fields, trace_context_or_None)``.

    A missing ``"trace"`` key (an old server) or one of an unknown version
    (a newer server) yields ``context=None`` -- the client simply runs
    untraced.  A structurally malformed trace object in a *known* version
    raises :class:`ProtocolError`, as does non-JSON input.
    """
    try:
        fields = json.loads(payload)
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"ANNOUNCE payload is not valid JSON: {exc}") from None
    if not isinstance(fields, dict):
        raise ProtocolError(
            f"ANNOUNCE payload must be a JSON object, got {type(fields).__name__}"
        )
    trace = fields.pop("trace", None)
    if trace is None:
        return fields, None
    if not isinstance(trace, dict):
        raise ProtocolError(f"ANNOUNCE trace context must be an object, got {trace!r}")
    if trace.get("v") != TRACE_CONTEXT_VERSION:
        return fields, None  # an unknown future version: run untraced
    trace_id = trace.get("id")
    span = trace.get("span")
    clock_s = trace.get("clock_s")
    if not isinstance(trace_id, str) or not trace_id:
        raise ProtocolError(f"trace context id must be a non-empty string, got {trace_id!r}")
    if not isinstance(span, int) or isinstance(span, bool) or span < 0:
        raise ProtocolError(f"trace context span must be a non-negative int, got {span!r}")
    if not isinstance(clock_s, (int, float)) or isinstance(clock_s, bool):
        raise ProtocolError(f"trace context clock_s must be a number, got {clock_s!r}")
    return fields, TraceContext(
        trace_id=trace_id, parent_span_id=int(span), clock_s=float(clock_s)
    )


@dataclass(frozen=True)
class ClientTelemetry:
    """One client's decoded TELEMETRY message: spans + a metrics snapshot.

    ``spans`` are serialized
    :class:`~repro.observability.tracing.SpanRecord` dicts with *client-local*
    span ids; the ingesting server remaps them into its own id space.
    """

    client_id: int
    spans: tuple[dict[str, Any], ...]
    metrics: dict[str, Any]


def _validate_span_dict(span: Any, index: int) -> dict[str, Any]:
    """Check one serialized span; raises :class:`ProtocolError` on any defect."""
    if not isinstance(span, dict):
        raise ProtocolError(f"telemetry span {index} must be an object, got {span!r}")
    for key, types in _SPAN_FIELDS:
        value = span.get(key)
        if not isinstance(value, types) or isinstance(value, bool):
            raise ProtocolError(
                f"telemetry span {index} field {key!r} must be "
                f"{'/'.join(t.__name__ for t in types)}, got {value!r}"
            )
    parent = span.get("parent_id")
    if parent is not None and (not isinstance(parent, int) or isinstance(parent, bool)):
        raise ProtocolError(
            f"telemetry span {index} parent_id must be int or null, got {parent!r}"
        )
    attributes = span.get("attributes", {})
    if not isinstance(attributes, dict):
        raise ProtocolError(
            f"telemetry span {index} attributes must be an object, got {attributes!r}"
        )
    return span


def encode_telemetry(
    client_id: int,
    spans: Sequence[Mapping[str, Any]],
    metrics: Mapping[str, Any] | None = None,
) -> bytes:
    """Serialize one client's telemetry payload (spans + metrics snapshot)."""
    if not isinstance(client_id, (int, np.integer)) or isinstance(client_id, bool):
        raise ProtocolError(f"telemetry client_id must be an integer, got {client_id!r}")
    payload = {
        "v": TELEMETRY_VERSION,
        "client_id": int(client_id),
        "spans": [dict(span) for span in spans],
        "metrics": dict(metrics) if metrics else {},
    }
    return json.dumps(payload).encode()


def decode_telemetry(payload: bytes) -> ClientTelemetry:
    """Parse a TELEMETRY payload with strict, ingestion-safe validation.

    Every defect -- truncated or non-JSON bytes, a wrong version, missing or
    mistyped fields, malformed span entries -- raises
    :class:`ProtocolError`, so a server can account the reject and keep the
    round's artifact clean: telemetry is best-effort by design and a corrupt
    payload must never crash ingestion or smuggle junk into the trace.
    """
    try:
        data = json.loads(payload)
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"telemetry payload is not valid JSON: {exc}") from None
    if not isinstance(data, dict):
        raise ProtocolError(
            f"telemetry payload must be a JSON object, got {type(data).__name__}"
        )
    if data.get("v") != TELEMETRY_VERSION:
        raise ProtocolError(f"unsupported telemetry version {data.get('v')!r}")
    client_id = data.get("client_id")
    if not isinstance(client_id, int) or isinstance(client_id, bool) or client_id < 0:
        raise ProtocolError(
            f"telemetry client_id must be a non-negative int, got {client_id!r}"
        )
    spans = data.get("spans")
    if not isinstance(spans, list):
        raise ProtocolError(f"telemetry spans must be a list, got {spans!r}")
    metrics = data.get("metrics", {})
    if not isinstance(metrics, dict):
        raise ProtocolError(f"telemetry metrics must be an object, got {metrics!r}")
    validated = tuple(_validate_span_dict(span, i) for i, span in enumerate(spans))
    return ClientTelemetry(client_id=client_id, spans=validated, metrics=metrics)


def payload_efficiency() -> float:
    """Private payload bits per transmitted bit (the Section 5 observation).

    One private bit inside a 16-byte frame: the overhead is why "the
    distinction between sending a single bit versus a few numeric values is
    not so meaningful" for a single feature -- and why multi-feature batches
    amortize it.
    """
    return 1.0 / (REPORT_SIZE * 8)
