"""Wire format for one-bit reports.

The paper's communication-cost discussion (Section 5) notes that while only
a single *private* bit is disclosed, the message also carries
non-private protocol fields -- "header information, and list which bit was
sampled" -- so a report still occupies one small network packet.  This
module pins that down concretely: a fixed 16-byte frame

    magic (4) | version (1) | bit_index (1) | bit (1) | flags (1) | client_id (8)

with strict, mirror-image validation on both encode and decode (bad magic,
truncation, non-binary bit, out-of-range index, or non-integer fields all
raise :class:`~repro.exceptions.ProtocolError`), plus
the batching helpers a real uplink would use.  The ``flags`` byte records
whether randomized response was applied -- public metadata the server needs
for debiasing.
"""

from __future__ import annotations

import struct
from typing import Iterable

import numpy as np

from repro.exceptions import ProtocolError
from repro.federated.client import BitReport

__all__ = [
    "MAGIC",
    "REPORT_SIZE",
    "encode_report",
    "decode_report",
    "encode_batch",
    "decode_batch",
    "payload_efficiency",
]

#: Frame magic -- "bit-push".
MAGIC = b"BPSH"
#: Protocol version this module speaks.
VERSION = 1
#: Flag bit: the report's value bit passed through randomized response.
FLAG_RANDOMIZED_RESPONSE = 0x01

_STRUCT = struct.Struct(">4sBBBBQ")
#: Size of one encoded report in bytes.
REPORT_SIZE = _STRUCT.size


def encode_report(report: BitReport, randomized_response: bool = False) -> bytes:
    """Serialize one report into its 16-byte frame.

    Validation is the exact mirror image of :func:`decode_report`: any frame
    this function emits will decode, and any report it rejects would have
    been rejected on decode.  Every failure raises :class:`ProtocolError` --
    a malformed report must be caught at the uplink, not when the server
    unpacks it.  Non-integer field types (a float ``bit_index``, a string
    ``client_id``) are rejected here too, where ``struct`` would otherwise
    raise its own opaque error.
    """
    for name, value in (
        ("client_id", report.client_id),
        ("bit_index", report.bit_index),
        ("bit", report.bit),
    ):
        if not isinstance(value, (int, np.integer)):
            raise ProtocolError(f"report {name} must be an integer, got {value!r}")
    if report.bit not in (0, 1):
        raise ProtocolError(f"report bit must be 0 or 1, got {report.bit}")
    if not 0 <= report.bit_index < 64:
        raise ProtocolError(f"bit index {report.bit_index} outside [0, 64)")
    if not 0 <= report.client_id < 2**64:
        raise ProtocolError(f"client id {report.client_id} does not fit in 64 bits")
    flags = FLAG_RANDOMIZED_RESPONSE if randomized_response else 0
    return _STRUCT.pack(
        MAGIC, VERSION, int(report.bit_index), int(report.bit), flags, int(report.client_id)
    )


def decode_report(frame: bytes) -> tuple[BitReport, bool]:
    """Parse one frame; returns ``(report, randomized_response_flag)``.

    Every validation failure raises :class:`ProtocolError` -- a server must
    never fold a malformed report into its counters.
    """
    if len(frame) != REPORT_SIZE:
        raise ProtocolError(
            f"report frame must be exactly {REPORT_SIZE} bytes, got {len(frame)}"
        )
    magic, version, bit_index, bit, flags, client_id = _STRUCT.unpack(frame)
    if magic != MAGIC:
        raise ProtocolError(f"bad magic {magic!r}")
    if version != VERSION:
        raise ProtocolError(f"unsupported protocol version {version}")
    if bit not in (0, 1):
        raise ProtocolError(f"non-binary report bit {bit}")
    if bit_index >= 64:
        raise ProtocolError(f"bit index {bit_index} outside [0, 64)")
    if flags & ~FLAG_RANDOMIZED_RESPONSE:
        raise ProtocolError(f"unknown flag bits 0x{flags:02x}")
    return (
        BitReport(client_id=client_id, bit_index=bit_index, bit=bit),
        bool(flags & FLAG_RANDOMIZED_RESPONSE),
    )


def encode_batch(reports: Iterable[BitReport], randomized_response: bool = False) -> bytes:
    """Concatenate report frames (a device uplinking several features)."""
    return b"".join(encode_report(r, randomized_response) for r in reports)


def decode_batch(data: bytes) -> list[tuple[BitReport, bool]]:
    """Split and parse a concatenation of frames."""
    if len(data) % REPORT_SIZE != 0:
        raise ProtocolError(
            f"batch of {len(data)} bytes is not a whole number of "
            f"{REPORT_SIZE}-byte frames"
        )
    return [
        decode_report(data[offset:offset + REPORT_SIZE])
        for offset in range(0, len(data), REPORT_SIZE)
    ]


def payload_efficiency() -> float:
    """Private payload bits per transmitted bit (the Section 5 observation).

    One private bit inside a 16-byte frame: the overhead is why "the
    distinction between sending a single bit versus a few numeric values is
    not so meaningful" for a single feature -- and why multi-feature batches
    amortize it.
    """
    return 1.0 / (REPORT_SIZE * 8)
