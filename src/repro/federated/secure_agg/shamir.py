"""Shamir secret sharing over a prime field.

Secure aggregation survives client dropout by having every client
secret-share two things with its peers before submitting anything: the seed
of its self-mask and its pairwise key material.  When a client disappears
mid-round, any ``threshold`` surviving peers can reconstruct what the server
needs to cancel that client's masks (Segal et al. 2017).

This is a textbook ``(threshold, n)`` Shamir implementation: the secret is
the constant term of a random degree-``threshold - 1`` polynomial, shares
are evaluations at distinct non-zero points, reconstruction is Lagrange
interpolation at zero.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError, SecureAggregationError
from repro.federated.secure_agg.field import PrimeField
from repro.rng import ensure_rng

__all__ = ["Share", "split_secret", "reconstruct_secret"]


@dataclass(frozen=True)
class Share:
    """One Shamir share: the evaluation point ``x`` and value ``y``."""

    x: int
    y: int


def split_secret(
    secret: int,
    n_shares: int,
    threshold: int,
    field: PrimeField,
    rng: np.random.Generator | int | None = None,
) -> list[Share]:
    """Split ``secret`` into ``n_shares`` shares, any ``threshold`` of which reconstruct it.

    Examples
    --------
    >>> field = PrimeField(2**61 - 1)
    >>> shares = split_secret(12345, n_shares=5, threshold=3, field=field, rng=0)
    >>> reconstruct_secret(shares[1:4], field)
    12345
    """
    if not 1 <= threshold <= n_shares:
        raise ConfigurationError(
            f"need 1 <= threshold <= n_shares, got threshold={threshold}, n_shares={n_shares}"
        )
    if n_shares >= field.modulus:
        raise ConfigurationError("more shares requested than distinct field points")
    gen = ensure_rng(rng)
    secret = field.reduce(secret)
    # Random polynomial with constant term = secret.
    coefficients = [secret] + [field.random_element(gen) for _ in range(threshold - 1)]
    shares = []
    for x in range(1, n_shares + 1):
        # Horner evaluation at x.
        y = 0
        for coeff in reversed(coefficients):
            y = field.add(field.mul(y, x), coeff)
        shares.append(Share(x=x, y=y))
    return shares


def reconstruct_secret(shares: list[Share], field: PrimeField) -> int:
    """Reconstruct the secret from at least ``threshold`` distinct shares.

    Lagrange interpolation at ``x = 0``.  Raises
    :class:`SecureAggregationError` on duplicate evaluation points (a sign
    of protocol corruption); supplying *fewer* than ``threshold`` shares is
    undetectable here and simply yields garbage, which is why the session
    layer tracks survivor counts explicitly.
    """
    if not shares:
        raise SecureAggregationError("cannot reconstruct from zero shares")
    xs = [s.x for s in shares]
    if len(set(xs)) != len(xs):
        raise SecureAggregationError(f"duplicate share points: {sorted(xs)}")
    secret = 0
    for i, share_i in enumerate(shares):
        # Lagrange basis polynomial evaluated at 0.
        numerator, denominator = 1, 1
        for j, share_j in enumerate(shares):
            if i == j:
                continue
            numerator = field.mul(numerator, field.neg(share_j.x))
            denominator = field.mul(denominator, field.sub(share_i.x, share_j.x))
        basis = field.mul(numerator, field.inv(denominator))
        secret = field.add(secret, field.mul(share_i.y, basis))
    return secret
