"""Shamir secret sharing over a prime field.

Secure aggregation survives client dropout by having every client
secret-share two things with its peers before submitting anything: the seed
of its self-mask and its pairwise key material.  When a client disappears
mid-round, any ``threshold`` surviving peers can reconstruct what the server
needs to cancel that client's masks (Segal et al. 2017).

This is a textbook ``(threshold, n)`` Shamir implementation: the secret is
the constant term of a random degree-``threshold - 1`` polynomial, shares
are evaluations at distinct non-zero points, reconstruction is Lagrange
interpolation at zero.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.exceptions import ConfigurationError, SecureAggregationError
from repro.federated.secure_agg.field import PrimeField
from repro.rng import ensure_rng

__all__ = [
    "Share",
    "split_secret",
    "split_secrets",
    "reconstruct_secret",
    "reconstruct_secrets",
]


@dataclass(frozen=True)
class Share:
    """One Shamir share: the evaluation point ``x`` and value ``y``."""

    x: int
    y: int


def split_secret(
    secret: int,
    n_shares: int,
    threshold: int,
    field: PrimeField,
    rng: np.random.Generator | int | None = None,
) -> list[Share]:
    """Split ``secret`` into ``n_shares`` shares, any ``threshold`` of which reconstruct it.

    Examples
    --------
    >>> field = PrimeField(2**61 - 1)
    >>> shares = split_secret(12345, n_shares=5, threshold=3, field=field, rng=0)
    >>> reconstruct_secret(shares[1:4], field)
    12345
    """
    if not 1 <= threshold <= n_shares:
        raise ConfigurationError(
            f"need 1 <= threshold <= n_shares, got threshold={threshold}, n_shares={n_shares}"
        )
    if n_shares >= field.modulus:
        raise ConfigurationError("more shares requested than distinct field points")
    gen = ensure_rng(rng)
    secret = field.reduce(secret)
    # Random polynomial with constant term = secret.
    coefficients = [secret] + [field.random_element(gen) for _ in range(threshold - 1)]
    shares = []
    for x in range(1, n_shares + 1):
        # Horner evaluation at x.
        y = 0
        for coeff in reversed(coefficients):
            y = field.add(field.mul(y, x), coeff)
        shares.append(Share(x=x, y=y))
    return shares


@lru_cache(maxsize=64)
def _power_matrix(n_shares: int, threshold: int, modulus: int) -> np.ndarray:
    """``x**d mod p`` for ``x = 1..n_shares``, ``d = 0..threshold-1``."""
    return np.array(
        [
            [pow(x, d, modulus) for x in range(1, n_shares + 1)]
            for d in range(threshold)
        ],
        dtype=np.uint64,
    )


def split_secrets(
    secrets,
    n_shares: int,
    threshold: int,
    field: PrimeField,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Batched :func:`split_secret`: one polynomial per secret, vectorized.

    Returns a ``(len(secrets), n_shares)`` uint64 matrix whose row ``i``
    holds the share *values* of ``secrets[i]`` at the implicit evaluation
    points ``x = 1 .. n_shares``.  Value- and stream-identical to calling
    :func:`split_secret` once per secret on the same generator (the
    coefficient block is drawn row-major, exactly the order the scalar
    loop consumes), but the polynomial evaluations are ``threshold``
    field-array ops instead of ``len(secrets) * n_shares`` Horner loops.
    """
    if not 1 <= threshold <= n_shares:
        raise ConfigurationError(
            f"need 1 <= threshold <= n_shares, got threshold={threshold}, n_shares={n_shares}"
        )
    if n_shares >= field.modulus:
        raise ConfigurationError("more shares requested than distinct field points")
    gen = ensure_rng(rng)
    secrets = field.reduce_array(np.asarray(secrets)).reshape(-1)
    k = secrets.size
    if threshold > 1:
        coefficients = np.asarray(
            gen.integers(0, field.modulus, size=(k, threshold - 1)), dtype=np.uint64
        )
    else:
        coefficients = np.zeros((k, 0), dtype=np.uint64)
    powers = _power_matrix(n_shares, threshold, field.modulus)
    # One fused multiply (k, threshold, n_shares), then a block-folded
    # mod-p reduction over the coefficient axis (same overflow discipline
    # as PrimeField.sum_rows: partial sums never wrap uint64).
    coeffs = np.concatenate([secrets[:, None], coefficients], axis=1)
    terms = field.mul_arrays(coeffs[:, :, None], powers[None, :, :])
    p = np.uint64(field.modulus)
    block = max(1, ((1 << 64) - 1) // (field.modulus - 1) - 1)
    shares = np.zeros((k, n_shares), dtype=np.uint64)
    for start in range(0, threshold, block):
        shares = (shares + terms[:, start : start + block].sum(axis=1)) % p
    return shares


@lru_cache(maxsize=512)
def _lagrange_weights_at_zero(xs: tuple[int, ...], modulus: int) -> tuple[int, ...]:
    field = PrimeField(modulus)
    weights = []
    for i, x_i in enumerate(xs):
        numerator, denominator = 1, 1
        for j, x_j in enumerate(xs):
            if i == j:
                continue
            numerator = field.mul(numerator, field.neg(x_j))
            denominator = field.mul(denominator, field.sub(x_i, x_j))
        weights.append(field.mul(numerator, field.inv(denominator)))
    return tuple(weights)


def reconstruct_secrets(
    xs,
    ys: np.ndarray,
    field: PrimeField,
    expected_threshold: int | None = None,
) -> np.ndarray:
    """Batched :func:`reconstruct_secret` for shares on *common* points.

    ``xs`` are the shared evaluation points and ``ys`` a ``(m, len(xs))``
    uint64 matrix -- row ``i`` holds one secret's share values at ``xs``.
    Every row reuses the same Lagrange weights at zero (computed, and
    inverted, once per point set instead of once per secret), so the
    per-secret cost is ``len(xs)`` field-array multiply-adds.  Raises
    exactly like the scalar twin on empty/duplicate points or an
    under-``expected_threshold`` share set.
    """
    xs = tuple(int(x) for x in xs)
    if not xs:
        raise SecureAggregationError("cannot reconstruct from zero shares")
    if expected_threshold is not None and len(xs) < expected_threshold:
        raise SecureAggregationError(
            f"reconstruction needs >= {expected_threshold} shares, got {len(xs)}; "
            "interpolating fewer would silently yield garbage"
        )
    if len(set(xs)) != len(xs):
        raise SecureAggregationError(f"duplicate share points: {sorted(xs)}")
    ys = np.atleast_2d(np.asarray(ys, dtype=np.uint64))
    if ys.shape[-1] != len(xs):
        raise ConfigurationError(
            f"share matrix has {ys.shape[-1]} columns for {len(xs)} points"
        )
    weights = np.array(
        _lagrange_weights_at_zero(xs, field.modulus), dtype=np.uint64
    )
    terms = field.mul_arrays(ys, weights[None, :])
    p = np.uint64(field.modulus)
    block = max(1, ((1 << 64) - 1) // (field.modulus - 1) - 1)
    secrets = np.zeros(ys.shape[0], dtype=np.uint64)
    for start in range(0, len(xs), block):
        secrets = (secrets + terms[:, start : start + block].sum(axis=1)) % p
    return secrets


def reconstruct_secret(
    shares: list[Share],
    field: PrimeField,
    expected_threshold: int | None = None,
) -> int:
    """Reconstruct the secret from at least ``threshold`` distinct shares.

    Lagrange interpolation at ``x = 0``.  Raises
    :class:`SecureAggregationError` on duplicate evaluation points (a sign
    of protocol corruption).  Supplying fewer than ``threshold`` shares is
    mathematically undetectable -- interpolation happily returns a value
    that is *not* the secret -- so callers that know the split's threshold
    must pass it as ``expected_threshold``: an under-threshold share set
    then raises instead of silently corrupting whatever sum the "secret"
    feeds (the session layer always passes it).
    """
    if not shares:
        raise SecureAggregationError("cannot reconstruct from zero shares")
    if expected_threshold is not None and len(shares) < expected_threshold:
        raise SecureAggregationError(
            f"reconstruction needs >= {expected_threshold} shares, got {len(shares)}; "
            "interpolating fewer would silently yield garbage"
        )
    xs = [s.x for s in shares]
    if len(set(xs)) != len(xs):
        raise SecureAggregationError(f"duplicate share points: {sorted(xs)}")
    secret = 0
    for i, share_i in enumerate(shares):
        # Lagrange basis polynomial evaluated at 0.
        numerator, denominator = 1, 1
        for j, share_j in enumerate(shares):
            if i == j:
                continue
            numerator = field.mul(numerator, field.neg(share_j.x))
            denominator = field.mul(denominator, field.sub(share_i.x, share_j.x))
        basis = field.mul(numerator, field.inv(denominator))
        secret = field.add(secret, field.mul(share_i.y, basis))
    return secret
