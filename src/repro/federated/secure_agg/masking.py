"""Mask generation for pairwise-masked secure aggregation.

Each client ``i`` submits ``x_i + b_i + sum_{j>i} m_ij - sum_{j<i} m_ji``
(mod p), where ``b_i`` is a self-mask expanded from a private seed and
``m_ij`` is a pairwise mask expanded from a seed shared by clients ``i`` and
``j``.  Summed over all clients, the pairwise masks cancel exactly; the
self-masks are removed by the server after share-based seed recovery.

Masks are expanded deterministically with Philox-4x64-10 (Salmon et al.,
"Parallel Random Numbers: As Easy as 1, 2, 3"), the same counter-based
generator numpy ships -- but evaluated here as a *batched* numpy kernel:
one call expands every seed of a shard at once, each seed keying its own
counter stream, with no per-seed ``Generator`` construction.  The kernel is
pinned bit-identical to ``np.random.Philox(key=seed).random_raw`` by a
test.  Uniform words are truncated into the field with a single modulo;
the residue bias is < 2**-56 for the default 61-bit prime and irrelevant
to correctness, which only needs both endpoints of a seed to derive the
*same* vector so masks cancel exactly.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.federated.secure_agg.field import PrimeField

__all__ = [
    "expand_mask",
    "expand_masks",
    "philox4x64",
    "apply_masks",
    "pairwise_mask_sign",
]

# Philox-4x64 round multipliers and Weyl key increments (Random123).
_PHILOX_M0 = np.uint64(0xD2E7470EE14C6C93)
_PHILOX_M1 = np.uint64(0xCA5A826395121157)
_WEYL_0 = np.uint64(0x9E3779B97F4A7C15)
_WEYL_1 = np.uint64(0xBB67AE8584CAA73B)
_MASK32 = np.uint64(0xFFFFFFFF)
_SHIFT32 = np.uint64(32)
_ROUNDS = 10


def _mulhilo(a: np.uint64, b: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Full 64x64 -> 128 bit product of scalar ``a`` with array ``b``.

    uint64 multiplication wraps, so the high word is assembled from 32-bit
    half products (schoolbook); every partial sum provably fits in uint64.
    """
    lo = a * b
    a_lo, a_hi = a & _MASK32, a >> _SHIFT32
    b_lo, b_hi = b & _MASK32, b >> _SHIFT32
    t1 = a_hi * b_lo + ((a_lo * b_lo) >> _SHIFT32)
    t2 = a_lo * b_hi + (t1 & _MASK32)
    hi = a_hi * b_hi + (t1 >> _SHIFT32) + (t2 >> _SHIFT32)
    return hi, lo


def philox4x64(
    key0: np.ndarray, counter0: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Philox-4x64-10 blocks, vectorized over keys and counters.

    ``key0`` and ``counter0`` broadcast together; each element pair selects
    the block with key ``(key0, 0)`` and counter ``(counter0, 0, 0, 0)``
    and yields that block's four output words.  A test pins the kernel
    bit-identical to ``np.random.Philox(key=key0).random_raw`` (numpy
    pre-increments, so its ``i``-th raw block is counter ``i + 1``).
    """
    shape = np.broadcast_shapes(np.shape(key0), np.shape(counter0))
    with np.errstate(over="ignore"):
        c0 = np.broadcast_to(np.asarray(counter0, dtype=np.uint64), shape).copy()
        c1 = np.zeros(shape, dtype=np.uint64)
        c2 = np.zeros(shape, dtype=np.uint64)
        c3 = np.zeros(shape, dtype=np.uint64)
        k0 = np.broadcast_to(np.asarray(key0, dtype=np.uint64), shape)
        k1 = np.zeros(shape, dtype=np.uint64)
        for _ in range(_ROUNDS):
            hi0, lo0 = _mulhilo(_PHILOX_M0, c0)
            hi1, lo1 = _mulhilo(_PHILOX_M1, c2)
            c0, c1, c2, c3 = hi1 ^ c1 ^ k0, lo1, hi0 ^ c3 ^ k1, lo0
            k0 = k0 + _WEYL_0
            k1 = k1 + _WEYL_1
    return c0, c1, c2, c3


def expand_masks(seeds, length: int, field: PrimeField) -> np.ndarray:
    """Expand each seed into one row of a ``(len(seeds), length)`` uint64 array.

    One vectorized Philox pass covers every seed: seed ``i`` keys its own
    counter stream (counters ``0, 1, ...`` per 4-word block), so rows depend
    only on their seed -- both endpoints of a pairwise seed, and any
    re-expansion during dropout recovery, derive exactly the same mask.
    """
    if length < 0:
        raise ConfigurationError(f"mask length must be >= 0, got {length}")
    seeds = np.asarray(seeds, dtype=np.uint64).reshape(-1)
    if length == 0 or seeds.size == 0:
        return np.zeros((seeds.size, length), dtype=np.uint64)
    blocks = -(-length // 4)
    lanes = philox4x64(
        seeds[:, None], np.arange(1, blocks + 1, dtype=np.uint64)[None, :]
    )
    words = np.stack(lanes, axis=-1).reshape(seeds.size, blocks * 4)
    return words[:, :length] % np.uint64(field.modulus)


def expand_mask(seed: int, length: int, field: PrimeField) -> list[int]:
    """Deterministically expand ``seed`` into a uniform field vector.

    Both endpoints of a pairwise seed must derive the *same* vector, so the
    expansion depends only on the seed value.
    """
    return [int(v) for v in expand_masks([seed], length, field)[0]]


def pairwise_mask_sign(my_id: int, other_id: int) -> int:
    """Sign convention making pairwise masks cancel: +1 if ``my_id < other_id``.

    Client ``i`` *adds* ``m_ij`` for peers with larger ids and *subtracts*
    it for peers with smaller ids, so each pair contributes ``+m - m = 0``
    to the total.
    """
    if my_id == other_id:
        raise ConfigurationError("a client has no pairwise mask with itself")
    return 1 if my_id < other_id else -1


def apply_masks(
    values: list[int],
    self_seed: int,
    pairwise_seeds: dict[int, int],
    my_id: int,
    field: PrimeField,
) -> list[int]:
    """Mask a client's value vector for submission.

    Parameters
    ----------
    values:
        The client's plaintext contribution (field elements).
    self_seed:
        Seed of the client's self-mask ``b_i``.
    pairwise_seeds:
        ``other_id -> shared seed`` for every *live* peer.
    my_id:
        This client's id (determines mask signs).
    field:
        The aggregation field.
    """
    masked = [field.reduce(v) for v in values]
    masked = field.add_vectors(masked, expand_mask(self_seed, len(values), field))
    for other_id, seed in pairwise_seeds.items():
        mask = expand_mask(seed, len(values), field)
        if pairwise_mask_sign(my_id, other_id) > 0:
            masked = field.add_vectors(masked, mask)
        else:
            masked = field.sub_vectors(masked, mask)
    return masked
