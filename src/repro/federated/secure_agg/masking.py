"""Mask generation for pairwise-masked secure aggregation.

Each client ``i`` submits ``x_i + b_i + sum_{j>i} m_ij - sum_{j<i} m_ji``
(mod p), where ``b_i`` is a self-mask expanded from a private seed and
``m_ij`` is a pairwise mask expanded from a seed shared by clients ``i`` and
``j``.  Summed over all clients, the pairwise masks cancel exactly; the
self-masks are removed by the server after share-based seed recovery.

Masks are expanded deterministically from integer seeds with numpy's
``Philox`` bit generator (counter-based, so seed -> stream is stable across
platforms), truncated into the field.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.federated.secure_agg.field import PrimeField

__all__ = ["expand_mask", "apply_masks", "pairwise_mask_sign"]


def expand_mask(seed: int, length: int, field: PrimeField) -> list[int]:
    """Deterministically expand ``seed`` into a uniform field vector.

    Both endpoints of a pairwise seed must derive the *same* vector, so the
    expansion depends only on the seed value.
    """
    if length < 0:
        raise ConfigurationError(f"mask length must be >= 0, got {length}")
    gen = np.random.Generator(np.random.Philox(seed))
    return [int(v) for v in gen.integers(0, field.modulus, size=length)]


def pairwise_mask_sign(my_id: int, other_id: int) -> int:
    """Sign convention making pairwise masks cancel: +1 if ``my_id < other_id``.

    Client ``i`` *adds* ``m_ij`` for peers with larger ids and *subtracts*
    it for peers with smaller ids, so each pair contributes ``+m - m = 0``
    to the total.
    """
    if my_id == other_id:
        raise ConfigurationError("a client has no pairwise mask with itself")
    return 1 if my_id < other_id else -1


def apply_masks(
    values: list[int],
    self_seed: int,
    pairwise_seeds: dict[int, int],
    my_id: int,
    field: PrimeField,
) -> list[int]:
    """Mask a client's value vector for submission.

    Parameters
    ----------
    values:
        The client's plaintext contribution (field elements).
    self_seed:
        Seed of the client's self-mask ``b_i``.
    pairwise_seeds:
        ``other_id -> shared seed`` for every *live* peer.
    my_id:
        This client's id (determines mask signs).
    field:
        The aggregation field.
    """
    masked = [field.reduce(v) for v in values]
    masked = field.add_vectors(masked, expand_mask(self_seed, len(values), field))
    for other_id, seed in pairwise_seeds.items():
        mask = expand_mask(seed, len(values), field)
        if pairwise_mask_sign(my_id, other_id) > 0:
            masked = field.add_vectors(masked, mask)
        else:
            masked = field.sub_vectors(masked, mask)
    return masked
