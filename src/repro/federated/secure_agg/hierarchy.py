"""Hierarchical (sharded) secure aggregation with per-shard dropout recovery.

A single flat masking session is O(n**2) in both setup and recovery, which
is why a central aggregator bottlenecks past a few hundred clients (the
DisAgg line of work distributes exactly this).  This module arranges the
cohort as a two-level tree instead:

* **Leaves**: contiguous *shards* of ``shard_size`` clients, each running
  its own :class:`~repro.federated.secure_agg.protocol.SecureAggregationSession`
  with the canonical 2/3 threshold.  Dropout recovery -- survivor seed
  reveal plus Shamir reconstruction -- happens *inside* the shard, so a
  client's disappearance costs O(shard_size) work, not O(n).
* **Root**: per-shard partial sums are already unmasked exact integers, so
  the root aggregator is plain integer addition -- commutative and exact,
  which makes the merge order (and therefore the worker schedule) irrelevant
  to the result.

**Failure containment.**  A shard whose submissions fall below its threshold
cannot be unmasked; it is reported as *failed* (``recovered=False``) and its
clients are excluded from the total, but the other shards' sums still
aggregate.  Callers degrade rather than abort: the server widens the round's
variance accounting and raises a health alert instead of failing the round.

**Parallelism.**  Shards are independent sessions, so they fan out over a
``fork``-based process pool (one worker per shard, bounded by ``workers``).
Determinism follows the executor discipline of
:func:`repro.metrics.execution.spawn_seed_sequences`: shard ``i`` always
seeds its session from the ``i``-th spawned child of the caller's generator,
so results are bit-identical for every worker count and completion order.
Workers run with tracing disabled and ship a private metrics snapshot back
for the parent to merge, exactly like the trial executors.  Shard inputs are
consumed lazily with at most ``workers`` shards in flight, so aggregating a
large cohort never materializes cohort-sized arrays.
"""

from __future__ import annotations

import multiprocessing
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.exceptions import ConfigurationError, SecureAggregationError
from repro.federated.secure_agg.protocol import (
    SecureAggregationSession,
    default_threshold,
)
from repro.metrics.execution import (
    _FORK_AVAILABLE,
    resolve_workers,
    spawn_seed_sequences,
)
from repro.observability import get_metrics, get_tracer
from repro.rng import ensure_rng

__all__ = [
    "ShardTask",
    "ShardOutcome",
    "HierarchicalResult",
    "shard_bounds",
    "aggregate_shards",
    "hierarchical_secure_sum",
]


def shard_bounds(n_clients: int, shard_size: int) -> list[tuple[int, int]]:
    """Contiguous ``[start, stop)`` shard bounds over ``n_clients``.

    A remainder of exactly one client folds into the previous shard instead
    of standing alone: a lone client cannot be masked against peers, and the
    historical fallback of adding its counter to the aggregate in the clear
    was a plaintext leak (the ``n % shard_size == 1`` bug).  The last shard
    may therefore hold ``shard_size + 1`` clients.  ``n_clients == 1`` still
    yields a single singleton shard -- there is no previous shard to fold
    into -- which the aggregator reports as failed rather than leaking.
    """
    if shard_size < 2:
        raise ConfigurationError(f"shard_size must be >= 2, got {shard_size}")
    if n_clients < 0:
        raise ConfigurationError(f"n_clients must be >= 0, got {n_clients}")
    starts = list(range(0, n_clients, shard_size))
    if len(starts) > 1 and n_clients - starts[-1] == 1:
        starts.pop()
    return [
        (start, stop)
        for start, stop in zip(starts, starts[1:] + [n_clients])
    ]


@dataclass(frozen=True)
class ShardTask:
    """One shard's input to the aggregation tree.

    ``submitted_ids`` are *shard-local* client ids (``0 .. n_clients - 1``)
    that actually submit; ``vectors`` holds one row per submitted id, in the
    same order.  Clients present in the shard but absent from
    ``submitted_ids`` are the shard's dropouts -- the session recovers their
    masks from the survivors.
    """

    index: int
    start: int
    n_clients: int
    submitted_ids: np.ndarray
    vectors: np.ndarray


@dataclass(frozen=True)
class ShardOutcome:
    """One shard's result: the partial sum, or a contained failure.

    ``submitted_global_ids`` are the cohort-level indices of the clients
    whose vectors this shard's session actually contains (``start`` plus
    the task's shard-local submitted ids).
    """

    index: int
    start: int
    n_clients: int
    submitted_global_ids: np.ndarray
    threshold: int
    recovered: bool
    total: np.ndarray | None
    duration_s: float = 0.0

    @property
    def submitted(self) -> int:
        return int(self.submitted_global_ids.size)

    @property
    def dropouts(self) -> int:
        return self.n_clients - self.submitted


@dataclass(frozen=True)
class HierarchicalResult:
    """Root-level aggregate plus the per-shard ledger.

    ``total`` sums the *recovered* shards only; ``included`` /
    ``excluded`` partition the cohort's global client indices accordingly,
    so callers can reconcile the aggregate against exactly the clients it
    contains.
    """

    total: np.ndarray
    shards: tuple[ShardOutcome, ...]

    @property
    def failed_shards(self) -> tuple[ShardOutcome, ...]:
        return tuple(s for s in self.shards if not s.recovered)

    @property
    def included(self) -> np.ndarray:
        """Global indices of the submitted clients inside recovered shards.

        Exactly the clients whose vectors :attr:`total` contains.
        """
        parts = [s.submitted_global_ids for s in self.shards if s.recovered]
        return (
            np.concatenate(parts).astype(np.int64)
            if parts
            else np.empty(0, dtype=np.int64)
        )

    @property
    def included_submitters(self) -> int:
        return sum(s.submitted for s in self.shards if s.recovered)

    @property
    def excluded_clients(self) -> int:
        return sum(s.n_clients for s in self.shards if not s.recovered)


def _execute_shard(
    task: ShardTask,
    vector_length: int,
    seed: np.random.SeedSequence,
    bitgen_cls: type,
) -> ShardOutcome:
    """Run one shard's masking session end to end (any process).

    A shard that cannot complete -- a singleton (no peer to mask against) or
    a below-threshold survivor set -- returns ``recovered=False`` instead of
    raising: shard failure is a contained, reportable outcome, not an error
    of the tree.
    """
    start = time.perf_counter()
    global_ids = (task.start + np.asarray(task.submitted_ids)).astype(np.int64)
    if task.n_clients < 2:
        return ShardOutcome(
            index=task.index,
            start=task.start,
            n_clients=task.n_clients,
            submitted_global_ids=global_ids,
            threshold=2,
            recovered=False,
            total=None,
            duration_s=time.perf_counter() - start,
        )
    threshold = default_threshold(task.n_clients)
    session = SecureAggregationSession(
        n_clients=task.n_clients,
        vector_length=vector_length,
        threshold=threshold,
        rng=np.random.Generator(bitgen_cls(seed)),
    )
    session.submit_batch(task.submitted_ids, task.vectors)
    try:
        total = np.array(session.finalize(), dtype=np.int64)
    except SecureAggregationError:
        total = None
    return ShardOutcome(
        index=task.index,
        start=task.start,
        n_clients=task.n_clients,
        submitted_global_ids=global_ids,
        threshold=threshold,
        recovered=total is not None,
        total=total,
        duration_s=time.perf_counter() - start,
    )


def _forked_shard(
    task: ShardTask,
    vector_length: int,
    seed: np.random.SeedSequence,
    bitgen_cls: type,
    parent_metrics_enabled: bool,
) -> tuple[ShardOutcome, dict | None]:
    """Worker entry point: one shard with worker-private observability.

    Mirrors the trial executors' fork discipline: tracing off (a forked
    exporter would interleave writes on the shared descriptor), metrics into
    a private registry whose snapshot rides back for the parent to merge --
    so session counters match serial execution exactly.
    """
    from repro import observability
    from repro.observability import MetricsRegistry

    observability.disable()
    worker_metrics: MetricsRegistry | None = None
    if parent_metrics_enabled:
        worker_metrics = MetricsRegistry()
        observability.configure(metrics=worker_metrics)
    outcome = _execute_shard(task, vector_length, seed, bitgen_cls)
    return outcome, worker_metrics.snapshot() if worker_metrics is not None else None


def _record_shard(outcome: ShardOutcome, tracer, metrics) -> None:
    """Fold one shard outcome into the parent's spans and counters."""
    attrs = {
        "shard": outcome.index,
        "planned": outcome.n_clients,
        "submitted": outcome.submitted,
        "threshold": outcome.threshold,
        "recovered": outcome.recovered,
        "duration_s": outcome.duration_s,
    }
    with tracer.span("shard.session", attrs):
        pass
    if not outcome.recovered:
        with tracer.span(
            "shard.failed",
            {
                "shard": outcome.index,
                "planned": outcome.n_clients,
                "submitted": outcome.submitted,
                "threshold": outcome.threshold,
            },
        ):
            pass
    if metrics.enabled:
        metrics.counter("secure_shards_total").inc()
        if not outcome.recovered:
            metrics.counter("secure_shard_failures_total").inc()
            metrics.counter("secure_clients_excluded_total").inc(outcome.n_clients)


def aggregate_shards(
    tasks: Iterable[ShardTask],
    vector_length: int,
    rng: np.random.Generator | int | None = None,
    workers: int | None = None,
) -> HierarchicalResult:
    """Run every shard's session and merge the recovered partial sums.

    ``tasks`` is consumed lazily: with ``workers > 1`` at most ``workers``
    shards are in flight at once, so callers can stream shard inputs without
    ever holding the whole cohort in memory.  Shard ``i`` is seeded from the
    ``i``-th spawned child of ``rng`` regardless of scheduling, so the result
    is bit-identical for every worker count (asserted by the twin tests).

    ``workers=None`` reads ``REPRO_WORKERS`` (the executor convention).
    Falls back to serial execution when ``fork`` is unavailable.
    """
    gen = ensure_rng(rng)
    n_workers = resolve_workers(workers)
    tracer = get_tracer()
    metrics = get_metrics()
    task_list = tasks if isinstance(tasks, Sequence) else None

    def seeded(task_iter: Iterable[ShardTask]) -> Iterator[tuple[ShardTask, np.random.SeedSequence, type]]:
        # Spawn seeds in shard order off the parent sequence.  One spawn
        # call per shard keeps the iterator lazy; children are identical to
        # a single batched spawn (SeedSequence.spawn is a counter walk).
        for task in task_iter:
            (seed,), bitgen_cls = spawn_seed_sequences(gen, 1)
            yield task, seed, bitgen_cls

    outcomes: list[ShardOutcome] = []
    use_pool = n_workers > 1 and _FORK_AVAILABLE and (
        task_list is None or len(task_list) > 1
    )
    source = seeded(task_list if task_list is not None else tasks)
    if not use_pool:
        for task, seed, bitgen_cls in source:
            outcome = _execute_shard(task, vector_length, seed, bitgen_cls)
            _record_shard(outcome, tracer, metrics)
            outcomes.append(outcome)
    else:
        context = multiprocessing.get_context("fork")
        parent_metrics_enabled = metrics.enabled
        with ProcessPoolExecutor(max_workers=n_workers, mp_context=context) as pool:
            pending = set()

            def drain(done_set) -> None:
                for future in done_set:
                    outcome, snapshot = future.result()
                    _record_shard(outcome, tracer, metrics)
                    if snapshot is not None and metrics.enabled:
                        metrics.merge_snapshot(snapshot)
                    outcomes.append(outcome)

            for task, seed, bitgen_cls in source:
                if len(pending) >= n_workers:
                    done, pending = wait(pending, return_when=FIRST_COMPLETED)
                    drain(done)
                pending.add(
                    pool.submit(
                        _forked_shard,
                        task,
                        vector_length,
                        seed,
                        bitgen_cls,
                        parent_metrics_enabled,
                    )
                )
            done, _ = wait(pending)
            drain(done)

    outcomes.sort(key=lambda o: o.index)
    total = np.zeros(vector_length, dtype=np.int64)
    for outcome in outcomes:
        if outcome.recovered and outcome.total is not None:
            total += outcome.total
    return HierarchicalResult(total=total, shards=tuple(outcomes))


def hierarchical_secure_sum(
    vectors: np.ndarray,
    submitted: np.ndarray | None = None,
    shard_size: int = 32,
    workers: int | None = None,
    rng: np.random.Generator | int | None = None,
) -> HierarchicalResult:
    """Securely sum client row-vectors through the shard tree.

    The hierarchical twin of
    :func:`~repro.federated.secure_agg.protocol.secure_sum`: same exact
    integer total over the included clients, O(shard_size**2) masking work
    per shard instead of O(n**2) overall, and per-shard failure containment.
    ``submitted`` marks which clients submit (all, by default); a shard whose
    survivors fall below its 2/3 threshold is excluded, not fatal -- inspect
    :attr:`HierarchicalResult.failed_shards`.

    Examples
    --------
    >>> import numpy as np
    >>> vecs = np.ones((10, 3), dtype=np.int64)
    >>> result = hierarchical_secure_sum(vecs, shard_size=4, rng=0)
    >>> result.total.tolist()
    [10, 10, 10]
    >>> len(result.shards)
    3
    """
    vecs = np.asarray(vectors)
    if vecs.ndim != 2:
        raise ConfigurationError(f"expected a 2-D (clients x length) array, got {vecs.shape}")
    n_clients, length = vecs.shape
    if submitted is None:
        submitted = np.ones(n_clients, dtype=bool)
    submitted = np.asarray(submitted, dtype=bool)
    if submitted.shape != (n_clients,):
        raise ConfigurationError("submitted mask must have one entry per client")

    def tasks() -> Iterator[ShardTask]:
        for index, (start, stop) in enumerate(shard_bounds(n_clients, shard_size)):
            local_ids = np.flatnonzero(submitted[start:stop])
            yield ShardTask(
                index=index,
                start=start,
                n_clients=stop - start,
                submitted_ids=local_ids,
                vectors=vecs[start:stop][local_ids],
            )

    with get_tracer().span(
        "secure_agg.hierarchy",
        {"n_clients": n_clients, "shard_size": shard_size},
    ):
        return aggregate_shards(tasks(), length, rng=rng, workers=workers)
