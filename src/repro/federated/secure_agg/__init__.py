"""Secure aggregation substrate: prime field, Shamir sharing, masking, protocol, shard tree."""

from repro.federated.secure_agg.field import DEFAULT_PRIME, PrimeField
from repro.federated.secure_agg.hierarchy import (
    HierarchicalResult,
    ShardOutcome,
    ShardTask,
    aggregate_shards,
    hierarchical_secure_sum,
    shard_bounds,
)
from repro.federated.secure_agg.masking import (
    apply_masks,
    expand_mask,
    expand_masks,
    pairwise_mask_sign,
    philox4x64,
)
from repro.federated.secure_agg.protocol import (
    SecureAggregationSession,
    default_threshold,
    secure_sum,
)
from repro.federated.secure_agg.shamir import (
    Share,
    reconstruct_secret,
    reconstruct_secrets,
    split_secret,
    split_secrets,
)

__all__ = [
    "DEFAULT_PRIME",
    "HierarchicalResult",
    "PrimeField",
    "SecureAggregationSession",
    "Share",
    "ShardOutcome",
    "ShardTask",
    "aggregate_shards",
    "apply_masks",
    "default_threshold",
    "expand_mask",
    "expand_masks",
    "hierarchical_secure_sum",
    "pairwise_mask_sign",
    "philox4x64",
    "reconstruct_secret",
    "reconstruct_secrets",
    "secure_sum",
    "shard_bounds",
    "split_secret",
    "split_secrets",
]
