"""Secure aggregation substrate: prime field, Shamir sharing, masking, protocol."""

from repro.federated.secure_agg.field import DEFAULT_PRIME, PrimeField
from repro.federated.secure_agg.masking import apply_masks, expand_mask, pairwise_mask_sign
from repro.federated.secure_agg.protocol import SecureAggregationSession, secure_sum
from repro.federated.secure_agg.shamir import Share, reconstruct_secret, split_secret

__all__ = [
    "DEFAULT_PRIME",
    "PrimeField",
    "SecureAggregationSession",
    "Share",
    "apply_masks",
    "expand_mask",
    "pairwise_mask_sign",
    "reconstruct_secret",
    "secure_sum",
    "split_secret",
]
