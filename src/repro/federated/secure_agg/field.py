"""Prime-field arithmetic for secure aggregation.

Secure aggregation sums client vectors modulo a public prime: masks drawn
uniformly from the field perfectly hide individual contributions, and
Shamir secret sharing (used for dropout recovery) needs field arithmetic
with invertible non-zero elements.

We default to the Mersenne prime ``2**61 - 1``: large enough that sums of
millions of 16-bit bit-report vectors never wrap, small enough that Python
integers stay single-word-ish and numpy can hold raw values before
reduction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError
from repro.rng import ensure_rng

__all__ = ["PrimeField", "DEFAULT_PRIME"]

#: Mersenne prime 2**61 - 1.
DEFAULT_PRIME = (1 << 61) - 1

# Deterministic Miller-Rabin witnesses valid for all n < 3.3 * 10**24.
_MR_WITNESSES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)


def _is_prime(n: int) -> bool:
    if n < 2:
        return False
    for p in _MR_WITNESSES:
        if n % p == 0:
            return n == p
    d, r = n - 1, 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for a in _MR_WITNESSES:
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = x * x % n
            if x == n - 1:
                break
        else:
            return False
    return True


@dataclass(frozen=True)
class PrimeField:
    """Arithmetic modulo a prime ``modulus``.

    Examples
    --------
    >>> f = PrimeField(97)
    >>> f.mul(50, 2)
    3
    >>> f.mul(f.inv(13), 13)
    1
    """

    modulus: int = DEFAULT_PRIME

    def __post_init__(self) -> None:
        if not _is_prime(self.modulus):
            raise ConfigurationError(f"field modulus must be prime, got {self.modulus}")

    # ------------------------------------------------------------------
    def reduce(self, x: int) -> int:
        return int(x) % self.modulus

    def add(self, a: int, b: int) -> int:
        return (a + b) % self.modulus

    def sub(self, a: int, b: int) -> int:
        return (a - b) % self.modulus

    def mul(self, a: int, b: int) -> int:
        return (a * b) % self.modulus

    def neg(self, a: int) -> int:
        return (-a) % self.modulus

    def inv(self, a: int) -> int:
        """Multiplicative inverse via Fermat's little theorem."""
        a = a % self.modulus
        if a == 0:
            raise ZeroDivisionError("0 has no inverse in a prime field")
        return pow(a, self.modulus - 2, self.modulus)

    # ------------------------------------------------------------------
    def random_element(self, rng: np.random.Generator | int | None = None) -> int:
        """Uniform field element."""
        gen = ensure_rng(rng)
        return int(gen.integers(0, self.modulus))

    def random_vector(self, length: int, rng: np.random.Generator | int | None = None) -> list[int]:
        """Uniform field vector, returned as Python ints (exact arithmetic).

        Stream-identical to ``length`` sequential :meth:`random_element`
        calls on the same generator (numpy's bounded-integer sampler
        consumes the bit stream the same way for scalar and sized draws),
        which lets callers batch seed generation without changing results.
        """
        gen = ensure_rng(rng)
        return gen.integers(0, self.modulus, size=length).tolist()

    def add_vectors(self, a: list[int], b: list[int]) -> list[int]:
        if len(a) != len(b):
            raise ConfigurationError(f"vector lengths differ: {len(a)} vs {len(b)}")
        return [(x + y) % self.modulus for x, y in zip(a, b)]

    def sub_vectors(self, a: list[int], b: list[int]) -> list[int]:
        if len(a) != len(b):
            raise ConfigurationError(f"vector lengths differ: {len(a)} vs {len(b)}")
        return [(x - y) % self.modulus for x, y in zip(a, b)]

    def centered(self, x: int) -> int:
        """Map a field element to the centered range ``(-p/2, p/2]``.

        Lets callers recover small *signed* integers after modular sums.
        """
        x = x % self.modulus
        return x - self.modulus if x > self.modulus // 2 else x
