"""Prime-field arithmetic for secure aggregation.

Secure aggregation sums client vectors modulo a public prime: masks drawn
uniformly from the field perfectly hide individual contributions, and
Shamir secret sharing (used for dropout recovery) needs field arithmetic
with invertible non-zero elements.

We default to the Mersenne prime ``2**61 - 1``: large enough that sums of
millions of 16-bit bit-report vectors never wrap, small enough that Python
integers stay single-word-ish and numpy can hold raw values before
reduction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError
from repro.rng import ensure_rng

__all__ = ["PrimeField", "DEFAULT_PRIME"]

#: Mersenne prime 2**61 - 1.
DEFAULT_PRIME = (1 << 61) - 1

# Deterministic Miller-Rabin witnesses valid for all n < 3.3 * 10**24.
_MR_WITNESSES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)


def _is_prime(n: int) -> bool:
    if n < 2:
        return False
    for p in _MR_WITNESSES:
        if n % p == 0:
            return n == p
    d, r = n - 1, 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for a in _MR_WITNESSES:
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = x * x % n
            if x == n - 1:
                break
        else:
            return False
    return True


#: Largest modulus for which two field elements can be added in uint64
#: without wrapping (the array kernels' overflow precondition).
_MAX_VECTORIZED_MODULUS = 1 << 63

_M61 = np.uint64(DEFAULT_PRIME)
_M61_BITS = np.uint64(61)
_LOW31 = np.uint64(0x7FFFFFFF)
_SHIFT31 = np.uint64(31)
_SHIFT30 = np.uint64(30)
_ONE = np.uint64(1)


def _reduce_m61(x: np.ndarray) -> np.ndarray:
    """Fold ``x < 2**63`` into ``[0, 2**61 - 1)``.

    For the Mersenne prime ``2**61 ≡ 1 (mod p)``, so one shift-and-add fold
    lands below ``2 p`` and a single conditional subtract finishes.
    """
    x = (x >> _M61_BITS) + (x & _M61)
    return np.where(x >= _M61, x - _M61, x)


def _mul_m61(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Elementwise ``(a * b) mod (2**61 - 1)`` for reduced uint64 arrays.

    Splits each 61-bit factor into 31/30-bit halves; every partial product
    fits uint64, and the ``2**62`` / ``2**31`` scale factors reduce via the
    Mersenne identities ``2**62 ≡ 2`` and ``x * 2**31 ≡ rotl61(x, 31)``.
    """
    a_hi, a_lo = a >> _SHIFT31, a & _LOW31
    b_hi, b_lo = b >> _SHIFT31, b & _LOW31
    low = _reduce_m61(a_lo * b_lo)
    high = _reduce_m61((a_hi * b_hi) << _ONE)
    mid = _reduce_m61(a_hi * b_lo + a_lo * b_hi)
    mid = _reduce_m61(((mid << _SHIFT31) & _M61) + (mid >> _SHIFT30))
    return _reduce_m61(low + high + mid)


@dataclass(frozen=True)
class PrimeField:
    """Arithmetic modulo a prime ``modulus``.

    Scalar and list methods operate on exact Python ints.  The ``*_array``
    methods are the vectorized twins over ``uint64`` numpy arrays -- exact
    for any modulus below ``2**63`` (so a single addition never wraps), which
    covers the default 61-bit Mersenne prime with headroom.

    Examples
    --------
    >>> f = PrimeField(97)
    >>> f.mul(50, 2)
    3
    >>> f.mul(f.inv(13), 13)
    1
    """

    modulus: int = DEFAULT_PRIME

    def __post_init__(self) -> None:
        if not _is_prime(self.modulus):
            raise ConfigurationError(f"field modulus must be prime, got {self.modulus}")

    # ------------------------------------------------------------------
    def reduce(self, x: int) -> int:
        return int(x) % self.modulus

    def add(self, a: int, b: int) -> int:
        return (a + b) % self.modulus

    def sub(self, a: int, b: int) -> int:
        return (a - b) % self.modulus

    def mul(self, a: int, b: int) -> int:
        return (a * b) % self.modulus

    def neg(self, a: int) -> int:
        return (-a) % self.modulus

    def inv(self, a: int) -> int:
        """Multiplicative inverse via Fermat's little theorem."""
        a = a % self.modulus
        if a == 0:
            raise ZeroDivisionError("0 has no inverse in a prime field")
        return pow(a, self.modulus - 2, self.modulus)

    # ------------------------------------------------------------------
    def random_element(self, rng: np.random.Generator | int | None = None) -> int:
        """Uniform field element."""
        gen = ensure_rng(rng)
        return int(gen.integers(0, self.modulus))

    def random_vector(self, length: int, rng: np.random.Generator | int | None = None) -> list[int]:
        """Uniform field vector, returned as Python ints (exact arithmetic).

        Stream-identical to ``length`` sequential :meth:`random_element`
        calls on the same generator (numpy's bounded-integer sampler
        consumes the bit stream the same way for scalar and sized draws),
        which lets callers batch seed generation without changing results.
        """
        gen = ensure_rng(rng)
        return gen.integers(0, self.modulus, size=length).tolist()

    def add_vectors(self, a: list[int], b: list[int]) -> list[int]:
        if len(a) != len(b):
            raise ConfigurationError(f"vector lengths differ: {len(a)} vs {len(b)}")
        return [(x + y) % self.modulus for x, y in zip(a, b)]

    def sub_vectors(self, a: list[int], b: list[int]) -> list[int]:
        if len(a) != len(b):
            raise ConfigurationError(f"vector lengths differ: {len(a)} vs {len(b)}")
        return [(x - y) % self.modulus for x, y in zip(a, b)]

    def centered(self, x: int) -> int:
        """Map a field element to the centered range ``(-p/2, p/2]``.

        Lets callers recover small *signed* integers after modular sums.
        """
        x = x % self.modulus
        return x - self.modulus if x > self.modulus // 2 else x

    # ------------------------------------------------------------------
    # Array kernels: exact uint64 arithmetic for the vectorized masking
    # path.  All of them assume (and _require_vectorizable checks) that
    # the modulus leaves one bit of uint64 headroom, so `a + b` with
    # a, b < p cannot wrap.
    # ------------------------------------------------------------------
    def _require_vectorizable(self) -> None:
        if self.modulus >= _MAX_VECTORIZED_MODULUS:
            raise ConfigurationError(
                f"array field ops need modulus < 2**63, got {self.modulus}"
            )

    def reduce_array(self, values: np.ndarray) -> np.ndarray:
        """Reduce an integer array into ``[0, p)`` as ``uint64``.

        Negative inputs are accepted (numpy's remainder is non-negative for
        a positive modulus), so callers can feed raw signed contributions.
        """
        self._require_vectorizable()
        arr = np.asarray(values)
        if arr.dtype == np.uint64:
            return arr % np.uint64(self.modulus)
        return (np.asarray(arr, dtype=np.int64) % np.int64(self.modulus)).astype(np.uint64)

    def add_arrays(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Elementwise ``(a + b) mod p`` over reduced ``uint64`` arrays."""
        self._require_vectorizable()
        return (a + b) % np.uint64(self.modulus)

    def sub_arrays(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Elementwise ``(a - b) mod p``; safe against unsigned underflow."""
        self._require_vectorizable()
        p = np.uint64(self.modulus)
        return (a + (p - b)) % p

    def mul_arrays(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Elementwise ``(a * b) mod p`` over reduced ``uint64`` arrays.

        Broadcasts like numpy multiplication.  The default Mersenne prime
        runs entirely in uint64 split/rotate arithmetic (exact -- pinned
        against scalar :meth:`mul` by a near-modulus stress test); other
        moduli fall back to exact Python-int products elementwise.
        """
        self._require_vectorizable()
        a = np.asarray(a, dtype=np.uint64)
        b = np.asarray(b, dtype=np.uint64)
        if self.modulus == DEFAULT_PRIME:
            return _mul_m61(a, b)
        a2, b2 = np.broadcast_arrays(a, b)
        out = [
            (x * y) % self.modulus
            for x, y in zip(a2.ravel().tolist(), b2.ravel().tolist())
        ]
        return np.array(out, dtype=np.uint64).reshape(a2.shape)

    def sum_rows(self, rows: np.ndarray) -> np.ndarray:
        """Exact mod-``p`` column sum of a ``(k, length)`` reduced array.

        Rows are folded in blocks small enough that the running uint64
        partial sums cannot wrap: with ``p < 2**63`` at least 2 rows fit per
        block, and the default 61-bit prime allows 7 -- so the reduction is
        O(k/block) numpy passes, not O(k) Python additions.
        """
        self._require_vectorizable()
        rows = np.atleast_2d(np.asarray(rows, dtype=np.uint64))
        p = np.uint64(self.modulus)
        # How many (p-1)-sized values fit in uint64 alongside the (p-1)-sized
        # accumulator: block * (p-1) + (p-1) <= 2**64 - 1.
        block = max(1, ((1 << 64) - 1) // (self.modulus - 1) - 1)
        total = np.zeros(rows.shape[-1], dtype=np.uint64)
        for start in range(0, rows.shape[0], block):
            total = (total + rows[start : start + block].sum(axis=0)) % p
        return total

    def sum_indexed(self, rows: np.ndarray, indices: np.ndarray) -> np.ndarray:
        """Per-row mod-``p`` sums of gathered rows.

        ``out[i] = sum_j rows[indices[i, j]] mod p`` -- the vectorized twin
        of one :meth:`sum_rows` call per index row, for ragged "each output
        sums a different subset" workloads (pad short index lists with the
        index of an all-zero row appended to ``rows``).  Same block-folded
        overflow discipline as :meth:`sum_rows`.
        """
        self._require_vectorizable()
        rows = np.atleast_2d(np.asarray(rows, dtype=np.uint64))
        indices = np.atleast_2d(indices)
        p = np.uint64(self.modulus)
        block = max(1, ((1 << 64) - 1) // (self.modulus - 1) - 1)
        total = np.zeros((indices.shape[0], rows.shape[-1]), dtype=np.uint64)
        for start in range(0, indices.shape[1], block):
            chunk = rows[indices[:, start : start + block]]
            total = (total + chunk.sum(axis=1)) % p
        return total

    def centered_array(self, values: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`centered`: field elements to signed ``int64``."""
        self._require_vectorizable()
        arr = np.asarray(values, dtype=np.uint64) % np.uint64(self.modulus)
        out = arr.astype(np.int64)
        return np.where(arr > np.uint64(self.modulus // 2), out - np.int64(self.modulus), out)
