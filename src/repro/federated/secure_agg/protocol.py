"""Pairwise-masked secure aggregation with dropout recovery.

A functional, laptop-scale implementation of the Segal/Bonawitz et al.
protocol shape the paper relies on (Section 3.3 "Secure aggregation"):

1. **Setup.**  Every pair of clients shares a pairwise mask seed (in a real
   deployment via Diffie--Hellman; here the trusted setup hands both ends
   the same seed).  Every client also draws a private self-mask seed and
   Shamir-shares it among all clients with a reconstruction threshold.
2. **Submission.**  Each client submits its vector plus its self-mask plus
   signed pairwise masks (see :mod:`.masking`).  Summed over everyone, the
   pairwise masks cancel.
3. **Recovery.**  Clients that never submit are *dropouts*.  Their pairwise
   masks linger inside survivors' submissions, so each survivor reveals the
   seed it shared with each dropout and the server subtracts those masks.
   Survivors' self-masks are removed by reconstructing their seeds from any
   ``threshold`` surviving shareholders.

The server learns exactly the sum of the submitted vectors -- bit-pushing's
per-bit counts -- and nothing about individual contributions (each
submission is uniformly distributed given the others).

**Scope note:** this is a protocol-faithful simulation for experiments, not
hardened cryptography: seeds stand in for DH key agreement, and all parties
live in one process.  What it preserves -- and what the tests check -- is the
protocol's *behaviour*: exact sums, tolerance of up to ``n - threshold``
dropouts, and hard failure below the threshold.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError, SecureAggregationError
from repro.federated.secure_agg.field import PrimeField
from repro.federated.secure_agg.masking import apply_masks, expand_mask, pairwise_mask_sign
from repro.federated.secure_agg.shamir import Share, reconstruct_secret, split_secret
from repro.observability import get_metrics, get_tracer
from repro.rng import ensure_rng

__all__ = ["SecureAggregationSession", "secure_sum"]


class SecureAggregationSession:
    """One secure-aggregation round over a fixed set of clients.

    Parameters
    ----------
    n_clients:
        Number of participants, with ids ``0 .. n_clients - 1``.
    vector_length:
        Length of each client's contribution vector.
    threshold:
        Minimum number of submitting clients for the round to complete
        (also the Shamir reconstruction threshold).
    field:
        Aggregation field (default: the 61-bit Mersenne prime field).
    rng:
        Setup randomness (seed generation and share polynomials).

    Examples
    --------
    >>> session = SecureAggregationSession(n_clients=4, vector_length=3, threshold=3, rng=0)
    >>> for cid in [0, 1, 3]:                      # client 2 drops out
    ...     _ = session.submit(cid, [cid, 10 + cid, 1])
    >>> session.finalize()
    [4, 34, 3]
    """

    def __init__(
        self,
        n_clients: int,
        vector_length: int,
        threshold: int,
        field: PrimeField | None = None,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        if n_clients < 2:
            raise ConfigurationError(f"secure aggregation needs >= 2 clients, got {n_clients}")
        if vector_length < 1:
            raise ConfigurationError(f"vector_length must be >= 1, got {vector_length}")
        if not 2 <= threshold <= n_clients:
            raise ConfigurationError(
                f"need 2 <= threshold <= n_clients, got threshold={threshold}, n={n_clients}"
            )
        gen = ensure_rng(rng)
        self.n_clients = n_clients
        self.vector_length = vector_length
        self.threshold = threshold
        self.field = field or PrimeField()

        # -- Setup phase (simulated trusted key agreement). --------------
        # All seeds are field elements: self-mask seeds travel through
        # Shamir shares (field arithmetic), so anything >= the modulus
        # would reconstruct to a different value than was expanded.
        # Pairwise seeds: one per unordered pair, known to both endpoints.
        # Drawn as one batched field vector in (i, j)-lexicographic order --
        # np.triu_indices walks pairs exactly as the nested per-pair loop
        # would, so the draw is stream-identical but O(n^2) numpy instead of
        # O(n^2) Python-level generator calls.
        pair_i, pair_j = np.triu_indices(n_clients, k=1)
        pair_seeds = self.field.random_vector(pair_i.size, gen)
        self._pairwise_seeds: dict[tuple[int, int], int] = {
            (int(i), int(j)): seed for i, j, seed in zip(pair_i, pair_j, pair_seeds)
        }
        # Self-mask seeds, Shamir-shared among all clients.
        self._self_seeds: list[int] = self.field.random_vector(n_clients, gen)
        self._self_seed_shares: list[list[Share]] = [
            split_secret(seed, n_clients, threshold, self.field, gen)
            for seed in self._self_seeds
        ]

        self._submissions: dict[int, list[int]] = {}
        self._finalized = False

    # ------------------------------------------------------------------
    def _seed_for(self, a: int, b: int) -> int:
        return self._pairwise_seeds[(a, b) if a < b else (b, a)]

    def client_pairwise_seeds(self, client_id: int) -> dict[int, int]:
        """The pairwise seeds client ``client_id`` holds (one per peer)."""
        return {
            other: self._seed_for(client_id, other)
            for other in range(self.n_clients)
            if other != client_id
        }

    # ------------------------------------------------------------------
    def submit(self, client_id: int, values: list[int]) -> list[int]:
        """Mask and record one client's contribution; returns the masked vector.

        The returned vector is what crosses the wire: uniformly random to
        any observer who lacks the seeds.
        """
        if self._finalized:
            raise SecureAggregationError("session already finalized")
        if not 0 <= client_id < self.n_clients:
            raise ConfigurationError(f"unknown client id {client_id}")
        if client_id in self._submissions:
            raise SecureAggregationError(f"client {client_id} already submitted")
        if len(values) != self.vector_length:
            raise ConfigurationError(
                f"expected vector of length {self.vector_length}, got {len(values)}"
            )
        masked = apply_masks(
            values,
            self_seed=self._self_seeds[client_id],
            pairwise_seeds=self.client_pairwise_seeds(client_id),
            my_id=client_id,
            field=self.field,
        )
        self._submissions[client_id] = masked
        return masked

    # ------------------------------------------------------------------
    def finalize(self) -> list[int]:
        """Unmask and return the exact sum over all *submitting* clients.

        Raises :class:`SecureAggregationError` if fewer than ``threshold``
        clients submitted (mask recovery would be impossible -- and, in the
        real protocol, privacy would be at risk).
        """
        if self._finalized:
            raise SecureAggregationError("session already finalized")
        survivors = sorted(self._submissions)
        dropped = [c for c in range(self.n_clients) if c not in self._submissions]
        metrics = get_metrics()
        with get_tracer().span(
            "secure_agg.finalize",
            {
                "n_clients": self.n_clients,
                "submitted": len(survivors),
                "dropouts": len(dropped),
                "threshold": self.threshold,
            },
        ):
            if len(survivors) < self.threshold:
                metrics.counter("secure_agg_failures_total").inc()
                raise SecureAggregationError(
                    f"only {len(survivors)} of {self.n_clients} clients submitted; "
                    f"threshold is {self.threshold}"
                )

            total = [0] * self.vector_length
            for masked in self._submissions.values():
                total = self.field.add_vectors(total, masked)

            # Remove survivors' self-masks: reconstruct each seed from any
            # `threshold` shares held by surviving clients.
            for survivor in survivors:
                shares = [self._self_seed_shares[survivor][holder] for holder in survivors]
                seed = reconstruct_secret(shares[: self.threshold], self.field)
                total = self.field.sub_vectors(
                    total, expand_mask(seed, self.vector_length, self.field)
                )

            # Cancel lingering pairwise masks between survivors and dropouts:
            # each survivor reveals the seed it shared with each dropout.
            for survivor in survivors:
                for dead in dropped:
                    seed = self._seed_for(survivor, dead)
                    mask = expand_mask(seed, self.vector_length, self.field)
                    if pairwise_mask_sign(survivor, dead) > 0:
                        total = self.field.sub_vectors(total, mask)
                    else:
                        total = self.field.add_vectors(total, mask)

            self._finalized = True
            if metrics.enabled:
                metrics.counter("secure_agg_sessions_total").inc()
                metrics.counter("secure_agg_dropouts_total").inc(len(dropped))
                metrics.counter("secure_agg_self_masks_removed_total").inc(len(survivors))
                metrics.counter("secure_agg_masks_recovered_total").inc(
                    len(survivors) * len(dropped)
                )
            return [self.field.centered(v) for v in total]

    # ------------------------------------------------------------------
    @property
    def submitted_clients(self) -> tuple[int, ...]:
        return tuple(sorted(self._submissions))

    @property
    def dropout_count(self) -> int:
        return self.n_clients - len(self._submissions)


def secure_sum(
    vectors: np.ndarray,
    submitted: np.ndarray | None = None,
    threshold: int | None = None,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Securely sum integer row-vectors, one per client.

    Convenience wrapper: builds a session, submits rows where ``submitted``
    is true (all, by default), and finalizes.  ``threshold`` defaults to a
    2/3 majority.

    Examples
    --------
    >>> import numpy as np
    >>> vecs = np.arange(12).reshape(4, 3)
    >>> secure_sum(vecs, rng=0).tolist()
    [18, 22, 26]
    """
    vecs = np.asarray(vectors)
    if vecs.ndim != 2:
        raise ConfigurationError(f"expected a 2-D (clients x length) array, got {vecs.shape}")
    n_clients, length = vecs.shape
    if submitted is None:
        submitted = np.ones(n_clients, dtype=bool)
    submitted = np.asarray(submitted, dtype=bool)
    if submitted.shape != (n_clients,):
        raise ConfigurationError("submitted mask must have one entry per client")
    if threshold is None:
        threshold = max(2, (2 * n_clients + 2) // 3)
    session = SecureAggregationSession(n_clients, length, threshold, rng=rng)
    for cid in range(n_clients):
        if submitted[cid]:
            session.submit(cid, [int(v) for v in vecs[cid]])
    return np.array(session.finalize(), dtype=np.int64)
