"""Pairwise-masked secure aggregation with dropout recovery.

A functional, laptop-scale implementation of the Segal/Bonawitz et al.
protocol shape the paper relies on (Section 3.3 "Secure aggregation"):

1. **Setup.**  Every pair of clients shares a pairwise mask seed (in a real
   deployment via Diffie--Hellman; here the trusted setup hands both ends
   the same seed).  Every client also draws a private self-mask seed and
   Shamir-shares it among all clients with a reconstruction threshold.
2. **Submission.**  Each client submits its vector plus its self-mask plus
   signed pairwise masks (see :mod:`.masking`).  Summed over everyone, the
   pairwise masks cancel.
3. **Recovery.**  Clients that never submit are *dropouts*.  Their pairwise
   masks linger inside survivors' submissions, so each survivor reveals the
   seed it shared with each dropout and the server subtracts those masks.
   Survivors' self-masks are removed by reconstructing their seeds from any
   ``threshold`` surviving shareholders.

The server learns exactly the sum of the submitted vectors -- bit-pushing's
per-bit counts -- and nothing about individual contributions (each
submission is uniformly distributed given the others).

All mask arithmetic is vectorized: seeds expand through
:func:`~repro.federated.secure_agg.masking.expand_masks` into 2-D uint64
arrays and combine through the :class:`PrimeField` array kernels, with
:meth:`SecureAggregationSession.submit_batch` masking a whole shard's
submissions in one call (each intra-batch pairwise mask is expanded once,
not once per endpoint).  The batched path is bit-identical to per-client
:meth:`~SecureAggregationSession.submit` calls -- field sums are exact and
order-free.  For sharded, multi-worker aggregation over large cohorts see
:mod:`repro.federated.secure_agg.hierarchy`.

**Scope note:** this is a protocol-faithful simulation for experiments, not
hardened cryptography: seeds stand in for DH key agreement, and all parties
live in one process.  What it preserves -- and what the tests check -- is the
protocol's *behaviour*: exact sums, tolerance of up to ``n - threshold``
dropouts, and hard failure below the threshold.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import ConfigurationError, SecureAggregationError
from repro.federated.secure_agg.field import PrimeField
from repro.federated.secure_agg.masking import expand_masks, pairwise_mask_sign
from repro.federated.secure_agg.shamir import reconstruct_secrets, split_secrets
from repro.observability import get_metrics, get_tracer
from repro.rng import ensure_rng

__all__ = ["SecureAggregationSession", "default_threshold", "secure_sum"]


def default_threshold(n_clients: int) -> int:
    """The canonical 2/3-majority Shamir/survivor threshold for ``n_clients``.

    ``max(2, ceil(2 n / 3))`` -- the single source of truth shared by
    :func:`secure_sum`, the hierarchical aggregator, and the server's shard
    loop (two hand-rolled copies of this formula used to live apart; a test
    pins their equality on this helper now).
    """
    if n_clients < 1:
        raise ConfigurationError(f"n_clients must be >= 1, got {n_clients}")
    return max(2, -(-2 * n_clients // 3))


class SecureAggregationSession:
    """One secure-aggregation round over a fixed set of clients.

    Parameters
    ----------
    n_clients:
        Number of participants, with ids ``0 .. n_clients - 1``.
    vector_length:
        Length of each client's contribution vector.
    threshold:
        Minimum number of submitting clients for the round to complete
        (also the Shamir reconstruction threshold).
    field:
        Aggregation field (default: the 61-bit Mersenne prime field).
    rng:
        Setup randomness (seed generation and share polynomials).

    Examples
    --------
    >>> session = SecureAggregationSession(n_clients=4, vector_length=3, threshold=3, rng=0)
    >>> for cid in [0, 1, 3]:                      # client 2 drops out
    ...     _ = session.submit(cid, [cid, 10 + cid, 1])
    >>> session.finalize()
    [4, 34, 3]
    """

    def __init__(
        self,
        n_clients: int,
        vector_length: int,
        threshold: int,
        field: PrimeField | None = None,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        if n_clients < 2:
            raise ConfigurationError(f"secure aggregation needs >= 2 clients, got {n_clients}")
        if vector_length < 1:
            raise ConfigurationError(f"vector_length must be >= 1, got {vector_length}")
        if not 2 <= threshold <= n_clients:
            raise ConfigurationError(
                f"need 2 <= threshold <= n_clients, got threshold={threshold}, n={n_clients}"
            )
        gen = ensure_rng(rng)
        self.n_clients = n_clients
        self.vector_length = vector_length
        self.threshold = threshold
        self.field = field or PrimeField()

        # -- Setup phase (simulated trusted key agreement). --------------
        # All seeds are field elements: self-mask seeds travel through
        # Shamir shares (field arithmetic), so anything >= the modulus
        # would reconstruct to a different value than was expanded.
        # Pairwise seeds: one per unordered pair, known to both endpoints.
        # Drawn as one batched field vector in (i, j)-lexicographic order --
        # np.triu_indices walks pairs exactly as the nested per-pair loop
        # would, so the draw is stream-identical but O(n^2) numpy instead of
        # O(n^2) Python-level generator calls.
        pair_i, pair_j = np.triu_indices(n_clients, k=1)
        pair_seeds = self.field.random_vector(pair_i.size, gen)
        self._pairwise_seeds: dict[tuple[int, int], int] = {
            (int(i), int(j)): seed for i, j, seed in zip(pair_i, pair_j, pair_seeds)
        }
        # Self-mask seeds, Shamir-shared among all clients: row i of the
        # share matrix holds seed i's share values, column h the share
        # client h keeps (evaluation point x = h + 1).
        self._self_seeds: list[int] = self.field.random_vector(n_clients, gen)
        self._self_seed_shares: np.ndarray = split_secrets(
            self._self_seeds, n_clients, threshold, self.field, gen
        )

        self._submissions: dict[int, np.ndarray] = {}
        self._finalized = False
        self._failed = False

    # ------------------------------------------------------------------
    def _seed_for(self, a: int, b: int) -> int:
        return self._pairwise_seeds[(a, b) if a < b else (b, a)]

    def client_pairwise_seeds(self, client_id: int) -> dict[int, int]:
        """The pairwise seeds client ``client_id`` holds (one per peer)."""
        return {
            other: self._seed_for(client_id, other)
            for other in range(self.n_clients)
            if other != client_id
        }

    # ------------------------------------------------------------------
    def _check_open(self) -> None:
        if self._finalized or self._failed:
            raise SecureAggregationError("session already finalized")

    def _mask_rows(self, client_ids: Sequence[int], rows: np.ndarray) -> np.ndarray:
        """Mask one reduced ``(k, length)`` uint64 row per submitting client.

        Each intra-batch pairwise mask is expanded exactly once and applied
        with opposite signs to both endpoints' rows; masks shared with
        clients outside the batch are expanded once for the batch endpoint.
        """
        field = self.field
        length = self.vector_length
        # Self-masks: one expansion per submitting client.
        self_masks = expand_masks(
            [self._self_seeds[c] for c in client_ids], length, field
        )
        rows = field.add_arrays(rows, self_masks)
        # Pairwise masks: expand the union of needed pair seeds once, then
        # fold each client's signed subset (+ toward larger ids, - toward
        # smaller -- the cancellation convention of pairwise_mask_sign).
        pair_keys: list[tuple[int, int]] = []
        key_index: dict[tuple[int, int], int] = {}
        plus_rows: list[list[int]] = []
        minus_rows: list[list[int]] = []
        for cid in client_ids:
            plus: list[int] = []
            minus: list[int] = []
            for other in range(self.n_clients):
                if other == cid:
                    continue
                key = (cid, other) if cid < other else (other, cid)
                idx = key_index.get(key)
                if idx is None:
                    idx = key_index[key] = len(pair_keys)
                    pair_keys.append(key)
                (plus if cid < other else minus).append(idx)
            plus_rows.append(plus)
            minus_rows.append(minus)
        masks = expand_masks([self._pairwise_seeds[k] for k in pair_keys], length, field)
        # Signed application in two gathered column-sums: pad each client's
        # ragged pair-index list up to the max degree with a sentinel
        # pointing at an appended all-zero mask row.
        masks = np.vstack([masks, np.zeros((1, length), dtype=np.uint64)])
        sentinel = len(pair_keys)

        def padded(index_lists: list[list[int]]) -> np.ndarray:
            width = max((len(lst) for lst in index_lists), default=0)
            out = np.full((len(index_lists), width), sentinel, dtype=np.intp)
            for r, lst in enumerate(index_lists):
                out[r, : len(lst)] = lst
            return out

        rows = field.add_arrays(rows, field.sum_indexed(masks, padded(plus_rows)))
        rows = field.sub_arrays(rows, field.sum_indexed(masks, padded(minus_rows)))
        return rows

    def _validate_ids(self, client_ids: Sequence[int]) -> None:
        seen = set()
        for cid in client_ids:
            if not 0 <= cid < self.n_clients:
                raise ConfigurationError(f"unknown client id {cid}")
            if cid in self._submissions or cid in seen:
                raise SecureAggregationError(f"client {cid} already submitted")
            seen.add(cid)

    def submit(self, client_id: int, values: list[int]) -> list[int]:
        """Mask and record one client's contribution; returns the masked vector.

        The returned vector is what crosses the wire: uniformly random to
        any observer who lacks the seeds.
        """
        self._check_open()
        client_id = int(client_id)
        self._validate_ids([client_id])
        if len(values) != self.vector_length:
            raise ConfigurationError(
                f"expected vector of length {self.vector_length}, got {len(values)}"
            )
        reduced = np.array([[self.field.reduce(v) for v in values]], dtype=np.uint64)
        masked = self._mask_rows([client_id], reduced)[0]
        self._submissions[client_id] = masked
        return [int(v) for v in masked]

    def submit_batch(self, client_ids: Sequence[int], vectors: np.ndarray) -> np.ndarray:
        """Mask and record many clients' contributions in one vectorized call.

        ``vectors`` is a ``(len(client_ids), vector_length)`` integer array
        (int64 range; bit-report counters are tiny).  Returns the masked
        ``(k, length)`` uint64 matrix.  Bit-identical to ``k`` sequential
        :meth:`submit` calls -- masks depend only on setup seeds, and field
        addition is exact -- just without the per-client Python loops.
        """
        self._check_open()
        client_ids = [int(c) for c in client_ids]
        vectors = np.atleast_2d(np.asarray(vectors))
        if vectors.shape != (len(client_ids), self.vector_length):
            raise ConfigurationError(
                f"expected a ({len(client_ids)}, {self.vector_length}) vector batch, "
                f"got {vectors.shape}"
            )
        self._validate_ids(client_ids)
        if not client_ids:
            return np.zeros((0, self.vector_length), dtype=np.uint64)
        masked = self._mask_rows(client_ids, self.field.reduce_array(vectors))
        for row, cid in enumerate(client_ids):
            self._submissions[cid] = masked[row]
        return masked

    # ------------------------------------------------------------------
    def finalize(self) -> list[int]:
        """Unmask and return the exact sum over all *submitting* clients.

        Raises :class:`SecureAggregationError` if fewer than ``threshold``
        clients submitted (mask recovery would be impossible -- and, in the
        real protocol, privacy would be at risk).  A failed finalize leaves
        the session closed: calling it again re-raises without re-counting
        the failure metric.
        """
        if self._finalized:
            raise SecureAggregationError("session already finalized")
        survivors = sorted(self._submissions)
        dropped = [c for c in range(self.n_clients) if c not in self._submissions]
        metrics = get_metrics()
        field = self.field
        with get_tracer().span(
            "secure_agg.finalize",
            {
                "n_clients": self.n_clients,
                "submitted": len(survivors),
                "dropouts": len(dropped),
                "threshold": self.threshold,
            },
        ):
            if len(survivors) < self.threshold:
                first_failure = not self._failed
                self._failed = True
                if metrics.enabled and first_failure:
                    metrics.counter("secure_agg_failures_total").inc()
                raise SecureAggregationError(
                    f"only {len(survivors)} of {self.n_clients} clients submitted; "
                    f"threshold is {self.threshold}"
                )

            total = field.sum_rows(
                np.stack([self._submissions[cid] for cid in survivors])
            )

            # Remove survivors' self-masks: reconstruct every survivor's
            # seed in one batched interpolation over the shares held by the
            # first `threshold` surviving shareholders (the session layer's
            # known threshold guards against silent under-threshold
            # interpolation), then expand and subtract the whole batch.
            holders = survivors[: self.threshold]
            seeds = reconstruct_secrets(
                [holder + 1 for holder in holders],
                self._self_seed_shares[np.ix_(survivors, holders)],
                field,
                expected_threshold=self.threshold,
            )
            total = field.sub_arrays(
                total, field.sum_rows(expand_masks(seeds, self.vector_length, field))
            )

            # Cancel lingering pairwise masks between survivors and dropouts:
            # each survivor reveals the seed it shared with each dropout.
            # Batched by sign: masks the survivor *added* at submission are
            # subtracted here, and vice versa.
            if dropped:
                sub_seeds = []
                add_seeds = []
                for survivor in survivors:
                    for dead in dropped:
                        seed = self._seed_for(survivor, dead)
                        if pairwise_mask_sign(survivor, dead) > 0:
                            sub_seeds.append(seed)
                        else:
                            add_seeds.append(seed)
                if sub_seeds:
                    total = field.sub_arrays(
                        total,
                        field.sum_rows(expand_masks(sub_seeds, self.vector_length, field)),
                    )
                if add_seeds:
                    total = field.add_arrays(
                        total,
                        field.sum_rows(expand_masks(add_seeds, self.vector_length, field)),
                    )

            self._finalized = True
            if metrics.enabled:
                metrics.counter("secure_agg_sessions_total").inc()
                metrics.counter("secure_agg_dropouts_total").inc(len(dropped))
                metrics.counter("secure_agg_self_masks_removed_total").inc(len(survivors))
                metrics.counter("secure_agg_masks_recovered_total").inc(
                    len(survivors) * len(dropped)
                )
            return [int(v) for v in field.centered_array(total)]

    # ------------------------------------------------------------------
    @property
    def submitted_clients(self) -> tuple[int, ...]:
        return tuple(sorted(self._submissions))

    @property
    def dropout_count(self) -> int:
        return self.n_clients - len(self._submissions)

    @property
    def failed(self) -> bool:
        """True once a below-threshold finalize has closed the session."""
        return self._failed


def secure_sum(
    vectors: np.ndarray,
    submitted: np.ndarray | None = None,
    threshold: int | None = None,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Securely sum integer row-vectors, one per client (one flat session).

    Convenience wrapper: builds a session, batch-submits rows where
    ``submitted`` is true (all, by default), and finalizes.  ``threshold``
    defaults to the 2/3 majority of :func:`default_threshold`.  This is the
    *flat* reference the hierarchical aggregator's twin tests compare
    against; for sharded multi-worker aggregation use
    :func:`repro.federated.secure_agg.hierarchy.hierarchical_secure_sum`.

    Examples
    --------
    >>> import numpy as np
    >>> vecs = np.arange(12).reshape(4, 3)
    >>> secure_sum(vecs, rng=0).tolist()
    [18, 22, 26]
    """
    vecs = np.asarray(vectors)
    if vecs.ndim != 2:
        raise ConfigurationError(f"expected a 2-D (clients x length) array, got {vecs.shape}")
    n_clients, length = vecs.shape
    if submitted is None:
        submitted = np.ones(n_clients, dtype=bool)
    submitted = np.asarray(submitted, dtype=bool)
    if submitted.shape != (n_clients,):
        raise ConfigurationError("submitted mask must have one entry per client")
    if threshold is None:
        threshold = default_threshold(n_clients)
    session = SecureAggregationSession(n_clients, length, threshold, rng=rng)
    ids = np.flatnonzero(submitted)
    session.submit_batch(ids, vecs[ids])
    return np.array(session.finalize(), dtype=np.int64)
