"""Asynchronous (streaming) aggregation of one-bit reports.

A selling point of bit-pushing over batched secure aggregation is that it
"naturally accommodates asynchronous updates" (paper Section 1.1): per-bit
sums and counts are plain counters, so the server can fold in reports as
devices come online and publish an estimate at any moment -- no batching
barrier, no round boundary.

:class:`StreamingAggregator` is that server-side accumulator.  Reports
arrive individually (or in bursts) in any order; ``estimate()`` snapshots
the current state into the usual :class:`~repro.core.results.MeanEstimate`.
A minimum-evidence guard refuses estimates from too few reports, mirroring
the deployment's minimum-cohort rule.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.core.encoding import FixedPointEncoder
from repro.core.protocol import BitPerturbation, bit_means_from_stats
from repro.core.results import MeanEstimate, RoundSummary
from repro.exceptions import CohortTooSmallError, ConfigurationError, ProtocolError
from repro.federated.client import BitReport
from repro.observability import HealthMonitor, get_metrics, get_tracer

__all__ = ["StreamingAggregator"]


class StreamingAggregator:
    """Fold one-bit reports into per-bit counters, estimate at any time.

    Parameters
    ----------
    encoder:
        Fixed-point encoding the reports refer to (fixes the bit width and
        the decode transform).
    perturbation:
        The local DP mechanism clients applied, if any -- needed so the
        snapshot can debias the accumulated report means.
    min_reports:
        ``estimate()`` raises :class:`CohortTooSmallError` below this many
        accumulated reports (privacy floor + statistical sanity).
    target_reports:
        Evidence the reporting period *plans* for.  Snapshots taken between
        ``min_reports`` and this target still succeed but are flagged
        degraded (``metadata["degraded"]``, with the achieved
        ``metadata["evidence_ratio"]``) -- the streaming counterpart of the
        round loop's quorum degradation.  ``None`` disables the check.
    health:
        Optional :class:`~repro.observability.health.HealthMonitor`; every
        successful ``estimate()`` snapshot is reported through
        :meth:`~repro.observability.health.HealthMonitor.observe_streaming`,
        so under-evidenced snapshot streaks trip the quorum-degradation
        rule just like degraded rounds do.

    Examples
    --------
    >>> from repro.federated import BitReport
    >>> agg = StreamingAggregator(FixedPointEncoder.for_integers(4))
    >>> for client in range(100):
    ...     agg.submit(BitReport(client_id=client, bit_index=client % 4,
    ...                          bit=(5 >> (client % 4)) & 1))
    >>> agg.estimate().value       # every client holds 5 = 0b0101
    5.0
    """

    def __init__(
        self,
        encoder: FixedPointEncoder,
        perturbation: BitPerturbation | None = None,
        min_reports: int = 1,
        target_reports: int | None = None,
        health: HealthMonitor | None = None,
    ) -> None:
        if min_reports < 1:
            raise ConfigurationError(f"min_reports must be >= 1, got {min_reports}")
        if target_reports is not None and target_reports < min_reports:
            raise ConfigurationError(
                f"target_reports ({target_reports}) must be >= min_reports ({min_reports})"
            )
        self.encoder = encoder
        self.perturbation = perturbation
        self.min_reports = min_reports
        self.target_reports = target_reports
        self.health = health
        self._sums = np.zeros(encoder.n_bits, dtype=np.float64)
        self._counts = np.zeros(encoder.n_bits, dtype=np.int64)
        self._clients_seen: set[int] = set()

    # ------------------------------------------------------------------
    def submit(self, report: BitReport) -> None:
        """Fold in one report (order-independent, idempotence NOT assumed --
        duplicates from the same client are rejected to keep the
        one-bit-per-value promise)."""
        if not 0 <= report.bit_index < self.encoder.n_bits:
            raise ProtocolError(
                f"bit index {report.bit_index} outside [0, {self.encoder.n_bits})"
            )
        if report.bit not in (0, 1):
            raise ProtocolError(f"report bit must be 0 or 1, got {report.bit}")
        if report.client_id in self._clients_seen:
            raise ProtocolError(
                f"client {report.client_id} already reported in this aggregation"
            )
        self._clients_seen.add(report.client_id)
        self._sums[report.bit_index] += report.bit
        self._counts[report.bit_index] += 1
        get_metrics().counter("streaming_reports_total").inc()

    def submit_many(self, reports: Iterable[BitReport]) -> int:
        """Fold in a burst of reports; returns how many were accepted."""
        accepted = 0
        for report in reports:
            self.submit(report)
            accepted += 1
        return accepted

    # ------------------------------------------------------------------
    def estimate(self) -> MeanEstimate:
        """Snapshot the current counters into a mean estimate.

        Non-destructive: accumulation continues afterwards, and later
        snapshots incorporate everything received so far.
        """
        metrics = get_metrics()
        total = int(self._counts.sum())
        with get_tracer().span(
            "streaming.estimate", {"reports": total, "n_bits": self.encoder.n_bits}
        ) as span:
            if total < self.min_reports:
                raise CohortTooSmallError(
                    f"only {total} reports accumulated; minimum is {self.min_reports}"
                )
            means = bit_means_from_stats(
                self._sums.copy(), self._counts.copy(), self.perturbation
            )
            if self.perturbation is not None:
                means = np.clip(means, 0.0, 1.0)
            encoded_mean = float(self.encoder.powers @ means)
            counts = self._counts.copy()
            summary = RoundSummary(
                probabilities=np.where(counts > 0, counts / total, 0.0),
                counts=counts,
                sums=means * counts,
                bit_means=means,
                n_clients=total,
            )
            metadata: dict = {"ldp": self.perturbation is not None, "streaming": True}
            if self.target_reports is not None:
                metadata["degraded"] = total < self.target_reports
                metadata["evidence_ratio"] = total / self.target_reports
                if metadata["degraded"]:
                    span.set_attribute("degraded", True)
                    metrics.counter("streaming_degraded_snapshots_total").inc()
            metrics.counter("streaming_snapshots_total").inc()
            value = self.encoder.decode_scalar(encoded_mean)
            span.set_attribute("estimate", value)
            if self.health is not None:
                self.health.observe_streaming(
                    reports=total,
                    degraded=bool(metadata.get("degraded", False)),
                    evidence_ratio=metadata.get("evidence_ratio"),
                )
            return MeanEstimate(
                value=value,
                encoded_value=encoded_mean,
                bit_means=means,
                counts=counts,
                n_clients=total,
                n_bits=self.encoder.n_bits,
                method="streaming",
                rounds=(summary,),
                metadata=metadata,
            )

    # ------------------------------------------------------------------
    @property
    def reports_received(self) -> int:
        return int(self._counts.sum())

    @property
    def clients_seen(self) -> int:
        return len(self._clients_seen)

    def reset(self) -> None:
        """Clear all counters (e.g., at a reporting-period boundary)."""
        self._sums[:] = 0.0
        self._counts[:] = 0
        self._clients_seen.clear()
