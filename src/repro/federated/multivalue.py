"""Multi-value elicitation semantics (paper Section 4.3).

Most federated-analytics formalism assumes one value per client, but real
devices hold many observations per metric.  The paper resolves this by
eliciting a *single* value per client -- by sampling or by local
aggregation -- and defining the ground truth consistently with the chosen
elicitation ("we define the ground truth for data collection via
sampling").  This module provides both halves: per-client elicitation and
the matching population ground truth.
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

from repro.core.client_plane import ClientBatch
from repro.exceptions import ConfigurationError
from repro.rng import ensure_rng

__all__ = ["ELICITATION_STRATEGIES", "elicit_single_value", "elicit_batch", "ground_truth_mean"]

#: Supported strategies for reducing a device's multiset to one value.
ELICITATION_STRATEGIES = ("sample", "mean", "max", "latest")


def elicit_single_value(
    values: np.ndarray,
    strategy: str = "sample",
    rng: np.random.Generator | int | None = None,
) -> float:
    """Reduce one client's local values to the single value it will report on.

    * ``"sample"`` -- uniform random local observation (the paper's choice);
    * ``"mean"`` -- device-local aggregation;
    * ``"max"`` -- worst observation (useful for health ceilings);
    * ``"latest"`` -- the most recent observation (last element).
    """
    vals = np.atleast_1d(np.asarray(values, dtype=np.float64))
    if vals.size == 0:
        raise ConfigurationError("cannot elicit from an empty value set")
    if strategy == "sample":
        gen = ensure_rng(rng)
        return float(vals[gen.integers(vals.size)])
    if strategy == "mean":
        return float(vals.mean())
    if strategy == "max":
        return float(vals.max())
    if strategy == "latest":
        return float(vals[-1])
    raise ConfigurationError(
        f"unknown elicitation strategy {strategy!r}; expected one of {ELICITATION_STRATEGIES}"
    )


def elicit_batch(
    value_sets: Sequence[np.ndarray],
    strategy: str = "sample",
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Elicit one value from each client's multiset in a single call.

    Semantically (and, for ``"sample"``, *stream*-) identical to calling
    :func:`elicit_single_value` once per client in order with the same
    generator: the sampling path draws all local indices with one
    ``gen.integers(sizes)`` call, which consumes the underlying bit stream
    exactly as the per-client scalar draws would.  This is the federated
    server's per-round hot loop (one elicitation per surviving client).
    """
    arrays = [np.atleast_1d(np.asarray(v, dtype=np.float64)) for v in value_sets]
    if any(a.size == 0 for a in arrays):
        raise ConfigurationError("cannot elicit from an empty value set")
    if not arrays:
        return np.empty(0)
    if strategy == "sample":
        gen = ensure_rng(rng)
        sizes = np.array([a.size for a in arrays], dtype=np.int64)
        picks = np.atleast_1d(gen.integers(sizes))
        return np.array([a[k] for a, k in zip(arrays, picks)], dtype=np.float64)
    if strategy == "mean":
        return np.array([a.mean() for a in arrays], dtype=np.float64)
    if strategy == "max":
        return np.array([a.max() for a in arrays], dtype=np.float64)
    if strategy == "latest":
        return np.array([a[-1] for a in arrays], dtype=np.float64)
    raise ConfigurationError(
        f"unknown elicitation strategy {strategy!r}; expected one of {ELICITATION_STRATEGIES}"
    )


def ground_truth_mean(
    per_client_values: Union[Sequence[np.ndarray], ClientBatch],
    strategy: str = "sample",
) -> float:
    """Population mean consistent with the elicitation strategy.

    For ``"sample"`` the expected elicited value of a client is its local
    mean, so the ground truth is the mean of per-client local means --
    *not* the mean over all raw observations, which over-weights chatty
    clients (the discrepancy the paper calls out).  For deterministic
    strategies the ground truth is the mean of the per-client reductions.

    Accepts either a sequence of per-client arrays or a columnar
    :class:`~repro.core.client_plane.ClientBatch` (reduced with vectorized
    ``reduceat`` kernels -- last-ulp summation-order differences from the
    per-array object path are possible for long multisets).
    """
    if isinstance(per_client_values, ClientBatch):
        batch = per_client_values
        if strategy in ("sample", "mean"):
            reductions = batch.local_means()
        elif strategy == "max":
            reductions = (
                batch.values
                if batch.uniform
                else np.maximum.reduceat(batch.values, batch.offsets[:-1])
            )
        elif strategy == "latest":
            reductions = batch.values[batch.offsets[1:] - 1]
        else:
            raise ConfigurationError(
                f"unknown elicitation strategy {strategy!r}; expected one of "
                f"{ELICITATION_STRATEGIES}"
            )
        return float(np.mean(reductions))
    if not per_client_values:
        raise ConfigurationError("need at least one client")
    if strategy == "sample":
        reductions = [float(np.mean(v)) for v in per_client_values]
    elif strategy in ("mean", "max", "latest"):
        reductions = [elicit_single_value(v, strategy) for v in per_client_values]
    else:
        raise ConfigurationError(
            f"unknown elicitation strategy {strategy!r}; expected one of {ELICITATION_STRATEGIES}"
        )
    return float(np.mean(reductions))
