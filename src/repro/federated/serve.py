"""Asyncio round server: federated rounds over real wire-protocol sockets.

This is the step that turns "simulation" into "system" (ROADMAP item 3): the
same round state machine :class:`~repro.federated.server.FederatedMeanQuery`
drives in-process -- cohort announcement, report collection under a deadline,
quorum/degradation with retry -- executed against a TCP client fleet speaking
:mod:`repro.federated.wire` frames inside length-prefixed control messages.

Protocol, per connection::

    client  -> HELLO    {"client_id": i, "clock_s": t}
    server  -> ANNOUNCE {"attempt", "bit_index", "n_bits", "scale", "offset",
                         "epsilon", "deadline_s", "trace"}  (seq = attempt)
    client  -> REPORTS  <one 16-byte report frame>          (seq = attempt)
    server  -> RESULT   {"estimate", "attempt", "survivors"}  | ABORT
    client  -> TELEMETRY {"v", "client_id", "spans", "metrics"}   (best effort)

Every malformed or late uplink is rejected *at the uplink* with
:class:`~repro.exceptions.ProtocolError` accounting (``wire_rejects_total``,
``uplink.reject``/``uplink.late`` spans, each carrying the peer address and
session id) and never folded into the per-bit counters.  Accepted frames are
decoded in bulk through the vectorized
:func:`~repro.federated.wire.decode_batch_array` machinery.

Distributed tracing: each ANNOUNCE carries the round's trace context (a
seed-derived ``trace_id`` plus the attempt's ``serve.round`` span id), the
fleet records ``fleet.*`` child spans against it, and after RESULT/ABORT each
client ships them back in one TELEMETRY message.  The server remaps the span
ids, aligns client clocks using the HELLO handshake offset, stamps the spans
``remote``, and exports them through its own tracer -- one merged, causally
linked timeline per round, strictly off the uplink hot path.

Determinism: the server consumes its seeded generator exactly as the
in-process basic-mode round does -- one :func:`central_assignment` draw per
attempt and nothing else -- so a lossless served round is bit-identical to
``FederatedMeanQuery(mode="basic").run(population, rng=seed)`` on the same
values, and :func:`in_process_estimate` replays lossy/LDP rounds exactly.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import time
from dataclasses import dataclass
from typing import Any, Iterable, Sequence

import numpy as np

from repro.core.encoding import FixedPointEncoder
from repro.core.protocol import bit_means_from_stats
from repro.core.results import MeanEstimate, RoundSummary
from repro.core.sampling import BitSamplingSchedule, central_assignment
from repro.exceptions import ConfigurationError, ProtocolError, RoundFailedError
from repro.federated.fleet import ClientFleet, EmulationProfile, FleetResult, read_message
from repro.federated.retry import RetryPolicy
from repro.federated.wire import (
    FLAG_RANDOMIZED_RESPONSE,
    MSG_ABORT,
    MSG_ANNOUNCE,
    MSG_HELLO,
    MSG_REPORTS,
    MSG_RESULT,
    MSG_TELEMETRY,
    REPORT_SIZE,
    TraceContext,
    _frame_fields,
    _frame_validity,
    decode_report,
    decode_telemetry,
    encode_announce,
    encode_message,
)
from repro.observability import get_metrics, get_tracer
from repro.observability.tracing import SpanRecord
from repro.privacy.randomized_response import RandomizedResponse
from repro.rng import ensure_rng

__all__ = [
    "RoundServer",
    "ServeConfig",
    "ServeResult",
    "in_process_estimate",
    "round_trace_id",
    "run_loopback",
]


def round_trace_id(seed: int) -> str:
    """The round's deterministic trace id: a pure function of the seed.

    Sixteen hex characters derived from the server seed, so a re-run of the
    same configuration produces the same merged-trace identity (and sim-clock
    artifacts stay reproducible).  Every span on both sides of the wire for
    one served round shares this id.
    """
    return hashlib.sha256(f"bitpush-round-{int(seed)}".encode()).hexdigest()[:16]


@dataclass(frozen=True)
class ServeConfig:
    """Everything one served round needs, JSON-able for manifests/announcements.

    Parameters
    ----------
    n_clients:
        Planned cohort size; wire client ids must fall in ``[0, n_clients)``.
    n_bits, scale, offset:
        The fixed-point encoding, shipped to clients in every ANNOUNCE so the
        fleet self-configures.
    epsilon:
        Client-side randomized response (``None`` disables; the server then
        rejects frames carrying the RR flag, and vice versa).
    seed:
        Server RNG seed (bit-assignment draws only).
    deadline_s:
        Wall-clock collection deadline per attempt; ``None`` waits until
        every registered client reported (only safe with a lossless fleet).
    registration_timeout_s:
        How long to wait for the full fleet to register before planning the
        round anyway (unregistered clients become dropouts).
    min_quorum, degraded_fraction, retry:
        Round-failure semantics, exactly as on
        :class:`~repro.federated.server.FederatedMeanQuery`; retry backoff is
        simulated time (recorded, never slept).
    host, port:
        Bind address; port ``0`` picks an ephemeral port.
    telemetry:
        Ship trace context in every ANNOUNCE and ingest the fleet's
        TELEMETRY messages after RESULT/ABORT (default on).  Telemetry is
        strictly off the uplink hot path: disabling it only removes the
        post-round ingestion drain and the context fields.
    telemetry_timeout_s:
        How long to wait for the fleet's telemetry after broadcasting the
        round outcome before sealing the artifact without it.
    """

    n_clients: int
    n_bits: int = 10
    scale: float = 1.0
    offset: float = 0.0
    epsilon: float | None = None
    seed: int = 0
    deadline_s: float | None = 30.0
    registration_timeout_s: float = 30.0
    min_quorum: int = 1
    degraded_fraction: float = 0.5
    retry: RetryPolicy | None = None
    host: str = "127.0.0.1"
    port: int = 0
    telemetry: bool = True
    telemetry_timeout_s: float = 5.0

    def __post_init__(self) -> None:
        if self.n_clients < 1:
            raise ConfigurationError(f"n_clients must be >= 1, got {self.n_clients}")
        if self.min_quorum < 1:
            raise ConfigurationError(f"min_quorum must be >= 1, got {self.min_quorum}")
        if not 0.0 < self.degraded_fraction <= 1.0:
            raise ConfigurationError(
                f"degraded_fraction must be in (0, 1], got {self.degraded_fraction}"
            )
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ConfigurationError(f"deadline_s must be positive, got {self.deadline_s}")
        if self.registration_timeout_s <= 0:
            raise ConfigurationError(
                f"registration_timeout_s must be positive, got {self.registration_timeout_s}"
            )
        if self.epsilon is not None and self.epsilon <= 0:
            raise ConfigurationError(f"epsilon must be positive, got {self.epsilon}")
        if self.telemetry_timeout_s <= 0:
            raise ConfigurationError(
                f"telemetry_timeout_s must be positive, got {self.telemetry_timeout_s}"
            )
        self.encoder  # noqa: B018 -- validates n_bits/scale/offset eagerly

    @property
    def encoder(self) -> FixedPointEncoder:
        """The round's fixed-point encoder."""
        return FixedPointEncoder(n_bits=self.n_bits, scale=self.scale, offset=self.offset)

    @property
    def schedule(self) -> BitSamplingSchedule:
        """The Eq. 7 weighted schedule, matching the in-process basic default."""
        return BitSamplingSchedule.weighted(self.n_bits, alpha=1.0)

    def to_manifest(self) -> dict:
        """JSON-ready projection for flight-recorder manifests."""
        return {
            "n_clients": self.n_clients,
            "n_bits": self.n_bits,
            "scale": self.scale,
            "offset": self.offset,
            "epsilon": self.epsilon,
            "seed": self.seed,
            "deadline_s": self.deadline_s,
            "registration_timeout_s": self.registration_timeout_s,
            "min_quorum": self.min_quorum,
            "degraded_fraction": self.degraded_fraction,
            "max_attempts": self.retry.max_attempts if self.retry else 1,
            "host": self.host,
            "port": self.port,
            "telemetry": self.telemetry,
            "trace_id": round_trace_id(self.seed) if self.telemetry else None,
        }


@dataclass(frozen=True)
class ServeResult:
    """Outcome of one served round (mirrors the in-process ``RoundOutcome``)."""

    estimate: MeanEstimate
    planned_clients: int
    surviving_clients: int
    registered_clients: int
    attempts: int
    degraded: bool
    backoff_s: float
    wire_rejects: int
    late_reports: int
    duration_s: float
    port: int
    telemetry_clients: int = 0
    remote_spans: int = 0

    @property
    def dropout_rate(self) -> float:
        if self.planned_clients == 0:
            return 0.0
        return 1.0 - self.surviving_clients / self.planned_clients


def _zero_clock() -> float:
    return 0.0


class RoundServer:
    """One asyncio TCP server running one federated round over the fleet.

    Lifecycle: :meth:`start` binds (returning the port for a ``--port-file``
    rendezvous), :meth:`serve_round` registers the fleet and drives the
    attempt loop to a :class:`ServeResult` (or raises
    :class:`RoundFailedError` past the retry budget, after broadcasting
    ABORT), :meth:`close` tears the listener down.  Instrumentation flows
    through the process-wide tracer/metrics pair, so wrapping the round in
    ``instrumented(...)`` (or the ``serve`` CLI's flight recorder) captures
    ``serve.*``/``uplink.*`` spans and the reject/report counters.
    """

    def __init__(self, config: ServeConfig) -> None:
        self.config = config
        self.port: int | None = None
        self.trace_id = round_trace_id(config.seed)
        self._server: asyncio.AbstractServer | None = None
        self._writers: dict[int, asyncio.StreamWriter] = {}
        self._uplinks: asyncio.Queue[tuple[int, int, bytes, float]] = asyncio.Queue()
        self._telemetry_queue: asyncio.Queue[tuple[int, bytes]] = asyncio.Queue()
        self._all_registered = asyncio.Event()
        self._rejects = 0
        self._late = 0
        self._telemetry_rejects = 0
        self._telemetry_clients = 0
        self._remote_spans = 0
        #: client id -> (session id, "host:port" peer) for reject attribution.
        self._sessions: dict[int, tuple[int, str]] = {}
        self._session_counter = 0
        #: clients whose connection handler is still alive (telemetry drain
        #: stops early once every surviving client has hung up).
        self._live: set[int] = set()
        #: client id -> server_wall_at_HELLO - client_clock_in_HELLO; added
        #: to every remote span start so fleet timelines align with ours.
        self._clock_offsets: dict[int, float] = {}
        #: attempt -> that attempt's ``serve.round`` span id (remote
        #: ``fleet.round`` roots re-parent here on ingestion).
        self._attempt_spans: dict[int, int] = {}
        self._session_span_id: int | None = None
        # Wall clock stamped on each queued uplink; a bound tracer clock when
        # tracing is live, else a constant -- the hot path never pays a
        # syscall for timing nobody will read.
        self._arrival_clock: Any = _zero_clock

    # ------------------------------------------------------------------
    async def start(self) -> int:
        """Bind the listener; returns the (possibly ephemeral) port."""
        # Backlog must cover the whole cohort: fleets connect simultaneously,
        # and a dropped SYN costs a full TCP retransmission timeout (~1 s).
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.config.host,
            self.config.port,
            backlog=max(128, self.config.n_clients),
        )
        self.port = int(self._server.sockets[0].getsockname()[1])
        return self.port

    async def close(self) -> None:
        """Close every client connection and the listener."""
        for writer in self._writers.values():
            writer.close()
        for writer in self._writers.values():
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - teardown race
                pass
        self._writers.clear()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # ------------------------------------------------------------------
    def _wall_now(self) -> float:
        """One wall-clock reading consistent with recorded span timestamps."""
        tracer = get_tracer()
        return tracer.wall_time() if tracer.enabled else time.time()

    def _attribution(self, client: int | None) -> dict[str, Any]:
        """Peer address + session id attributes for a registered client."""
        if client is None:
            return {}
        session = self._sessions.get(client)
        if session is None:
            return {}
        return {"session": session[0], "peer": session[1]}

    def _reject(
        self,
        client: int | None,
        reason: str,
        attempt: int,
        detail: str = "",
        peer: str | None = None,
        session: int | None = None,
    ) -> None:
        """Account one rejected uplink: counter + an ``uplink.reject`` span.

        Rejected frames never touch the per-bit counters -- the accounting
        here is the only trace they leave, so the span carries the peer
        address and session id that make the reject attributable in merged
        traces even when the claimed client id is spoofed or absent.
        """
        self._rejects += 1
        get_metrics().counter("wire_rejects_total").inc()
        attributes: dict[str, Any] = {"reason": reason, "attempt": attempt}
        if client is not None:
            attributes["client"] = client
        if detail:
            attributes["detail"] = detail
        attributes.update(self._attribution(client))
        if peer is not None:
            attributes["peer"] = peer
        if session is not None:
            attributes["session"] = session
        with get_tracer().span("uplink.reject", attributes):
            pass

    def _late_report(self, client: int, seq: int, attempt: int) -> None:
        self._late += 1
        get_metrics().counter("serve_late_reports_total").inc()
        attributes: dict[str, Any] = {"client": client, "seq": seq, "attempt": attempt}
        attributes.update(self._attribution(client))
        with get_tracer().span("uplink.late", attributes):
            pass

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Register one client, then pump its uplinks into the queue."""
        get_metrics().counter("serve_connections_total").inc()
        self._session_counter += 1
        session = self._session_counter
        peername = writer.get_extra_info("peername")
        peer = (
            f"{peername[0]}:{peername[1]}"
            if isinstance(peername, (tuple, list)) and len(peername) >= 2
            else str(peername)
        )
        client_id: int | None = None
        try:
            try:
                kind, _seq, payload = await read_message(reader)
                if kind != MSG_HELLO:
                    raise ProtocolError(f"expected HELLO, got message kind {kind}")
                hello = json.loads(payload)
                client_id = int(hello["client_id"])
            except ProtocolError as exc:
                self._reject(None, "hello", 0, str(exc), peer=peer, session=session)
                return
            except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
                self._reject(None, "hello", 0, str(exc), peer=peer, session=session)
                return
            if not 0 <= client_id < self.config.n_clients:
                self._reject(client_id, "hello-id-range", 0, peer=peer, session=session)
                return
            if client_id in self._writers:
                self._reject(client_id, "hello-duplicate", 0, peer=peer, session=session)
                return
            self._writers[client_id] = writer
            self._sessions[client_id] = (session, peer)
            self._live.add(client_id)
            # Clock-skew anchor: the HELLO carries the client's wall clock;
            # paired with our receive time it aligns every remote span this
            # client later uplinks.  Only read the clock when someone will
            # consume the offset (a live tracer).
            tracer = get_tracer()
            if tracer.enabled:
                clock_s = hello.get("clock_s") if isinstance(hello, dict) else None
                if isinstance(clock_s, (int, float)) and not isinstance(clock_s, bool):
                    self._clock_offsets[client_id] = tracer.wall_time() - float(clock_s)
            if len(self._writers) == self.config.n_clients:
                self._all_registered.set()
            while True:
                try:
                    kind, seq, payload = await read_message(reader)
                except ProtocolError as exc:
                    # Garbage at the message layer desynchronizes the stream:
                    # account it and drop the connection.
                    self._reject(client_id, "message", 0, str(exc))
                    return
                if kind == MSG_TELEMETRY:
                    await self._telemetry_queue.put((client_id, payload))
                    continue
                if kind != MSG_REPORTS:
                    self._reject(client_id, "unexpected-kind", seq, f"kind {kind}")
                    continue
                await self._uplinks.put((client_id, seq, payload, self._arrival_clock()))
        except (asyncio.IncompleteReadError, ConnectionError):
            return
        finally:
            if client_id is not None:
                self._live.discard(client_id)
            if client_id is None or self._writers.get(client_id) is not writer:
                writer.close()

    # ------------------------------------------------------------------
    async def _broadcast_announce(
        self, assignment: np.ndarray, attempt: int, parent_span_id: int = 0
    ) -> None:
        """Send each registered client its bit assignment for this attempt."""
        cfg = self.config
        base = {
            "attempt": attempt,
            "n_bits": cfg.n_bits,
            "scale": cfg.scale,
            "offset": cfg.offset,
            "epsilon": cfg.epsilon,
            "deadline_s": cfg.deadline_s,
        }
        context = None
        if cfg.telemetry:
            context = TraceContext(
                trace_id=self.trace_id,
                parent_span_id=parent_span_id,
                clock_s=self._wall_now(),
            )
        for client_id, writer in self._writers.items():
            payload = dict(base, bit_index=int(assignment[client_id]))
            try:
                writer.write(
                    encode_message(MSG_ANNOUNCE, encode_announce(payload, context), seq=attempt)
                )
                await writer.drain()
            except (ConnectionError, OSError):  # client vanished mid-round
                continue

    async def _broadcast_control(self, kind: int, payload: dict, attempt: int) -> None:
        message = encode_message(kind, json.dumps(payload).encode(), seq=attempt)
        for writer in self._writers.values():
            try:
                writer.write(message)
                await writer.drain()
            except (ConnectionError, OSError):  # pragma: no cover - teardown race
                continue

    # ------------------------------------------------------------------
    def _process_uplinks(
        self,
        batch: Sequence[tuple[int, int, bytes, float]],
        attempt: int,
        assignment: np.ndarray,
        accepted: dict[int, tuple[int, int]],
        accept_log: list[tuple[int, float, float]],
    ) -> None:
        """Validate one drained batch of uplinks; fold survivors into ``accepted``.

        The frame layer is vectorized: every well-sized frame in the batch is
        decoded through one structured ``frombuffer`` plus one validity mask
        (the :func:`~repro.federated.wire.decode_batch_array` kernels), and
        only invalid frames pay a scalar :func:`decode_report` call to
        recover the exact :class:`ProtocolError` message for the reject span.

        ``accept_log`` collects ``(client, arrival_wall_s, drained_wall_s)``
        per accepted uplink when tracing is live -- plain appends here, one
        wall read per *batch*; the timing spans are emitted once per attempt,
        never per uplink.
        """
        current: list[tuple[int, bytes, float]] = []
        for client_id, seq, payload, arrival_s in batch:
            if seq != attempt:
                self._late_report(client_id, seq, attempt)
                continue
            if len(payload) != REPORT_SIZE:
                self._reject(
                    client_id,
                    "frame-size",
                    attempt,
                    f"uplink of {len(payload)} bytes is not one {REPORT_SIZE}-byte frame",
                )
                continue
            current.append((client_id, payload, arrival_s))
        if not current:
            return
        tracer = get_tracer()
        drained_s = tracer.wall_time() if tracer.enabled else 0.0
        with tracer.span("uplink.drain", {"uplinks": len(current), "attempt": attempt}):
            data = b"".join(frame for _owner, frame, _t in current)
            fields = _frame_fields(data)
            valid = _frame_validity(fields)
            rr_expected = self.config.epsilon is not None
            for i, (owner, frame, arrival_s) in enumerate(current):
                if not valid[i]:
                    try:
                        decode_report(frame)
                        detail = "invalid frame"  # pragma: no cover - decode raises
                    except ProtocolError as exc:
                        detail = str(exc)
                    self._reject(owner, "frame", attempt, detail)
                    continue
                if int(fields["client_id"][i]) != owner:
                    self._reject(
                        owner,
                        "spoofed-id",
                        attempt,
                        f"frame claims client {int(fields['client_id'][i])}",
                    )
                    continue
                bit_index = int(fields["bit_index"][i])
                if bit_index != int(assignment[owner]):
                    self._reject(
                        owner,
                        "assignment-mismatch",
                        attempt,
                        f"reported bit {bit_index}, assigned {int(assignment[owner])}",
                    )
                    continue
                randomized = bool(fields["flags"][i] & FLAG_RANDOMIZED_RESPONSE)
                if randomized != rr_expected:
                    self._reject(
                        owner,
                        "flag-mismatch",
                        attempt,
                        f"randomized_response={randomized}, expected {rr_expected}",
                    )
                    continue
                if owner in accepted:
                    self._reject(owner, "duplicate", attempt)
                    continue
                accepted[owner] = (bit_index, int(fields["bit"][i]))
                if tracer.enabled:
                    accept_log.append((owner, arrival_s, drained_s))

    async def _collect(
        self, attempt: int, assignment: np.ndarray
    ) -> tuple[dict[int, tuple[int, int]], float, list[tuple[int, float, float]]]:
        """Collect uplinks until every registered client reported or the deadline."""
        loop = asyncio.get_running_loop()
        accepted: dict[int, tuple[int, int]] = {}
        accept_log: list[tuple[int, float, float]] = []
        expected = len(self._writers)
        start = loop.time()
        deadline = None if self.config.deadline_s is None else start + self.config.deadline_s
        with get_tracer().span(
            "serve.collect",
            {"attempt": attempt, "expected": expected, "deadline_s": self.config.deadline_s},
        ) as span:
            while len(accepted) < expected:
                timeout = None if deadline is None else deadline - loop.time()
                if timeout is not None and timeout <= 0:
                    break
                try:
                    first = await asyncio.wait_for(self._uplinks.get(), timeout)
                except asyncio.TimeoutError:
                    break
                batch = [first]
                while not self._uplinks.empty():
                    batch.append(self._uplinks.get_nowait())
                self._process_uplinks(batch, attempt, assignment, accepted, accept_log)
            duration = loop.time() - start
            span.set_attribute("accepted", len(accepted))
            span.set_attribute("duration_s", duration)
        metrics = get_metrics()
        if metrics.enabled:
            metrics.counter("serve_reports_total").inc(len(accepted))
            metrics.histogram("serve_collect_duration_s").observe(duration)
            if duration > 0:
                metrics.gauge("serve_reports_per_s").set(len(accepted) / duration)
        return accepted, duration, accept_log

    # ------------------------------------------------------------------
    def _record_uplink_timings(
        self,
        attempt: int,
        announce_wall: float,
        accept_log: list[tuple[int, float, float]],
        round_span: Any,
    ) -> None:
        """One ``serve.uplink_timings`` span per attempt + straggler stats.

        The per-uplink arrival and queue-delay samples ride as index-aligned
        arrays on a single span (never a span per uplink), and the attempt's
        ``serve.round`` span gains the median / slowest-decile uplink latency
        attributes the ``straggler-skew`` health rule and the report's
        wire-latency section read.
        """
        tracer = get_tracer()
        if not tracer.enabled or not accept_log:
            return
        clients = [owner for owner, _a, _d in accept_log]
        arrival_s = [arrival for _o, arrival, _d in accept_log]
        queue_delay_s = [drained - arrival for _o, arrival, drained in accept_log]
        with tracer.span(
            "serve.uplink_timings",
            {
                "attempt": attempt,
                "announce_s": announce_wall,
                "clients": clients,
                "arrival_s": arrival_s,
                "queue_delay_s": queue_delay_s,
            },
        ):
            pass
        latencies = np.asarray(arrival_s, dtype=np.float64) - announce_wall
        latencies.sort()
        slowest = latencies[-max(1, latencies.size // 10):]
        round_span.set_attribute("uplink_median_s", float(np.median(latencies)))
        round_span.set_attribute("uplink_slow_decile_s", float(slowest.mean()))

    # ------------------------------------------------------------------
    async def _drain_telemetry(self, attempt: int) -> None:
        """Ingest the fleet's TELEMETRY messages after the round outcome.

        Strictly off the uplink hot path: runs once, after RESULT/ABORT has
        been broadcast.  Waits up to ``telemetry_timeout_s`` for one message
        per registered client, but gives up early once every surviving
        connection has hung up -- an old (pre-tracing) fleet costs one poll
        interval, not the full timeout.
        """
        cfg = self.config
        if not cfg.telemetry:
            return
        expected = len(self._writers)
        loop = asyncio.get_running_loop()
        deadline = loop.time() + cfg.telemetry_timeout_s
        with get_tracer().span(
            "serve.telemetry", {"attempt": attempt, "expected": expected}
        ) as span:
            received = 0
            while received < expected:
                try:
                    client_id, payload = self._telemetry_queue.get_nowait()
                except asyncio.QueueEmpty:
                    if loop.time() >= deadline:
                        break
                    if not self._live:
                        break  # every client hung up; nothing more is coming
                    try:
                        client_id, payload = await asyncio.wait_for(
                            self._telemetry_queue.get(), 0.05
                        )
                    except asyncio.TimeoutError:
                        continue
                received += 1
                self._ingest_telemetry(client_id, payload)
            span.set_attribute("received", received)
            span.set_attribute("ingested_clients", self._telemetry_clients)
            span.set_attribute("remote_spans", self._remote_spans)
            span.set_attribute("rejects", self._telemetry_rejects)

    def _reject_telemetry(self, client_id: int, detail: str) -> None:
        self._telemetry_rejects += 1
        get_metrics().counter("telemetry_rejects_total").inc()
        attributes: dict[str, Any] = {"client": client_id, "detail": detail}
        attributes.update(self._attribution(client_id))
        with get_tracer().span("telemetry.reject", attributes):
            pass

    def _ingest_telemetry(self, client_id: int, payload: bytes) -> None:
        """Fold one client's telemetry into the tracer and metrics registry.

        Remote spans are remapped into the server tracer's id space, clock-
        aligned with the client's HELLO-derived offset, re-parented under the
        attempt's ``serve.round`` span (roots) and stamped ``remote`` -- then
        exported through the normal fan-out, so the flight recorder captures
        the whole fleet.  Any defect rejects the payload without touching
        the round.
        """
        try:
            telemetry = decode_telemetry(payload)
        except ProtocolError as exc:
            self._reject_telemetry(client_id, str(exc))
            return
        if telemetry.client_id != client_id:
            self._reject_telemetry(
                client_id,
                f"telemetry claims client {telemetry.client_id}, sent by {client_id}",
            )
            return
        metrics = get_metrics()
        if telemetry.metrics and metrics.enabled:
            try:
                metrics.merge_snapshot(telemetry.metrics)
            except (AttributeError, KeyError, TypeError, ValueError) as exc:
                self._reject_telemetry(client_id, f"unmergeable metrics: {exc}")
                return
        tracer = get_tracer()
        if tracer.enabled and telemetry.spans:
            offset = self._clock_offsets.get(client_id, 0.0)
            id_map = {
                span["span_id"]: tracer.next_span_id() for span in telemetry.spans
            }
            attribution = self._attribution(client_id)
            for span in telemetry.spans:
                local_parent = span.get("parent_id")
                if local_parent is None:
                    attempt = span.get("attributes", {}).get("attempt")
                    parent = self._attempt_spans.get(attempt, self._session_span_id)
                else:
                    parent = id_map.get(local_parent, self._session_span_id)
                attributes = dict(span.get("attributes", {}))
                attributes.update(attribution)
                attributes.update(
                    {"remote": True, "client": client_id, "trace_id": self.trace_id}
                )
                tracer.ingest(
                    SpanRecord(
                        name=str(span["name"]),
                        span_id=id_map[span["span_id"]],
                        parent_id=parent,
                        start_time_s=float(span["start_time_s"]) + offset,
                        duration_s=float(span["duration_s"]),
                        status=str(span.get("status", "ok")),
                        attributes=attributes,
                    )
                )
            self._remote_spans += len(telemetry.spans)
            if metrics.enabled:
                metrics.counter("serve_telemetry_spans_total").inc(len(telemetry.spans))
        self._telemetry_clients += 1
        if metrics.enabled:
            metrics.counter("serve_telemetry_clients_total").inc()

    # ------------------------------------------------------------------
    async def serve_round(self) -> ServeResult:
        """Run the full round state machine against the connected fleet."""
        cfg = self.config
        tracer = get_tracer()
        metrics = get_metrics()
        gen = ensure_rng(cfg.seed)
        n = cfg.n_clients
        if tracer.enabled:
            self._arrival_clock = tracer.wall_time
        with tracer.span(
            "serve.session",
            {
                "n_clients": n,
                "n_bits": cfg.n_bits,
                "epsilon": cfg.epsilon,
                "port": self.port,
                "trace_id": self.trace_id,
            },
        ) as session_span:
            self._session_span_id = getattr(session_span, "span_id", None)
            with tracer.span(
                "serve.registration",
                {"expected": n, "timeout_s": cfg.registration_timeout_s},
            ) as reg_span:
                try:
                    await asyncio.wait_for(
                        self._all_registered.wait(), cfg.registration_timeout_s
                    )
                except asyncio.TimeoutError:
                    pass
                registered = len(self._writers)
                reg_span.set_attribute("registered", registered)
            session_span.set_attribute("registered", registered)

            max_attempts = cfg.retry.max_attempts if cfg.retry is not None else 1
            history: list[tuple[int, int]] = []
            backoff_total = 0.0
            attempt = 1
            while True:
                try:
                    accepted, duration = await self._run_attempt(gen, attempt)
                except RoundFailedError as exc:
                    history.append((exc.planned, exc.survived))
                    if attempt >= max_attempts:
                        await self._broadcast_control(
                            MSG_ABORT,
                            {"reason": str(exc), "attempt": attempt},
                            attempt,
                        )
                        # Best-effort: an aborted round's artifact still
                        # deserves the fleet's side of the story.
                        await self._drain_telemetry(attempt)
                        raise
                    backoff = cfg.retry.backoff_s(attempt)
                    backoff_total += backoff
                    metrics.counter("round_retries_total").inc()
                    with tracer.span(
                        "round.retry",
                        {
                            "round_index": 1,
                            "failed_attempt": attempt,
                            "next_attempt": attempt + 1,
                            "backoff_s": backoff,
                            "survived": exc.survived,
                            "planned": exc.planned,
                            "reason": str(exc),
                        },
                    ):
                        pass
                    attempt += 1
                    continue
                history.append((n, len(accepted)))
                break

            estimate = self._reconstruct(
                accepted, attempt, history, backoff_total, duration
            )
            survived = len(accepted)
            degraded = survived < cfg.degraded_fraction * n
            await self._broadcast_control(
                MSG_RESULT,
                {
                    "estimate": float(estimate.value),
                    "attempt": attempt,
                    "survivors": survived,
                },
                attempt,
            )
            await self._drain_telemetry(attempt)
            session_span.set_attribute("estimate", float(estimate.value))
            session_span.set_attribute("attempts", attempt)
            session_span.set_attribute("wire_rejects", self._rejects)
            session_span.set_attribute("telemetry_clients", self._telemetry_clients)
            session_span.set_attribute("remote_spans", self._remote_spans)
            return ServeResult(
                estimate=estimate,
                planned_clients=n,
                surviving_clients=survived,
                registered_clients=registered,
                attempts=attempt,
                degraded=degraded,
                backoff_s=backoff_total,
                wire_rejects=self._rejects,
                late_reports=self._late,
                duration_s=duration,
                port=self.port or 0,
                telemetry_clients=self._telemetry_clients,
                remote_spans=self._remote_spans,
            )

    async def _run_attempt(
        self, gen: np.random.Generator, attempt: int
    ) -> tuple[dict[int, tuple[int, int]], float]:
        """One attempt: assign, announce, collect, enforce quorum."""
        cfg = self.config
        tracer = get_tracer()
        metrics = get_metrics()
        n = cfg.n_clients
        with tracer.span(
            "serve.round",
            {"round_index": 1, "planned_clients": n, "attempt": attempt},
        ) as round_span:
            round_span_id = getattr(round_span, "span_id", None)
            if round_span_id is not None:
                self._attempt_spans[attempt] = round_span_id
            metrics.counter("round_attempts_total").inc()
            with tracer.span("round.assign", {"n_bits": cfg.n_bits, "n_clients": n}):
                assignment = central_assignment(n, cfg.schedule, gen)
            with tracer.span(
                "serve.announce", {"clients": len(self._writers), "attempt": attempt}
            ):
                announce_wall = self._wall_now() if tracer.enabled else 0.0
                await self._broadcast_announce(
                    assignment, attempt, parent_span_id=round_span_id or 0
                )
            accepted, duration, accept_log = await self._collect(attempt, assignment)
            self._record_uplink_timings(attempt, announce_wall, accept_log, round_span)
            survived = len(accepted)
            metrics.counter("round_reports_planned_total").inc(n)
            metrics.counter("round_reports_delivered_total").inc(survived)
            metrics.counter("round_reports_lost_total").inc(n - survived)
            round_span.set_attribute("surviving_clients", survived)
            round_span.set_attribute("round_duration_s", duration)
            if survived < cfg.min_quorum:
                metrics.counter("rounds_failed_total").inc()
                round_span.set_attribute("failed", True)
                if survived == 0:
                    message = "every client dropped out of the round"
                else:
                    message = (
                        f"round 1 attempt {attempt}: {survived} "
                        f"survivors below quorum {cfg.min_quorum}"
                    )
                raise RoundFailedError(message, planned=n, survived=survived)
            metrics.counter("rounds_total").inc()
            if survived < cfg.degraded_fraction * n:
                round_span.set_attribute("degraded", True)
                metrics.counter("rounds_degraded_total").inc()
            return accepted, duration

    def _reconstruct(
        self,
        accepted: dict[int, tuple[int, int]],
        attempts: int,
        history: list[tuple[int, int]],
        backoff_s: float,
        duration_s: float,
    ) -> MeanEstimate:
        """Fold accepted reports into the mean estimate (in-process arithmetic)."""
        cfg = self.config
        encoder = cfg.encoder
        n = cfg.n_clients
        survived = len(accepted)
        with get_tracer().span(
            "serve.reconstruct", {"n_bits": cfg.n_bits, "reports": survived}
        ) as span:
            indices = np.fromiter(
                (bi for bi, _bit in accepted.values()), dtype=np.int64, count=survived
            )
            bits = np.fromiter(
                (bit for _bi, bit in accepted.values()), dtype=np.float64, count=survived
            )
            counts = np.bincount(indices, minlength=cfg.n_bits).astype(np.int64)
            sums = np.bincount(indices, weights=bits, minlength=cfg.n_bits)
            perturbation = (
                RandomizedResponse(epsilon=cfg.epsilon) if cfg.epsilon is not None else None
            )
            means = bit_means_from_stats(sums, counts, perturbation)
            encoded_mean = float(encoder.powers @ means)
            value = encoder.decode_scalar(encoded_mean)
            span.set_attribute("estimate", value)
        summary = RoundSummary(
            probabilities=cfg.schedule.probabilities,
            counts=counts,
            sums=means * counts,
            bit_means=means,
            n_clients=survived,
        )
        degraded = survived < cfg.degraded_fraction * n
        return MeanEstimate(
            value=value,
            encoded_value=encoded_mean,
            bit_means=means,
            counts=counts,
            n_clients=n,
            n_bits=cfg.n_bits,
            method="federated-served",
            rounds=(summary,),
            metadata={
                "cohort_size": n,
                "dropout_rates": [1.0 - survived / n],
                "round_durations_s": [duration_s],
                "total_duration_s": duration_s + backoff_s,
                "planned_clients": [n],
                "surviving_clients": [survived],
                "round_attempts": [attempts],
                "degraded_rounds": [degraded],
                "variance_inflation": [n / survived if survived else float("inf")],
                "backoff_s": [backoff_s],
                "attempt_history": [[list(pair) for pair in history]],
                "secure_aggregation": False,
                "elicitation": "single",
                "ldp": cfg.epsilon is not None,
                "columnar": False,
                "served": True,
                "transport": "tcp",
                "port": self.port,
                "wire_rejects": self._rejects,
                "late_reports": self._late,
                "telemetry": cfg.telemetry,
                "trace_id": self.trace_id if cfg.telemetry else None,
            },
        )


# ----------------------------------------------------------------------
def in_process_estimate(
    values: Sequence[float],
    config: ServeConfig,
    profile: EmulationProfile | None = None,
    fleet_seed: int = 0,
    corrupted: Iterable[int] = (),
) -> MeanEstimate:
    """The served round's deterministic in-process twin.

    Replays exactly what :class:`RoundServer` + :class:`ClientFleet` compute
    for the same ``config``/``values``/``profile``/``fleet_seed``, without
    any sockets: the server generator draws one bit assignment per attempt,
    each client's spawned generator draws randomized response (if ``epsilon``)
    then the emulation profile's loss/latency, and the surviving reports fold
    through the identical reconstruction arithmetic.  ``corrupted`` names
    clients whose uplinks the server always rejects (the fuzzing twin: their
    client-side draws still advance, their reports never land).

    With no profile, no corruption, and no ``epsilon``, the result is also
    bit-identical to ``FederatedMeanQuery(encoder, mode="basic",
    schedule=config.schedule).run(population, rng=config.seed)`` over
    single-valued clients -- the acceptance-criterion equivalence.

    Raises :class:`RoundFailedError` when every attempt falls below quorum,
    exactly as the server does.
    """
    vals = np.asarray(values, dtype=np.float64)
    if vals.size != config.n_clients:
        raise ConfigurationError(
            f"{vals.size} values for a {config.n_clients}-client round"
        )
    encoder = config.encoder
    gen = ensure_rng(config.seed)
    client_gens = [
        np.random.default_rng(s)
        for s in np.random.SeedSequence(fleet_seed).spawn(config.n_clients)
    ]
    rr = RandomizedResponse(epsilon=config.epsilon) if config.epsilon is not None else None
    excluded = frozenset(int(c) for c in corrupted)
    encoded = encoder.encode(vals)
    max_attempts = config.retry.max_attempts if config.retry is not None else 1
    history: list[tuple[int, int]] = []
    backoff_total = 0.0
    n = config.n_clients
    for attempt in range(1, max_attempts + 1):
        assignment = central_assignment(n, config.schedule, gen)
        accepted: dict[int, tuple[int, int]] = {}
        for i in range(n):
            bit = int((encoded[i] >> np.uint64(assignment[i])) & np.uint64(1))
            if rr is not None:
                bit = int(
                    rr.perturb_bits(np.asarray([bit], dtype=np.uint8), client_gens[i])[0]
                )
            delivered = True
            if profile is not None:
                delivered, _latency = profile.draw(client_gens[i])
            if delivered and i not in excluded:
                accepted[i] = (int(assignment[i]), bit)
        survived = len(accepted)
        if survived >= config.min_quorum:
            history.append((n, survived))
            break
        history.append((n, survived))
        if attempt >= max_attempts:
            if survived == 0:
                message = "every client dropped out of the round"
            else:
                message = (
                    f"round 1 attempt {attempt}: {survived} "
                    f"survivors below quorum {config.min_quorum}"
                )
            raise RoundFailedError(message, planned=n, survived=survived)
        backoff_total += config.retry.backoff_s(attempt)
    indices = np.fromiter((bi for bi, _b in accepted.values()), dtype=np.int64, count=survived)
    bits = np.fromiter((b for _bi, b in accepted.values()), dtype=np.float64, count=survived)
    counts = np.bincount(indices, minlength=config.n_bits).astype(np.int64)
    sums = np.bincount(indices, weights=bits, minlength=config.n_bits)
    means = bit_means_from_stats(sums, counts, rr)
    encoded_mean = float(encoder.powers @ means)
    value = encoder.decode_scalar(encoded_mean)
    summary = RoundSummary(
        probabilities=config.schedule.probabilities,
        counts=counts,
        sums=means * counts,
        bit_means=means,
        n_clients=survived,
    )
    return MeanEstimate(
        value=value,
        encoded_value=encoded_mean,
        bit_means=means,
        counts=counts,
        n_clients=n,
        n_bits=config.n_bits,
        method="federated-served-twin",
        rounds=(summary,),
        metadata={
            "attempt_history": [[list(pair) for pair in history]],
            "backoff_s": [backoff_total],
            "ldp": config.epsilon is not None,
            "served": False,
        },
    )


# ----------------------------------------------------------------------
async def _loopback(
    config: ServeConfig,
    values: Sequence[float],
    profile: EmulationProfile | None,
    fleet_seed: int,
    mutate,
    clock_factory=None,
) -> tuple[ServeResult, FleetResult]:
    server = RoundServer(config)
    port = await server.start()
    fleet = ClientFleet(
        values,
        seed=fleet_seed,
        profile=profile,
        mutate=mutate,
        clock_factory=clock_factory,
    )
    fleet_task = asyncio.create_task(fleet.run(config.host, port))
    try:
        serve_result = await server.serve_round()
    except BaseException:
        fleet_task.cancel()
        try:
            await fleet_task
        except (asyncio.CancelledError, Exception):
            pass
        await server.close()
        raise
    fleet_result = await fleet_task
    await server.close()
    return serve_result, fleet_result


def run_loopback(
    config: ServeConfig,
    values: Sequence[float],
    profile: EmulationProfile | None = None,
    fleet_seed: int = 0,
    mutate=None,
    clock_factory=None,
) -> tuple[ServeResult, FleetResult]:
    """Run server + fleet in one event loop on the loopback interface.

    The workhorse for tests, the demo script, and the served-throughput
    benchmarks: every report still crosses a real TCP socket and the full
    wire protocol, but setup/teardown is a single call.  ``clock_factory``
    is forwarded to the fleet (deterministic client-side telemetry clocks).
    """
    return asyncio.run(
        _loopback(config, values, profile, fleet_seed, mutate, clock_factory)
    )
