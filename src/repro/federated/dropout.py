"""Dropout modelling and online dropout-rate tracking.

Client devices "can drop out at any point of the federated protocol"
(Section 4.3); the deployed system auto-adjusts bit sampling probabilities
based on the observed dropout rate.  :class:`DropoutModel` simulates the
phenomenon (a base rate with per-round variability), and
:class:`DropoutRateTracker` is the server-side estimator the adjustment
feeds on -- an exponentially weighted average of per-round survival.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError
from repro.observability import get_metrics
from repro.rng import ensure_rng

__all__ = ["MAX_EFFECTIVE_RATE", "DropoutModel", "DropoutRateTracker"]

#: Ceiling on the per-round effective dropout rate.  The statistical model
#: never kills *everyone* (total outages are scripted explicitly via
#: :class:`repro.federated.faults.TotalBlackout`); configured base rates are
#: validated against this same bound so a rate that passes construction is
#: always the rate that takes effect.
MAX_EFFECTIVE_RATE = 0.95


@dataclass(frozen=True)
class DropoutModel:
    """Per-round client dropout with a jittered base rate.

    Each round draws an effective rate ``~ Normal(rate, jitter)`` clipped to
    ``[0, MAX_EFFECTIVE_RATE]``, then drops each client independently with
    it.  Jitter models diurnal/network variability in device availability.
    The base ``rate`` is validated against the same ceiling, so validation
    and effect agree; only *jittered* draws can hit the clip, and each
    clipped draw is surfaced via the ``dropout_rate_clips_total`` metric.
    """

    rate: float = 0.0
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= MAX_EFFECTIVE_RATE:
            raise ConfigurationError(
                f"dropout rate must be in [0, {MAX_EFFECTIVE_RATE}] (the effective-rate "
                f"ceiling), got {self.rate}"
            )
        if self.jitter < 0.0:
            raise ConfigurationError(f"jitter must be >= 0, got {self.jitter}")

    def draw_survivors(
        self, n_clients: int, rng: np.random.Generator | int | None = None
    ) -> np.ndarray:
        """Boolean survival mask for one round (True = client completed)."""
        if n_clients < 0:
            raise ConfigurationError(f"n_clients must be >= 0, got {n_clients}")
        gen = ensure_rng(rng)
        effective = self.rate if self.jitter == 0 else float(gen.normal(self.rate, self.jitter))
        clipped = min(max(effective, 0.0), MAX_EFFECTIVE_RATE)
        if clipped != effective:
            metrics = get_metrics()
            if metrics.enabled:
                metrics.counter("dropout_rate_clips_total").inc()
        return gen.random(n_clients) >= clipped


class DropoutRateTracker:
    """EWMA estimate of the dropout rate from per-round outcomes.

    Parameters
    ----------
    smoothing:
        EWMA weight on the newest observation (0 < smoothing <= 1).
    prior_rate:
        Estimate used before any round has been observed.

    Examples
    --------
    >>> tracker = DropoutRateTracker(smoothing=0.5, prior_rate=0.0)
    >>> tracker.update(planned=100, survived=80)
    >>> tracker.update(planned=100, survived=60)
    >>> round(tracker.rate, 3)
    0.25
    """

    def __init__(self, smoothing: float = 0.3, prior_rate: float = 0.0) -> None:
        if not 0.0 < smoothing <= 1.0:
            raise ConfigurationError(f"smoothing must be in (0, 1], got {smoothing}")
        if not 0.0 <= prior_rate < 1.0:
            raise ConfigurationError(f"prior_rate must be in [0, 1), got {prior_rate}")
        self.smoothing = smoothing
        self._rate = prior_rate
        self._rounds = 0

    def update(self, planned: int, survived: int) -> None:
        """Fold in one round's outcome."""
        if planned <= 0 or not 0 <= survived <= planned:
            raise ConfigurationError(
                f"invalid round outcome: planned={planned}, survived={survived}"
            )
        observed = 1.0 - survived / planned
        self._rate = (1.0 - self.smoothing) * self._rate + self.smoothing * observed
        self._rounds += 1

    @property
    def rate(self) -> float:
        """Current dropout-rate estimate."""
        return self._rate

    @property
    def expected_survival(self) -> float:
        return 1.0 - self._rate

    @property
    def rounds_observed(self) -> int:
        return self._rounds
