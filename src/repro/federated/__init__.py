"""Federated simulation substrate: clients, cohorts, dropout, network, server,
and the secure-aggregation protocol (paper Sections 3.3 and 4.3)."""

from repro.core.client_plane import ClientBatch
from repro.federated.campaign import CampaignRecord, MonitoringCampaign
from repro.federated.client import BitReport, ClientDevice
from repro.federated.cohort import CohortSelector, attribute_equals
from repro.federated.multifeature import MultiFeatureQuery
from repro.federated.dropout import MAX_EFFECTIVE_RATE, DropoutModel, DropoutRateTracker
from repro.federated.faults import (
    ActiveFaults,
    FaultEvent,
    FaultSchedule,
    TotalBlackout,
)
from repro.federated.retry import RetryPolicy
from repro.federated.multivalue import (
    ELICITATION_STRATEGIES,
    elicit_single_value,
    ground_truth_mean,
)
from repro.federated.network import DeliveryOutcome, NetworkModel
from repro.federated.secure_agg import (
    PrimeField,
    SecureAggregationSession,
    secure_sum,
)
from repro.federated.server import FederatedMeanQuery, RoundOutcome
from repro.federated.streaming import StreamingAggregator
from repro.federated.wire import (
    REPORT_SIZE,
    decode_batch,
    decode_report,
    encode_batch,
    encode_report,
    payload_efficiency,
)

__all__ = [
    "ELICITATION_STRATEGIES",
    "MAX_EFFECTIVE_RATE",
    "ActiveFaults",
    "BitReport",
    "CampaignRecord",
    "ClientBatch",
    "ClientDevice",
    "CohortSelector",
    "MonitoringCampaign",
    "MultiFeatureQuery",
    "DeliveryOutcome",
    "DropoutModel",
    "DropoutRateTracker",
    "FaultEvent",
    "FaultSchedule",
    "FederatedMeanQuery",
    "NetworkModel",
    "PrimeField",
    "REPORT_SIZE",
    "RetryPolicy",
    "RoundOutcome",
    "SecureAggregationSession",
    "StreamingAggregator",
    "TotalBlackout",
    "attribute_equals",
    "decode_batch",
    "decode_report",
    "elicit_single_value",
    "encode_batch",
    "encode_report",
    "ground_truth_mean",
    "payload_efficiency",
    "secure_sum",
]
