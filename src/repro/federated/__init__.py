"""Federated simulation substrate: clients, cohorts, dropout, network, server,
and the secure-aggregation protocol (paper Sections 3.3 and 4.3)."""

from repro.core.client_plane import ClientBatch
from repro.federated.campaign import CampaignRecord, MonitoringCampaign
from repro.federated.client import BitReport, ClientDevice
from repro.federated.cohort import CohortSelector, attribute_equals
from repro.federated.multifeature import MultiFeatureQuery
from repro.federated.dropout import MAX_EFFECTIVE_RATE, DropoutModel, DropoutRateTracker
from repro.federated.faults import (
    ActiveFaults,
    FaultEvent,
    FaultSchedule,
    TotalBlackout,
)
from repro.federated.fleet import ClientFleet, EmulationProfile, FleetResult, fleet_values
from repro.federated.retry import RetryPolicy
from repro.federated.serve import (
    RoundServer,
    ServeConfig,
    ServeResult,
    in_process_estimate,
    round_trace_id,
    run_loopback,
)
from repro.federated.multivalue import (
    ELICITATION_STRATEGIES,
    elicit_single_value,
    ground_truth_mean,
)
from repro.federated.network import DeliveryOutcome, NetworkModel
from repro.federated.secure_agg import (
    PrimeField,
    SecureAggregationSession,
    secure_sum,
)
from repro.federated.server import FederatedMeanQuery, RoundOutcome
from repro.federated.streaming import StreamingAggregator
from repro.federated.wire import (
    REPORT_SIZE,
    ClientTelemetry,
    ReportBatch,
    TraceContext,
    decode_announce,
    decode_batch,
    decode_batch_array,
    decode_report,
    decode_telemetry,
    encode_announce,
    encode_batch,
    encode_report,
    encode_telemetry,
    payload_efficiency,
)

__all__ = [
    "ELICITATION_STRATEGIES",
    "MAX_EFFECTIVE_RATE",
    "ActiveFaults",
    "BitReport",
    "CampaignRecord",
    "ClientBatch",
    "ClientDevice",
    "ClientFleet",
    "ClientTelemetry",
    "CohortSelector",
    "EmulationProfile",
    "FleetResult",
    "MonitoringCampaign",
    "MultiFeatureQuery",
    "DeliveryOutcome",
    "DropoutModel",
    "DropoutRateTracker",
    "FaultEvent",
    "FaultSchedule",
    "FederatedMeanQuery",
    "NetworkModel",
    "PrimeField",
    "REPORT_SIZE",
    "ReportBatch",
    "RetryPolicy",
    "RoundOutcome",
    "RoundServer",
    "SecureAggregationSession",
    "ServeConfig",
    "ServeResult",
    "StreamingAggregator",
    "TotalBlackout",
    "TraceContext",
    "attribute_equals",
    "decode_announce",
    "decode_batch",
    "decode_batch_array",
    "decode_report",
    "decode_telemetry",
    "elicit_single_value",
    "encode_announce",
    "encode_batch",
    "encode_report",
    "encode_telemetry",
    "fleet_values",
    "ground_truth_mean",
    "in_process_estimate",
    "payload_efficiency",
    "round_trace_id",
    "run_loopback",
    "secure_sum",
]
