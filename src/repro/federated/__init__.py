"""Federated simulation substrate: clients, cohorts, dropout, network, server,
and the secure-aggregation protocol (paper Sections 3.3 and 4.3)."""

from repro.core.client_plane import ClientBatch
from repro.federated.campaign import CampaignRecord, MonitoringCampaign
from repro.federated.client import BitReport, ClientDevice
from repro.federated.cohort import CohortSelector, attribute_equals
from repro.federated.multifeature import MultiFeatureQuery
from repro.federated.dropout import MAX_EFFECTIVE_RATE, DropoutModel, DropoutRateTracker
from repro.federated.faults import (
    ActiveFaults,
    FaultEvent,
    FaultSchedule,
    TotalBlackout,
)
from repro.federated.fleet import ClientFleet, EmulationProfile, FleetResult, fleet_values
from repro.federated.retry import RetryPolicy
from repro.federated.serve import (
    RoundServer,
    ServeConfig,
    ServeResult,
    in_process_estimate,
    run_loopback,
)
from repro.federated.multivalue import (
    ELICITATION_STRATEGIES,
    elicit_single_value,
    ground_truth_mean,
)
from repro.federated.network import DeliveryOutcome, NetworkModel
from repro.federated.secure_agg import (
    PrimeField,
    SecureAggregationSession,
    secure_sum,
)
from repro.federated.server import FederatedMeanQuery, RoundOutcome
from repro.federated.streaming import StreamingAggregator
from repro.federated.wire import (
    REPORT_SIZE,
    ReportBatch,
    decode_batch,
    decode_batch_array,
    decode_report,
    encode_batch,
    encode_report,
    payload_efficiency,
)

__all__ = [
    "ELICITATION_STRATEGIES",
    "MAX_EFFECTIVE_RATE",
    "ActiveFaults",
    "BitReport",
    "CampaignRecord",
    "ClientBatch",
    "ClientDevice",
    "ClientFleet",
    "CohortSelector",
    "EmulationProfile",
    "FleetResult",
    "MonitoringCampaign",
    "MultiFeatureQuery",
    "DeliveryOutcome",
    "DropoutModel",
    "DropoutRateTracker",
    "FaultEvent",
    "FaultSchedule",
    "FederatedMeanQuery",
    "NetworkModel",
    "PrimeField",
    "REPORT_SIZE",
    "ReportBatch",
    "RetryPolicy",
    "RoundOutcome",
    "RoundServer",
    "SecureAggregationSession",
    "ServeConfig",
    "ServeResult",
    "StreamingAggregator",
    "TotalBlackout",
    "attribute_equals",
    "decode_batch",
    "decode_batch_array",
    "decode_report",
    "elicit_single_value",
    "encode_batch",
    "encode_report",
    "fleet_values",
    "ground_truth_mean",
    "in_process_estimate",
    "payload_efficiency",
    "run_loopback",
    "secure_sum",
]
