"""Round-retry policy: bounded attempts with simulated-time backoff.

Secure-aggregation deployments must tolerate client unavailability without
restarting the whole query from scratch (DiSAgg, PAPERS.md): a round that
fails outright -- every client dropped, or too few survivors to meet the
quorum -- is re-run against a freshly drawn cohort after an exponential
backoff, rather than aborting the campaign.  Time is simulated (the round
simulator's seconds, same clock as ``NetworkModel`` latencies), so backoff
shows up in round durations without ever sleeping.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ConfigurationError

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """How a failed round attempt is retried.

    Parameters
    ----------
    max_attempts:
        Total attempts per round, including the first (``1`` disables
        retries; the round failure propagates as before).
    backoff_base_s:
        Simulated seconds waited before the first retry.
    backoff_factor:
        Multiplier applied per additional retry (exponential backoff).
    redraw_cohort:
        Draw a fresh cohort from the eligible population for each retry
        (the deployed behaviour: the original cohort's devices are exactly
        the ones that just proved unavailable).  When ``False`` the same
        cohort is re-contacted.
    """

    max_attempts: int = 3
    backoff_base_s: float = 60.0
    backoff_factor: float = 2.0
    redraw_cohort: bool = True

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff_base_s < 0:
            raise ConfigurationError(f"backoff_base_s must be >= 0, got {self.backoff_base_s}")
        if self.backoff_factor < 1.0:
            raise ConfigurationError(f"backoff_factor must be >= 1, got {self.backoff_factor}")

    def backoff_s(self, retry_number: int) -> float:
        """Simulated backoff before retry ``retry_number`` (1-based)."""
        if retry_number < 1:
            raise ConfigurationError(f"retry_number is 1-based, got {retry_number}")
        return self.backoff_base_s * self.backoff_factor ** (retry_number - 1)
