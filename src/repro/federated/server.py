"""Server-side orchestration of federated bit-pushing queries.

:class:`FederatedMeanQuery` glues every substrate together the way the
deployed system does (Section 4.3): select an eligible cohort (minimum-size
enforced), plan a central-randomness bit assignment, adjust sampling
probabilities for the expected dropout rate, collect one-bit reports over a
lossy network from clients that may vanish mid-round, meter each disclosure,
optionally route the per-bit counters through secure aggregation, and
reconstruct the mean -- in one round (basic) or two (adaptive).

The arithmetic is exactly :mod:`repro.core`'s; this layer adds the systems
behaviour around it, so core tests guarantee correctness and federated tests
guarantee robustness.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

import numpy as np

from repro.core.client_plane import (
    ClientBatch,
    collect_client_reports,
    elicit_values,
)
from repro.core.encoding import FixedPointEncoder
from repro.core.protocol import (
    BitPerturbation,
    bit_means_from_stats,
    combine_round_stats,
)
from repro.core.results import MeanEstimate, RoundSummary
from repro.core.sampling import BitSamplingSchedule, central_assignment
from repro.core.squashing import per_bit_squash_thresholds, squash_bit_means
from repro.exceptions import ConfigurationError, RoundFailedError
from repro.federated.client import ClientDevice
from repro.federated.cohort import CohortSelector, Eligibility, Population
from repro.federated.dropout import DropoutModel, DropoutRateTracker
from repro.federated.faults import FaultSchedule
from repro.federated.multivalue import elicit_batch
from repro.federated.network import NetworkModel
from repro.federated.retry import RetryPolicy
from repro.federated.secure_agg.hierarchy import (
    HierarchicalResult,
    ShardTask,
    aggregate_shards,
    shard_bounds,
)
from repro.observability import HealthMonitor, get_metrics, get_tracer
from repro.privacy.accountant import BitMeter, PrivacyAccountant
from repro.rng import ensure_rng

__all__ = ["RoundOutcome", "FederatedMeanQuery"]

_MODES = ("basic", "adaptive")


def _subset(clients: Population, indices: np.ndarray) -> Population:
    """Positional subset preserving the population representation."""
    if isinstance(clients, ClientBatch):
        return clients.take(indices)
    return [clients[int(i)] for i in indices]


@dataclass(frozen=True)
class RoundOutcome:
    """Operational record of one collection round.

    ``planned_clients``/``surviving_clients`` describe the attempt that
    finally completed; ``attempt_history`` records every attempt's
    ``(planned, survived)`` pair, failed ones included, so per-attempt
    report accounting reconciles with the metrics counters.
    """

    summary: RoundSummary
    planned_clients: int
    surviving_clients: int
    round_duration_s: float
    attempts: int = 1
    degraded: bool = False
    backoff_s: float = 0.0
    attempt_history: tuple[tuple[int, int], ...] = ()

    @property
    def dropout_rate(self) -> float:
        if self.planned_clients == 0:
            return 0.0
        return 1.0 - self.surviving_clients / self.planned_clients

    @property
    def variance_inflation(self) -> float:
        """Widened-variance factor for a round completed under-strength.

        Bit-mean sampling variance scales as ``1 / survivors``, so a round
        that completed with fewer clients than planned carries
        ``planned / survivors`` times the variance its plan budgeted for.
        """
        if self.surviving_clients <= 0:
            return float("inf")
        return self.planned_clients / self.surviving_clients


class FederatedMeanQuery:
    """A configurable federated mean query over a device population.

    Parameters
    ----------
    encoder:
        Fixed-point encoding (clipping included) for the queried metric.
    mode:
        ``"adaptive"`` (two rounds, default) or ``"basic"`` (one round).
    schedule:
        Basic-mode sampling schedule (default: the Eq. 7 ``p_j \\propto 2**j``,
        i.e. weighted ``alpha = 1.0``).
    gamma, alpha, delta, caching:
        Adaptive-mode parameters, as in
        :class:`~repro.core.adaptive.AdaptiveBitPushing`.
    perturbation:
        Optional local-DP bit perturbation (randomized response).
    squash_multiple:
        Bit-squash threshold in expected-DP-noise multiples (needs a
        perturbation).
    dropout, network:
        Failure models; ``None`` disables each.
    selector:
        Cohort policy (default: no eligibility filter, minimum size 1).
    meter:
        Optional :class:`BitMeter`; every surviving client's disclosure is
        recorded (and over-disclosure raises).
    elicitation:
        Multi-value reduction strategy (``"sample"`` by default).
    metric_name:
        Value identity used for metering.
    min_reports_per_bit:
        Dropout-aware floor: sampled bits are guaranteed this many expected
        reports by mixing the schedule toward them ("sampling probabilities
        were auto-adjusted based on the dropout rate").
    secure_aggregation:
        Route per-bit counters through hierarchical pairwise-masked secure
        aggregation instead of plaintext summation.  The *planned* cohort is
        sharded, so mid-round dropout becomes real intra-session dropout
        with per-shard recovery; a shard that falls below its 2/3 threshold
        is excluded and the round degrades instead of aborting.  Shards run
        in parallel under ``REPRO_WORKERS`` (bit-identical for any worker
        count).
    shard_size:
        Clients per secure-aggregation shard (sessions are O(shard**2)).  A
        remainder of one client folds into the previous shard rather than
        bypassing masking.
    min_quorum:
        Minimum surviving clients for a round attempt to count.  An attempt
        below quorum fails (and is retried under ``retry``); an attempt at
        or above quorum completes even under heavy loss, with the
        degradation recorded on the :class:`RoundOutcome`
        (``degraded``/``variance_inflation``).  Default 1 preserves the
        historical behaviour: only a zero-survivor round fails.
    degraded_fraction:
        A completed round whose survivors fall below this fraction of the
        plan is flagged degraded (``rounds_degraded_total`` metric).
    retry:
        :class:`RetryPolicy` for failed round attempts (``None`` disables
        retries: a failed round raises, as before).
    faults:
        Optional :class:`~repro.federated.faults.FaultSchedule`; its clock
        advances once per round *attempt* and the active fault overrides
        wrap ``dropout``/``network`` for that attempt.
    accountant:
        Optional :class:`~repro.privacy.accountant.PrivacyAccountant`.  When
        set alongside an LDP ``perturbation``, every *completed* round
        attempt records one ledger entry of the perturbation's epsilon
        (sequential composition across rounds; a failed attempt elicits
        nothing and spends nothing).  Flight-recorder manifests surface the
        resulting ledger as the run's epsilon-spend timeline.
    health:
        Optional :class:`~repro.observability.health.HealthMonitor`.  Every
        round attempt -- failed ones included -- is reported through
        :meth:`~repro.observability.health.HealthMonitor.observe_round`,
        timed on the *simulated* round durations, so SLO rules evaluate
        even when no tracer is installed.  Do not also register the same
        monitor as a tracer exporter, or rounds evaluate twice.
    chunk_clients:
        Chunk size for the columnar client-plane kernels (``None``: the
        ``REPRO_BATCH_CHUNK`` default).  A pure performance/memory knob --
        results are bit-identical for every value.

    The population handed to :meth:`run` may be a ``Sequence[ClientDevice]``
    (the object path) or a columnar
    :class:`~repro.core.client_plane.ClientBatch`; the two are bit-identical
    for the same seed (``"sample"``/``"max"``/``"latest"`` elicitation; see
    :mod:`repro.core.client_plane` for the ``"mean"`` caveat).  The columnar
    path elicits, encodes, perturbs, and aggregates in bounded-memory chunks,
    never materializing per-client objects.  Secure aggregation feeds both
    representations through the same hierarchical shard tree
    (:mod:`repro.federated.secure_agg.hierarchy`): vectorized masking
    kernels per shard, submission matrices built one shard at a time, at
    most ``REPRO_WORKERS`` shards in flight.
    """

    def __init__(
        self,
        encoder: FixedPointEncoder,
        mode: str = "adaptive",
        schedule: BitSamplingSchedule | None = None,
        gamma: float | None = None,
        alpha: float = 0.5,
        delta: float = 1.0 / 3.0,
        caching: bool = True,
        perturbation: BitPerturbation | None = None,
        squash_multiple: float = 0.0,
        dropout: DropoutModel | None = None,
        network: NetworkModel | None = None,
        selector: CohortSelector | None = None,
        meter: BitMeter | None = None,
        elicitation: str = "sample",
        metric_name: str = "metric",
        min_reports_per_bit: int = 0,
        secure_aggregation: bool = False,
        shard_size: int = 32,
        min_quorum: int = 1,
        degraded_fraction: float = 0.5,
        retry: RetryPolicy | None = None,
        faults: FaultSchedule | None = None,
        accountant: PrivacyAccountant | None = None,
        health: HealthMonitor | None = None,
        chunk_clients: int | None = None,
    ) -> None:
        if mode not in _MODES:
            raise ConfigurationError(f"mode must be one of {_MODES}, got {mode!r}")
        if not 0.0 < delta < 1.0:
            raise ConfigurationError(f"delta must be in (0, 1), got {delta}")
        if min_reports_per_bit < 0:
            raise ConfigurationError(f"min_reports_per_bit must be >= 0, got {min_reports_per_bit}")
        if squash_multiple < 0:
            raise ConfigurationError(f"squash_multiple must be >= 0, got {squash_multiple}")
        if squash_multiple > 0 and perturbation is None:
            raise ConfigurationError("squash_multiple requires a perturbation")
        if shard_size < 2:
            raise ConfigurationError(f"shard_size must be >= 2, got {shard_size}")
        if min_quorum < 1:
            raise ConfigurationError(f"min_quorum must be >= 1, got {min_quorum}")
        if chunk_clients is not None and chunk_clients < 1:
            raise ConfigurationError(f"chunk_clients must be >= 1, got {chunk_clients}")
        if not 0.0 < degraded_fraction <= 1.0:
            raise ConfigurationError(
                f"degraded_fraction must be in (0, 1], got {degraded_fraction}"
            )
        if schedule is not None and schedule.n_bits != encoder.n_bits:
            raise ConfigurationError(
                f"schedule covers {schedule.n_bits} bits but encoder has {encoder.n_bits}"
            )
        self.encoder = encoder
        self.mode = mode
        self.schedule = schedule or BitSamplingSchedule.weighted(encoder.n_bits, alpha=1.0)
        # Under LDP the exploratory round defaults to uniform sampling; see
        # AdaptiveBitPushing for the rationale.
        self.gamma = gamma if gamma is not None else (0.0 if perturbation is not None else 0.5)
        self.alpha = alpha
        self.delta = delta
        self.caching = caching
        self.perturbation = perturbation
        self.squash_multiple = squash_multiple
        self.dropout = dropout
        self.network = network
        self.selector = selector or CohortSelector(min_cohort_size=1)
        self.meter = meter
        self.elicitation = elicitation
        self.metric_name = metric_name
        self.min_reports_per_bit = min_reports_per_bit
        self.secure_aggregation = secure_aggregation
        self.shard_size = shard_size
        self.min_quorum = min_quorum
        self.degraded_fraction = degraded_fraction
        self.retry = retry
        self.faults = faults
        self.accountant = accountant
        self.health = health
        self.chunk_clients = chunk_clients
        self.dropout_tracker = DropoutRateTracker(
            prior_rate=dropout.rate if dropout is not None else 0.0
        )

    # ------------------------------------------------------------------
    def run(
        self,
        population: Population,
        rng: np.random.Generator | int | None = None,
        eligibility: Eligibility | None = None,
        cohort_size: int | None = None,
    ) -> MeanEstimate:
        """Execute the query end-to-end and return the mean estimate.

        ``population`` may be a ``Sequence[ClientDevice]`` or a columnar
        :class:`~repro.core.client_plane.ClientBatch`.
        """
        gen = ensure_rng(rng)
        tracer = get_tracer()
        metrics = get_metrics()
        with tracer.span(
            "federated.query",
            {"mode": self.mode, "secure_aggregation": self.secure_aggregation},
        ) as query_span:
            with tracer.span(
                "federated.cohort_select", {"population": len(population)}
            ) as select_span:
                cohort = self.selector.select(population, eligibility, cohort_size, gen)
                select_span.set_attribute("cohort_size", len(cohort))
            metrics.gauge("cohort_size").set(len(cohort))
            query_span.set_attribute("cohort_size", len(cohort))

            if self.mode == "basic":
                outcome = self._run_round_with_recovery(
                    cohort, self.schedule, gen, round_index=1,
                    population=population, eligibility=eligibility,
                )
                outcomes = [outcome]
                pooled_means = outcome.summary.bit_means
                pooled_counts = outcome.summary.counts
            else:
                n_round1 = min(max(int(round(self.delta * len(cohort))), 1), len(cohort) - 1)
                order = gen.permutation(len(cohort))
                cohort1 = _subset(cohort, order[:n_round1])
                cohort2 = _subset(cohort, order[n_round1:])

                schedule1 = BitSamplingSchedule.geometric(self.encoder.n_bits, gamma=self.gamma)
                outcome1 = self._run_round_with_recovery(
                    cohort1, schedule1, gen, round_index=1,
                    population=population, eligibility=eligibility,
                )
                round1_means = outcome1.summary.bit_means
                if self.squash_multiple > 0 and self.perturbation is not None:
                    threshold = self._squash_threshold(outcome1.summary.counts)
                    round1_means, _ = squash_bit_means(round1_means, threshold)

                schedule2 = BitSamplingSchedule.from_bit_means(round1_means, alpha=self.alpha)
                outcome2 = self._run_round_with_recovery(
                    cohort2, schedule2, gen, round_index=2,
                    population=population, eligibility=eligibility,
                )
                outcomes = [outcome1, outcome2]

                if self.caching:
                    pooled_means, pooled_counts = combine_round_stats(
                        [outcome1.summary.bit_means, outcome2.summary.bit_means],
                        [outcome1.summary.counts, outcome2.summary.counts],
                    )
                else:
                    have2 = outcome2.summary.counts > 0
                    pooled_means = np.where(
                        have2, outcome2.summary.bit_means, outcome1.summary.bit_means
                    )
                    pooled_counts = np.where(
                        have2, outcome2.summary.counts, outcome1.summary.counts
                    )

            with tracer.span(
                "federated.reconstruct", {"n_bits": self.encoder.n_bits}
            ) as reconstruct_span:
                squashed: tuple[int, ...] = ()
                if self.perturbation is not None:
                    threshold = (
                        self._squash_threshold(pooled_counts)
                        if self.squash_multiple > 0
                        else np.zeros_like(pooled_means)
                    )
                    pooled_means, squashed_idx = squash_bit_means(pooled_means, threshold)
                    squashed = tuple(int(j) for j in squashed_idx)

                encoded_mean = float(self.encoder.powers @ pooled_means)
                value = self.encoder.decode_scalar(encoded_mean)
                reconstruct_span.set_attribute("squashed_bits", list(squashed))
                reconstruct_span.set_attribute("estimate", value)

            total_duration = sum(o.round_duration_s + o.backoff_s for o in outcomes)
            return MeanEstimate(
                value=value,
                encoded_value=encoded_mean,
                bit_means=pooled_means,
                counts=pooled_counts,
                n_clients=len(cohort),
                n_bits=self.encoder.n_bits,
                method=f"federated-{self.mode}",
                rounds=tuple(o.summary for o in outcomes),
                squashed_bits=squashed,
                metadata={
                    "cohort_size": len(cohort),
                    "dropout_rates": [o.dropout_rate for o in outcomes],
                    "round_durations_s": [o.round_duration_s for o in outcomes],
                    "total_duration_s": total_duration,
                    "planned_clients": [o.planned_clients for o in outcomes],
                    "surviving_clients": [o.surviving_clients for o in outcomes],
                    "round_attempts": [o.attempts for o in outcomes],
                    "degraded_rounds": [o.degraded for o in outcomes],
                    "variance_inflation": [o.variance_inflation for o in outcomes],
                    "backoff_s": [o.backoff_s for o in outcomes],
                    "attempt_history": [
                        [list(pair) for pair in o.attempt_history] for o in outcomes
                    ],
                    "secure_aggregation": self.secure_aggregation,
                    "elicitation": self.elicitation,
                    "ldp": self.perturbation is not None,
                    "columnar": isinstance(population, ClientBatch),
                },
            )

    # ------------------------------------------------------------------
    def _run_round_with_recovery(
        self,
        clients: Population,
        schedule: BitSamplingSchedule,
        gen: np.random.Generator,
        round_index: int = 1,
        population: Population | None = None,
        eligibility: Eligibility | None = None,
    ) -> RoundOutcome:
        """Run one round, retrying failed attempts under the configured policy.

        Each attempt is a full :meth:`_run_round` execution (the fault
        schedule's clock ticks per attempt).  On failure: if attempts
        remain, wait out the policy's exponential backoff in simulated
        time, optionally re-draw a fresh cohort from the eligible
        population, and try again; otherwise the failure propagates.  The
        returned outcome records the attempt count, accumulated backoff,
        and every attempt's ``(planned, survived)`` pair.
        """
        tracer = get_tracer()
        metrics = get_metrics()
        max_attempts = self.retry.max_attempts if self.retry is not None else 1
        history: list[tuple[int, int]] = []
        backoff_total = 0.0
        attempt = 1
        while True:
            try:
                outcome = self._run_round(clients, schedule, gen, round_index, attempt)
            except RoundFailedError as exc:
                history.append((exc.planned, exc.survived))
                if self.health is not None:
                    self.health.observe_round(
                        round_index=round_index,
                        attempt=attempt,
                        planned=exc.planned,
                        survived=exc.survived,
                        failed=True,
                        epsilon_spent=(
                            float(self.accountant.spent_epsilon)
                            if self.accountant is not None
                            else None
                        ),
                    )
                if attempt >= max_attempts:
                    raise
                backoff = self.retry.backoff_s(attempt)
                backoff_total += backoff
                metrics.counter("round_retries_total").inc()
                with tracer.span(
                    "round.retry",
                    {
                        "round_index": round_index,
                        "failed_attempt": attempt,
                        "next_attempt": attempt + 1,
                        "backoff_s": backoff,
                        "survived": exc.survived,
                        "planned": exc.planned,
                        "reason": str(exc),
                    },
                ):
                    if self.retry.redraw_cohort and population is not None:
                        clients = self.selector.select(
                            population, eligibility, len(clients), gen
                        )
                attempt += 1
                continue
            history.append((outcome.planned_clients, outcome.surviving_clients))
            if self.health is not None:
                self.health.observe_round(
                    round_index=round_index,
                    attempt=attempt,
                    planned=outcome.planned_clients,
                    survived=outcome.surviving_clients,
                    degraded=outcome.degraded,
                    duration_s=outcome.round_duration_s,
                    epsilon_spent=(
                        float(self.accountant.spent_epsilon)
                        if self.accountant is not None
                        else None
                    ),
                )
            return replace(
                outcome,
                attempts=attempt,
                backoff_s=backoff_total,
                attempt_history=tuple(history),
            )

    # ------------------------------------------------------------------
    def _run_round(
        self,
        clients: Population,
        schedule: BitSamplingSchedule,
        gen: np.random.Generator,
        round_index: int = 1,
        attempt: int = 1,
    ) -> RoundOutcome:
        tracer = get_tracer()
        metrics = get_metrics()
        n = len(clients)
        if n == 0:
            raise ConfigurationError("round planned with zero clients")
        with tracer.span(
            "federated.round",
            {"round_index": round_index, "planned_clients": n, "attempt": attempt},
        ) as round_span:
            metrics.counter("round_attempts_total").inc()
            # Scripted fault injection: the schedule's clock ticks once per
            # attempt, and the active overrides wrap the failure models.
            dropout, network = self.dropout, self.network
            shard_blackout: tuple[int, ...] = ()
            if self.faults is not None:
                active = self.faults.begin_attempt()
                if active.any:
                    dropout = active.apply_dropout(dropout)
                    network = active.apply_network(network)
                    shard_blackout = active.shard_blackout
                    round_span.set_attribute("faults", active.describe())

            schedule = self._adjust_schedule(schedule, n)
            with tracer.span(
                "round.assign", {"n_bits": self.encoder.n_bits, "n_clients": n}
            ):
                assignment = central_assignment(n, schedule, gen)

            # Failure simulation: device dropout, then network delivery.
            with tracer.span("round.dropout", {"planned": n}) as dropout_span:
                alive = (
                    dropout.draw_survivors(n, gen)
                    if dropout is not None
                    else np.ones(n, dtype=bool)
                )
                dropout_span.set_attribute("survived", int(alive.sum()))
            duration = 0.0
            if network is not None and alive.any():
                # An empty batch is never transmitted: there is nothing to
                # deliver, and a vacuous DeliveryOutcome would conflate
                # "nothing to send" with "everything sent was lost".
                outcome = network.transmit(int(alive.sum()), gen)
                delivered = np.zeros(n, dtype=bool)
                delivered[np.flatnonzero(alive)] = outcome.delivered
                duration = outcome.round_duration_s
                alive = delivered
            survivors = np.flatnonzero(alive)
            self.dropout_tracker.update(planned=n, survived=int(survivors.size))
            quorum = max(1, self.min_quorum)
            if survivors.size < quorum:
                metrics.counter("rounds_failed_total").inc()
                metrics.counter("round_reports_planned_total").inc(n)
                metrics.counter("round_reports_delivered_total").inc(int(survivors.size))
                metrics.counter("round_reports_lost_total").inc(n - int(survivors.size))
                round_span.set_attribute("failed", True)
                round_span.set_attribute("surviving_clients", int(survivors.size))
                if survivors.size == 0:
                    message = "every client dropped out of the round"
                else:
                    message = (
                        f"round {round_index} attempt {attempt}: {survivors.size} "
                        f"survivors below quorum {quorum}"
                    )
                raise RoundFailedError(message, planned=n, survived=int(survivors.size))

            # Client-side: elicit one value each, meter the single-bit disclosure.
            # Batched across survivors -- stream-identical to per-client
            # elicit() calls, and one meter transaction per round.  Columnar
            # populations elicit straight from the flat value arrays in
            # bounded-memory chunks.
            columnar = isinstance(clients, ClientBatch)
            live = None
            with tracer.span(
                "round.elicit",
                {"n_clients": int(survivors.size), "columnar": columnar},
            ):
                if columnar:
                    live = clients.take(survivors)
                    values = elicit_values(
                        live, self.elicitation, gen, chunk=self.chunk_clients
                    )
                else:
                    values = elicit_batch(
                        [clients[i].values for i in survivors], self.elicitation, gen
                    )
                # Secure mode meters after shard recovery instead: a failed
                # shard's masked rows are never unmasked, so those clients
                # disclose nothing, and metering after the inclusion quorum
                # check keeps retried attempts from double-recording.
                if self.meter is not None and not self.secure_aggregation:
                    if columnar:
                        ids = [int(i) for i in live.client_ids]
                    else:
                        ids = [clients[i].client_id for i in survivors]
                    self.meter.record_batch(ids, self.metric_name)
            live_assignment = assignment[survivors]

            shard_failures = 0
            if self.secure_aggregation:
                # Hierarchical sharded sessions over the *planned* cohort:
                # dropped clients are real intra-session dropouts, recovered
                # per shard; a below-threshold shard is excluded and the
                # round degrades instead of aborting.
                with tracer.span(
                    "round.secure_agg",
                    {
                        "n_clients": int(survivors.size),
                        "shard_size": self.shard_size,
                    },
                ) as secure_span:
                    sums, counts, secure = self._secure_collect(
                        values, alive, assignment, gen, shard_blackout=shard_blackout
                    )
                    included = secure.included
                    shard_failures = len(secure.failed_shards)
                    secure_span.set_attribute("shards", len(secure.shards))
                    secure_span.set_attribute("shard_failures", shard_failures)
                    secure_span.set_attribute("included_clients", int(included.size))
                survived_count = int(included.size)
                if survived_count < quorum:
                    metrics.counter("rounds_failed_total").inc()
                    metrics.counter("round_reports_planned_total").inc(n)
                    metrics.counter("round_reports_delivered_total").inc(survived_count)
                    metrics.counter("round_reports_lost_total").inc(n - survived_count)
                    round_span.set_attribute("failed", True)
                    round_span.set_attribute("surviving_clients", survived_count)
                    raise RoundFailedError(
                        f"round {round_index} attempt {attempt}: secure aggregation "
                        f"recovered {survived_count} clients, below quorum {quorum}",
                        planned=n,
                        survived=survived_count,
                    )
                if self.meter is not None:
                    if columnar:
                        positions = np.searchsorted(survivors, included)
                        ids = [int(i) for i in np.asarray(live.client_ids)[positions]]
                    else:
                        ids = [clients[int(i)].client_id for i in included]
                    self.meter.record_batch(ids, self.metric_name)
            else:
                # Chunk-streamed encode + extract + perturb + aggregate
                # (client_plane.collect spans per chunk); bit-identical to
                # the historical encode-then-collect_bit_reports for any
                # chunk size, for both population representations.
                with tracer.span("round.collect", {"n_clients": int(survivors.size)}):
                    sums, counts = collect_client_reports(
                        values,
                        self.encoder,
                        live_assignment,
                        self.perturbation,
                        gen,
                        chunk=self.chunk_clients,
                    )
                survived_count = int(survivors.size)
            means = bit_means_from_stats(sums, counts, self.perturbation)
            summary = RoundSummary(
                probabilities=schedule.probabilities,
                counts=counts,
                sums=means * counts,
                bit_means=means,
                n_clients=survived_count,
            )
            # A round that lost shards completed under-strength even when the
            # raw survivor fraction looks healthy: the exclusions widen the
            # variance exactly like dropout does.
            degraded = (
                survived_count < self.degraded_fraction * n or shard_failures > 0
            )
            outcome = RoundOutcome(
                summary=summary,
                planned_clients=n,
                surviving_clients=survived_count,
                round_duration_s=duration,
                degraded=degraded,
            )
            if self.accountant is not None and self.perturbation is not None:
                epsilon = getattr(self.perturbation, "epsilon", None)
                if epsilon is not None:
                    self.accountant.spend(
                        float(epsilon),
                        note=(
                            f"round {round_index} attempt {attempt}: randomized response "
                            f"over {survived_count} reports"
                        ),
                    )
            round_span.set_attribute("surviving_clients", outcome.surviving_clients)
            round_span.set_attribute("round_duration_s", outcome.round_duration_s)
            if degraded:
                round_span.set_attribute("degraded", True)
                round_span.set_attribute("variance_inflation", outcome.variance_inflation)
                metrics.counter("rounds_degraded_total").inc()
            self._record_round_metrics(metrics, outcome, live_assignment)
            return outcome

    def _record_round_metrics(
        self,
        metrics,
        outcome: RoundOutcome,
        live_assignment: np.ndarray,
    ) -> None:
        """Fold one round's operational counters into the metrics registry.

        Invariant (asserted by the trace CLI and the integration tests):
        ``round_reports_planned_total`` accumulates exactly
        ``round_reports_delivered_total + round_reports_lost_total``, each
        reconciling with the :class:`RoundOutcome` fields.
        """
        if not metrics.enabled:
            return
        metrics.counter("rounds_total").inc()
        metrics.counter("round_reports_planned_total").inc(outcome.planned_clients)
        metrics.counter("round_reports_delivered_total").inc(outcome.surviving_clients)
        metrics.counter("round_reports_lost_total").inc(
            outcome.planned_clients - outcome.surviving_clients
        )
        metrics.gauge("dropout_rate").set(outcome.dropout_rate)
        metrics.histogram("round_duration_s").observe(outcome.round_duration_s)
        bit_hist = metrics.histogram(
            "bit_index_distribution", buckets=tuple(float(j) for j in range(self.encoder.n_bits))
        )
        for j, count in enumerate(np.bincount(live_assignment, minlength=self.encoder.n_bits)):
            if count:
                bit_hist.observe(float(j), count=int(count))

    # ------------------------------------------------------------------
    def _adjust_schedule(
        self, schedule: BitSamplingSchedule, n_planned: int
    ) -> BitSamplingSchedule:
        """Dropout-aware floor on sampled bits' probabilities.

        With an expected survival fraction ``s``, a bit needs probability
        ``>= min_reports / (s * n)`` to expect ``min_reports`` reports.  We
        raise sampled bits to that floor and renormalize; unsampled bits
        (probability 0) stay unsampled.
        """
        if self.min_reports_per_bit == 0:
            return schedule
        expected_survivors = max(n_planned * self.dropout_tracker.expected_survival, 1.0)
        floor = self.min_reports_per_bit / expected_survivors
        probs = schedule.probabilities.copy()
        support = probs > 0
        k = int(support.sum())
        if floor * k >= 1.0:
            # Floor infeasible: fall back to uniform over the support.
            probs[support] = 1.0 / k
            return BitSamplingSchedule(probs)
        # Mix toward the floor so every sampled bit keeps >= floor *after*
        # normalization: p' = (1 - floor k) p + floor on the support.
        probs[support] = (1.0 - floor * k) * probs[support] + floor
        return BitSamplingSchedule(probs)

    # ------------------------------------------------------------------
    def _secure_collect(
        self,
        values: np.ndarray,
        alive: np.ndarray,
        assignment: np.ndarray,
        gen: np.random.Generator,
        shard_blackout: Sequence[int] = (),
    ) -> tuple[np.ndarray, np.ndarray, HierarchicalResult]:
        """Aggregate per-bit counters through hierarchical secure aggregation.

        The *planned* cohort is sharded (``alive`` marks who survived
        dropout/network, ``values`` holds one elicited value per survivor),
        so clients lost mid-round are real intra-session dropouts: each
        shard's survivors reveal seeds, Shamir reconstruction runs, and a
        shard that falls below its 2/3 threshold is excluded rather than
        fatal -- the caller degrades the round.  Each client contributes a
        ``2 * n_bits`` vector: a one-hot report-count half and a bit-value
        half.  Shard submission matrices are built lazily one shard at a
        time (and :func:`aggregate_shards` keeps at most ``REPRO_WORKERS``
        shards in flight), so secure mode no longer materializes
        cohort-sized 2-D arrays; a remainder of one client folds into the
        previous shard instead of leaking its counter in plaintext.
        ``shard_blackout`` empties the named shards' submissions (scripted
        fault injection).
        """
        n_bits = self.encoder.n_bits
        n = int(alive.size)
        length = 2 * n_bits
        # Per-survivor bit reports (1-D, one scalar per client).
        survivor_pos = np.cumsum(alive) - 1
        encoded = self.encoder.encode(np.asarray(values))
        bits = (
            (encoded >> assignment[alive].astype(np.uint64)) & np.uint64(1)
        ).astype(np.uint8)
        if self.perturbation is not None:
            bits = self.perturbation.perturb_bits(bits, gen)
        blackout = frozenset(int(s) for s in shard_blackout)

        def tasks():
            for index, (lo, hi) in enumerate(shard_bounds(n, self.shard_size)):
                local_ids = np.flatnonzero(alive[lo:hi])
                if index in blackout:
                    local_ids = local_ids[:0]
                rows = np.arange(local_ids.size)
                cols = assignment[lo + local_ids]
                vectors = np.zeros((local_ids.size, length), dtype=np.int64)
                vectors[rows, cols] = 1
                vectors[rows, n_bits + cols] = bits[survivor_pos[lo + local_ids]]
                yield ShardTask(
                    index=index,
                    start=lo,
                    n_clients=hi - lo,
                    submitted_ids=local_ids,
                    vectors=vectors,
                )

        result = aggregate_shards(tasks(), length, rng=gen, workers=None)
        counts = result.total[:n_bits].astype(np.int64)
        sums = result.total[n_bits:].astype(np.float64)
        included = result.included
        # Always-on invariant: the masked aggregate must equal the plaintext
        # aggregate exactly over the clients it contains (the simulator holds
        # both sides; O(n) next to the O(shard**2) masking work).  Lazy
        # import: repro.verification pulls in estimator modules that
        # themselves import this package.
        from repro.verification.invariants import check_secure_sum

        included_assign = assignment[included]
        included_bits = bits[survivor_pos[included]]
        check_secure_sum(
            counts,
            np.bincount(included_assign, minlength=n_bits).astype(np.int64),
            context="secure-agg per-bit counts",
        )
        check_secure_sum(
            sums,
            np.bincount(
                included_assign, weights=included_bits.astype(np.float64), minlength=n_bits
            ),
            context="secure-agg per-bit sums",
        )
        return sums, counts, result

    def _squash_threshold(self, counts: np.ndarray) -> np.ndarray:
        epsilon = getattr(self.perturbation, "epsilon", None)
        if epsilon is None:
            raise ConfigurationError(
                "squash_multiple needs a perturbation exposing an `epsilon` attribute"
            )
        return per_bit_squash_thresholds(self.squash_multiple, float(epsilon), counts)
