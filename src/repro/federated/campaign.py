"""Recurring monitoring campaigns: queries + drift detection over rounds.

The deployment (Section 4.3) does not run one-off queries: metrics are
aggregated daily for months, with the occupied bit range watched for heavy
tails and regressions.  :class:`MonitoringCampaign` packages that loop --
run the configured federated query each round, feed the resulting bit means
to a :class:`~repro.core.monitor.HighBitMonitor`, and keep the history an
operator dashboard would chart.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from repro.core.monitor import HighBitMonitor, MonitorAlert
from repro.core.results import MeanEstimate
from repro.federated.client import ClientDevice
from repro.federated.server import FederatedMeanQuery
from repro.rng import ensure_rng

__all__ = ["CampaignRecord", "MonitoringCampaign"]


@dataclass(frozen=True)
class CampaignRecord:
    """One campaign round: the estimate plus any drift alert."""

    round_index: int
    estimate: MeanEstimate
    alert: MonitorAlert | None
    metadata: dict[str, Any] = field(default_factory=dict)


class MonitoringCampaign:
    """Run a federated query every round and watch for distribution shifts.

    Parameters
    ----------
    query:
        The configured :class:`FederatedMeanQuery` to repeat each round.
    monitor:
        Drift detector fed with each round's estimated bit means; defaults
        to a 3-round window, 2-bit shift threshold, with the noise floor set
        just above zero.
    recorder:
        Optional :class:`~repro.observability.recorder.FlightRecorder`; each
        campaign round appends one ``campaign.round`` event line (estimate,
        alert, robustness accounting) to the run's event log.
    health:
        Optional :class:`~repro.observability.health.HealthMonitor`; each
        campaign round reports its drift-monitor outcome through
        :meth:`~repro.observability.health.HealthMonitor.observe_campaign_round`
        (pass the same monitor to the query for per-attempt round samples).
    live:
        Optional :class:`~repro.observability.live.LiveMonitor`; each
        campaign round emits one progress line.  Only used when the live
        monitor is not already attached as a tracer exporter.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core import FixedPointEncoder
    >>> rng = np.random.default_rng(0)
    >>> query = FederatedMeanQuery(FixedPointEncoder.for_integers(12))
    >>> campaign = MonitoringCampaign(query)
    >>> for day in range(4):
    ...     scale = 100.0 if day < 3 else 1500.0
    ...     pop = [ClientDevice(i, [v]) for i, v in
    ...            enumerate(np.clip(rng.normal(scale, 20, 2000), 0, None))]
    ...     record = campaign.run_round(pop, rng)
    >>> record.alert is not None
    True
    """

    def __init__(
        self,
        query: FederatedMeanQuery,
        monitor: HighBitMonitor | None = None,
        recorder: Any = None,
        health: Any = None,
        live: Any = None,
    ) -> None:
        self.query = query
        self.monitor = monitor or HighBitMonitor(
            noise_floor=0.01, shift_threshold=2, window=3
        )
        self.recorder = recorder
        self.health = health
        self.live = live
        self._records: list[CampaignRecord] = []

    # ------------------------------------------------------------------
    def run_round(
        self,
        population: Sequence[ClientDevice],
        rng: np.random.Generator | int | None = None,
        **query_kwargs: Any,
    ) -> CampaignRecord:
        """Execute one round: query, monitor, record."""
        gen = ensure_rng(rng)
        estimate = self.query.run(population, rng=gen, **query_kwargs)
        alert = self.monitor.update(estimate.bit_means)
        record = CampaignRecord(
            round_index=len(self._records),
            estimate=estimate,
            alert=alert,
            metadata={
                "dropout_rate_estimate": self.query.dropout_tracker.rate,
                "upper_bound": self.monitor.current_upper_bound,
                # Robustness accounting: how hard the query had to fight.
                "round_attempts": estimate.metadata.get("round_attempts", []),
                "degraded": any(estimate.metadata.get("degraded_rounds", [])),
                "backoff_s": sum(estimate.metadata.get("backoff_s", [])),
            },
        )
        self._records.append(record)
        if self.health is not None:
            self.health.observe_campaign_round(
                round_index=record.round_index,
                shift=alert is not None,
                degraded=bool(record.metadata["degraded"]),
            )
        if self.live is not None:
            planned = estimate.metadata.get("planned_clients", [])
            survived = estimate.metadata.get("surviving_clients", [])
            self.live.update(
                round_index=record.round_index,
                survived=int(sum(survived)),
                planned=int(sum(planned)),
                degraded=bool(record.metadata["degraded"]),
                duration_s=float(estimate.metadata.get("total_duration_s", 0.0)),
            )
        if self.recorder is not None:
            self.recorder.record_event(
                "campaign.round",
                {
                    "round_index": record.round_index,
                    "estimate": float(estimate.value),
                    "n_clients": int(estimate.n_clients),
                    "alert": record.alert.message if record.alert is not None else None,
                    "round_attempts": record.metadata["round_attempts"],
                    "degraded": record.metadata["degraded"],
                    "backoff_s": record.metadata["backoff_s"],
                },
            )
        return record

    # ------------------------------------------------------------------
    @property
    def records(self) -> tuple[CampaignRecord, ...]:
        return tuple(self._records)

    @property
    def alerts(self) -> tuple[MonitorAlert, ...]:
        return tuple(r.alert for r in self._records if r.alert is not None)

    @property
    def estimates(self) -> list[float]:
        """Point estimates in round order (for dashboards/tests)."""
        return [r.estimate.value for r in self._records]

    @property
    def rounds_run(self) -> int:
        return len(self._records)

    @property
    def rounds_degraded(self) -> int:
        """Campaign rounds that completed under quorum degradation."""
        return sum(1 for r in self._records if r.metadata.get("degraded"))

    @property
    def total_attempts(self) -> int:
        """Round attempts across the campaign, retries included."""
        return sum(sum(r.metadata.get("round_attempts", [1])) for r in self._records)
