"""Client-side device model for the federated simulator.

A :class:`ClientDevice` owns one or more private values per metric (the
paper's deployment observes "most clients hold several values ... while a
small subset may hold up to millions", Section 4.3), an availability flag,
and the client half of the bit-pushing protocol: elicit a single value for
this query, extract the requested bit, optionally perturb it with
randomized response, and never reveal more than the metered bit budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.encoding import FixedPointEncoder
from repro.core.protocol import BitPerturbation
from repro.exceptions import ConfigurationError
from repro.federated.multivalue import elicit_single_value
from repro.observability import get_metrics, get_tracer
from repro.privacy.accountant import BitMeter
from repro.rng import ensure_rng

__all__ = ["ClientDevice", "BitReport"]


@dataclass(frozen=True)
class BitReport:
    """One client's wire message: which bit index, and its (noisy) value.

    This is the *entire* private payload the protocol ever sends per value
    -- a single binary digit plus its position.
    """

    client_id: int
    bit_index: int
    bit: int


@dataclass
class ClientDevice:
    """One edge device participating in federated aggregation.

    Parameters
    ----------
    client_id:
        Stable integer identity.
    values:
        The device's local observations for the queried metric (>= 1).
    attributes:
        Free-form eligibility attributes (region, OS version, ...), matched
        by cohort predicates.
    """

    client_id: int
    values: np.ndarray
    attributes: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        values = np.atleast_1d(np.asarray(self.values, dtype=np.float64))
        if values.size == 0:
            raise ConfigurationError(f"client {self.client_id} has no local values")
        self.values = values

    # ------------------------------------------------------------------
    @property
    def n_values(self) -> int:
        return int(self.values.size)

    def local_mean(self) -> float:
        """The device-local aggregate (one multi-value elicitation option)."""
        return float(self.values.mean())

    # ------------------------------------------------------------------
    def elicit(self, strategy: str, rng: np.random.Generator | int | None = None) -> float:
        """Reduce this device's local multiset to the single queried value."""
        return elicit_single_value(self.values, strategy, rng)

    def report_bit(
        self,
        bit_index: int,
        encoder: FixedPointEncoder,
        strategy: str = "sample",
        perturbation: BitPerturbation | None = None,
        meter: BitMeter | None = None,
        value_id: str = "metric",
        rng: np.random.Generator | int | None = None,
    ) -> BitReport:
        """Produce this client's one-bit report for the requested bit index.

        Order of operations mirrors the deployment pipeline: elicit one
        value, clip/encode it, extract the assigned bit, meter the
        disclosure, then apply randomized response so what leaves the device
        is already privatized.
        """
        gen = ensure_rng(rng)
        with get_tracer().span(
            "client.report_bit", {"client_id": self.client_id, "bit_index": bit_index}
        ):
            value = self.elicit(strategy, gen)
            encoded = encoder.encode(np.array([value]))
            bit = int(encoder.bit(encoded, bit_index)[0])
            if meter is not None:
                meter.record(self.client_id, value_id)
            if perturbation is not None:
                bit = int(perturbation.perturb_bits(np.array([bit], dtype=np.uint8), gen)[0])
        metrics = get_metrics()
        if metrics.enabled:
            metrics.counter("client_reports_total").inc()
            if perturbation is not None:
                metrics.counter("client_reports_randomized_total").inc()
        return BitReport(client_id=self.client_id, bit_index=bit_index, bit=bit)
