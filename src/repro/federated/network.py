"""A coarse network model for report delivery.

Federated data collection trades latency for privacy (Section 4.3 "Latency
and number of rounds"): devices check in sporadically, rounds take minutes,
and reports can be lost or arrive after the server's collection deadline.
This model captures exactly those effects -- independent loss, lognormal
per-report latency, and an optional deadline -- which is all the round
simulator needs to reproduce the paper's robustness observations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError
from repro.observability import get_metrics, get_tracer
from repro.rng import ensure_rng

__all__ = ["DeliveryOutcome", "NetworkModel"]


@dataclass(frozen=True)
class DeliveryOutcome:
    """Result of transmitting one batch of reports.

    Empty-batch semantics (nothing was handed to the network): the batch is
    vacuously fully delivered -- ``delivery_rate`` is ``1.0`` and
    ``round_duration_s`` is ``0.0``.  This keeps "nothing to send"
    distinguishable from "everything sent was lost" (``delivery_rate 0.0``
    on a non-empty batch).
    """

    delivered: np.ndarray
    latencies_s: np.ndarray

    @property
    def delivery_rate(self) -> float:
        return float(self.delivered.mean()) if self.delivered.size else 1.0

    @property
    def round_duration_s(self) -> float:
        """Wall-clock time until the last delivered report arrived.

        ``0.0`` when nothing was delivered (including the empty batch): no
        report ever arrived, so the server's collection window closed
        immediately at its deadline-independent floor.
        """
        arrived = self.latencies_s[self.delivered]
        return float(arrived.max()) if arrived.size else 0.0


@dataclass(frozen=True)
class NetworkModel:
    """Independent loss + lognormal latency + optional collection deadline.

    Parameters
    ----------
    loss_rate:
        Probability a report never arrives.
    latency_median_s:
        Median report latency in seconds ("a matter of minutes" per the
        paper; default 90 s).
    latency_sigma:
        Lognormal shape parameter (spread of the latency tail).
    deadline_s:
        Server stops collecting after this long; late reports count as lost.
        ``None`` waits forever.
    """

    loss_rate: float = 0.0
    latency_median_s: float = 90.0
    latency_sigma: float = 0.6
    deadline_s: float | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss_rate < 1.0:
            raise ConfigurationError(f"loss_rate must be in [0, 1), got {self.loss_rate}")
        if self.latency_median_s <= 0:
            raise ConfigurationError(f"latency_median_s must be positive, got {self.latency_median_s}")
        if self.latency_sigma <= 0:
            raise ConfigurationError(f"latency_sigma must be positive, got {self.latency_sigma}")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ConfigurationError(f"deadline_s must be positive, got {self.deadline_s}")

    def transmit(
        self, n_reports: int, rng: np.random.Generator | int | None = None
    ) -> DeliveryOutcome:
        """Simulate delivery of ``n_reports`` independent reports."""
        if n_reports < 0:
            raise ConfigurationError(f"n_reports must be >= 0, got {n_reports}")
        gen = ensure_rng(rng)
        with get_tracer().span(
            "network.transmit", {"n_reports": n_reports, "loss_rate": self.loss_rate}
        ) as span:
            latencies = gen.lognormal(np.log(self.latency_median_s), self.latency_sigma, n_reports)
            delivered = gen.random(n_reports) >= self.loss_rate
            if self.deadline_s is not None:
                delivered &= latencies <= self.deadline_s
            outcome = DeliveryOutcome(delivered=delivered, latencies_s=latencies)
            span.set_attribute("delivered", int(delivered.sum()))
            span.set_attribute("round_duration_s", outcome.round_duration_s)
        metrics = get_metrics()
        if metrics.enabled:
            n_delivered = int(delivered.sum())
            metrics.counter("network_reports_sent_total").inc(n_reports)
            metrics.counter("network_reports_lost_total").inc(n_reports - n_delivered)
            metrics.histogram("network_latency_s").observe_array(latencies[delivered])
        return outcome
