"""Scripted fault injection for the federated round loop.

The paper's deployment setting (Section 4.3) is explicitly lossy: devices
check in sporadically, reports miss deadlines, and cohorts shrink mid-round.
:class:`~repro.federated.dropout.DropoutModel` and
:class:`~repro.federated.network.NetworkModel` simulate that background
weather statistically; this module scripts *storms* on top of it -- "round 3
loses everything", "rounds 4-5 run at 60% loss", "round 6's deadline is
halved" -- so robustness behaviour (retries, quorum degradation) is
deterministic and testable instead of depending on rare random draws.

A :class:`FaultSchedule` is a list of :class:`FaultEvent` entries keyed by a
1-based *round-attempt* index.  The server advances the schedule's clock
once per round attempt (retries tick it too, which is what lets a blackout
kill attempt ``k`` while the retry at attempt ``k+1`` runs clean), asks for
the :class:`ActiveFaults` in effect, and applies them by *wrapping* the
configured dropout/network models: overridden fields are replaced, untouched
fields pass through, and ``blackout`` substitutes a :class:`TotalBlackout`
model that kills every client regardless of the base dropout rate.

Schedules can be built programmatically, from JSON (a list of event dicts),
or from a compact spec string for the CLI::

    2:blackout;4-5:loss=0.6;6:deadline*0.5,dropout=0.4
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.federated.dropout import MAX_EFFECTIVE_RATE, DropoutModel
from repro.federated.network import NetworkModel

__all__ = [
    "ActiveFaults",
    "FaultEvent",
    "FaultSchedule",
    "TotalBlackout",
]


class TotalBlackout:
    """Drop-in :class:`DropoutModel` substitute that kills every client.

    A scripted outage is total by definition, so it is exempt from the
    statistical model's ``MAX_EFFECTIVE_RATE`` clip.
    """

    rate = 1.0
    jitter = 0.0

    def draw_survivors(
        self, n_clients: int, rng: np.random.Generator | int | None = None
    ) -> np.ndarray:
        if n_clients < 0:
            raise ConfigurationError(f"n_clients must be >= 0, got {n_clients}")
        return np.zeros(n_clients, dtype=bool)


@dataclass(frozen=True)
class FaultEvent:
    """One scripted fault, active for a closed range of round attempts.

    Parameters
    ----------
    first_round:
        1-based round-attempt index at which the fault switches on.
    last_round:
        Last attempt (inclusive) it stays active; ``None`` means the single
        attempt ``first_round``.
    blackout:
        Every client is lost this round (overrides ``dropout_rate``).
    dropout_rate:
        Replace the effective dropout rate (jitter-free, for determinism).
    loss_rate:
        Replace the network's report-loss probability.
    deadline_factor:
        Multiply the network's collection deadline (``0.5`` halves it).
        Ignored when the base network has no deadline.
    latency_factor:
        Multiply the network's median report latency.
    shard_blackout:
        Secure-aggregation shard indices (0-based) whose clients all fail to
        submit to their masking session this round.  Exercises per-shard
        dropout recovery and failure containment: the shard falls below its
        threshold and is excluded, degrading -- not aborting -- the round.
        Ignored when secure aggregation is off.
    """

    first_round: int
    last_round: int | None = None
    blackout: bool = False
    dropout_rate: float | None = None
    loss_rate: float | None = None
    deadline_factor: float | None = None
    latency_factor: float | None = None
    shard_blackout: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.first_round < 1:
            raise ConfigurationError(
                f"fault rounds are 1-based, got first_round={self.first_round}"
            )
        if self.last_round is not None and self.last_round < self.first_round:
            raise ConfigurationError(
                f"last_round {self.last_round} precedes first_round {self.first_round}"
            )
        if self.dropout_rate is not None and not 0.0 <= self.dropout_rate <= MAX_EFFECTIVE_RATE:
            raise ConfigurationError(
                f"dropout_rate must be in [0, {MAX_EFFECTIVE_RATE}] (use blackout=True "
                f"for total loss), got {self.dropout_rate}"
            )
        if self.loss_rate is not None and not 0.0 <= self.loss_rate < 1.0:
            raise ConfigurationError(f"loss_rate must be in [0, 1), got {self.loss_rate}")
        for name in ("deadline_factor", "latency_factor"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ConfigurationError(f"{name} must be positive, got {value}")
        object.__setattr__(self, "shard_blackout", tuple(self.shard_blackout))
        for shard in self.shard_blackout:
            if not isinstance(shard, int) or shard < 0:
                raise ConfigurationError(
                    f"shard_blackout indices must be ints >= 0, got {shard!r}"
                )
        if not (
            self.blackout
            or self.dropout_rate is not None
            or self.loss_rate is not None
            or self.deadline_factor is not None
            or self.latency_factor is not None
            or self.shard_blackout
        ):
            raise ConfigurationError("fault event specifies no effect")

    def covers(self, round_index: int) -> bool:
        last = self.first_round if self.last_round is None else self.last_round
        return self.first_round <= round_index <= last


@dataclass(frozen=True)
class ActiveFaults:
    """The merged fault overrides in effect for one round attempt.

    Later events in the schedule win field-by-field when ranges overlap.
    ``apply_dropout``/``apply_network`` wrap the configured base models:
    they return the base unchanged when no relevant override is active, so
    a schedule with no event at this round is a true no-op.
    """

    round_index: int
    blackout: bool = False
    dropout_rate: float | None = None
    loss_rate: float | None = None
    deadline_factor: float | None = None
    latency_factor: float | None = None
    shard_blackout: tuple[int, ...] = ()

    @property
    def any(self) -> bool:
        return (
            self.blackout
            or self.dropout_rate is not None
            or self.loss_rate is not None
            or self.deadline_factor is not None
            or self.latency_factor is not None
            or bool(self.shard_blackout)
        )

    def describe(self) -> dict[str, object]:
        """Span-attribute-ready summary of the active overrides."""
        out: dict[str, object] = {"round": self.round_index}
        for name in ("blackout", "dropout_rate", "loss_rate", "deadline_factor", "latency_factor"):
            value = getattr(self, name)
            if value not in (None, False):
                out[name] = value
        if self.shard_blackout:
            out["shard_blackout"] = list(self.shard_blackout)
        return out

    def apply_dropout(
        self, base: DropoutModel | None
    ) -> DropoutModel | TotalBlackout | None:
        if self.blackout:
            return TotalBlackout()
        if self.dropout_rate is None:
            return base
        return DropoutModel(rate=self.dropout_rate, jitter=0.0)

    def apply_network(self, base: NetworkModel | None) -> NetworkModel | None:
        if self.loss_rate is None and self.deadline_factor is None and self.latency_factor is None:
            return base
        if base is None:
            # Faults can introduce network weather into a run configured
            # without a network model (lossless base).
            base = NetworkModel()
        changes: dict[str, float] = {}
        if self.loss_rate is not None:
            changes["loss_rate"] = self.loss_rate
        if self.deadline_factor is not None and base.deadline_s is not None:
            changes["deadline_s"] = base.deadline_s * self.deadline_factor
        if self.latency_factor is not None:
            changes["latency_median_s"] = base.latency_median_s * self.latency_factor
        return dataclasses.replace(base, **changes) if changes else base


class FaultSchedule:
    """Scripted per-round fault events with an attempt-granularity clock.

    ``at(k)`` is a pure lookup of the faults active at round-attempt ``k``;
    ``begin_attempt()`` advances the internal clock (the server calls it once
    per round *attempt*, so a retried round consumes the next tick).  A
    schedule is reusable across runs via :meth:`reset` -- two runs with the
    same seed and a freshly reset schedule are bit-identical.
    """

    def __init__(self, events: Sequence[FaultEvent]) -> None:
        self.events = tuple(events)
        for event in self.events:
            if not isinstance(event, FaultEvent):
                raise ConfigurationError(f"expected FaultEvent, got {type(event).__name__}")
        self._attempt = 0

    # -- clock ----------------------------------------------------------
    @property
    def attempts_started(self) -> int:
        return self._attempt

    def begin_attempt(self) -> ActiveFaults:
        """Advance the clock to the next round attempt and return its faults."""
        self._attempt += 1
        return self.at(self._attempt)

    def reset(self) -> None:
        """Rewind the clock (fresh run over the same script)."""
        self._attempt = 0

    # -- lookup ---------------------------------------------------------
    def at(self, round_index: int) -> ActiveFaults:
        """Merge every event covering ``round_index`` (later events win)."""
        if round_index < 1:
            raise ConfigurationError(f"round_index is 1-based, got {round_index}")
        merged: dict[str, object] = {}
        shard_blackout: list[int] = []
        for event in self.events:
            if not event.covers(round_index):
                continue
            if event.blackout:
                merged["blackout"] = True
            for name in ("dropout_rate", "loss_rate", "deadline_factor", "latency_factor"):
                value = getattr(event, name)
                if value is not None:
                    merged[name] = value
            for shard in event.shard_blackout:
                # Shard blackouts union across overlapping events (killing
                # shard 0 and shard 2 are not competing overrides).
                if shard not in shard_blackout:
                    shard_blackout.append(shard)
        if shard_blackout:
            merged["shard_blackout"] = tuple(shard_blackout)
        return ActiveFaults(round_index=round_index, **merged)

    # -- constructors ---------------------------------------------------
    @classmethod
    def from_json(cls, obj: Sequence[dict] | str) -> "FaultSchedule":
        """Build from a JSON array of event dicts (or its serialized text)."""
        if isinstance(obj, str):
            obj = json.loads(obj)
        if not isinstance(obj, (list, tuple)):
            raise ConfigurationError("fault-schedule JSON must be a list of event objects")
        events = []
        for entry in obj:
            if not isinstance(entry, dict):
                raise ConfigurationError(f"fault event must be an object, got {entry!r}")
            try:
                events.append(FaultEvent(**entry))
            except TypeError as exc:
                raise ConfigurationError(f"bad fault event {entry!r}: {exc}") from exc
        return cls(events)

    @classmethod
    def from_spec(cls, text: str) -> "FaultSchedule":
        """Parse the compact CLI grammar.

        ``;``-separated events, each ``ROUNDS:EFFECT[,EFFECT...]`` where
        ``ROUNDS`` is ``k`` or ``k-m`` (1-based, inclusive) and ``EFFECT``
        is one of ``blackout``, ``dropout=R``, ``loss=R``, ``deadline*F``,
        ``latency*F``, or ``shard=K`` (black out secure-aggregation shard
        ``K``; repeat the effect to kill several shards).
        """
        events = []
        for chunk in filter(None, (part.strip() for part in text.split(";"))):
            rounds, sep, effects = chunk.partition(":")
            if not sep or not effects.strip():
                raise ConfigurationError(
                    f"bad fault event {chunk!r}: expected ROUNDS:EFFECT[,EFFECT...]"
                )
            first, _, last = rounds.partition("-")
            try:
                kwargs: dict[str, object] = {
                    "first_round": int(first),
                    "last_round": int(last) if last else None,
                }
            except ValueError as exc:
                raise ConfigurationError(f"bad fault rounds {rounds!r}: {exc}") from exc
            for effect in (e.strip() for e in effects.split(",")):
                try:
                    if effect == "blackout":
                        kwargs["blackout"] = True
                    elif effect.startswith("dropout="):
                        kwargs["dropout_rate"] = float(effect.removeprefix("dropout="))
                    elif effect.startswith("loss="):
                        kwargs["loss_rate"] = float(effect.removeprefix("loss="))
                    elif effect.startswith("deadline*"):
                        kwargs["deadline_factor"] = float(effect.removeprefix("deadline*"))
                    elif effect.startswith("latency*"):
                        kwargs["latency_factor"] = float(effect.removeprefix("latency*"))
                    elif effect.startswith("shard="):
                        shards = tuple(kwargs.get("shard_blackout", ()))
                        kwargs["shard_blackout"] = shards + (
                            int(effect.removeprefix("shard=")),
                        )
                    else:
                        raise ConfigurationError(
                            f"unknown fault effect {effect!r} (want blackout, dropout=R, "
                            f"loss=R, deadline*F, latency*F, or shard=K)"
                        )
                except ValueError as exc:
                    raise ConfigurationError(f"bad fault effect {effect!r}: {exc}") from exc
            events.append(FaultEvent(**kwargs))
        if not events:
            raise ConfigurationError(f"fault-schedule spec {text!r} contains no events")
        return cls(events)

    @classmethod
    def load(cls, source: str) -> "FaultSchedule":
        """CLI entry point: a ``.json`` file path, inline JSON, or a spec string."""
        stripped = source.strip()
        if stripped.endswith(".json"):
            path = Path(stripped)
            if not path.exists():
                raise ConfigurationError(f"fault-schedule file not found: {path}")
            return cls.from_json(path.read_text())
        if stripped.startswith("["):
            return cls.from_json(stripped)
        return cls.from_spec(stripped)

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultSchedule({list(self.events)!r}, attempt={self._attempt})"
