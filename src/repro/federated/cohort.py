"""Cohort selection: eligibility filtering and minimum-size enforcement.

Selective queries ("restricting eligibility to clients in a particular
geography", Section 4.3) filter the device population by attribute
predicates, and privacy policy requires "a minimum cohort size": a query
whose eligible population is too small must not run.
:class:`CohortSelector` implements both, plus uniform sub-sampling when a
target cohort size is requested.

Selection is index-based: :meth:`CohortSelector.select_indices` draws
*positions* into the population, so a million-client draw touches only the
chosen rows -- no eligible-list copy when no predicate is set, and O(cohort)
instead of O(population) materialization when subsampling.  It works
uniformly over object populations (``Sequence[ClientDevice]``) and columnar
ones (:class:`~repro.core.client_plane.ClientBatch`); for the latter,
predicates built by :func:`attribute_equals` evaluate as a single vectorized
mask over the attribute column.
"""

from __future__ import annotations

from typing import Callable, Sequence, Union

import numpy as np

from repro.core.client_plane import ClientBatch
from repro.exceptions import CohortTooSmallError, ConfigurationError
from repro.federated.client import ClientDevice
from repro.rng import ensure_rng

__all__ = ["CohortSelector", "attribute_equals"]

#: Eligibility predicate signature.
Eligibility = Callable[[ClientDevice], bool]

#: Populations a cohort can be drawn from.
Population = Union[Sequence[ClientDevice], ClientBatch]


class _AttributeEquals:
    """Equality predicate usable on both device objects and columnar batches.

    Callable per device (``client.attributes[key] == value``) and
    vectorizable per batch via :meth:`mask`.  Missing attributes make a
    client ineligible rather than erroring -- a fleet always contains
    devices that never reported the attribute.
    """

    def __init__(self, key: str, value: object) -> None:
        self.key = key
        self.value = value

    def __call__(self, client: ClientDevice) -> bool:
        return client.attributes.get(self.key) == self.value

    def mask(self, batch: ClientBatch) -> np.ndarray:
        """Boolean eligibility column for every client in the batch."""
        column = batch.attributes.get(self.key)
        if column is None:
            return np.zeros(len(batch), dtype=bool)
        return np.asarray(column == self.value, dtype=bool)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"attribute_equals({self.key!r}, {self.value!r})"


def attribute_equals(key: str, value: object) -> _AttributeEquals:
    """Predicate factory: ``client.attributes[key] == value``.

    The returned predicate is callable on a single :class:`ClientDevice`
    *and* exposes ``mask(batch)`` for vectorized evaluation over a
    :class:`~repro.core.client_plane.ClientBatch` attribute column.
    """
    return _AttributeEquals(key, value)


class CohortSelector:
    """Select a query cohort from the device population.

    Parameters
    ----------
    min_cohort_size:
        Queries whose *eligible* population (or requested cohort) is below
        this bound raise :class:`CohortTooSmallError`.

    Examples
    --------
    >>> pop = [ClientDevice(i, [float(i)], {"geo": "us" if i % 2 else "eu"}) for i in range(10)]
    >>> selector = CohortSelector(min_cohort_size=3)
    >>> cohort = selector.select(pop, eligibility=attribute_equals("geo", "us"))
    >>> len(cohort)
    5
    """

    def __init__(self, min_cohort_size: int = 1) -> None:
        if min_cohort_size < 1:
            raise ConfigurationError(f"min_cohort_size must be >= 1, got {min_cohort_size}")
        self.min_cohort_size = min_cohort_size

    def select_indices(
        self,
        population: Population,
        eligibility: Eligibility | None = None,
        cohort_size: int | None = None,
        rng: np.random.Generator | int | None = None,
    ) -> np.ndarray:
        """Draw cohort *positions* into ``population`` (int64 array).

        Consumes randomness exactly as the historical object-returning
        ``select`` did (one ``gen.choice`` over the eligible count, only
        when subsampling), so index-based and object-based selection are
        bit-identical for the same seed.  With no eligibility predicate the
        eligible set is the whole population and no per-client pass or copy
        happens at all.
        """
        n_population = len(population)
        eligible_idx: np.ndarray | None = None  # None == all of population
        n_eligible = n_population
        if eligibility is not None:
            if isinstance(population, ClientBatch):
                mask = getattr(eligibility, "mask", None)
                if mask is None:
                    raise ConfigurationError(
                        "eligibility predicates over a columnar ClientBatch must "
                        "expose a vectorized .mask(batch) (see attribute_equals); "
                        "got a plain per-device callable"
                    )
                eligible_idx = np.flatnonzero(np.asarray(mask(population), dtype=bool))
            else:
                eligible_idx = np.fromiter(
                    (i for i, client in enumerate(population) if eligibility(client)),
                    dtype=np.int64,
                )
            n_eligible = int(eligible_idx.size)
        if n_eligible < self.min_cohort_size:
            raise CohortTooSmallError(
                f"only {n_eligible} eligible clients; minimum cohort size is "
                f"{self.min_cohort_size}"
            )
        if cohort_size is not None and cohort_size < self.min_cohort_size:
            raise CohortTooSmallError(
                f"requested cohort of {cohort_size} is below the minimum "
                f"{self.min_cohort_size}"
            )
        if cohort_size is None or cohort_size >= n_eligible:
            if eligible_idx is None:
                return np.arange(n_population, dtype=np.int64)
            return eligible_idx
        gen = ensure_rng(rng)
        picked = gen.choice(n_eligible, size=cohort_size, replace=False)
        if eligible_idx is None:
            return np.asarray(picked, dtype=np.int64)
        return eligible_idx[picked]

    def select(
        self,
        population: Population,
        eligibility: Eligibility | None = None,
        cohort_size: int | None = None,
        rng: np.random.Generator | int | None = None,
    ) -> Population:
        """Filter by eligibility, enforce the minimum, optionally subsample.

        Returns the eligible clients (all of them, or a uniform sample of
        ``cohort_size``) in the same representation as the input: a list for
        object populations, a :class:`ClientBatch` for columnar ones (the
        unfiltered full-population case returns the batch itself, copy-free).
        Raises :class:`CohortTooSmallError` if either the eligible population
        or the requested cohort would violate the minimum size.
        """
        indices = self.select_indices(population, eligibility, cohort_size, rng)
        if isinstance(population, ClientBatch):
            if indices.size == len(population) and eligibility is None:
                return population
            return population.take(indices)
        return [population[int(i)] for i in indices]
