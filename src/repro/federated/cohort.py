"""Cohort selection: eligibility filtering and minimum-size enforcement.

Selective queries ("restricting eligibility to clients in a particular
geography", Section 4.3) filter the device population by attribute
predicates, and privacy policy requires "a minimum cohort size": a query
whose eligible population is too small must not run.
:class:`CohortSelector` implements both, plus uniform sub-sampling when a
target cohort size is requested.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.exceptions import CohortTooSmallError, ConfigurationError
from repro.federated.client import ClientDevice
from repro.rng import ensure_rng

__all__ = ["CohortSelector", "attribute_equals"]

#: Eligibility predicate signature.
Eligibility = Callable[[ClientDevice], bool]


def attribute_equals(key: str, value: object) -> Eligibility:
    """Predicate factory: ``client.attributes[key] == value``.

    Missing attributes make a client ineligible rather than erroring -- a
    fleet always contains devices that never reported the attribute.
    """
    def predicate(client: ClientDevice) -> bool:
        return client.attributes.get(key) == value

    return predicate


class CohortSelector:
    """Select a query cohort from the device population.

    Parameters
    ----------
    min_cohort_size:
        Queries whose *eligible* population (or requested cohort) is below
        this bound raise :class:`CohortTooSmallError`.

    Examples
    --------
    >>> pop = [ClientDevice(i, [float(i)], {"geo": "us" if i % 2 else "eu"}) for i in range(10)]
    >>> selector = CohortSelector(min_cohort_size=3)
    >>> cohort = selector.select(pop, eligibility=attribute_equals("geo", "us"))
    >>> len(cohort)
    5
    """

    def __init__(self, min_cohort_size: int = 1) -> None:
        if min_cohort_size < 1:
            raise ConfigurationError(f"min_cohort_size must be >= 1, got {min_cohort_size}")
        self.min_cohort_size = min_cohort_size

    def select(
        self,
        population: Sequence[ClientDevice],
        eligibility: Eligibility | None = None,
        cohort_size: int | None = None,
        rng: np.random.Generator | int | None = None,
    ) -> list[ClientDevice]:
        """Filter by eligibility, enforce the minimum, optionally subsample.

        Returns the eligible clients (all of them, or a uniform sample of
        ``cohort_size``).  Raises :class:`CohortTooSmallError` if either
        the eligible population or the requested cohort would violate the
        minimum size.
        """
        eligible = [c for c in population if eligibility is None or eligibility(c)]
        if len(eligible) < self.min_cohort_size:
            raise CohortTooSmallError(
                f"only {len(eligible)} eligible clients; minimum cohort size is "
                f"{self.min_cohort_size}"
            )
        if cohort_size is None:
            return eligible
        if cohort_size < self.min_cohort_size:
            raise CohortTooSmallError(
                f"requested cohort of {cohort_size} is below the minimum "
                f"{self.min_cohort_size}"
            )
        if cohort_size >= len(eligible):
            return eligible
        gen = ensure_rng(rng)
        picked = gen.choice(len(eligible), size=cohort_size, replace=False)
        return [eligible[i] for i in picked]
