"""Simulated client fleet: devices speaking the wire protocol over TCP.

One coroutine per device connects to a :class:`~repro.federated.serve.RoundServer`,
registers with a HELLO message, and then answers every cohort announcement the
way a real device would: elicit the local value, fixed-point encode it, extract
the assigned bit, optionally pass it through client-side randomized response,
frame it with :func:`~repro.federated.wire.encode_batch`, and uplink it as one
REPORTS message.  A pluggable :class:`EmulationProfile` reuses
:class:`~repro.federated.network.NetworkModel`'s loss/latency distributions
per-connection, so the served path exercises the same failure statistics the
in-process simulator does -- a lost uplink is simply never sent, and latency
optionally maps to real ``asyncio.sleep`` time via ``time_scale``.

Determinism: each client owns an independent generator spawned from the fleet
seed (``SeedSequence(seed).spawn(n)``), and per announcement draws in a fixed
order -- randomized response first, then the network emulation -- so
:func:`repro.federated.serve.in_process_estimate` can replay the exact stream.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

import numpy as np

from repro.core.encoding import FixedPointEncoder
from repro.exceptions import ConfigurationError, ProtocolError
from repro.federated.client import BitReport
from repro.federated.network import NetworkModel
from repro.federated.wire import (
    MESSAGE_HEADER_SIZE,
    MSG_ABORT,
    MSG_ANNOUNCE,
    MSG_HELLO,
    MSG_REPORTS,
    MSG_RESULT,
    MSG_TELEMETRY,
    decode_announce,
    decode_message_header,
    encode_batch,
    encode_message,
    encode_telemetry,
)
from repro.observability import get_tracer
from repro.observability.exporters import InMemoryExporter
from repro.observability.metrics import MetricsRegistry
from repro.observability.tracing import NULL_TRACER, Tracer
from repro.privacy.randomized_response import RandomizedResponse

__all__ = [
    "EmulationProfile",
    "ClientFleet",
    "FleetResult",
    "fleet_values",
    "read_message",
]


def fleet_values(n_clients: int, seed: int = 0) -> np.ndarray:
    """The CLI fleet's deterministic value population (one value per client).

    Same distribution as the trace CLI's population (clipped
    ``Normal(600, 100)``), derived from ``seed`` alone -- so an in-process
    twin (e.g. the serve smoke check) can regenerate exactly what a
    ``repro.cli fleet --seed <seed>`` run reported on.
    """
    if n_clients < 1:
        raise ConfigurationError(f"n_clients must be >= 1, got {n_clients}")
    rng = np.random.default_rng(seed)
    return np.clip(rng.normal(600.0, 100.0, n_clients), 0.0, None)

#: Mutator hook: ``(client_id, attempt, frame) -> frame | None``.  Returning
#: ``None`` drops the uplink (the device goes silent); returning different
#: bytes ships them verbatim -- the adversarial/fuzzing entry point.
FrameMutator = Callable[[int, int, bytes], Optional[bytes]]


async def read_message(reader: asyncio.StreamReader) -> tuple[int, int, bytes]:
    """Read one length-prefixed control message off a stream.

    Returns ``(kind, seq, payload)``.  Raises
    :class:`~repro.exceptions.ProtocolError` on a malformed header (the
    caller decides whether that kills the connection) and lets
    ``asyncio.IncompleteReadError`` propagate on EOF.
    """
    header = await reader.readexactly(MESSAGE_HEADER_SIZE)
    kind, seq, length = decode_message_header(header)
    payload = await reader.readexactly(length) if length else b""
    return kind, seq, payload


@dataclass(frozen=True)
class EmulationProfile:
    """Per-connection network emulation reusing :class:`NetworkModel`'s draws.

    Parameters
    ----------
    loss_rate:
        Probability an uplink is silently dropped (never sent).
    latency_median_s, latency_sigma:
        Lognormal latency distribution, in *simulated* seconds (the same
        parameterization as :class:`NetworkModel`).
    time_scale:
        Real seconds slept per simulated latency second (``0.0``, the
        default, never sleeps -- loss statistics without wall-clock cost;
        ``0.001`` makes a 90 s median latency a 90 ms real delay).

    Parse a CLI spec with :meth:`parse`::

        EmulationProfile.parse("loss=0.2,latency=45,sigma=0.6,scale=0.001")
    """

    loss_rate: float = 0.0
    latency_median_s: float = 90.0
    latency_sigma: float = 0.6
    time_scale: float = 0.0

    def __post_init__(self) -> None:
        # NetworkModel validates loss/latency/sigma; do it eagerly.
        self.network  # noqa: B018 -- validation side effect
        if self.time_scale < 0:
            raise ConfigurationError(f"time_scale must be >= 0, got {self.time_scale}")

    @property
    def network(self) -> NetworkModel:
        """The equivalent :class:`NetworkModel` (no deadline: the server owns it)."""
        return NetworkModel(
            loss_rate=self.loss_rate,
            latency_median_s=self.latency_median_s,
            latency_sigma=self.latency_sigma,
        )

    @classmethod
    def parse(cls, spec: str) -> "EmulationProfile":
        """Build a profile from a compact ``key=value`` CLI spec.

        Keys: ``loss`` (loss_rate), ``latency`` (median seconds), ``sigma``
        (lognormal shape), ``scale`` (time_scale).  Unknown keys raise
        :class:`ConfigurationError`.
        """
        mapping = {
            "loss": "loss_rate",
            "latency": "latency_median_s",
            "sigma": "latency_sigma",
            "scale": "time_scale",
        }
        kwargs: dict[str, float] = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            key, sep, value = part.partition("=")
            if not sep or key.strip() not in mapping:
                raise ConfigurationError(
                    f"bad emulation spec element {part!r}; expected "
                    f"one of {sorted(mapping)} as key=value"
                )
            try:
                kwargs[mapping[key.strip()]] = float(value)
            except ValueError:
                raise ConfigurationError(
                    f"bad emulation value in {part!r}: not a number"
                ) from None
        return cls(**kwargs)

    def draw(self, rng: np.random.Generator) -> tuple[bool, float]:
        """Draw one uplink's fate: ``(delivered, latency_s)``.

        Consumes the generator exactly as ``NetworkModel.transmit(1, rng)``
        does (one lognormal draw, one uniform draw), so the in-process twin
        can replay the stream.
        """
        outcome = self.network.transmit(1, rng)
        return bool(outcome.delivered[0]), float(outcome.latencies_s[0])


@dataclass(frozen=True)
class FleetResult:
    """What the fleet saw: per-client outcomes of one served round."""

    n_clients: int
    uplinks_sent: int
    uplinks_dropped: int
    results: dict[int, float] = field(default_factory=dict)
    aborted: bool = False
    telemetry_sent: int = 0

    @property
    def estimate(self) -> float | None:
        """The server's announced estimate (``None`` if the round aborted)."""
        if not self.results:
            return None
        return next(iter(self.results.values()))


class ClientFleet:
    """A population of simulated devices served over real sockets.

    Parameters
    ----------
    values:
        One local value per client (client ``i`` reports on ``values[i]``).
    seed:
        Fleet seed; client ``i`` draws from the ``i``-th spawned child
        stream.
    profile:
        Optional :class:`EmulationProfile` applied per uplink.
    client_ids:
        Wire identities (default ``0..n-1``).
    mutate:
        Optional :data:`FrameMutator` applied to each encoded frame before
        emulation -- the hook adversarial and fuzzing tests use.
    read_timeout_s:
        Per-message read timeout guarding tests against a hung server.
    telemetry:
        When ``True`` (the default) each client records ``fleet.round`` /
        ``fleet.encode`` / ``fleet.uplink`` spans into a private tracer and,
        if the server's ANNOUNCE carried trace context, ships them (plus a
        per-client metrics snapshot) back in one TELEMETRY message after
        RESULT/ABORT.  Disable to emulate a pre-tracing fleet.
    clock_factory:
        Optional zero-argument callable returning a clock for each client's
        private tracer (both span and wall clock).  Pass
        ``lambda: SimClock(...)`` to make client-side telemetry timestamps
        deterministic; the default is real time.
    """

    def __init__(
        self,
        values: Sequence[float],
        seed: int = 0,
        profile: EmulationProfile | None = None,
        client_ids: Sequence[int] | None = None,
        mutate: FrameMutator | None = None,
        read_timeout_s: float = 60.0,
        telemetry: bool = True,
        clock_factory: Callable[[], Any] | None = None,
    ) -> None:
        self.values = np.asarray(values, dtype=np.float64)
        if self.values.ndim != 1 or self.values.size == 0:
            raise ConfigurationError("fleet needs a non-empty 1-D value array")
        n = int(self.values.size)
        self.client_ids = (
            list(range(n)) if client_ids is None else [int(c) for c in client_ids]
        )
        if len(self.client_ids) != n:
            raise ConfigurationError(
                f"{len(self.client_ids)} client ids for {n} values"
            )
        self.seed = int(seed)
        self.profile = profile
        self.mutate = mutate
        self.read_timeout_s = float(read_timeout_s)
        self.telemetry = bool(telemetry)
        self.clock_factory = clock_factory

    def spawn_generators(self) -> list[np.random.Generator]:
        """One independent child generator per client (replayable by the twin)."""
        return [
            np.random.default_rng(s)
            for s in np.random.SeedSequence(self.seed).spawn(len(self.client_ids))
        ]

    async def run(self, host: str, port: int) -> FleetResult:
        """Connect every client and play rounds until RESULT/ABORT/EOF."""
        gens = self.spawn_generators()
        with get_tracer().span(
            "fleet.session", {"clients": len(self.client_ids), "host": host, "port": port}
        ):
            outcomes = await asyncio.gather(
                *(
                    self._run_client(host, port, cid, float(value), gen)
                    for cid, value, gen in zip(self.client_ids, self.values, gens)
                )
            )
        results: dict[int, float] = {}
        sent = dropped = telemetry_sent = 0
        aborted = False
        for cid, client_sent, client_dropped, estimate, client_aborted, shipped in outcomes:
            sent += client_sent
            dropped += client_dropped
            if estimate is not None:
                results[cid] = estimate
            aborted = aborted or client_aborted
            telemetry_sent += int(shipped)
        return FleetResult(
            n_clients=len(self.client_ids),
            uplinks_sent=sent,
            uplinks_dropped=dropped,
            results=results,
            aborted=aborted,
            telemetry_sent=telemetry_sent,
        )

    async def _run_client(
        self,
        host: str,
        port: int,
        client_id: int,
        value: float,
        gen: np.random.Generator,
    ) -> tuple[int, int, int, float | None, bool, bool]:
        """One device's life: HELLO, then answer announcements until done."""
        sent = dropped = 0
        estimate: float | None = None
        aborted = False
        telemetry_shipped = False
        # Telemetry lives on a *private* per-client tracer, never the
        # process-wide one: a device's spans leave the device only through
        # the TELEMETRY message, exactly as they would across real machines.
        exporter: InMemoryExporter | None = None
        registry: MetricsRegistry | None = None
        if self.telemetry:
            exporter = InMemoryExporter()
            clock = self.clock_factory() if self.clock_factory is not None else None
            tracer: Any = Tracer([exporter], clock=clock, wall_clock=clock)
        else:
            tracer = NULL_TRACER
        if self.telemetry:
            registry = MetricsRegistry()
        saw_trace = False
        last_seq = 0
        reader, writer = await asyncio.open_connection(host, port)
        try:
            clock_s = tracer.wall_time() if self.telemetry else time.time()
            writer.write(
                encode_message(
                    MSG_HELLO,
                    json.dumps({"client_id": client_id, "clock_s": clock_s}).encode(),
                )
            )
            await writer.drain()
            while True:
                try:
                    kind, seq, payload = await asyncio.wait_for(
                        read_message(reader), self.read_timeout_s
                    )
                except (
                    asyncio.IncompleteReadError,
                    asyncio.TimeoutError,
                    ConnectionError,
                    ProtocolError,
                ):
                    break
                last_seq = seq
                if kind == MSG_RESULT:
                    estimate = float(json.loads(payload)["estimate"])
                    break
                if kind == MSG_ABORT:
                    aborted = True
                    break
                if kind != MSG_ANNOUNCE:
                    continue
                try:
                    announce, context = decode_announce(payload)
                except ProtocolError:
                    break
                if context is not None:
                    saw_trace = True
                round_attrs: dict[str, Any] = {
                    "client": client_id,
                    "attempt": seq,
                    "bit_index": int(announce["bit_index"]),
                }
                if context is not None:
                    round_attrs["trace_id"] = context.trace_id
                with tracer.span("fleet.round", round_attrs) as round_span:
                    with tracer.span(
                        "fleet.encode",
                        {"n_bits": int(announce["n_bits"]), "client": client_id},
                    ):
                        encoder = FixedPointEncoder(
                            n_bits=int(announce["n_bits"]),
                            scale=float(announce["scale"]),
                            offset=float(announce["offset"]),
                        )
                        bit_index = int(announce["bit_index"])
                        epsilon = announce.get("epsilon")
                        encoded = encoder.encode(np.asarray([value]))
                        bit = int((encoded[0] >> np.uint64(bit_index)) & np.uint64(1))
                        randomized = epsilon is not None
                        if randomized:
                            bit = int(
                                RandomizedResponse(epsilon=float(epsilon)).perturb_bits(
                                    np.asarray([bit], dtype=np.uint8), gen
                                )[0]
                            )
                        frame = encode_batch(
                            [
                                BitReport(
                                    client_id=client_id, bit_index=bit_index, bit=bit
                                )
                            ],
                            randomized_response=randomized,
                        )
                    if self.mutate is not None:
                        mutated = self.mutate(client_id, seq, frame)
                        if mutated is None:
                            dropped += 1
                            round_span.set_attribute("dropped", True)
                            if registry is not None:
                                registry.counter("fleet_uplinks_dropped_total").inc()
                            continue
                        frame = mutated
                    if self.profile is not None:
                        delivered, latency_s = self.profile.draw(gen)
                        if self.profile.time_scale > 0:
                            await asyncio.sleep(latency_s * self.profile.time_scale)
                        if not delivered:
                            dropped += 1
                            round_span.set_attribute("dropped", True)
                            if registry is not None:
                                registry.counter("fleet_uplinks_dropped_total").inc()
                            continue
                    with tracer.span(
                        "fleet.uplink",
                        {"client": client_id, "attempt": seq, "bytes": len(frame)},
                    ):
                        writer.write(encode_message(MSG_REPORTS, frame, seq=seq))
                        await writer.drain()
                    sent += 1
                    if registry is not None:
                        registry.counter("fleet_uplinks_sent_total").inc()
            # Telemetry is best-effort and strictly after the round outcome:
            # it must never delay an uplink or keep a dead round's socket open.
            if (
                self.telemetry
                and saw_trace
                and exporter is not None
                and (estimate is not None or aborted)
            ):
                try:
                    spans = [record.to_dict() for record in exporter.records]
                    snapshot = registry.snapshot() if registry is not None else {}
                    writer.write(
                        encode_message(
                            MSG_TELEMETRY,
                            encode_telemetry(client_id, spans, snapshot),
                            seq=last_seq,
                        )
                    )
                    await writer.drain()
                    telemetry_shipped = True
                except (ConnectionError, OSError, ProtocolError):
                    pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - teardown race
                pass
        return client_id, sent, dropped, estimate, aborted, telemetry_shipped
