"""Multi-feature queries under a shared per-client bit budget.

Real rollouts query many metrics against one device population, and the
worst-case promise must hold *across* them: a bounded number of private bits
per client in total (paper Section 1.1, "limit subsequent bits per value and
per client").  :class:`MultiFeatureQuery` partitions the population so each
client contributes to at most ``features_per_client`` of the configured
feature queries, shares one :class:`~repro.privacy.accountant.BitMeter`
across all of them, and raises before any client would exceed its budget.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.results import MeanEstimate
from repro.exceptions import ConfigurationError
from repro.federated.client import ClientDevice
from repro.federated.server import FederatedMeanQuery
from repro.privacy.accountant import BitMeter
from repro.rng import ensure_rng

__all__ = ["MultiFeatureQuery"]


class MultiFeatureQuery:
    """Run several federated mean queries against one population.

    Parameters
    ----------
    queries:
        ``feature name -> FederatedMeanQuery``.  Each query's
        ``metric_name`` is overridden to the feature name and its meter to
        the shared one, so the budget is enforced uniformly.  Client values
        for feature ``f`` are read from ``client.attributes["features"][f]``
        (an array of one or more local observations).
    features_per_client:
        How many features a single client may serve this campaign.  With
        one bit per feature query, this equals the client's total private
        bits -- the shared meter is configured accordingly.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core import FixedPointEncoder
    >>> rng = np.random.default_rng(0)
    >>> pop = []
    >>> for i in range(4000):
    ...     pop.append(ClientDevice(i, [0.0], {"features": {
    ...         "latency": np.clip(rng.normal(200, 30, 1), 0, None),
    ...         "memory": np.clip(rng.normal(60, 10, 1), 0, None),
    ...     }}))
    >>> mfq = MultiFeatureQuery({
    ...     "latency": FederatedMeanQuery(FixedPointEncoder.for_integers(9)),
    ...     "memory": FederatedMeanQuery(FixedPointEncoder.for_integers(7)),
    ... })
    >>> results = mfq.run(pop, rng=1)
    >>> abs(results["latency"].value - 200) < 10 and abs(results["memory"].value - 60) < 4
    True
    """

    def __init__(
        self,
        queries: dict[str, FederatedMeanQuery],
        features_per_client: int = 1,
    ) -> None:
        if not queries:
            raise ConfigurationError("need at least one feature query")
        if features_per_client < 1:
            raise ConfigurationError(
                f"features_per_client must be >= 1, got {features_per_client}"
            )
        if features_per_client > len(queries):
            raise ConfigurationError(
                f"features_per_client={features_per_client} exceeds the "
                f"{len(queries)} configured features"
            )
        self.queries = dict(queries)
        self.features_per_client = features_per_client
        self.meter = BitMeter(
            max_bits_per_value=1, max_bits_per_client=features_per_client
        )
        for name, query in self.queries.items():
            query.meter = self.meter
            query.metric_name = name

    # ------------------------------------------------------------------
    def run(
        self,
        population: Sequence[ClientDevice],
        rng: np.random.Generator | int | None = None,
    ) -> dict[str, MeanEstimate]:
        """Run every feature query on its share of the population.

        The population is shuffled and dealt round-robin into
        ``ceil(n_features / features_per_client)`` disjoint groups; each
        group serves ``features_per_client`` features, so no client ever
        answers more.  Clients missing a feature's data are skipped for
        that feature.
        """
        gen = ensure_rng(rng)
        names = list(self.queries)
        n_groups = -(-len(names) // self.features_per_client)   # ceil division
        order = gen.permutation(len(population))
        groups = [
            [population[i] for i in order[g::n_groups]] for g in range(n_groups)
        ]

        results: dict[str, MeanEstimate] = {}
        for feature_idx, name in enumerate(names):
            group = groups[feature_idx % n_groups]
            cohort = [
                self._feature_view(client, name)
                for client in group
                if self._has_feature(client, name)
            ]
            if not cohort:
                raise ConfigurationError(f"no client holds data for feature {name!r}")
            results[name] = self.queries[name].run(cohort, rng=gen)
        return results

    # ------------------------------------------------------------------
    @staticmethod
    def _has_feature(client: ClientDevice, name: str) -> bool:
        features = client.attributes.get("features", {})
        return name in features and np.atleast_1d(features[name]).size > 0

    @staticmethod
    def _feature_view(client: ClientDevice, name: str) -> ClientDevice:
        """A per-feature facade keeping the client's identity (for metering)."""
        return ClientDevice(
            client.client_id,
            np.atleast_1d(client.attributes["features"][name]),
            client.attributes,
        )

    @property
    def total_private_bits(self) -> int:
        """Private bits disclosed across the whole campaign so far."""
        return self.meter.total_bits
