"""Randomized response (Warner 1965) over single bits.

This is the paper's local-DP workhorse (Section 3.3): report the true bit
with probability ``p = e^eps / (1 + e^eps)``, else its complement.  The
mechanism is epsilon-LDP, and the server debiases a reported mean ``r`` as
``(r - (1 - p)) / (2p - 1)``.

:class:`RandomizedResponse` implements the
:class:`repro.core.protocol.BitPerturbation` interface, so it can be plugged
into any bit-pushing estimator.
"""

from __future__ import annotations

import math

import numpy as np

from repro.exceptions import ConfigurationError
from repro.rng import ensure_rng

__all__ = ["RandomizedResponse"]


class RandomizedResponse:
    """Binary randomized response with an epsilon-LDP guarantee.

    Parameters
    ----------
    epsilon:
        The local differential privacy parameter (> 0).  The truth
        probability is derived as ``p = e^eps / (1 + e^eps)``.
    p:
        Alternatively, give the truth probability directly (0.5 < p < 1);
        exactly one of ``epsilon``/``p`` may be supplied.

    Examples
    --------
    >>> rr = RandomizedResponse(epsilon=1.0)
    >>> round(rr.p, 4)
    0.7311
    >>> import numpy as np
    >>> bits = np.ones(200_000, dtype=np.uint8)
    >>> reported = rr.perturb_bits(bits, np.random.default_rng(0))
    >>> est = rr.unbias_bit_means(np.array([reported.mean()]))
    >>> bool(abs(est[0] - 1.0) < 0.01)
    True
    """

    def __init__(self, epsilon: float | None = None, p: float | None = None) -> None:
        if (epsilon is None) == (p is None):
            raise ConfigurationError("provide exactly one of epsilon or p")
        if epsilon is not None:
            if not np.isfinite(epsilon) or epsilon <= 0:
                raise ConfigurationError(f"epsilon must be a positive finite float, got {epsilon}")
            p = math.exp(epsilon) / (1.0 + math.exp(epsilon))
        else:
            assert p is not None
            if not 0.5 < p < 1.0:
                raise ConfigurationError(f"p must be in (0.5, 1), got {p}")
            epsilon = math.log(p / (1.0 - p))
        self.p = float(p)
        self.epsilon = float(epsilon)

    # ------------------------------------------------------------------
    # BitPerturbation interface
    # ------------------------------------------------------------------
    def perturb_bits(
        self, bits: np.ndarray, rng: np.random.Generator | int | None = None
    ) -> np.ndarray:
        """Report each bit truthfully with probability ``p``, else flipped."""
        gen = ensure_rng(rng)
        bits = np.asarray(bits, dtype=np.uint8)
        if bits.size and (bits.max() > 1):
            raise ConfigurationError("randomized response expects 0/1 bits")
        flips = gen.random(bits.shape) >= self.p
        return np.where(flips, 1 - bits, bits).astype(np.uint8)

    def unbias_bit_means(self, means: np.ndarray) -> np.ndarray:
        """Map raw reported-bit means to unbiased true-bit-mean estimates.

        The output may fall outside ``[0, 1]``; downstream bit squashing
        and clipping (Section 3.3, Figure 4b) handle that.
        """
        means = np.asarray(means, dtype=np.float64)
        return (means - (1.0 - self.p)) / (2.0 * self.p - 1.0)

    # ------------------------------------------------------------------
    # Analytic companions
    # ------------------------------------------------------------------
    def per_report_variance(self) -> float:
        """Worst-case variance of one debiased report: ``e^eps / (e^eps - 1)^2``.

        This is the epsilon-dependent constant of Section 3.3; note it does
        not depend on the true bit mean, which is why adaptivity loses its
        edge under LDP (Figure 3 discussion).
        """
        e = math.exp(self.epsilon)
        return e / (e - 1.0) ** 2

    def estimator_variance_bound(self, count: float) -> float:
        """Variance bound for the debiased mean of ``count`` reports."""
        if count <= 0:
            return float("inf")
        return self.per_report_variance() / count

    def flip_probability(self) -> float:
        """Probability of reporting the complement bit (= ``1 - p``)."""
        return 1.0 - self.p

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RandomizedResponse(epsilon={self.epsilon:.4g}, p={self.p:.4g})"
