"""Privacy amplification calculators: subsampling and shuffling.

Two amplification effects matter for deploying bit-pushing:

* **Subsampling.**  Only a ``p_j`` fraction of clients report bit ``j`` (and
  deployments additionally subsample the eligible population), which
  amplifies any local guarantee: a mechanism that is ``eps``-DP on a
  participant is ``log(1 + s (e^eps - 1))``-DP against an observer who only
  knows the participant *might* have been sampled with probability ``s``.
  This is the standard, exact amplification-by-subsampling bound, and it is
  also the engine behind the paper's sample-and-threshold citation [5].
* **Shuffling.**  When reports reach the server through an anonymizing
  shuffler (or the secure-aggregation boundary), n clients' eps-LDP reports
  enjoy a much stronger central guarantee.  We implement the
  Feldman--McMillan--Talwar style closed-form bound
  ``eps_central = log(1 + (e^eps - 1) * (sqrt(32 log(4/delta) / n) + 8/n))``
  (valid for ``eps <= log(n / (16 log(2/delta)))``), which captures the
  ~``1/sqrt(n)`` improvement the distributed-DP section of the paper leans
  on.

These are calculators only -- they change no mechanism behaviour -- but the
accountant can record their outputs, and the tests pin the formulas'
monotonicity and inverses.
"""

from __future__ import annotations

import math

from repro.exceptions import ConfigurationError

__all__ = [
    "amplified_epsilon_by_sampling",
    "required_epsilon_for_sampling",
    "shuffle_amplified_epsilon",
    "shuffle_amplification_valid",
]


def amplified_epsilon_by_sampling(epsilon: float, sampling_rate: float) -> float:
    """Effective epsilon after Poisson subsampling at rate ``sampling_rate``.

    ``eps' = log(1 + s (e^eps - 1))`` -- exact, and always <= eps, with
    equality at s = 1.

    Examples
    --------
    >>> round(amplified_epsilon_by_sampling(1.0, 1.0), 6)
    1.0
    >>> amplified_epsilon_by_sampling(1.0, 0.1) < 0.2
    True
    """
    _check_epsilon(epsilon)
    if not 0.0 < sampling_rate <= 1.0:
        raise ConfigurationError(f"sampling_rate must be in (0, 1], got {sampling_rate}")
    return math.log1p(sampling_rate * (math.exp(epsilon) - 1.0))


def required_epsilon_for_sampling(target_epsilon: float, sampling_rate: float) -> float:
    """Base epsilon a sampled mechanism needs to deliver ``target_epsilon``.

    The inverse of :func:`amplified_epsilon_by_sampling`:
    ``eps = log(1 + (e^target - 1) / s)``.

    Examples
    --------
    >>> base = required_epsilon_for_sampling(0.5, 0.2)
    >>> round(amplified_epsilon_by_sampling(base, 0.2), 10)
    0.5
    """
    _check_epsilon(target_epsilon)
    if not 0.0 < sampling_rate <= 1.0:
        raise ConfigurationError(f"sampling_rate must be in (0, 1], got {sampling_rate}")
    return math.log1p((math.exp(target_epsilon) - 1.0) / sampling_rate)


def shuffle_amplification_valid(epsilon: float, n_clients: int, delta: float) -> bool:
    """Whether the closed-form shuffle bound applies to these parameters."""
    if n_clients < 2 or not 0.0 < delta < 1.0 or epsilon <= 0:
        return False
    limit = n_clients / (16.0 * math.log(2.0 / delta))
    return limit > 1.0 and epsilon <= math.log(limit)


def shuffle_amplified_epsilon(epsilon: float, n_clients: int, delta: float) -> float:
    """Central epsilon after shuffling n eps-LDP reports ((eps', delta)-DP).

    Uses the Feldman--McMillan--Talwar closed form; raises when the
    parameters are outside its validity region (use
    :func:`shuffle_amplification_valid` to pre-check).

    Examples
    --------
    >>> eps = shuffle_amplified_epsilon(1.0, 100_000, 1e-8)
    >>> eps < 0.2
    True
    """
    _check_epsilon(epsilon)
    if not 0.0 < delta < 1.0:
        raise ConfigurationError(f"delta must be in (0, 1), got {delta}")
    if n_clients < 2:
        raise ConfigurationError(f"need >= 2 clients to shuffle, got {n_clients}")
    if not shuffle_amplification_valid(epsilon, n_clients, delta):
        raise ConfigurationError(
            f"shuffle bound invalid for eps={epsilon}, n={n_clients}, delta={delta}; "
            "epsilon must satisfy eps <= log(n / (16 log(2/delta)))"
        )
    factor = math.sqrt(32.0 * math.log(4.0 / delta) / n_clients) + 8.0 / n_clients
    return math.log1p((math.exp(epsilon) - 1.0) * factor)


def _check_epsilon(epsilon: float) -> None:
    if not math.isfinite(epsilon) or epsilon <= 0:
        raise ConfigurationError(f"epsilon must be a positive finite float, got {epsilon}")
