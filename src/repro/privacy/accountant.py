"""Privacy accounting: a formal epsilon ledger and a worst-case bit meter.

The paper argues (Sections 1, 1.1) that two complementary controls are
needed in practice:

* a **formal** guarantee -- differential privacy, tracked here by
  :class:`PrivacyAccountant` as a simple sequential-composition epsilon
  ledger with an optional (epsilon, delta) budget; and
* an **intuitive, worst-case** guarantee -- data minimization at the bit
  level: at most one bit is transmitted per private value, and a bounded
  number of private bits per client overall.  :class:`BitMeter` enforces
  exactly that promise and raises :class:`PrivacyBudgetExceeded` when any
  component tries to elicit more.

Deployed privacy metering (surfacing these counters to end users) is beyond
the paper's scope, but the enforcement layer is the substrate it would sit
on, and the federated simulator routes every elicited bit through it.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Hashable, Sequence

from repro.exceptions import ConfigurationError, PrivacyBudgetExceeded
from repro.observability import get_metrics

__all__ = ["LedgerEntry", "PrivacyAccountant", "BitMeter"]


@dataclass(frozen=True)
class LedgerEntry:
    """One recorded privacy expenditure."""

    epsilon: float
    delta: float
    note: str


class PrivacyAccountant:
    """Sequential-composition (epsilon, delta) ledger.

    Parameters
    ----------
    epsilon_budget:
        Total epsilon that may be spent; ``None`` means unlimited (the
        accountant still records spending for audit).
    delta_budget:
        Total delta that may be spent; ``None`` means unlimited.

    Examples
    --------
    >>> acct = PrivacyAccountant(epsilon_budget=2.0)
    >>> acct.spend(0.5, note="round 1")
    >>> acct.spend(0.5, note="round 2")
    >>> acct.remaining_epsilon
    1.0
    >>> acct.spend(1.5, note="round 3")
    Traceback (most recent call last):
        ...
    repro.exceptions.PrivacyBudgetExceeded: spending eps=1.5 would exceed budget 2.0 (already spent 1.0)
    """

    def __init__(
        self,
        epsilon_budget: float | None = None,
        delta_budget: float | None = None,
    ) -> None:
        if epsilon_budget is not None and epsilon_budget <= 0:
            raise ConfigurationError(f"epsilon_budget must be positive, got {epsilon_budget}")
        if delta_budget is not None and not 0 < delta_budget < 1:
            raise ConfigurationError(f"delta_budget must be in (0, 1), got {delta_budget}")
        self.epsilon_budget = epsilon_budget
        self.delta_budget = delta_budget
        self._entries: list[LedgerEntry] = []
        # Running totals, maintained by spend(): recomputing them by summing
        # the ledger would make a long-lived accountant O(n) per spend
        # (O(n**2) over its life).
        self._spent_epsilon = 0.0
        self._spent_delta = 0.0

    # ------------------------------------------------------------------
    def spend(self, epsilon: float, delta: float = 0.0, note: str = "") -> None:
        """Record an expenditure, raising if it would exceed the budget."""
        if epsilon < 0 or delta < 0:
            raise ConfigurationError("cannot spend negative privacy")
        metrics = get_metrics()
        if self.epsilon_budget is not None and self.spent_epsilon + epsilon > self.epsilon_budget + 1e-12:
            metrics.counter("privacy_budget_denials_total").inc()
            raise PrivacyBudgetExceeded(
                f"spending eps={epsilon} would exceed budget {self.epsilon_budget} "
                f"(already spent {self.spent_epsilon})"
            )
        if self.delta_budget is not None and self.spent_delta + delta > self.delta_budget + 1e-15:
            metrics.counter("privacy_budget_denials_total").inc()
            raise PrivacyBudgetExceeded(
                f"spending delta={delta} would exceed budget {self.delta_budget} "
                f"(already spent {self.spent_delta})"
            )
        self._entries.append(LedgerEntry(epsilon=float(epsilon), delta=float(delta), note=note))
        self._spent_epsilon += float(epsilon)
        self._spent_delta += float(delta)
        if metrics.enabled:
            metrics.counter("privacy_epsilon_spent_total").inc(float(epsilon))
            metrics.counter("privacy_delta_spent_total").inc(float(delta))
            if self.epsilon_budget is not None:
                metrics.gauge("privacy_epsilon_remaining").set(self.remaining_epsilon)

    # ------------------------------------------------------------------
    @property
    def spent_epsilon(self) -> float:
        return self._spent_epsilon

    @property
    def spent_delta(self) -> float:
        return self._spent_delta

    @property
    def remaining_epsilon(self) -> float:
        if self.epsilon_budget is None:
            return float("inf")
        return self.epsilon_budget - self.spent_epsilon

    @property
    def entries(self) -> tuple[LedgerEntry, ...]:
        return tuple(self._entries)

    def can_spend(self, epsilon: float, delta: float = 0.0) -> bool:
        """Check without recording."""
        eps_ok = self.epsilon_budget is None or self.spent_epsilon + epsilon <= self.epsilon_budget + 1e-12
        delta_ok = self.delta_budget is None or self.spent_delta + delta <= self.delta_budget + 1e-15
        return eps_ok and delta_ok


@dataclass
class BitMeter:
    """Enforce the worst-case promise: bounded private bits per value/client.

    Parameters
    ----------
    max_bits_per_value:
        Bits that may ever be disclosed about one ``(client, value)`` pair.
        The paper's headline promise is 1.
    max_bits_per_client:
        Optional cap on total private bits disclosed by one client across
        all values and rounds (``None`` = uncapped).

    Examples
    --------
    >>> meter = BitMeter(max_bits_per_value=1)
    >>> meter.record("device-7", "latency@t0")
    >>> meter.record("device-7", "latency@t0")
    Traceback (most recent call last):
        ...
    repro.exceptions.PrivacyBudgetExceeded: client 'device-7' would disclose 2 bits of value 'latency@t0' (cap 1)
    """

    max_bits_per_value: int = 1
    max_bits_per_client: int | None = None
    _per_value: dict[tuple[Hashable, Hashable], int] = field(default_factory=lambda: defaultdict(int))
    _per_client: dict[Hashable, int] = field(default_factory=lambda: defaultdict(int))

    def __post_init__(self) -> None:
        if self.max_bits_per_value < 1:
            raise ConfigurationError(
                f"max_bits_per_value must be >= 1, got {self.max_bits_per_value}"
            )
        if self.max_bits_per_client is not None and self.max_bits_per_client < 1:
            raise ConfigurationError(
                f"max_bits_per_client must be >= 1, got {self.max_bits_per_client}"
            )

    # ------------------------------------------------------------------
    def record(self, client_id: Hashable, value_id: Hashable, n_bits: int = 1) -> None:
        """Record disclosure of ``n_bits`` of ``value_id`` by ``client_id``.

        Raises :class:`PrivacyBudgetExceeded` *before* updating any counter
        if either cap would be violated, so a rejected disclosure leaves the
        meter unchanged.
        """
        if n_bits < 1:
            raise ConfigurationError(f"n_bits must be >= 1, got {n_bits}")
        metrics = get_metrics()
        value_key = (client_id, value_id)
        # .get(), not defaultdict indexing: reading via [] would insert a
        # zero entry even when the disclosure below is rejected, violating
        # the "leaves the meter unchanged" contract.
        new_value_total = self._per_value.get(value_key, 0) + n_bits
        if new_value_total > self.max_bits_per_value:
            metrics.counter("meter_denials_total").inc()
            raise PrivacyBudgetExceeded(
                f"client {client_id!r} would disclose {new_value_total} bits of value "
                f"{value_id!r} (cap {self.max_bits_per_value})"
            )
        new_client_total = self._per_client.get(client_id, 0) + n_bits
        if self.max_bits_per_client is not None and new_client_total > self.max_bits_per_client:
            metrics.counter("meter_denials_total").inc()
            raise PrivacyBudgetExceeded(
                f"client {client_id!r} would disclose {new_client_total} private bits in "
                f"total (cap {self.max_bits_per_client})"
            )
        self._per_value[value_key] = new_value_total
        self._per_client[client_id] = new_client_total
        if metrics.enabled:
            metrics.counter("metered_bits_total").inc(n_bits)

    def record_batch(
        self,
        client_ids: "Sequence[Hashable]",
        value_id: Hashable,
        n_bits: int = 1,
    ) -> None:
        """Record one ``n_bits`` disclosure of ``value_id`` per client, atomically.

        Equivalent to ``record(cid, value_id, n_bits)`` for each id, but the
        whole batch is validated -- including duplicate ids *within* it --
        before any counter moves, so a rejected batch leaves the meter
        completely unchanged (a record() loop would commit the prefix).
        This is the federated server's per-round path: one call per round
        instead of one per surviving client.
        """
        if n_bits < 1:
            raise ConfigurationError(f"n_bits must be >= 1, got {n_bits}")
        ids = list(client_ids)
        metrics = get_metrics()
        pending: dict[Hashable, int] = {}
        for client_id in ids:
            pending[client_id] = pending.get(client_id, 0) + n_bits
        for client_id, added in pending.items():
            new_value_total = self._per_value.get((client_id, value_id), 0) + added
            if new_value_total > self.max_bits_per_value:
                metrics.counter("meter_denials_total").inc()
                raise PrivacyBudgetExceeded(
                    f"client {client_id!r} would disclose {new_value_total} bits of value "
                    f"{value_id!r} (cap {self.max_bits_per_value})"
                )
            if self.max_bits_per_client is not None:
                new_client_total = self._per_client.get(client_id, 0) + added
                if new_client_total > self.max_bits_per_client:
                    metrics.counter("meter_denials_total").inc()
                    raise PrivacyBudgetExceeded(
                        f"client {client_id!r} would disclose {new_client_total} private "
                        f"bits in total (cap {self.max_bits_per_client})"
                    )
        for client_id, added in pending.items():
            self._per_value[(client_id, value_id)] += added
            self._per_client[client_id] += added
        if metrics.enabled and ids:
            metrics.counter("metered_bits_total").inc(n_bits * len(ids))

    # ------------------------------------------------------------------
    def bits_disclosed_by(self, client_id: Hashable) -> int:
        """Total private bits disclosed by ``client_id`` so far."""
        return self._per_client.get(client_id, 0)

    def bits_disclosed_for(self, client_id: Hashable, value_id: Hashable) -> int:
        """Private bits disclosed about a specific value so far."""
        return self._per_value.get((client_id, value_id), 0)

    @property
    def total_bits(self) -> int:
        """Private bits disclosed across the whole population."""
        return sum(self._per_client.values())
