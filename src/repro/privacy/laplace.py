"""Laplace mechanism, used as a DP baseline.

The paper's evaluation omits Laplace-noise results from the plots because
"the observed error was considerably higher than others, as expected"
(Section 4.2).  We include the mechanism anyway so that claim is checkable:
:mod:`repro.baselines.laplace_mean` builds a mean estimator on top of it, and
the Figure 3 bench reports it alongside the plotted methods.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.rng import ensure_rng

__all__ = ["LaplaceMechanism"]


class LaplaceMechanism:
    """Additive Laplace noise calibrated to sensitivity / epsilon.

    For a query with L1 sensitivity ``sensitivity``, adding
    ``Laplace(0, sensitivity / epsilon)`` noise yields epsilon-DP.  Applied
    per client to their own value, the guarantee is local (each client's
    report is epsilon-LDP with sensitivity = the value range).

    Examples
    --------
    >>> mech = LaplaceMechanism(epsilon=1.0, sensitivity=2.0)
    >>> mech.scale
    2.0
    """

    def __init__(self, epsilon: float, sensitivity: float) -> None:
        if not np.isfinite(epsilon) or epsilon <= 0:
            raise ConfigurationError(f"epsilon must be a positive finite float, got {epsilon}")
        if not np.isfinite(sensitivity) or sensitivity <= 0:
            raise ConfigurationError(f"sensitivity must be positive and finite, got {sensitivity}")
        self.epsilon = float(epsilon)
        self.sensitivity = float(sensitivity)

    @property
    def scale(self) -> float:
        """Laplace scale parameter ``b = sensitivity / epsilon``."""
        return self.sensitivity / self.epsilon

    def privatize(
        self, values: np.ndarray, rng: np.random.Generator | int | None = None
    ) -> np.ndarray:
        """Return ``values`` plus i.i.d. Laplace(0, scale) noise."""
        gen = ensure_rng(rng)
        vals = np.asarray(values, dtype=np.float64)
        return vals + gen.laplace(0.0, self.scale, size=vals.shape)

    def per_value_variance(self) -> float:
        """Noise variance added per value: ``2 * scale**2``."""
        return 2.0 * self.scale**2
